//! 1D heat-diffusion stencil with one-sided halo exchange — the classic
//! PGAS communication pattern the paper's introduction motivates: the same
//! code drives on-node (shared-memory bypass, eager-eligible) and off-node
//! (network) transfers.
//!
//! Each rank owns `LOCAL` interior cells plus two ghost cells. Every
//! iteration it *pushes* its boundary values into its neighbors' ghost
//! cells with `rput` and uses remote completion to count arrivals, then
//! relaxes. A `barrier_async` overlaps the epoch close-out with the
//! interior update.
//!
//! Run with: `cargo run --release --example stencil`

use upcr::{launch, operation_cx, remote_cx, LibVersion, RuntimeConfig};

const RANKS: usize = 4;
const LOCAL: usize = 64;
const STEPS: usize = 200;

fn main() {
    for version in [LibVersion::V2021_3_6Defer, LibVersion::V2021_3_6Eager] {
        let t0 = std::time::Instant::now();
        let checksum = launch(
            RuntimeConfig::smp(RANKS)
                .with_version(version)
                .with_segment_size(1 << 20),
            |u| {
                let me = u.rank_me();
                let n = u.rank_n();
                // Layout: [ghost_left][LOCAL interior][ghost_right]
                let field = u.new_array::<f64>(LOCAL + 2);
                let next = u.new_array::<f64>(LOCAL + 2);
                // Exchange both buffers' pointers: ghost pushes must land
                // in whichever buffer the neighbor currently reads from.
                let dir_a = upcr::DistObject::new(u, field.encode());
                let dir_b = upcr::DistObject::new(u, next.encode());
                u.barrier();
                let left_rank = upcr::Rank(((me + n - 1) % n) as u32);
                let right_rank = upcr::Rank(((me + 1) % n) as u32);
                let fetch_ptr = |d: &upcr::DistObject<u64>, r| {
                    upcr::GlobalPtr::<f64>::decode(d.fetch(u, r).wait())
                };
                let left_bufs = [fetch_ptr(&dir_a, left_rank), fetch_ptr(&dir_b, left_rank)];
                let right_bufs = [fetch_ptr(&dir_a, right_rank), fetch_ptr(&dir_b, right_rank)];

                // Initial condition: a hot spike on rank 0.
                if me == 0 {
                    u.local(field.add(1)).set(1000.0);
                }
                u.barrier();

                let (mut cur, mut nxt) = (field, next);
                for step in 0..STEPS {
                    // Push boundaries into neighbor ghosts (left neighbor's
                    // right ghost, right neighbor's left ghost) in the
                    // buffer the neighbor reads this step.
                    let parity = step % 2;
                    let lb = u.local(cur.add(1)).get();
                    let rb = u.local(cur.add(LOCAL)).get();
                    let fa = u.rput_with(
                        lb,
                        left_bufs[parity].add(LOCAL + 1),
                        operation_cx::as_future(),
                    );
                    let fb = u.rput_with(rb, right_bufs[parity].add(0), operation_cx::as_future());
                    fa.wait();
                    fb.wait();
                    // Async barrier closes the exchange epoch; overlap the
                    // interior update with its completion.
                    let epoch = u.barrier_async();
                    for i in 2..LOCAL {
                        let v = u.local(cur.add(i)).get();
                        let l = u.local(cur.add(i - 1)).get();
                        let r = u.local(cur.add(i + 1)).get();
                        u.local(nxt.add(i)).set(v + 0.25 * (l - 2.0 * v + r));
                    }
                    epoch.wait();
                    // Boundary cells use the freshly-arrived ghosts.
                    for i in [1, LOCAL] {
                        let v = u.local(cur.add(i)).get();
                        let l = u.local(cur.add(i - 1)).get();
                        let r = u.local(cur.add(i + 1)).get();
                        u.local(nxt.add(i)).set(v + 0.25 * (l - 2.0 * v + r));
                    }
                    u.barrier();
                    std::mem::swap(&mut cur, &mut nxt);
                }
                let local_sum: f64 = (1..=LOCAL).map(|i| u.local(cur.add(i)).get()).sum();
                u.allreduce_sum_f64(local_sum)
            },
        );
        println!(
            "{version:<16} total heat after {STEPS} steps: {:.6} (conserved: {})   {:?}",
            checksum[0],
            (checksum[0] - 1000.0).abs() < 1e-6,
            t0.elapsed()
        );
    }
    // Demonstrate remote completion in the same pattern: notify the target
    // when a halo lands.
    launch(RuntimeConfig::smp(2), |u| {
        use std::sync::atomic::{AtomicU64, Ordering};
        static HALOS: AtomicU64 = AtomicU64::new(0);
        let field = u.new_array::<f64>(4);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(field, r)).collect();
        if u.rank_me() == 0 {
            let (f, ()) = u.rput_with(
                3.25,
                ptrs[1],
                operation_cx::as_future()
                    | remote_cx::as_rpc(|| {
                        HALOS.fetch_add(1, Ordering::SeqCst);
                    }),
            );
            f.wait();
        }
        while HALOS.load(Ordering::SeqCst) == 0 {
            u.progress();
        }
        u.barrier();
        if u.rank_me() == 1 {
            println!(
                "remote-completion halo notification received; ghost = {}",
                u.local(field).get()
            );
        }
        u.barrier();
    });
}
