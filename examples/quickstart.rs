//! Quickstart: the APGAS model in five minutes.
//!
//! Run with: `cargo run --release --example quickstart`
//!
//! Four SPMD ranks allocate shared objects, exchange global pointers, and
//! communicate with one-sided puts/gets, futures, promises, atomics, and
//! RPC — the API surface of the paper's runtime.

use upcr::{launch, Rank, RuntimeConfig};

fn main() {
    let ranks = 4;
    println!("launching {ranks} ranks (threads), one shared segment each\n");

    launch(RuntimeConfig::smp(ranks), |u| {
        let me = u.rank_me();
        let n = u.rank_n();

        // --- shared allocation and global pointers ------------------------
        // Each rank allocates a u64 in its own shared segment.
        let mine = u.new_::<u64>(1000 + me as u64);
        // Broadcast every rank's pointer so everyone can address everyone.
        let ptrs: Vec<_> = (0..n).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();

        // --- one-sided RMA with futures -----------------------------------
        // Read the right neighbor's cell, add one, write it back.
        let right = ptrs[(me + 1) % n];
        let v = u.rget(right).wait();
        u.rput(v + 1, right).wait();
        u.barrier();
        if me == 0 {
            println!(
                "after rget/rput chain, rank 0 sees its own cell = {}",
                u.rget(mine).wait()
            );
        }

        // --- continuation chaining -----------------------------------------
        // The paper's §II example: get, then put the incremented value.
        let target = ptrs[(me + 2) % n];
        let done = u
            .rget(target)
            .then_fut(move |val| upcr::api::rput(val * 2, target));
        done.wait();
        u.barrier();

        // --- promises: one allocation tracking many operations -------------
        let pr = upcr::Promise::new();
        for (r, p) in ptrs.iter().enumerate() {
            u.rput_with(
                (me * 10 + r) as u64,
                p.add(0),
                upcr::operation_cx::as_promise(&pr),
            );
        }
        pr.finalize().wait();
        u.barrier();

        // --- remote atomics -------------------------------------------------
        let counter = u.broadcast(u.new_::<u64>(0), 0);
        let ad = u.atomic_domain::<u64>();
        ad.add(counter, 1 + me as u64).wait();
        u.barrier();
        if me == 0 {
            println!("atomic sum over ranks 1..={n}: {}", u.rget(counter).wait());
        }

        // --- RPC -------------------------------------------------------------
        let neighbor = Rank(((me + 1) % n) as u32);
        let sum = u.rpc(neighbor, move || (me * me) as u64).wait();
        u.barrier();
        if me == 0 {
            println!("rpc({neighbor}) returned {sum}");
        }
        u.barrier();
    });

    println!("\nquickstart complete");
}
