//! Tour of the completions mechanism and the eager/defer semantics — the
//! paper's §II-A and §III-A, executable.
//!
//! Run with: `cargo run --release --example completions_tour`

use upcr::{
    conjoin, launch, make_future, operation_cx, remote_cx, source_cx, LibVersion, Promise,
    RuntimeConfig,
};

fn main() {
    println!("== composed completions (source | operation | remote) ==");
    launch(RuntimeConfig::smp(2), |u| {
        let mine = u.new_array::<u64>(8);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        if u.rank_me() == 0 {
            // One rput requesting three different notifications at once,
            // composed with `|` as in the paper's bulk-put example.
            let (src, op) = u.rput_with(
                42u64,
                ptrs[1],
                source_cx::as_future()
                    | (operation_cx::as_future()
                        | remote_cx::as_rpc(|| {
                            println!(
                                "  remote_cx RPC running on rank {} after data arrival",
                                upcr::api::rank_me()
                            );
                        })),
            );
            let (op_fut, ()) = op;
            println!("  source future ready: {}", src.is_ready());
            op_fut.wait();
        }
        u.barrier();
        // Let rank 1 drain the remote RPC.
        u.progress();
        u.barrier();
    });

    println!("\n== eager vs deferred notification, op by op ==");
    for version in LibVersion::ALL {
        launch(RuntimeConfig::smp(2).with_version(version), |u| {
            if u.rank_me() == 0 {
                let p = u.new_::<u64>(0);
                let f = u.rput(7, p); // plain factory: version default
                println!(
                    "  {:<16} rput(local).is_ready() at initiation: {}",
                    u.version().to_string(),
                    f.is_ready()
                );
                f.wait();
                if u.version().has_eager_factories() {
                    let e = u.rput_with(8, p, operation_cx::as_eager_future());
                    let d = u.rput_with(9, p, operation_cx::as_defer_future());
                    println!(
                        "  {:<16}   explicit eager: {}, explicit defer: {}",
                        "",
                        e.is_ready(),
                        d.is_ready()
                    );
                    d.wait();
                }
            }
            u.barrier();
        });
    }

    println!("\n== what eager notification saves (runtime statistics) ==");
    for version in [LibVersion::V2021_3_6Defer, LibVersion::V2021_3_6Eager] {
        launch(RuntimeConfig::smp(2).with_version(version), |u| {
            if u.rank_me() == 0 {
                let p = u.new_::<u64>(0);
                u.reset_stats();
                // The GUPS conjoining idiom, 1000 operations.
                let mut f = make_future();
                for i in 0..1000u64 {
                    f = conjoin(f, u.rput(i, p));
                }
                f.wait();
                let s = u.stats();
                println!(
                    "  {:<16} cells allocated: {:>5}  graph nodes: {:>5}  deferred: {:>5}  eager: {:>5}",
                    u.version().to_string(),
                    s.cell_allocs,
                    s.when_all_nodes,
                    s.deferred_enqueued,
                    s.eager_notifications
                );
            }
            u.barrier();
        });
    }

    println!("\n== promises as operation counters ==");
    launch(RuntimeConfig::smp(4), |u| {
        let arr = u.new_array::<u64>(16);
        let target = u.broadcast(arr, 0);
        if u.rank_me() == 1 {
            let pr = Promise::new();
            for i in 0..16 {
                u.rput_with(i as u64, target.add(i), operation_cx::as_promise(&pr));
            }
            println!(
                "  promise deps outstanding before finalize: {} (eager elided registrations)",
                pr.deps()
            );
            pr.finalize().wait();
        }
        u.barrier();
    });
}
