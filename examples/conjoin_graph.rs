//! Figure 1, executable: the dependency graph `when_all` conjoining builds.
//!
//! The paper's Figure 1 illustrates the chain of internal promise cells the
//! 2021.3.0 release constructs for `f = when_all(f, rput(...))` in a loop.
//! This example runs that loop under each version and prints how much of
//! the graph actually materializes, using the runtime's allocation and
//! conjoin statistics — the quantitative version of the figure.
//!
//! Run with: `cargo run --release --example conjoin_graph`

use upcr::{conjoin, launch, make_future, LibVersion, RuntimeConfig};

const N: u64 = 10;

fn main() {
    println!("f = make_future(); for i in 0..{N} {{ f = when_all(f, rput(i, gp)) }}\n");
    for version in LibVersion::ALL {
        launch(RuntimeConfig::smp(2).with_version(version), |u| {
            if u.rank_me() != 0 {
                u.barrier();
                return;
            }
            let gp = u.new_::<u64>(0);
            u.reset_stats();
            let mut f = make_future();
            for i in 0..N {
                f = conjoin(f, u.rput(i, gp));
            }
            let before_wait = u.stats();
            f.wait();
            let s = u.stats();
            println!("{}:", u.version());
            println!("    dependency-graph nodes built : {}", s.when_all_nodes);
            println!("    conjoins resolved by fast path: {}", s.when_all_fast);
            println!("    internal promise cells alloc'd: {}", s.cell_allocs);
            println!(
                "    notifications deferred        : {}",
                s.deferred_enqueued
            );
            println!(
                "    notifications delivered eager : {}",
                s.eager_notifications
            );
            println!(
                "    future ready before any wait? : {}",
                before_wait.deferred_enqueued == 0
            );
            println!();
            u.barrier();
        });
    }
    println!("2021.3.0 builds the full Figure-1 chain (one op cell plus one conjoin");
    println!("node per operation); the eager 2021.3.6 build collapses it to nothing.");
}
