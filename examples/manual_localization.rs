//! §II-C executable: what manual localization looks like, what it costs in
//! code, and how eager notification lets the naive code compete.
//!
//! Run with: `cargo run --release --example manual_localization`

use std::time::Instant;

use upcr::{launch, LibVersion, RuntimeConfig};

const N: usize = 200_000;

fn main() {
    println!("writing {N} values to a co-located rank's array, three ways\n");
    for version in [LibVersion::V2021_3_6Defer, LibVersion::V2021_3_6Eager] {
        launch(RuntimeConfig::smp(2).with_version(version), |u| {
            let mine = u.new_array::<u64>(N);
            let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            let dest_base = ptrs[1 - u.rank_me()];
            u.barrier();
            if u.rank_me() == 0 {
                // Style 1 (paper Listing 2): manual localization. Two code
                // paths; the programmer pays the branch and must keep both
                // sides correct forever.
                let t0 = Instant::now();
                for i in 0..N {
                    let dest = dest_base.add(i);
                    if u.is_local(dest) {
                        u.local(dest).set(i as u64);
                    } else {
                        u.rput(i as u64, dest).wait();
                    }
                }
                let manual = t0.elapsed();

                // Style 2 (paper Listing 1): the naive PGAS one-liner.
                let t0 = Instant::now();
                for i in 0..N {
                    u.rput(i as u64, dest_base.add(i)).wait();
                }
                let naive = t0.elapsed();

                // Style 3: naive + promise batching.
                let t0 = Instant::now();
                let pr = upcr::Promise::new();
                for i in 0..N {
                    u.rput_with(
                        i as u64,
                        dest_base.add(i),
                        upcr::operation_cx::as_promise(&pr),
                    );
                }
                pr.finalize().wait();
                let batched = t0.elapsed();

                println!("{}:", u.version());
                println!(
                    "    manual localization : {:>8.1} ns/op",
                    manual.as_nanos() as f64 / N as f64
                );
                println!(
                    "    naive rput().wait() : {:>8.1} ns/op",
                    naive.as_nanos() as f64 / N as f64
                );
                println!(
                    "    rput + one promise  : {:>8.1} ns/op",
                    batched.as_nanos() as f64 / N as f64
                );
                println!();
            }
            u.barrier();
        });
    }
    println!("under deferred completion the naive code pays an allocation and a");
    println!("progress-queue round trip per operation; eager completion removes");
    println!("both, so one maintainable code path serves local and remote.");
}
