//! GUPS demo: run all six RandomAccess variants under all three library
//! versions on a small table and print the MUPS matrix with verification.
//!
//! Run with: `cargo run --release --example gups_demo`
//! (a scaled-down version of the paper's Figures 5-7; the full sweep lives
//! in `cargo run --release -p bench --bin figures -- gups`)

use gups::{GupsConfig, Variant};
use upcr::LibVersion;

fn main() {
    let ranks = 4;
    let cfg = GupsConfig {
        log2_table: 16,
        updates_per_word: 4,
        batch: 256,
        verify: true,
    };
    println!(
        "GUPS: table 2^{} words over {ranks} ranks, {} updates, batch {}\n",
        cfg.log2_table,
        cfg.total_updates(),
        cfg.batch
    );
    println!(
        "{:<24}{:>18}{:>18}{:>18}",
        "variant", "2021.3.0", "2021.3.6 defer", "2021.3.6 eager"
    );
    for variant in Variant::ALL {
        let mut cells = Vec::new();
        for version in LibVersion::ALL {
            let r = gups::benchmark(ranks, version, &cfg, variant);
            cells.push(format!(
                "{:.1} MUPS ({:.2}%)",
                r.mups(),
                100.0 * r.error_rate()
            ));
        }
        println!(
            "{:<24}{:>18}{:>18}{:>18}",
            variant.name(),
            cells[0],
            cells[1],
            cells[2]
        );
    }

    // Extension beyond the paper: destination-bucketed aggregation (exact).
    let mut cells = Vec::new();
    for version in LibVersion::ALL {
        let cfg2 = cfg;
        let out = upcr::launch(
            upcr::RuntimeConfig::smp(ranks)
                .with_version(version)
                .with_segment_size(1 << 22),
            move |u| {
                let table = gups::GupsTable::setup(u, &cfg2);
                let per_rank = cfg2.total_updates() / u.rank_n();
                u.barrier();
                let t0 = std::time::Instant::now();
                gups::bucketed::run_bucketed(u, &table, (u.rank_me() * per_rank) as i64, per_rank);
                u.barrier();
                let secs =
                    f64::from_bits(u.allreduce_max_u64(t0.elapsed().as_secs_f64().to_bits()));
                let errors = gups::harness::verify_public(u, &table, &cfg2);
                table.free(u);
                (secs, errors)
            },
        );
        let (secs, errors) = out[0];
        let mups = cfg.total_updates() as f64 / secs / 1e6;
        cells.push(format!("{mups:.1} MUPS ({errors} err)"));
    }
    println!(
        "{:<24}{:>18}{:>18}{:>18}",
        "bucketed (extension)", cells[0], cells[1], cells[2]
    );
    println!("\n(percentages are lost-update rates; atomics and bucketed must be exact)");
}
