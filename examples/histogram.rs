//! Distributed histogram with remote atomics — fine-grained random updates
//! like GUPS, but exact (every increment must land), showing why atomics
//! cannot be manually localized and how eager notification still removes
//! their completion overhead.
//!
//! Run with: `cargo run --release --example histogram`

use upcr::{conjoin, launch, make_future, LibVersion, Rank, RuntimeConfig};

const BINS_PER_RANK: usize = 512;
const SAMPLES_PER_RANK: usize = 100_000;

fn main() {
    for version in [LibVersion::V2021_3_6Defer, LibVersion::V2021_3_6Eager] {
        let t0 = std::time::Instant::now();
        let out = launch(
            RuntimeConfig::smp(4)
                .with_version(version)
                .with_segment_size(1 << 20),
            |u| {
                let n = u.rank_n();
                let bins = u.new_array::<u64>(BINS_PER_RANK);
                let dir = upcr::DistObject::new(u, bins.encode());
                u.barrier();
                let bases: Vec<upcr::GlobalPtr<u64>> = (0..n)
                    .map(|r| upcr::GlobalPtr::decode(dir.fetch(u, Rank(r as u32)).wait()))
                    .collect();
                let total_bins = (n * BINS_PER_RANK) as u64;
                let ad = u.atomic_domain::<u64>();
                u.barrier();

                // Deterministic per-rank sample stream.
                let mut x = 0x9E37_79B9u64.wrapping_mul(u.rank_me() as u64 + 1);
                let mut f = make_future();
                let mut issued = 0usize;
                for _ in 0..SAMPLES_PER_RANK {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let bin = (x % total_bins) as usize;
                    let target = bases[bin / BINS_PER_RANK].add(bin % BINS_PER_RANK);
                    f = conjoin(f, ad.add(target, 1));
                    issued += 1;
                    if issued.is_multiple_of(1024) {
                        f.wait();
                        f = make_future();
                    }
                }
                f.wait();
                u.barrier();

                // Exactness check: total count equals total samples.
                let mine: u64 = (0..BINS_PER_RANK).map(|i| u.local(bins.add(i)).get()).sum();
                let total = u.allreduce_sum_u64(mine);
                assert_eq!(
                    total as usize,
                    4 * SAMPLES_PER_RANK,
                    "histogram must be exact"
                );

                // A skew metric for the printout.
                let max_bin = (0..BINS_PER_RANK)
                    .map(|i| u.local(bins.add(i)).get())
                    .max()
                    .unwrap_or(0);
                (total, u.allreduce_max_u64(max_bin))
            },
        );
        let (total, max_bin) = out[0];
        println!(
            "{version:<16} {total} increments landed exactly, hottest bin {max_bin}, {:?}",
            t0.elapsed()
        );
    }
    println!("\nevery increment is a remote atomic (coherency forbids manual localization);");
    println!("eager completion removes the notification overhead from each one.");
}
