//! Graph-matching demo: generate each of the paper's five input stand-ins,
//! print its locality profile, solve distributed, and check the result
//! against the sequential greedy reference.
//!
//! Run with: `cargo run --release --example matching_demo`

use graphgen::{LocalityStats, Preset};
use matching::greedy;
use upcr::{launch, LibVersion, RuntimeConfig};

fn main() {
    let ranks = 4;
    let scale = 0.1;
    println!("half-approximate maximum-weight matching, {ranks} ranks, scale {scale}\n");
    for preset in Preset::ALL {
        let g = preset.generate(scale);
        let loc = LocalityStats::measure(&g, ranks, ranks);
        let seq = greedy(&g);

        let rt = RuntimeConfig::mpi(ranks, ranks)
            .with_version(LibVersion::V2021_3_6Eager)
            .with_segment_size(1 << 22);
        let (run, m) = {
            let out = launch(rt, |u| matching::run(u, &g));
            out.into_iter().next().unwrap()
        };
        m.validate(&g);
        m.assert_maximal(&g);
        assert_eq!(m.mate, seq.mate, "distributed result must equal greedy");

        println!(
            "{:<10} |V|={:>7} |E|={:>8}  [{loc}]",
            preset.name(),
            g.n,
            g.edges()
        );
        println!(
            "           matched {} edges, weight {:.2} (== greedy), {} rounds, {:.1}ms solve, \
             {} local reads, {} RMA reads\n",
            run.matched,
            run.weight,
            run.stats.rounds,
            run.seconds * 1e3,
            run.stats.local_reads,
            run.stats.rma_reads
        );
    }
}
