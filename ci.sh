#!/usr/bin/env bash
# CI gates, runnable locally and from the GitHub Actions workflow.
# The workspace has no external dependencies, so everything here works
# fully offline.
#
#   ./ci.sh          tier-1 gate: fmt, clippy, release build, tests
#   ./ci.sh chaos    differential chaos sweep: 8 fixed seeds x 3 fault
#                    plans through crates/simtest in release mode
set -euo pipefail
cd "$(dirname "$0")"

job="${1:-tier1}"

case "$job" in
  tier1)
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo test -q"
    cargo test -q

    echo "==> cargo test --workspace -q"
    cargo test --workspace -q

    echo "CI green."
    ;;
  chaos)
    # The seed list lives in crates/simtest/tests/differential.rs; every
    # workload runs under every seed x fault plan for both notification
    # modes, and the whole sweep must stay well under two minutes.
    echo "==> cargo test -p simtest --release -q"
    cargo test -p simtest --release -q

    echo "Chaos sweep green."
    ;;
  *)
    echo "unknown job: $job (expected tier1 or chaos)" >&2
    exit 2
    ;;
esac
