#!/usr/bin/env bash
# Tier-1 CI gate, runnable locally and from the GitHub Actions workflow.
# The workspace has no external dependencies, so everything here works
# fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "CI green."
