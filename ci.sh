#!/usr/bin/env bash
# CI gates, runnable locally and from the GitHub Actions workflow.
# The workspace has no external dependencies, so everything here works
# fully offline.
#
#   ./ci.sh          tier-1 gate: fmt, clippy, release build, tests
#   ./ci.sh chaos    differential chaos sweep: 8 fixed seeds x 3 fault
#                    plans through crates/simtest in release mode
#   ./ci.sh trace    trace smoke: seeded GUPS-small with lifecycle tracing
#                    on; the exported Chrome-trace JSON must parse and
#                    contain >=1 eager and >=1 deferred notification event
#   ./ci.sh bench    benchmark regression gate: regenerate the
#                    deterministic BENCH_*.json documents and compare them
#                    against ci/baseline/ with the committed tolerance
#                    bands; also proves the gate trips on the broken
#                    fixture. Set BENCH_OUT to keep the generated files
#                    (CI uploads them as artifacts).
#   ./ci.sh conduit  conduit-swap gate: the trait-extraction golden suite
#                    (SimNetwork behind the Conduit trait must reproduce
#                    pre-refactor digests, counters, and wire traces) plus
#                    the sim-vs-socket differential over real loopback UDP,
#                    in-process and as separate OS processes (udprun).
#   ./ci.sh signals  notifiable-RMA gate: badge-coalescing property tests,
#                    the signal-storm chaos differential (exactly-once
#                    delivery + eager/defer digest equality), the sim-vs-UDP
#                    signal differential, and the multi-process parked-waiter
#                    run (udprun --signals). All timeout-bounded: a waiter
#                    that never wakes must fail CI, not hang it.
#   ./ci.sh causal   causal-tracing gate: assemble the cross-rank
#                    happens-before timeline from Lamport-stamped traces
#                    and require zero causality violations on virtual-clock
#                    runs (simtest --causal-out on gups-small and the
#                    signal storm), ship real multi-process traces over the
#                    pipe protocol (udprun --trace-out), and run the
#                    byte-determinism + eager-vs-defer contrast suite
#                    (crates/simtest/tests/causal.rs).
#   ./ci.sh continuations
#                    continuation gate: the callback completion mode and
#                    the background progress thread. Unit layers first
#                    (callback queue, completion composition, reentrancy
#                    deferral, wait_signal-in-callback diagnosis), then the
#                    callback-storm chaos differential under all three
#                    fault plans with and without the progress thread (a
#                    strict no-op on the virtual clock), the age-flush
#                    starvation regressions, and the sim-vs-UDP
#                    progress-thread smoke (simtest --progress-thread +
#                    udprun --progress-thread). Timeout-bounded: a lost
#                    continuation must fail CI, not hang it.
#   ./ci.sh watchdog introspection gate: deliberately provoke a partition
#                    stall (simtest --watchdog-demo) and require the stall
#                    watchdog's wait-graph diagnosis to name the blocked
#                    rank, the stuck carrier, and the flight-recorder
#                    event; then the snapshot-determinism + diagnosis-
#                    replay suite. Timeout-bounded by construction — the
#                    watchdog exists so stalls fail fast instead of
#                    hanging.
set -euo pipefail
cd "$(dirname "$0")"

job="${1:-tier1}"

case "$job" in
  tier1)
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check

    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    echo "==> cargo build --release"
    cargo build --release

    echo "==> cargo test -q"
    cargo test -q

    echo "==> cargo test --workspace -q"
    cargo test --workspace -q

    echo "CI green."
    ;;
  chaos)
    # Network-layer chaos regressions first (dup-promotion races, bounded
    # dedup state, pending/heap invariants), then the harness sweep: the
    # seed list lives in crates/simtest/tests/differential.rs; every
    # workload runs under every seed x fault plan for both notification
    # modes (with and without aggregation), and the whole sweep must stay
    # well under two minutes.
    echo "==> cargo test -p gasnex --release -q"
    cargo test -p gasnex --release -q

    echo "==> cargo test -p simtest --release -q"
    cargo test -p simtest --release -q

    echo "Chaos sweep green."
    ;;
  trace)
    # `--check-notify` makes the binary itself the gate: it re-parses the
    # exported JSON (hand-rolled parser, no deps) and fails unless both
    # completion paths are represented.
    out="$(mktemp -d)/trace.json"
    echo "==> simtest --workload gups-small --seed 42 --plan combined --trace-out $out --check-notify"
    cargo run -p simtest --bin simtest --release -q -- \
      --workload gups-small --seed 42 --plan combined \
      --trace-out "$out" --check-notify
    test -s "$out" || { echo "trace export missing or empty" >&2; exit 1; }

    echo "Trace smoke green."
    ;;
  bench)
    out="${BENCH_OUT:-$(mktemp -d)}"
    mkdir -p "$out"
    echo "==> figures --quick --json --out-dir $out"
    cargo run -p bench --bin figures --release -q -- --quick --json --out-dir "$out"

    echo "==> regress --baseline ci/baseline --current $out"
    cargo run -p bench --bin regress --release -q -- \
      --baseline ci/baseline --current "$out"

    echo "==> regress must fail on the intentionally-broken fixture"
    if cargo run -p bench --bin regress --release -q -- \
        --baseline crates/bench/tests/fixtures/broken --current "$out"; then
      echo "regress failed to flag the broken fixture" >&2
      exit 1
    fi

    echo "Bench regression gate green."
    ;;
  conduit)
    # In-process half: the conduit-swap regression suite — pre-refactor
    # goldens for SimNetwork-behind-the-trait, plus the sim-vs-UDP
    # differential (bounded seeds, loopback only). `timeout` bounds the
    # job: a wedged socket retransmit loop must fail CI, not hang it.
    echo "==> cargo test -p simtest --release --test conduit"
    timeout 300 cargo test -p simtest --release -q --test conduit

    echo "==> cargo test -p gasnex --release conduit::udp"
    timeout 120 cargo test -p gasnex --release -q conduit::udp

    # Multi-process half: each rank is a real OS process; the payload
    # words cross process boundaries inside loopback datagrams, and the
    # folded digest must match the in-process simulator runs.
    echo "==> udprun --ranks 4 --seed 0 / --ranks 8 --seed 1"
    cargo build -p simtest --release -q --bin udprun
    timeout 120 ./target/release/udprun --ranks 4 --seed 0
    timeout 120 ./target/release/udprun --ranks 8 --seed 1

    echo "Conduit gate green."
    ;;
  signals)
    # Substrate first: notification-object state machine, parking, and
    # SIGNAL-frame wire tests inside gasnex; then the unit layer
    # (put/amo_signal + wait_signal on the runtime), the property suite,
    # and the chaos/transport differentials.
    echo "==> cargo test -p gasnex --release notify event"
    timeout 120 cargo test -p gasnex --release -q notify
    timeout 120 cargo test -p gasnex --release -q event

    echo "==> cargo test -p upcr --release signal"
    timeout 180 cargo test -p upcr --release -q signal

    echo "==> cargo test --release --test property badge wait_mask waiter"
    timeout 120 cargo test --release -q --test property badge
    timeout 120 cargo test --release -q --test property wait_mask
    timeout 120 cargo test --release -q --test property waiter

    echo "==> cargo test -p simtest --release --test signals"
    timeout 300 cargo test -p simtest --release -q --test signals

    echo "==> cargo test -p simtest --release --test conduit signal"
    timeout 300 cargo test -p simtest --release -q --test conduit signal

    echo "==> udprun --ranks 4 --seed 0 --signals"
    cargo build -p simtest --release -q --bin udprun
    timeout 120 ./target/release/udprun --ranks 4 --seed 0 --signals

    echo "Signals gate green."
    ;;
  causal)
    # Virtual-clock runs make the zero-violations requirement absolute:
    # Lamport order and the simulated clock cannot disagree, so the
    # simtest binary itself fails on any violation. The udprun half ships
    # real per-process traces over the pipes; its violation count is
    # reported (cross-process kernel clocks may skew) but the run must
    # still produce a valid flow-event JSON.
    out="$(mktemp -d)"
    echo "==> simtest --workload gups-small --causal-out"
    cargo build -p simtest --release -q --bin simtest --bin udprun
    timeout 120 ./target/release/simtest --workload gups-small --seed 42 \
      --plan combined --causal-out "$out/causal-gups.json"
    test -s "$out/causal-gups.json" || { echo "causal export missing" >&2; exit 1; }

    echo "==> simtest --workload signal-storm --causal-out"
    timeout 120 ./target/release/simtest --workload signal-storm --seed 42 \
      --plan combined --causal-out "$out/causal-signals.json"

    echo "==> udprun --ranks 4 --seed 0 --trace-out"
    timeout 120 ./target/release/udprun --ranks 4 --seed 0 \
      --trace-out "$out/causal-udp.json"
    test -s "$out/causal-udp.json" || { echo "udprun trace export missing" >&2; exit 1; }

    echo "==> cargo test -p simtest --release --test causal"
    timeout 300 cargo test -p simtest --release -q --test causal

    echo "==> cargo test -p upcr --release causal"
    timeout 300 cargo test -p upcr --release -q causal

    echo "Causal gate green."
    ;;
  continuations)
    # Unit layers first: the callback queue (reentrancy deferral, drain
    # exclusivity), the completion-object composition, the registration
    # race, and the wait_signal-in-callback diagnosis panic.
    echo "==> cargo test -p upcr --release callback continuation"
    timeout 180 cargo test -p upcr --release -q callback
    timeout 180 cargo test -p upcr --release -q continuation

    # The chaos differential (8 seeds x 3 fault plans, with and without
    # the progress thread — a strict no-op on the virtual clock), the
    # age-flush starvation regressions, and the sim-vs-UDP agreement run.
    echo "==> cargo test -p simtest --release --test continuations"
    timeout 600 cargo test -p simtest --release -q --test continuations

    # Smoke the flag end to end on both runners: the simtest bin on the
    # virtual clock (where the thread must change nothing) under every
    # fault plan, and udprun's multi-process digest cross-checked against
    # a thread-on in-process run over real kernel sockets.
    echo "==> simtest --workload callback-storm --progress-thread (all plans)"
    cargo build -p simtest --release -q --bin simtest --bin udprun
    for plan in drop-heavy dup-reorder combined; do
      timeout 120 ./target/release/simtest --workload callback-storm \
        --seed 42 --plan "$plan" --progress-thread > /dev/null
    done

    echo "==> udprun --ranks 4 --seed 0 --progress-thread"
    timeout 120 ./target/release/udprun --ranks 4 --seed 0 --progress-thread

    echo "Continuations gate green."
    ;;
  watchdog)
    # The demo run injects a put-with-signal into an hour-long partition
    # window while the waiter parks behind a 700 ms watchdog; the binary
    # exits non-zero unless the diagnosis names the blocked rank, and the
    # greps pin the edge and flight-recorder lines the diagnosis must
    # carry. Panic backtraces from the deliberately-aborted ranks go to
    # stderr; stdout carries only the diagnosis.
    out="$(mktemp -d)/watchdog.txt"
    echo "==> simtest --watchdog-demo --watchdog-ms 700"
    cargo build -p simtest --release -q --bin simtest
    timeout 60 ./target/release/simtest --watchdog-demo --watchdog-ms 700 \
      > "$out" 2>/dev/null
    grep -q "wait-graph stall: rank 0 blocked 700ms in wait_signal on notify word 0 mask 0x2" "$out"
    grep -q "candidate carriers in flight toward rank 0" "$out"
    grep -q "flight recorder: last wire event touching this edge" "$out"

    echo "==> cargo test -p simtest --release --test introspect"
    timeout 300 cargo test -p simtest --release -q --test introspect

    echo "Watchdog gate green."
    ;;
  *)
    echo "unknown job: $job (expected tier1, chaos, trace, bench, conduit, signals, causal, continuations, or watchdog)" >&2
    exit 2
    ;;
esac
