//! GUPS benchmark configuration.

/// Which benchmark variant to run (§IV-B of the paper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Pure Rust updates after a one-time downcast of every rank's table
    /// slice — the "raw C++" upper bound. Single-node only.
    Raw,
    /// Per-update locality check and downcast, RMA for remote targets.
    ManualLocalization,
    /// UPC++ RMA on every target regardless of locality, completion tracked
    /// by a promise.
    RmaPromise,
    /// UPC++ RMA on every target, completion tracked by conjoined futures.
    RmaFuture,
    /// Remote atomic XOR on every target, completion tracked by a promise.
    AmoPromise,
    /// Remote atomic XOR on every target, completion tracked by conjoined
    /// futures.
    AmoFuture,
}

impl Variant {
    /// All variants, in the paper's Figure 5–7 order.
    pub const ALL: [Variant; 6] = [
        Variant::Raw,
        Variant::ManualLocalization,
        Variant::RmaPromise,
        Variant::RmaFuture,
        Variant::AmoPromise,
        Variant::AmoFuture,
    ];

    /// The label used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Variant::Raw => "raw C++",
            Variant::ManualLocalization => "manual localization",
            Variant::RmaPromise => "pure RMA w/promises",
            Variant::RmaFuture => "pure RMA w/futures",
            Variant::AmoPromise => "atomics w/promises",
            Variant::AmoFuture => "atomics w/futures",
        }
    }
}

/// Benchmark parameters.
#[derive(Clone, Copy, Debug)]
pub struct GupsConfig {
    /// log2 of the total table size in 64-bit words, summed over ranks.
    pub log2_table: u32,
    /// Updates per table word (HPCC specifies 4).
    pub updates_per_word: usize,
    /// Batch size: updates issued before synchronizing (the paper's code
    /// batches gets, waits, then issues puts).
    pub batch: usize,
    /// Whether to run the correctness check after the timed region.
    pub verify: bool,
}

impl Default for GupsConfig {
    fn default() -> Self {
        GupsConfig {
            log2_table: 20,
            updates_per_word: 4,
            batch: 256,
            verify: false,
        }
    }
}

impl GupsConfig {
    /// Table size in words.
    pub fn table_size(&self) -> usize {
        1usize << self.log2_table
    }

    /// Total updates across all ranks.
    pub fn total_updates(&self) -> usize {
        self.table_size() * self.updates_per_word
    }

    /// Validate against a rank count (HPCC block mapping requires the rank
    /// count to divide the table size as a power of two).
    pub fn validate(&self, ranks: usize) {
        assert!(
            ranks.is_power_of_two(),
            "GUPS requires a power-of-two rank count, got {ranks}"
        );
        assert!(
            self.table_size() >= ranks,
            "table of 2^{} words cannot be split over {ranks} ranks",
            self.log2_table
        );
        assert!(self.batch > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_hpcc_like() {
        let c = GupsConfig::default();
        assert_eq!(c.updates_per_word, 4);
        assert_eq!(c.total_updates(), 4 << 20);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_ranks_rejected() {
        GupsConfig::default().validate(3);
    }

    #[test]
    fn variant_names_match_paper() {
        assert_eq!(Variant::RmaFuture.name(), "pure RMA w/futures");
        assert_eq!(Variant::ALL.len(), 6);
    }
}
