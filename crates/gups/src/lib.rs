//! # gups — HPC Challenge RandomAccess over the `upcr` runtime
//!
//! Reproduces the GUPS evaluation of *"Optimization of Asynchronous
//! Communication Operations through Eager Notifications"* (SC 2021,
//! Figures 5–7): randomized fine-grained XOR updates on a distributed
//! table, in six variants that differ only in how communication is
//! expressed and synchronized —
//!
//! * [`Variant::Raw`] — pure Rust after hoisting all runtime machinery out
//!   of the loop (single-node upper bound);
//! * [`Variant::ManualLocalization`] — per-update `is_local` check and
//!   downcast;
//! * [`Variant::RmaPromise`] / [`Variant::RmaFuture`] — locality-oblivious
//!   one-sided RMA, synchronized by a promise or by conjoined futures;
//! * [`Variant::AmoPromise`] / [`Variant::AmoFuture`] — remote atomic XOR
//!   updates (exact), same two synchronization styles.
//!
//! [`harness::benchmark`] runs any variant under any of the three library
//! versions, returning MUPS and a verification error count.

pub mod bucketed;
pub mod config;
pub mod harness;
pub mod rng;
pub mod table;
pub mod variants;

pub use config::{GupsConfig, Variant};
pub use harness::{benchmark, benchmark_on, run, GupsRun};
pub use table::GupsTable;
