//! GUPS command-line runner with optional lifecycle-trace export.
//!
//! ```text
//! gups --variant "atomics w/futures" --ranks 4 --nodes 2 --log2-table 16 \
//!      --version eager --trace-out trace.json
//! ```
//!
//! With `--trace-out`, operation-lifecycle tracing is enabled for the
//! update loop and the per-rank spans plus wire events are exported as
//! Chrome `trace_event` JSON (load in `chrome://tracing` or Perfetto),
//! with the (op kind × completion path) latency summary printed to stdout.

use std::process::ExitCode;

use gups::{GupsConfig, Variant};
use upcr::metrics::{metrics_json_multi, prometheus_text_multi};
use upcr::trace::summary_table;
use upcr::{launch, LibVersion, RuntimeConfig};

struct Args {
    variant: Variant,
    ranks: usize,
    ranks_per_node: usize,
    log2_table: u32,
    batch: usize,
    version: LibVersion,
    verify: bool,
    agg_flush: Option<usize>,
    progress_thread: bool,
    trace_out: Option<String>,
    metrics_out: Option<String>,
    prom_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: gups [--variant NAME] [--ranks N] [--nodes N] [--log2-table N] [--batch N]\n\
         \x20           [--version eager|2021.3.0|2021.3.6-defer] [--verify] [--trace-out PATH]\n\
         \x20           [--agg] [--agg-flush N] [--progress-thread]\n\
         \x20           [--metrics-out PATH] [--prom-out PATH]\n\
         variants: {}",
        Variant::ALL.map(|v| format!("{:?}", v.name())).join(", ")
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        variant: Variant::AmoFuture,
        ranks: 4,
        ranks_per_node: 2,
        log2_table: 14,
        batch: 64,
        version: LibVersion::V2021_3_6Eager,
        verify: false,
        agg_flush: None,
        progress_thread: false,
        trace_out: None,
        metrics_out: None,
        prom_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--variant" => {
                let v = val();
                args.variant = Variant::ALL
                    .into_iter()
                    .find(|x| x.name() == v)
                    .unwrap_or_else(|| usage());
            }
            "--ranks" => args.ranks = val().parse().unwrap_or_else(|_| usage()),
            "--nodes" => {
                let nodes: usize = val().parse().unwrap_or_else(|_| usage());
                args.ranks_per_node = (args.ranks / nodes.max(1)).max(1);
            }
            "--log2-table" => args.log2_table = val().parse().unwrap_or_else(|_| usage()),
            "--batch" => args.batch = val().parse().unwrap_or_else(|_| usage()),
            "--version" => {
                args.version = match val().as_str() {
                    "eager" | "2021.3.6" => LibVersion::V2021_3_6Eager,
                    "2021.3.0" => LibVersion::V2021_3_0,
                    "2021.3.6-defer" | "defer" => LibVersion::V2021_3_6Defer,
                    _ => usage(),
                };
            }
            "--verify" => args.verify = true,
            // --agg enables per-target aggregation at the default flush
            // threshold; --agg-flush N enables it with an explicit one.
            "--agg" => {
                args.agg_flush = args
                    .agg_flush
                    .or(Some(upcr::AggConfig::default().flush_ops))
            }
            "--agg-flush" => args.agg_flush = Some(val().parse().unwrap_or_else(|_| usage())),
            // Background progress thread per node (wall-clock runs only).
            "--progress-thread" => args.progress_thread = true,
            "--trace-out" => args.trace_out = Some(val()),
            "--metrics-out" => args.metrics_out = Some(val()),
            "--prom-out" => args.prom_out = Some(val()),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    let cfg = GupsConfig {
        log2_table: args.log2_table,
        updates_per_word: 1,
        batch: args.batch,
        verify: args.verify,
    };
    cfg.validate(args.ranks);
    let sampling = args.metrics_out.is_some() || args.prom_out.is_some();
    let tracing = args.trace_out.is_some() || sampling;
    let mut rt = RuntimeConfig::udp(args.ranks, args.ranks_per_node)
        .with_version(args.version)
        .with_segment_size((cfg.table_size() / args.ranks * 8 + (1 << 16)).next_power_of_two())
        .with_progress_thread(args.progress_thread);
    if let Some(flush) = args.agg_flush {
        rt = rt.with_agg(upcr::AggConfig::enabled(flush));
    }

    let results = launch(rt, |u| {
        u.trace_enabled(tracing);
        if sampling {
            u.metrics_enabled(true);
        }
        let r = gups::run(u, &cfg, args.variant);
        u.barrier();
        let net = if u.rank_me() == 0 && tracing {
            u.take_net_trace()
        } else {
            Vec::new()
        };
        let series = sampling.then(|| u.take_metrics());
        (
            r,
            u.net_stats(),
            u.take_trace(),
            u.latency_report(),
            net,
            series,
        )
    });

    let run = results[0].0;
    println!(
        "variant={:?} ranks={} table=2^{} updates={} time={:.4}s mups={:.2} errors={}",
        args.variant.name(),
        args.ranks,
        args.log2_table,
        run.updates,
        run.seconds,
        run.mups(),
        run.errors,
    );
    if args.agg_flush.is_some() {
        let ns = results[0].1;
        println!(
            "agg: flush_ops={} injected={} batches={} ops_coalesced={} \
             flushes(size/age/explicit)={}/{}/{} occupancy_hw={}",
            args.agg_flush.unwrap_or(0),
            ns.injected,
            ns.batches_injected,
            ns.ops_coalesced,
            ns.flushes_size,
            ns.flushes_age,
            ns.flushes_explicit,
            ns.agg_occupancy_highwater,
        );
    }

    if tracing {
        let mut bundle = upcr::TraceBundle {
            ranks: Vec::new(),
            net: Vec::new(),
        };
        let mut hists = upcr::Histograms::new();
        let mut parts = Vec::new();
        for (_, _, trace, hist, net, series) in results {
            bundle.ranks.push(trace);
            hists.merge(&hist);
            if !net.is_empty() {
                bundle.net = net;
            }
            if let Some(s) = series {
                parts.push((s, hist));
            }
        }
        print!("{}", summary_table(&hists));
        if let Some(path) = &args.trace_out {
            let json = upcr::trace::chrome_trace_json(&bundle);
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            let events: usize = bundle.ranks.iter().map(|r| r.events.len()).sum();
            println!(
                "trace: {} rank events + {} wire events -> {path}",
                events,
                bundle.net.len()
            );
        }
        let refs: Vec<_> = parts.iter().map(|(s, h)| (s, h)).collect();
        if let Some(path) = &args.metrics_out {
            if let Err(e) = std::fs::write(path, metrics_json_multi(&refs)) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("metrics: {} rank series -> {path}", refs.len());
        }
        if let Some(path) = &args.prom_out {
            if let Err(e) = std::fs::write(path, prometheus_text_multi(&refs)) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("prometheus exposition: {} ranks -> {path}", refs.len());
        }
    }
    if run.errors > 0 && args.verify {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
