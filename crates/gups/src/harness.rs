//! Timed GUPS runs and verification.

use std::time::Instant;

use upcr::{launch, LibVersion, RuntimeConfig, Upcr};

use crate::config::{GupsConfig, Variant};
use crate::rng::Stream;
use crate::table::GupsTable;
use crate::variants::run_updates;

/// Result of one GUPS run.
#[derive(Clone, Copy, Debug)]
pub struct GupsRun {
    /// Wall time of the slowest rank's update loop, in seconds.
    pub seconds: f64,
    /// Total updates performed across ranks.
    pub updates: usize,
    /// Words whose final value differs from the exact (race-free) result.
    pub errors: usize,
    /// Table size in words, for error-rate computation.
    pub table_words: usize,
}

impl GupsRun {
    /// Millions of updates per second (the figures' y-axis).
    pub fn mups(&self) -> f64 {
        self.updates as f64 / self.seconds / 1e6
    }

    /// Fraction of table words with lost updates.
    pub fn error_rate(&self) -> f64 {
        self.errors as f64 / self.table_words as f64
    }
}

/// Run one variant inside an active SPMD region and return the result
/// (identical on every rank).
pub fn run(u: &Upcr, cfg: &GupsConfig, variant: Variant) -> GupsRun {
    let table = GupsTable::setup(u, cfg);
    let per_rank = cfg.total_updates() / u.rank_n();
    let start_pos = (u.rank_me() * per_rank) as i64;

    u.barrier();
    let t0 = Instant::now();
    run_updates(u, &table, cfg, variant, start_pos, per_rank);
    u.barrier();
    let elapsed = t0.elapsed().as_secs_f64();
    // Slowest rank defines the run time; positive f64 bit patterns order
    // like the values themselves.
    let seconds = f64::from_bits(u.allreduce_max_u64(elapsed.to_bits()));

    let errors = if cfg.verify {
        verify(u, &table, cfg)
    } else {
        0
    };
    table.free(u);
    GupsRun {
        seconds,
        updates: per_rank * u.rank_n(),
        errors,
        table_words: cfg.table_size(),
    }
}

/// HPCC-style correctness check: recompute the exact table (XOR updates
/// commute, so replaying every rank's stream sequentially gives the
/// race-free result) and count mismatching words in this rank's block;
/// returns the global mismatch count.
pub fn verify_public(u: &Upcr, table: &GupsTable, cfg: &GupsConfig) -> usize {
    verify(u, table, cfg)
}

fn verify(u: &Upcr, table: &GupsTable, cfg: &GupsConfig) -> usize {
    let per_rank = cfg.total_updates() / u.rank_n();
    let my_base = (u.rank_me() * table.local_size) as u64;
    // Expected values for my block only.
    let mut expected: Vec<u64> = (0..table.local_size as u64).map(|i| my_base + i).collect();
    for r in 0..u.rank_n() {
        let start = (r * per_rank) as i64;
        for ran in Stream::at(start).take(per_rank) {
            if table.owner_of(ran) == u.rank_me() {
                expected[table.local_index_of(ran)] ^= ran;
            }
        }
    }
    let words = u.local_slice_u64(table.bases[u.rank_me()], table.local_size);
    let mine = words
        .iter()
        .zip(&expected)
        .filter(|(w, &e)| w.load(std::sync::atomic::Ordering::Relaxed) != e)
        .count();
    u.allreduce_sum_u64(mine as u64) as usize
}

/// Segment size fitting the per-rank table block plus scratch and slack.
fn segment_for(ranks: usize, cfg: &GupsConfig) -> usize {
    let block_bytes = (cfg.table_size() / ranks) * 8;
    (block_bytes + (cfg.batch + 1024) * 8)
        .next_power_of_two()
        .max(1 << 16)
}

/// Launch a fresh runtime and run one variant under the given version.
/// The entry point the benchmark harness sweeps.
pub fn benchmark(ranks: usize, version: LibVersion, cfg: &GupsConfig, variant: Variant) -> GupsRun {
    let rt = RuntimeConfig::smp(ranks)
        .with_version(version)
        .with_segment_size(segment_for(ranks, cfg));
    benchmark_on(rt, cfg, variant)
}

/// Run one variant on a caller-supplied runtime configuration — the entry
/// the differential chaos harness uses to put GUPS on a multi-node world
/// with a faulted network. The segment size is adjusted upward if the
/// table would not fit.
pub fn benchmark_on(rt: RuntimeConfig, cfg: &GupsConfig, variant: Variant) -> GupsRun {
    let ranks = rt.gasnex.ranks;
    let seg = segment_for(ranks, cfg).max(rt.gasnex.segment_size);
    let rt = rt.with_segment_size(seg);
    let cfg = *cfg;
    let results = launch(rt, move |u| run(u, &cfg, variant));
    results[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    // Table sized well above the batch: the batched RMA protocol loses an
    // update whenever two updates in one batch hit the same word, so the
    // expected loss scales with batch/table (negligible at HPCC's real
    // sizes, and kept below the test threshold here).
    fn small_cfg() -> GupsConfig {
        GupsConfig {
            log2_table: 14,
            updates_per_word: 4,
            batch: 64,
            verify: true,
        }
    }

    #[test]
    fn amo_variants_are_exact() {
        for variant in [Variant::AmoPromise, Variant::AmoFuture] {
            let r = benchmark(4, LibVersion::V2021_3_6Eager, &small_cfg(), variant);
            assert_eq!(
                r.errors,
                0,
                "{}: atomic updates must be exact",
                variant.name()
            );
            assert_eq!(r.updates, small_cfg().total_updates());
            assert!(r.seconds > 0.0);
        }
    }

    #[test]
    fn rma_variants_mostly_correct() {
        // Unsynchronized read-xor-write races lose updates in proportion to
        // (ranks * batch) / table, which is deliberately large here to keep
        // the test fast — HPCC-scale tables keep it under 1%. The bound
        // below checks the mechanism works (most updates land), not the
        // HPCC statistical threshold; exactness is covered by the
        // single-rank batch-1 test and the AMO tests.
        for variant in [
            Variant::Raw,
            Variant::ManualLocalization,
            Variant::RmaPromise,
            Variant::RmaFuture,
        ] {
            let r = benchmark(4, LibVersion::V2021_3_6Eager, &small_cfg(), variant);
            assert!(
                r.error_rate() < 0.25,
                "{}: error rate {} too high",
                variant.name(),
                r.error_rate()
            );
        }
    }

    #[test]
    fn single_rank_runs_are_exact_for_all_variants() {
        // With one rank there are no cross-rank races. The batched RMA
        // variants still lose intra-batch same-word collisions, so they run
        // with batch 1 (fully serialized) for this exactness check.
        for variant in Variant::ALL {
            let batch = match variant {
                Variant::RmaPromise | Variant::RmaFuture => 1,
                _ => 64,
            };
            let cfg = GupsConfig {
                batch,
                ..small_cfg()
            };
            let r = benchmark(1, LibVersion::V2021_3_6Eager, &cfg, variant);
            assert_eq!(
                r.errors,
                0,
                "{}: single-rank run must be exact",
                variant.name()
            );
        }
    }

    #[test]
    fn all_versions_compute_the_same_thing() {
        for version in LibVersion::ALL {
            let r = benchmark(2, version, &small_cfg(), Variant::RmaPromise);
            assert!(
                r.error_rate() < 0.25,
                "{version}: error rate {}",
                r.error_rate()
            );
            let r = benchmark(2, version, &small_cfg(), Variant::AmoFuture);
            assert_eq!(r.errors, 0, "{version}: AMO must be exact");
        }
    }

    #[test]
    fn mups_metric_sane() {
        let r = GupsRun {
            seconds: 2.0,
            updates: 4_000_000,
            errors: 5,
            table_words: 1000,
        };
        assert_eq!(r.mups(), 2.0);
        assert_eq!(r.error_rate(), 0.005);
    }
}
