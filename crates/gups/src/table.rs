//! The distributed RandomAccess table.

use std::sync::atomic::Ordering;

use upcr::{GlobalPtr, Upcr};

use crate::config::GupsConfig;

/// A table of `2^log2_table` 64-bit words, block-distributed over ranks.
/// Word `i` initially holds `i` (the HPCC convention).
pub struct GupsTable {
    /// Base pointer of each rank's block.
    pub bases: Vec<GlobalPtr<u64>>,
    /// Words per rank (a power of two).
    pub local_size: usize,
    /// `table_size - 1`, for masking stream values into indices.
    pub mask: u64,
    log_local: u32,
}

impl GupsTable {
    /// Collectively allocate and initialize the table.
    pub fn setup(u: &Upcr, cfg: &GupsConfig) -> GupsTable {
        cfg.validate(u.rank_n());
        let local_size = cfg.table_size() / u.rank_n();
        let mine = u.new_array::<u64>(local_size);
        let slice = u.local_slice_u64(mine, local_size);
        let base = (u.rank_me() * local_size) as u64;
        for (i, w) in slice.iter().enumerate() {
            w.store(base + i as u64, Ordering::Relaxed);
        }
        let bases = (0..u.rank_n()).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();
        GupsTable {
            bases,
            local_size,
            mask: (cfg.table_size() - 1) as u64,
            log_local: local_size.trailing_zeros(),
        }
    }

    /// Map a stream value to the global pointer of its table word.
    #[inline]
    pub fn gptr_of(&self, ran: u64) -> GlobalPtr<u64> {
        let idx = ran & self.mask;
        let owner = (idx >> self.log_local) as usize;
        let local = (idx & (self.local_size as u64 - 1)) as usize;
        self.bases[owner].add(local)
    }

    /// The owning rank of a stream value's table word.
    #[inline]
    pub fn owner_of(&self, ran: u64) -> usize {
        ((ran & self.mask) >> self.log_local) as usize
    }

    /// Index within the owner's block.
    #[inline]
    pub fn local_index_of(&self, ran: u64) -> usize {
        ((ran & self.mask) & (self.local_size as u64 - 1)) as usize
    }

    /// Collectively free the table.
    pub fn free(&self, u: &Upcr) {
        u.barrier();
        u.delete_(self.bases[u.rank_me()]);
        u.barrier();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upcr::{launch, RuntimeConfig};

    #[test]
    fn setup_initializes_identity() {
        let cfg = GupsConfig {
            log2_table: 10,
            ..Default::default()
        };
        launch(RuntimeConfig::smp(4).with_segment_size(1 << 20), |u| {
            let t = GupsTable::setup(u, &cfg);
            assert_eq!(t.local_size, 256);
            // Every word of every block holds its global index.
            for r in 0..4 {
                let slice = u.local_slice_u64(t.bases[r], t.local_size);
                for (i, w) in slice.iter().enumerate() {
                    assert_eq!(w.load(Ordering::Relaxed), (r * 256 + i) as u64);
                }
            }
            t.free(u);
        });
    }

    #[test]
    fn gptr_mapping_roundtrips() {
        let cfg = GupsConfig {
            log2_table: 12,
            ..Default::default()
        };
        launch(RuntimeConfig::smp(8).with_segment_size(1 << 20), |u| {
            let t = GupsTable::setup(u, &cfg);
            for ran in [0u64, 1, 4095, 0xdeadbeef, u64::MAX] {
                let idx = ran & t.mask;
                let owner = t.owner_of(ran);
                assert_eq!(owner, (idx as usize) / t.local_size);
                let g = t.gptr_of(ran);
                assert_eq!(g.rank().idx(), owner);
                assert_eq!(g.index_from(&t.bases[owner]), t.local_index_of(ran));
            }
            t.free(u);
        });
    }
}
