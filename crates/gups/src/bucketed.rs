//! Bucketed GUPS — an extension beyond the paper's six variants.
//!
//! The paper's conclusion anticipates "additional optimizations ... that
//! should transparently further reduce overheads"; at the application
//! level, the classic next step for RandomAccess is *aggregation*: instead
//! of one communication operation per update, updates destined for the
//! same rank are buffered and shipped in batches, applied at the target by
//! an active message. Updates become exact (the owner applies them
//! serially on its own thread) and the per-update runtime overhead
//! amortizes across the bucket — at the cost of the latency/lookahead the
//! HPCC rules bound.
//!
//! Not part of Figures 5–7; reported separately by the demo harness.

use std::sync::atomic::{AtomicU64, Ordering};

use upcr::{api, Rank, Upcr};

use crate::rng::Stream;
use crate::table::GupsTable;

/// Updates buffered per destination rank before shipping.
pub const BUCKET: usize = 512;

thread_local! {
    /// Updates applied on this rank by incoming buckets (reset per run).
    static APPLIED: AtomicU64 = const { AtomicU64::new(0) };
}

/// Run this rank's updates with destination bucketing. Exact: every update
/// lands (AMO-grade correctness without atomics, because only the owner
/// writes its table block).
pub fn run_bucketed(u: &Upcr, table: &GupsTable, start_pos: i64, count: usize) {
    let n = u.rank_n();
    let me = u.rank_me();
    APPLIED.with(|c| c.store(0, Ordering::Relaxed));
    u.barrier(); // counters reset everywhere before any bucket can arrive

    let mut sent_remote: u64 = 0;
    let mut buckets: Vec<Vec<u64>> = (0..n).map(|_| Vec::with_capacity(BUCKET)).collect();

    let mut flush = |u: &Upcr, owner: usize, bucket: &mut Vec<u64>| {
        if bucket.is_empty() {
            return;
        }
        sent_remote += bucket.len() as u64;
        let rans = std::mem::take(bucket);
        let base = table.bases[owner];
        let local_mask = table.local_size as u64 - 1;
        let mask = table.mask;
        u.rpc_ff(Rank(owner as u32), move || {
            // Runs on the owner thread: serial with every other writer of
            // this block, hence exact.
            let applied = rans.len() as u64;
            for ran in rans {
                let idx = ((ran & mask) & local_mask) as usize;
                let p = base.add(idx);
                api::local_store(p, api::local_load::<u64>(p) ^ ran);
            }
            APPLIED.with(|c| c.fetch_add(applied, Ordering::Relaxed));
        });
    };

    for ran in Stream::at(start_pos).take(count) {
        let owner = table.owner_of(ran);
        if owner == me {
            // Same-process manual optimization (serial with incoming
            // buckets, which also run on this thread).
            let p = table.gptr_of(ran);
            let r = u.local(p);
            r.set(r.get() ^ ran);
        } else {
            buckets[owner].push(ran);
            if buckets[owner].len() >= BUCKET {
                let mut b = std::mem::take(&mut buckets[owner]);
                flush(u, owner, &mut b);
                buckets[owner] = b; // reuse the (now empty) allocation
            }
        }
        // Keep draining incoming buckets while generating.
        if (ran & 0xFF) == 0 {
            u.progress();
        }
    }
    for (owner, bucket) in buckets.iter_mut().enumerate() {
        let mut b = std::mem::take(bucket);
        flush(u, owner, &mut b);
    }

    // Termination: globally, updates applied must catch up with updates
    // shipped. The allreduce keeps ranks in lockstep; progress in between
    // applies whatever is queued.
    loop {
        u.progress();
        let sent = u.allreduce_sum_u64(sent_remote);
        let applied = u.allreduce_sum_u64(APPLIED.with(|c| c.load(Ordering::Relaxed)));
        if sent == applied {
            break;
        }
        std::thread::yield_now();
    }
    u.barrier();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GupsConfig;
    use upcr::{launch, LibVersion, RuntimeConfig};

    fn run(ranks: usize, cfg: &GupsConfig) -> usize {
        let cfg = *cfg;
        let out = launch(
            RuntimeConfig::smp(ranks).with_segment_size(1 << 22),
            move |u| {
                let table = GupsTable::setup(u, &cfg);
                let per_rank = cfg.total_updates() / u.rank_n();
                let start = (u.rank_me() * per_rank) as i64;
                u.barrier();
                run_bucketed(u, &table, start, per_rank);
                // Verify exactly like the harness does.
                let errors = super::super::harness::verify_public(u, &table, &cfg);
                table.free(u);
                errors
            },
        );
        out[0]
    }

    #[test]
    fn bucketed_is_exact() {
        let cfg = GupsConfig {
            log2_table: 14,
            updates_per_word: 4,
            batch: 64,
            verify: true,
        };
        for ranks in [1usize, 2, 4] {
            assert_eq!(
                run(ranks, &cfg),
                0,
                "bucketed GUPS must lose no updates ({ranks} ranks)"
            );
        }
    }

    #[test]
    fn bucketed_exact_under_all_versions() {
        let cfg = GupsConfig {
            log2_table: 12,
            updates_per_word: 4,
            batch: 64,
            verify: true,
        };
        for version in LibVersion::ALL {
            let cfg2 = cfg;
            let out = launch(
                RuntimeConfig::smp(2)
                    .with_version(version)
                    .with_segment_size(1 << 22),
                move |u| {
                    let table = GupsTable::setup(u, &cfg2);
                    let per_rank = cfg2.total_updates() / u.rank_n();
                    run_bucketed(u, &table, (u.rank_me() * per_rank) as i64, per_rank);
                    let errors = super::super::harness::verify_public(u, &table, &cfg2);
                    table.free(u);
                    errors
                },
            );
            assert_eq!(out[0], 0, "{version}");
        }
    }
}
