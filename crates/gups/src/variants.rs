//! The six GUPS update-loop implementations (§IV-B).
//!
//! Every variant performs the same update stream — `table[ran & mask] ^=
//! ran` over this rank's slice of the HPCC random stream — differing only
//! in how the communication is expressed and synchronized. That difference
//! is exactly what the paper measures.

use std::sync::atomic::Ordering;

use upcr::{conjoin, make_future, operation_cx, Promise, Upcr};

use crate::config::{GupsConfig, Variant};
use crate::rng::Stream;
use crate::table::GupsTable;

/// Run this rank's share of updates using `variant`. `start_pos` is the
/// rank's starting position in the global stream; `count` its update count.
pub fn run_updates(
    u: &Upcr,
    table: &GupsTable,
    cfg: &GupsConfig,
    variant: Variant,
    start_pos: i64,
    count: usize,
) {
    match variant {
        Variant::Raw => raw(u, table, start_pos, count),
        Variant::ManualLocalization => manual(u, table, start_pos, count),
        Variant::RmaPromise => rma_promise(u, table, cfg, start_pos, count),
        Variant::RmaFuture => rma_future(u, table, cfg, start_pos, count),
        Variant::AmoPromise => amo_promise(u, table, cfg, start_pos, count),
        Variant::AmoFuture => amo_future(u, table, cfg, start_pos, count),
    }
}

/// Raw variant: all locality checks, downcasts, and UPC++ machinery are
/// hoisted out of the loop; updates are plain load/xor/store pairs (lossy
/// under races, as the benchmark permits). Only valid when every rank is
/// directly addressable — the paper's single-node case.
fn raw(u: &Upcr, table: &GupsTable, start_pos: i64, count: usize) {
    assert!(
        (0..u.rank_n()).all(|r| u.is_local(table.bases[r])),
        "raw variant requires a single (simulated) node"
    );
    let slices: Vec<&[std::sync::atomic::AtomicU64]> = (0..u.rank_n())
        .map(|r| u.local_slice_u64(table.bases[r], table.local_size))
        .collect();
    for ran in Stream::at(start_pos).take(count) {
        let w = &slices[table.owner_of(ran)][table.local_index_of(ran)];
        // Plain (non-RMW) update: load and store compile to bare movs.
        w.store(w.load(Ordering::Relaxed) ^ ran, Ordering::Relaxed);
    }
}

/// Manual localization: the paper's
/// `if (dest.is_local()) *dest.local() ^= val; else <RMA>` idiom, with the
/// locality check and downcast paid on every update.
fn manual(u: &Upcr, table: &GupsTable, start_pos: i64, count: usize) {
    for ran in Stream::at(start_pos).take(count) {
        let dest = table.gptr_of(ran);
        if u.is_local(dest) {
            let r = u.local(dest);
            r.set(r.get() ^ ran);
        } else {
            // Off-node fallback (never taken in single-node runs).
            let old = u.rget(dest).wait();
            u.rput(old ^ ran, dest).wait();
        }
    }
}

/// Pure RMA with a promise tracking each batch (§IV-B "pure RMA
/// w/promises"): per batch, launch one-sided gets of the current values
/// into a shared scratch block, synchronize on one promise, then launch
/// puts of the xored values and synchronize on another. Ignores locality —
/// every access is an RMA call, the case eager notification accelerates.
fn rma_promise(u: &Upcr, table: &GupsTable, cfg: &GupsConfig, start_pos: i64, count: usize) {
    let scratch = u.new_array::<u64>(cfg.batch);
    let words = u.local_slice_u64(scratch, cfg.batch);
    let mut rans: Vec<u64> = Vec::with_capacity(cfg.batch);
    let mut stream = Stream::at(start_pos);
    let mut remaining = count;
    while remaining > 0 {
        let b = remaining.min(cfg.batch);
        rans.clear();
        rans.extend((&mut stream).take(b));
        let gets = Promise::new();
        for (j, &ran) in rans.iter().enumerate() {
            u.copy_with(
                table.gptr_of(ran),
                scratch.add(j),
                1,
                operation_cx::as_promise(&gets),
            );
        }
        gets.finalize().wait();
        let puts = Promise::new();
        for (j, &ran) in rans.iter().enumerate() {
            let val = words[j].load(Ordering::Relaxed) ^ ran;
            u.rput_with(val, table.gptr_of(ran), operation_cx::as_promise(&puts));
        }
        puts.finalize().wait();
        remaining -= b;
    }
    u.delete_(scratch);
}

/// Pure RMA with future conjoining (§IV-B "pure RMA w/futures"): identical
/// data movement, but each batch's completion is the `when_all`-conjoined
/// future of its operations — the idiom whose dependency graph the paper's
/// `when_all` optimization collapses.
fn rma_future(u: &Upcr, table: &GupsTable, cfg: &GupsConfig, start_pos: i64, count: usize) {
    let scratch = u.new_array::<u64>(cfg.batch);
    let words = u.local_slice_u64(scratch, cfg.batch);
    let mut rans: Vec<u64> = Vec::with_capacity(cfg.batch);
    let mut stream = Stream::at(start_pos);
    let mut remaining = count;
    while remaining > 0 {
        let b = remaining.min(cfg.batch);
        rans.clear();
        rans.extend((&mut stream).take(b));
        let mut f = make_future();
        for (j, &ran) in rans.iter().enumerate() {
            f = conjoin(f, u.copy(table.gptr_of(ran), scratch.add(j), 1));
        }
        f.wait();
        let mut f = make_future();
        for (j, &ran) in rans.iter().enumerate() {
            let val = words[j].load(Ordering::Relaxed) ^ ran;
            f = conjoin(f, u.rput(val, table.gptr_of(ran)));
        }
        f.wait();
        remaining -= b;
    }
    u.delete_(scratch);
}

/// Remote atomics with a promise per batch (§IV-B "atomics w/promises"):
/// the update is a single non-fetching atomic XOR, so no scratch space and
/// no read-modify-write race — results are exact.
fn amo_promise(u: &Upcr, table: &GupsTable, cfg: &GupsConfig, start_pos: i64, count: usize) {
    let ad = u.atomic_domain::<u64>();
    let mut stream = Stream::at(start_pos);
    let mut remaining = count;
    while remaining > 0 {
        let b = remaining.min(cfg.batch);
        let p = Promise::new();
        for ran in (&mut stream).take(b) {
            ad.bit_xor_with(table.gptr_of(ran), ran, operation_cx::as_promise(&p));
        }
        p.finalize().wait();
        remaining -= b;
    }
}

/// Remote atomics with future conjoining (§IV-B "atomics w/futures").
fn amo_future(u: &Upcr, table: &GupsTable, cfg: &GupsConfig, start_pos: i64, count: usize) {
    let ad = u.atomic_domain::<u64>();
    let mut stream = Stream::at(start_pos);
    let mut remaining = count;
    while remaining > 0 {
        let b = remaining.min(cfg.batch);
        let mut f = make_future();
        for ran in (&mut stream).take(b) {
            f = conjoin(f, ad.bit_xor(table.gptr_of(ran), ran));
        }
        f.wait();
        remaining -= b;
    }
}
