//! The HPC Challenge RandomAccess pseudo-random stream.
//!
//! The benchmark-specified LCG over GF(2): `ran = (ran << 1) ^ (POLY if the
//! top bit was set)`, with `starts(n)` computing the stream value at
//! position `n` in O(log n) via GF(2) matrix squaring — each rank jumps
//! directly to its slice of the global update stream.

/// The HPCC RandomAccess polynomial.
pub const POLY: u64 = 0x7;
/// Period of the generator (from the HPCC specification).
pub const PERIOD: i64 = 1_317_624_576_693_539_401;

/// One step of the generator.
#[inline]
pub fn next(ran: u64) -> u64 {
    (ran << 1) ^ if (ran as i64) < 0 { POLY } else { 0 }
}

/// The value of the stream at position `n` (with `starts(0) == 1`), in
/// O(log n): the HPCC `HPCC_starts` routine.
pub fn starts(n: i64) -> u64 {
    let mut n = n;
    while n < 0 {
        n += PERIOD;
    }
    while n > PERIOD {
        n -= PERIOD;
    }
    if n == 0 {
        return 0x1;
    }
    // m2[i] = x^(2^i) steps of the generator, as a GF(2) linear map applied
    // to the state bits.
    let mut m2 = [0u64; 64];
    let mut temp: u64 = 0x1;
    for slot in m2.iter_mut() {
        *slot = temp;
        temp = next(next(temp));
    }
    let mut i: i32 = 62;
    while i >= 0 {
        if (n >> i) & 1 == 1 {
            break;
        }
        i -= 1;
    }
    let mut ran: u64 = 0x2;
    while i > 0 {
        let mut temp = 0u64;
        for (j, &m) in m2.iter().enumerate() {
            if (ran >> j) & 1 == 1 {
                temp ^= m;
            }
        }
        ran = temp;
        i -= 1;
        if (n >> i) & 1 == 1 {
            ran = next(ran);
        }
    }
    ran
}

/// Iterator over the stream starting at position `start`.
pub struct Stream {
    ran: u64,
}

impl Stream {
    /// Stream positioned at global index `start`.
    pub fn at(start: i64) -> Stream {
        Stream { ran: starts(start) }
    }
}

impl Iterator for Stream {
    type Item = u64;
    fn next(&mut self) -> Option<u64> {
        self.ran = next(self.ran);
        Some(self.ran)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_matches_stepping() {
        // starts(k) must equal k applications of `next` to starts(0) == 1.
        let mut ran = 1u64;
        for k in 1..=1000i64 {
            ran = next(ran);
            assert_eq!(starts(k), ran, "mismatch at position {k}");
        }
    }

    #[test]
    fn starts_jumps_far() {
        // Jump to a far position and check consistency between two jumps.
        let a = starts(1 << 40);
        let mut b = starts((1 << 40) - 5);
        for _ in 0..5 {
            b = next(b);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn starts_zero_is_one() {
        assert_eq!(starts(0), 1);
    }

    #[test]
    fn negative_positions_wrap() {
        assert_eq!(starts(-PERIOD), starts(0));
    }

    #[test]
    fn stream_iterator_matches_starts() {
        let v: Vec<u64> = Stream::at(100).take(3).collect();
        assert_eq!(v, vec![starts(101), starts(102), starts(103)]);
    }

    #[test]
    fn stream_values_spread_over_table() {
        // The low bits index the table; make sure they spread reasonably.
        let mask = (1 << 10) - 1;
        let mut hits = vec![0u32; 1 << 10];
        for v in Stream::at(0).take(100_000) {
            hits[(v & mask) as usize] += 1;
        }
        let nonzero = hits.iter().filter(|&&h| h > 0).count();
        assert!(nonzero > 1000, "only {nonzero} of 1024 buckets hit");
    }
}
