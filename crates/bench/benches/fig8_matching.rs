//! Figure 8: graph-matching solve time, five inputs × three versions.
//!
//! Graphs are generated once per input (outside the measurement); each
//! Criterion iteration is one distributed solve, timing only the solve
//! step, as the paper does.

use std::time::Duration;

use bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::VERSIONS;
use graphgen::Preset;

const RANKS: usize = 8;
const SCALE: f64 = 0.1;

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_matching");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    for preset in Preset::ALL {
        let graph = preset.generate(SCALE);
        for &version in &VERSIONS {
            g.bench_with_input(
                BenchmarkId::new(preset.name(), version),
                &version,
                |b, &version| {
                    b.iter_custom(|iters| {
                        let mut total = 0.0;
                        for _ in 0..iters {
                            total += matching::benchmark(RANKS, version, &graph).seconds;
                        }
                        Duration::from_secs_f64(total)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
