//! Ablations for the design choices DESIGN.md calls out: isolate eager
//! notification, the `when_all` ready-input fast path / shared ready cell,
//! the promise-registration elision, and the legacy extra allocation.
//!
//! * `conjoin_loop` per version — the full future-conjoining idiom;
//!   2021.3.6-eager exercises all the optimizations together.
//! * `conjoin_forced_defer` — same loop under the eager build but with
//!   `as_defer_future`, isolating the notification mode from the other
//!   2021.3.6 changes (the `when_all` code is identical; only deferral
//!   remains).
//! * `promise_loop` per version — isolates promise-registration elision
//!   (no futures conjoined at all).

use std::time::Duration;

use bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::VERSIONS;
use upcr::{conjoin, launch, make_future, operation_cx, LibVersion, Promise, RuntimeConfig};

fn time_loop<F>(version: LibVersion, iters: u64, f: F) -> Duration
where
    F: Fn(&upcr::Upcr, u64) + Sync,
{
    let rt = RuntimeConfig::smp(2)
        .with_version(version)
        .with_segment_size(1 << 16);
    let out = launch(rt, move |u| {
        u.barrier();
        let mut elapsed = Duration::ZERO;
        if u.rank_me() == 0 {
            let t0 = std::time::Instant::now();
            f(u, iters);
            elapsed = t0.elapsed();
        }
        u.barrier();
        elapsed
    });
    out[0]
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));

    for &version in &VERSIONS {
        g.bench_with_input(
            BenchmarkId::new("conjoin_loop", version),
            &version,
            |b, &version| {
                b.iter_custom(|iters| {
                    time_loop(version, iters, |u, n| {
                        let p = u.new_::<u64>(0);
                        let mut f = make_future();
                        for i in 0..n {
                            f = conjoin(f, u.rput(i, p));
                        }
                        f.wait();
                        u.delete_(p);
                    })
                })
            },
        );
    }

    g.bench_function("conjoin_forced_defer/2021.3.6 eager", |b| {
        b.iter_custom(|iters| {
            time_loop(LibVersion::V2021_3_6Eager, iters, |u, n| {
                let p = u.new_::<u64>(0);
                let mut f = make_future();
                for i in 0..n {
                    f = conjoin(f, u.rput_with(i, p, operation_cx::as_defer_future()));
                }
                f.wait();
                u.delete_(p);
            })
        })
    });

    for &version in &VERSIONS {
        g.bench_with_input(
            BenchmarkId::new("promise_loop", version),
            &version,
            |b, &version| {
                b.iter_custom(|iters| {
                    time_loop(version, iters, |u, n| {
                        let p = u.new_::<u64>(0);
                        let pr = Promise::new();
                        for i in 0..n {
                            u.rput_with(i, p, operation_cx::as_promise(&pr));
                        }
                        pr.finalize().wait();
                        u.delete_(p);
                    })
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
