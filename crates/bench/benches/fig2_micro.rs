//! Figures 2–4: on-node single-operation latency, per library version.
//!
//! Reproduces the paper's microbenchmark loop (`op(gp).wait()` repeated,
//! wall time divided by count) for every operation × version cell. Runtime
//! launch/teardown is excluded from the measurement: `micro::run` times
//! only the operation loop on the initiating rank.

use std::time::Duration;

use bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::micro::{self, MicroOp};
use bench::VERSIONS;

fn bench_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_micro");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for op in MicroOp::ALL {
        for &version in &VERSIONS {
            if !op.available_in(version) {
                continue;
            }
            g.bench_with_input(
                BenchmarkId::new(op.name(), version),
                &(op, version),
                |b, &(op, version)| b.iter_custom(|iters| micro::run(version, op, iters)),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_micro);
criterion_main!(benches);
