//! Observability acceptance bench: disabled-mode tracing overhead on the
//! local eager `rput` hot path.
//!
//! Three series over the identical loop:
//!
//! - `baseline` — `micro::run(Put)`, which never touches the trace flag
//!   (the pre-tracing code path; off is the default);
//! - `tracing-off` — the flag explicitly cleared, exercising the one
//!   predictably-taken branch per instrumentation site;
//! - `tracing-on` — full span recording into the ring buffer plus the
//!   latency histograms, for scale;
//! - `metrics-off` / `metrics-on` — the metric-sampling flag instead of
//!   the trace flag: off measures the one disabled-mode branch per
//!   progress quantum, on adds the per-interval snapshot.
//!
//! Acceptance: `tracing-off` and `metrics-off` within noise (< 3%) of
//! `baseline`.
//!
//! With `BENCH_OUT_DIR` set, the summary is also written as
//! `BENCH_trace_overhead.json` (`bench.v1`, wide wall-clock tolerance
//! bands — informational, never a committed gating baseline).

use std::time::Duration;

use bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::micro::{self, MicroOp};
use bench::trace_overhead;
use upcr::LibVersion;

fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    g.bench_with_input(BenchmarkId::new("rput", "baseline"), &(), |b, _| {
        b.iter_custom(|iters| micro::run(LibVersion::V2021_3_6Eager, MicroOp::Put, iters))
    });
    g.bench_with_input(BenchmarkId::new("rput", "tracing-off"), &(), |b, _| {
        b.iter_custom(|iters| trace_overhead::rput_loop(false, iters))
    });
    g.bench_with_input(BenchmarkId::new("rput", "tracing-on"), &(), |b, _| {
        b.iter_custom(|iters| trace_overhead::rput_loop(true, iters))
    });
    g.bench_with_input(BenchmarkId::new("rput", "metrics-off"), &(), |b, _| {
        b.iter_custom(|iters| trace_overhead::metrics_rput_loop(false, iters))
    });
    g.bench_with_input(BenchmarkId::new("rput", "metrics-on"), &(), |b, _| {
        b.iter_custom(|iters| trace_overhead::metrics_rput_loop(true, iters))
    });
    g.finish();

    // One-shot summary of the acceptance ratios (the per-series numbers
    // above carry the noise bars).
    let iters = 400_000;
    let base = micro::ns_per_op(LibVersion::V2021_3_6Eager, MicroOp::Put, iters);
    let off = trace_overhead::ns_per_op(false, iters);
    let on = trace_overhead::ns_per_op(true, iters);
    let m_off = trace_overhead::metrics_ns_per_op(false, iters);
    let m_on = trace_overhead::metrics_ns_per_op(true, iters);
    println!(
        "\ntrace_overhead summary: baseline {base:.1} ns/op, tracing-off {off:.1} ns/op \
         ({:+.2}%), tracing-on {on:.1} ns/op ({:+.2}%)",
        100.0 * (off / base - 1.0),
        100.0 * (on / base - 1.0),
    );
    println!(
        "metrics summary: metrics-off {m_off:.1} ns/op ({:+.2}%), metrics-on {m_on:.1} ns/op \
         ({:+.2}%)",
        100.0 * (m_off / base - 1.0),
        100.0 * (m_on / base - 1.0),
    );
    if let Ok(dir) = std::env::var("BENCH_OUT_DIR") {
        let path = format!("{dir}/BENCH_trace_overhead.json");
        let doc = bench::emit::trace_overhead_doc(iters, base, off, on, m_off, m_on);
        match std::fs::write(&path, doc) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => eprintln!("error: writing {path}: {e}"),
        }
    }
}

criterion_group!(benches, bench_trace_overhead);
criterion_main!(benches);
