//! §IV-A off-node validation: the dynamic locality branch added for eager
//! completion must not slow down operations that cross the network.
//!
//! Two simulated nodes with EDR-InfiniBand-like latency; `rput().wait()`
//! round trips. The paper reports no statistically significant difference
//! between defer and eager for this case — the expectation here too.

use std::time::Duration;

use bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::VERSIONS;
use upcr::{launch, NetConfig, RuntimeConfig};

fn bench_offnode(c: &mut Criterion) {
    let mut g = c.benchmark_group("offnode_rput");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for &version in &VERSIONS {
        g.bench_with_input(
            BenchmarkId::from_parameter(version),
            &version,
            |b, &version| {
                b.iter_custom(|iters| {
                    let rt = RuntimeConfig::udp(2, 1)
                        .with_version(version)
                        .with_segment_size(1 << 16)
                        .with_net(NetConfig {
                            latency_ns: 1_500,
                            jitter_ns: 0,
                            ..NetConfig::default()
                        });
                    let out = launch(rt, move |u| {
                        let mine = u.new_::<u64>(0);
                        let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
                        let target = targets[1 - u.rank_me()];
                        u.barrier();
                        let mut elapsed = Duration::ZERO;
                        if u.rank_me() == 0 {
                            let t0 = std::time::Instant::now();
                            for i in 0..iters {
                                u.rput(i, target).wait();
                            }
                            elapsed = t0.elapsed();
                        }
                        u.barrier();
                        elapsed
                    });
                    out[0]
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_offnode);
criterion_main!(benches);
