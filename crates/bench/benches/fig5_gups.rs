//! Figures 5–7: GUPS (HPCC RandomAccess), six variants × three versions.
//!
//! Each Criterion iteration is one full timed GUPS run (table setup and
//! teardown excluded — `GupsRun.seconds` measures only the update loop, as
//! the paper does). Sizes are scaled down from the paper's (which used
//! most of a node's memory) to keep `cargo bench` runnable in CI; the
//! relative ordering of the series is what carries.

use std::time::Duration;

use bench::criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::VERSIONS;
use gups::{GupsConfig, Variant};

const RANKS: usize = 8;
// Sized so one full GUPS run takes well under a second even for the
// slowest (deferred future-conjoining) cell on a single-core CI box.

fn bench_gups(c: &mut Criterion) {
    let cfg = GupsConfig {
        log2_table: 15,
        updates_per_word: 4,
        batch: 256,
        verify: false,
    };
    let mut g = c.benchmark_group("fig5_gups");
    g.sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    for variant in Variant::ALL {
        for &version in &VERSIONS {
            g.bench_with_input(
                BenchmarkId::new(variant.name().replace([' ', '/'], "_"), version),
                &(variant, version),
                |b, &(variant, version)| {
                    b.iter_custom(|iters| {
                        let mut total = 0.0;
                        for _ in 0..iters {
                            total += gups::benchmark(RANKS, version, &cfg, variant).seconds;
                        }
                        Duration::from_secs_f64(total)
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench_gups);
criterion_main!(benches);
