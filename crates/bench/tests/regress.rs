//! The benchmark regression gate, end to end: the committed baseline must
//! match a fresh deterministic run, and the intentionally-broken fixture
//! must fail against the same run.

use bench::emit::bench_micro_doc;
use bench::regress::{compare, parse_bench};

fn repo_file(rel: &str) -> String {
    let path = format!("{}/../../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

#[test]
fn committed_baseline_matches_fresh_probe_run() {
    let base = parse_bench(&repo_file("ci/baseline/BENCH_micro.json"))
        .expect("committed baseline must parse");
    let cur = parse_bench(&bench_micro_doc(true)).expect("fresh doc must parse");
    let report = compare(&base, &cur);
    assert!(
        report.passed(),
        "committed micro baseline is stale — regenerate with \
         `figures --quick --json --out-dir ci/baseline`:\n{}",
        report.failures.join("\n")
    );
    assert_eq!(report.checked, base.metrics.len());
}

#[test]
fn broken_fixture_fails_against_fresh_probe_run() {
    let base = parse_bench(&repo_file(
        "crates/bench/tests/fixtures/broken/BENCH_micro.json",
    ))
    .expect("fixture must parse");
    let cur = parse_bench(&bench_micro_doc(true)).expect("fresh doc must parse");
    let report = compare(&base, &cur);
    assert!(
        !report.passed(),
        "the broken fixture must trip the regression gate"
    );
    assert!(report
        .failures
        .iter()
        .any(|f| f.contains("v2021_3_6_eager.put_deferred_count")));
}
