//! Regenerate every table/figure of the paper as text output.
//!
//! Usage:
//!
//! ```text
//! figures [micro] [gups] [matching] [offnode] [ablation] [latency] [all]
//!         [--quick]            # reduced iteration counts / sizes
//!         [--ranks N]          # GUPS / matching rank count (default 16)
//!         [--scale X]          # matching graph scale (default 0.25)
//!         [--json]             # emit deterministic BENCH_*.json instead
//!         [--out-dir DIR]      # where --json writes (default ".")
//! ```
//!
//! `--json` switches to benchmark-pipeline mode: instead of regenerating
//! the wall-clock figures it writes `BENCH_micro.json` (virtual-clock
//! probe per library version) and `BENCH_gups.json` (differential chaos
//! harness outcomes) — the `bench.v1` documents the `regress` binary
//! gates against `ci/baseline/`. Both are byte-deterministic for a fixed
//! mode, so CI commits them as zero-tolerance baselines.
//!
//! Output sections correspond to: Figures 2–4 (microbenchmarks), Figures
//! 5–7 (GUPS), Figure 8 (graph matching), the §IV-A off-node validation,
//! the DESIGN.md ablations, and the completion-path latency histograms
//! from the operation-lifecycle trace subsystem.

use bench::micro::MicroOp;
use bench::{ablation, fmt_row, micro, offnode, VERSIONS};
use graphgen::{LocalityStats, Preset};
use gups::{GupsConfig, Variant};
use upcr::LibVersion;

struct Args {
    sections: Vec<String>,
    quick: bool,
    ranks: usize,
    scale: f64,
    samples: usize,
    json: bool,
    out_dir: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sections: Vec::new(),
        quick: false,
        ranks: 16,
        scale: 0.25,
        samples: 5,
        json: false,
        out_dir: ".".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--json" => args.json = true,
            "--out-dir" => args.out_dir = it.next().expect("--out-dir needs a value"),
            "--ranks" => {
                args.ranks = it
                    .next()
                    .expect("--ranks needs a value")
                    .parse()
                    .expect("--ranks")
            }
            "--scale" => {
                args.scale = it
                    .next()
                    .expect("--scale needs a value")
                    .parse()
                    .expect("--scale")
            }
            "--samples" => {
                args.samples = it
                    .next()
                    .expect("--samples needs a value")
                    .parse()
                    .expect("--samples")
            }
            s => args.sections.push(s.to_string()),
        }
    }
    if args.sections.is_empty() {
        args.sections.push("all".to_string());
    }
    args
}

fn want(args: &Args, s: &str) -> bool {
    args.sections.iter().any(|x| x == s || x == "all")
}

/// The paper's methodology: several samples, average of the best half
/// ("running twenty samples, taking the average of the top ten").
fn best_half_mean(samples: usize, mut f: impl FnMut() -> f64) -> f64 {
    let mut v: Vec<f64> = (0..samples.max(1)).map(|_| f()).collect();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let half = &v[..v.len().div_ceil(2)];
    half.iter().sum::<f64>() / half.len() as f64
}

fn main() {
    let args = parse_args();
    if args.json {
        emit_bench_json(&args);
        return;
    }
    println!("eager-notify reproduction — paper figure regeneration");
    println!("(single x86-64 host; compare series shapes, not absolute values)\n");
    if want(&args, "micro") {
        fig_2_3_4_micro(&args);
    }
    if want(&args, "gups") {
        fig_5_6_7_gups(&args);
    }
    if want(&args, "matching") {
        fig_8_matching(&args);
    }
    if want(&args, "offnode") {
        offnode_validation(&args);
    }
    if want(&args, "ablation") {
        ablations(&args);
    }
    if want(&args, "latency") {
        latency_histograms(&args);
    }
    if want(&args, "causal") {
        causal_profiles(&args);
    }
    if want(&args, "matching-mp") || args.sections.iter().any(|x| x == "all") {
        matching_mp_comparison(&args);
    }
}

/// Benchmark-pipeline mode: write the deterministic `bench.v1` documents
/// the regression gate compares against `ci/baseline/`.
fn emit_bench_json(args: &Args) {
    std::fs::create_dir_all(&args.out_dir)
        .unwrap_or_else(|e| panic!("creating {}: {e}", args.out_dir));
    type SuiteEmit = fn(bool) -> String;
    let suites: [(&str, SuiteEmit); 5] = [
        ("micro", bench::emit::bench_micro_doc),
        ("gups", bench::emit::bench_gups_doc),
        ("matching", bench::emit::bench_matching_doc),
        ("signals", bench::emit::bench_signals_doc),
        ("causal", bench::emit::bench_causal_doc),
    ];
    for (suite, emit) in suites {
        if !want(args, suite) {
            continue;
        }
        let path = format!("{}/BENCH_{suite}.json", args.out_dir);
        let doc = emit(args.quick);
        std::fs::write(&path, &doc).unwrap_or_else(|e| panic!("writing {path}: {e}"));
        println!("wrote {path} ({} bytes)", doc.len());
    }
}

/// Extension: the RMA solver vs. the message-passing (MPI-style) solver —
/// the paper reports the application's UPC++ RMA version performs
/// comparably to the best MPI version.
fn matching_mp_comparison(args: &Args) {
    let ranks = args.ranks.min(8);
    let scale = if args.quick { 0.05 } else { 0.1 };
    println!(
        "== Extension: RMA solver vs message-passing solver (eager build, {ranks} ranks) ==\n"
    );
    for preset in Preset::ALL {
        let g = preset.generate(scale);
        let rma = matching::benchmark(ranks, LibVersion::V2021_3_6Eager, &g);
        let rt = upcr::RuntimeConfig::mpi(ranks, ranks).with_segment_size(1 << 22);
        let mp = upcr::launch(rt, |u| {
            u.barrier();
            let t0 = std::time::Instant::now();
            let (m, stats) = matching::solve_mp(u, &g);
            let secs = f64::from_bits(u.allreduce_max_u64(t0.elapsed().as_secs_f64().to_bits()));
            (secs, m.weight, stats.messages)
        });
        let (mp_secs, mp_weight, msgs) = mp[0];
        assert!((mp_weight - rma.weight).abs() < 1e-9, "solvers disagree");
        println!(
            "  {:<10} RMA {:>9.2}ms ({} RMA reads)   MP {:>9.2}ms ({} msgs)   same matching: yes",
            preset.name(),
            rma.seconds * 1e3,
            rma.stats.rma_reads,
            mp_secs * 1e3,
            msgs
        );
    }
    println!();
}

/// Completion-path latency distribution, from the lifecycle tracer: a
/// traced small GUPS run (atomics w/futures) per library version, p50/p99
/// per (op kind × completion path) merged across ranks. The eager build
/// should show its completions concentrated on the eager path at ~0
/// latency; the defer builds push everything through the progress engine.
fn latency_histograms(args: &Args) {
    let ranks = args.ranks.clamp(2, 8);
    let cfg = GupsConfig {
        log2_table: if args.quick { 12 } else { 16 },
        updates_per_word: 1,
        batch: 64,
        verify: false,
    };
    println!(
        "== Completion-path latency (traced GUPS, atomics w/futures, {ranks} ranks over 2 nodes) ==\n"
    );
    for &version in &VERSIONS {
        let rt = upcr::RuntimeConfig::udp(ranks, ranks / 2)
            .with_version(version)
            .with_segment_size((cfg.table_size() / ranks * 8 + (1 << 16)).next_power_of_two());
        let hists = upcr::launch(rt, |u| {
            u.trace_enabled(true);
            gups::run(u, &cfg, Variant::AmoFuture);
            u.barrier();
            u.latency_report()
        })
        .into_iter()
        .fold(upcr::Histograms::new(), |mut acc, h| {
            acc.merge(&h);
            acc
        });
        println!("  {version}:");
        for row in hists.rows() {
            println!(
                "    {:<9} {:<9} count {:>8}  p50 <= {:>10} ns  p99 <= {:>10} ns  max {:>10} ns",
                row.kind.name(),
                row.path.name(),
                row.count,
                row.p50_ns,
                row.p99_ns,
                row.max_ns
            );
        }
    }
    println!();
}

/// Cross-rank causal timelines from the seeded chaos probe: the paper's
/// eager-vs-defer claim restated as happens-before chain lengths, plus
/// the distributed critical-path header per library version.
fn causal_profiles(args: &Args) {
    let iters: u64 = if args.quick { 24 } else { 96 };
    println!("== Causal timelines (chaos probe, virtual clock, seed 1) ==\n");
    for &version in &VERSIONS {
        let r = upcr::metrics::probe::run(&upcr::metrics::probe::ProbeConfig {
            version,
            iters,
            seed: 1,
            chaos: true,
            trace: true,
            metrics: false,
            ..Default::default()
        });
        let bundle = r.bundle.as_ref().expect("probe ran with tracing on");
        let asm = upcr::trace::assemble(bundle);
        println!("  {version}:");
        println!(
            "    nodes {:>5}  hb_edges {:>5}  violations {}  chain_depth {:>4}  span {:>8} ns",
            asm.nodes.len(),
            asm.hb_edges(),
            asm.violations,
            asm.chain_depth,
            asm.critical_span_ns()
        );
        for path in upcr::trace::CompletionPath::ALL {
            match asm.mean_chain_len_milli(path) {
                Some(m) => println!(
                    "    mean chain ({:<8}) {:>3}.{:03} hops",
                    path.name(),
                    m / 1000,
                    m % 1000
                ),
                None => println!("    mean chain ({:<8})    (no ops)", path.name()),
            }
        }
    }
    println!();
}

fn fig_2_3_4_micro(args: &Args) {
    let iters: u64 = if args.quick { 200_000 } else { 2_000_000 };
    println!("== Figures 2-4: microbenchmarks (ns per operation, on-node target) ==");
    println!("   paper loop: `op(gp).wait()` x {iters} per cell\n");
    println!(
        "{}",
        fmt_row(
            "operation",
            &VERSIONS.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        )
    );
    for op in MicroOp::ALL {
        let cells: Vec<String> = VERSIONS
            .iter()
            .map(|&v| {
                if op.available_in(v) {
                    format!("{:.1} ns", micro::ns_per_op(v, op, iters))
                } else {
                    "n/a".to_string()
                }
            })
            .collect();
        println!("{}", fmt_row(op.name(), &cells));
    }
    // Headline ratios the paper reports.
    let put_defer = micro::ns_per_op(LibVersion::V2021_3_6Defer, MicroOp::Put, iters);
    let put_eager = micro::ns_per_op(LibVersion::V2021_3_6Eager, MicroOp::Put, iters);
    let fa_v = micro::ns_per_op(LibVersion::V2021_3_6Eager, MicroOp::AmoFetchAdd, iters);
    let fa_m = micro::ns_per_op(LibVersion::V2021_3_6Eager, MicroOp::AmoFetchAddInto, iters);
    println!(
        "\n  eager vs defer put speedup: {:.0}%  (paper: 92-95%)",
        100.0 * (put_defer / put_eager - 1.0)
    );
    println!(
        "  non-value vs value fetch-add (eager): {:.0}%  (paper: 66-90%)\n",
        100.0 * (fa_v / fa_m - 1.0)
    );
}

fn fig_5_6_7_gups(args: &Args) {
    let ranks = args.ranks;
    let samples = if args.quick { 1 } else { args.samples };
    let cfg = if args.quick {
        GupsConfig {
            log2_table: 18,
            updates_per_word: 4,
            batch: 256,
            verify: false,
        }
    } else {
        GupsConfig {
            log2_table: 22,
            updates_per_word: 4,
            batch: 256,
            verify: false,
        }
    };
    println!(
        "== Figures 5-7: GUPS / HPCC RandomAccess ({} ranks, table 2^{} words, MUPS higher=better) ==\n",
        ranks, cfg.log2_table
    );
    println!(
        "{}",
        fmt_row(
            "variant",
            &VERSIONS.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        )
    );
    let mut table: Vec<(Variant, Vec<f64>)> = Vec::new();
    for variant in Variant::ALL {
        let mups: Vec<f64> = VERSIONS
            .iter()
            .map(|&v| {
                let secs =
                    best_half_mean(samples, || gups::benchmark(ranks, v, &cfg, variant).seconds);
                cfg.total_updates() as f64 / secs / 1e6
            })
            .collect();
        let cells: Vec<String> = mups.iter().map(|m| format!("{m:.1}")).collect();
        println!("{}", fmt_row(variant.name(), &cells));
        table.push((variant, mups));
    }
    let get = |v: Variant| table.iter().find(|(x, _)| *x == v).unwrap().1.clone();
    let rp = get(Variant::RmaPromise);
    let rf = get(Variant::RmaFuture);
    let af = get(Variant::AmoFuture);
    let ap = get(Variant::AmoPromise);
    println!(
        "\n  RMA w/promises eager/defer: {:.2}x  (paper: 1.09-1.25x)",
        rp[2] / rp[1]
    );
    println!(
        "  RMA w/futures  eager/defer: {:.2}x  (paper: 2.4-13.5x)",
        rf[2] / rf[1]
    );
    println!(
        "  AMO w/futures  eager/defer: {:.2}x  (paper: 1.5-7.1x)",
        af[2] / af[1]
    );
    println!(
        "  AMO w/promises eager/defer: {:.2}x  (paper: 1.01-1.04x)",
        ap[2] / ap[1]
    );
    let manual = get(Variant::ManualLocalization);
    println!(
        "  manual-localization / RMA-promise-eager: {:.2}x  (paper: 1.25-1.36x)\n",
        manual[2] / rp[2]
    );
}

fn fig_8_matching(args: &Args) {
    let ranks = args.ranks;
    let scale = if args.quick {
        args.scale.min(0.1)
    } else {
        args.scale
    };
    let samples = if args.quick { 1 } else { args.samples };
    println!(
        "== Figure 8: graph matching solve time ({} ranks, scale {scale}, seconds lower=better) ==\n",
        ranks
    );
    println!(
        "{}",
        fmt_row(
            "input (locality same-rank%)",
            &VERSIONS.iter().map(|v| v.to_string()).collect::<Vec<_>>()
        )
    );
    for preset in Preset::ALL {
        let g = preset.generate(scale);
        let loc = LocalityStats::measure(&g, ranks, ranks);
        let secs: Vec<f64> = VERSIONS
            .iter()
            .map(|&v| best_half_mean(samples, || matching::benchmark(ranks, v, &g).seconds))
            .collect();
        let cells: Vec<String> = secs.iter().map(|s| format!("{s:.4}s")).collect();
        let label = format!("{} ({:.0}%)", preset.name(), 100.0 * loc.same_rank);
        println!(
            "{}  eager speedup {:+.1}%",
            fmt_row(&label, &cells),
            100.0 * (secs[1] / secs[2] - 1.0)
        );
    }
    println!("\n  (paper: channel ~0%, venturi 2%, random 5%, delaunay 6%, youtube 11%)\n");
}

fn offnode_validation(args: &Args) {
    let iters: u64 = if args.quick { 20_000 } else { 100_000 };
    println!("== §IV-A validation: off-node RMA latency (2 simulated nodes, EDR-like 1.5us) ==\n");
    let samples = if args.quick { 1 } else { args.samples };
    for latency in [1_500u64, 5_000] {
        let defer = best_half_mean(samples, || {
            offnode::rput_ns(LibVersion::V2021_3_6Defer, iters, latency)
        });
        let eager = best_half_mean(samples, || {
            offnode::rput_ns(LibVersion::V2021_3_6Eager, iters, latency)
        });
        println!(
            "  network latency {:>5} ns: defer {defer:.0} ns/op, eager {eager:.0} ns/op, delta {:+.2}%",
            latency,
            100.0 * (eager / defer - 1.0)
        );
    }
    println!("  (paper: no statistically significant difference)\n");
}

fn ablations(args: &Args) {
    let n: u64 = if args.quick { 100_000 } else { 1_000_000 };
    println!("== Ablations: conjoining-loop cost per op (ns), isolating each optimization ==\n");
    for &v in &VERSIONS {
        println!(
            "  {v:<18} conjoin loop {:>8.1}  forced-defer {:>8.1}  promise loop {:>8.1}",
            ablation::conjoin_loop_ns(v, n),
            ablation::conjoin_loop_forced_defer_ns(v, n),
            ablation::promise_loop_ns(v, n)
        );
    }
    println!("\n  conjoin(eager) vs forced-defer isolates eager notification + ready-cell reuse;");
    println!("  2021.3.6-defer vs 2021.3.0 isolates the extra-allocation removal.\n");
}
