//! Benchmark regression gate.
//!
//! ```text
//! regress --baseline ci/baseline --current out/
//! ```
//!
//! Every `BENCH_*.json` in the baseline directory must exist in the
//! current directory and pass [`bench::regress::compare`] under the
//! baseline's tolerance bands; any regression, missing file, or missing
//! metric exits nonzero. Files only the current directory has (e.g. the
//! wall-clock `BENCH_trace_overhead.json`) are reported but not gated.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use bench::regress::{compare, parse_bench};

struct Args {
    baseline: PathBuf,
    current: PathBuf,
}

fn usage() -> ! {
    eprintln!("usage: regress --baseline DIR --current DIR");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut baseline = None;
    let mut current = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--baseline" => baseline = Some(PathBuf::from(val())),
            "--current" => current = Some(PathBuf::from(val())),
            _ => usage(),
        }
    }
    match (baseline, current) {
        (Some(baseline), Some(current)) => Args { baseline, current },
        _ => usage(),
    }
}

/// `BENCH_*.json` file names in `dir`, sorted for stable output.
fn bench_files(dir: &Path) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", dir.display()))?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            names.push(name);
        }
    }
    names.sort();
    Ok(names)
}

fn load(path: &Path) -> Result<bench::regress::BenchDoc, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    parse_bench(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = parse_args();
    let base_files = match bench_files(&args.baseline) {
        Ok(f) if !f.is_empty() => f,
        Ok(_) => {
            eprintln!(
                "error: no BENCH_*.json files in baseline dir {}",
                args.baseline.display()
            );
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut failed = false;
    for name in &base_files {
        let base = match load(&args.baseline.join(name)) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
                continue;
            }
        };
        let cur_path = args.current.join(name);
        if !cur_path.exists() {
            eprintln!("FAIL {name}: missing from current run dir");
            failed = true;
            continue;
        }
        let cur = match load(&cur_path) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
                continue;
            }
        };
        let report = compare(&base, &cur);
        if report.passed() {
            println!(
                "PASS {name}: {} metrics within the baseline bands",
                report.checked
            );
        } else {
            failed = true;
            eprintln!("FAIL {name} ({} metrics checked):", report.checked);
            for f in &report.failures {
                eprintln!("  {f}");
            }
        }
    }

    if let Ok(cur_files) = bench_files(&args.current) {
        for name in cur_files {
            if !base_files.contains(&name) {
                println!("note {name}: no committed baseline, not gated");
            }
        }
    }

    if failed {
        eprintln!("bench regression gate: FAIL");
        ExitCode::FAILURE
    } else {
        println!("bench regression gate: pass ({} suites)", base_files.len());
        ExitCode::SUCCESS
    }
}
