//! Benchmark regression checking against committed baselines.
//!
//! A benchmark result file (`BENCH_*.json`, schema [`BENCH_SCHEMA`])
//! carries a flat list of named metrics, each with a value and a
//! per-metric tolerance band. [`compare`] checks a current run against a
//! baseline: the *baseline's* bands are authoritative (the baseline is
//! what CI committed and reviewed; a current run cannot loosen its own
//! gate), a metric present in the baseline but missing from the current
//! run is a failure (silently dropping a measurement must not pass), and
//! identification fields (`suite`/`mode`/`seed`/`ranks`/`samples`) must
//! match exactly so apples are compared to apples.
//!
//! Everything the pipeline gates on is produced by deterministic drives
//! (the virtual-clock probe and the chaos differential harness), so the
//! committed bands are zero: any byte of drift is a regression. Wall-clock
//! suites (`trace_overhead`) carry wide bands and are not committed as
//! baselines — the `regress` binary only gates on files the baseline
//! directory contains.

use upcr::trace::{parse_json, Json};

/// Schema tag stamped into every benchmark result document.
pub const BENCH_SCHEMA: &str = "bench.v1";

/// One named measurement with its tolerance band.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchMetric {
    pub name: String,
    pub unit: String,
    pub value: f64,
    /// Relative tolerance (fraction of the baseline value's magnitude).
    pub tol_rel: f64,
    /// Absolute tolerance (same unit as `value`).
    pub tol_abs: f64,
}

impl BenchMetric {
    /// The acceptance band when this metric is the baseline: the wider of
    /// the relative and absolute tolerances.
    pub fn band(&self) -> f64 {
        self.tol_abs.max(self.tol_rel * self.value.abs())
    }
}

/// A parsed benchmark result document.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchDoc {
    pub suite: String,
    /// `quick` or `full` — the iteration-count regime the values were
    /// measured under.
    pub mode: String,
    pub seed: u64,
    pub ranks: u64,
    /// Per-suite sample count (probe iterations / workloads swept).
    pub samples: u64,
    pub metrics: Vec<BenchMetric>,
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|x| x.as_num())
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn text(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(|x| x.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Parse a `bench.v1` document, rejecting unknown schemas.
pub fn parse_bench(json: &str) -> Result<BenchDoc, String> {
    let doc = parse_json(json).map_err(|e| format!("invalid JSON: {e}"))?;
    let schema = text(&doc, "schema")?;
    if schema != BENCH_SCHEMA {
        return Err(format!(
            "unsupported schema {schema:?} (expected {BENCH_SCHEMA:?})"
        ));
    }
    let mut metrics = Vec::new();
    for (i, m) in doc
        .get("metrics")
        .and_then(|v| v.as_arr())
        .ok_or("missing \"metrics\" array")?
        .iter()
        .enumerate()
    {
        metrics.push(BenchMetric {
            name: text(m, "name").map_err(|e| format!("metric {i}: {e}"))?,
            unit: text(m, "unit").map_err(|e| format!("metric {i}: {e}"))?,
            value: num(m, "value").map_err(|e| format!("metric {i}: {e}"))?,
            tol_rel: num(m, "tol_rel").map_err(|e| format!("metric {i}: {e}"))?,
            tol_abs: num(m, "tol_abs").map_err(|e| format!("metric {i}: {e}"))?,
        });
    }
    Ok(BenchDoc {
        suite: text(&doc, "suite")?,
        mode: text(&doc, "mode")?,
        seed: num(&doc, "seed")? as u64,
        ranks: num(&doc, "ranks")? as u64,
        samples: num(&doc, "samples")? as u64,
        metrics,
    })
}

/// The verdict of one baseline/current comparison.
#[derive(Clone, Debug)]
pub struct Report {
    pub suite: String,
    /// Metrics compared (present in both documents).
    pub checked: usize,
    /// Human-readable failure lines; empty means the gate passed.
    pub failures: Vec<String>,
}

impl Report {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compare a current run against a baseline using the baseline's
/// tolerance bands. Metrics only the current run has are ignored (new
/// measurements start gating once they land in the baseline) — with two
/// exceptions that gate regardless of the baseline, because no committed
/// band may excuse them: any current metric named `*.agg_speedup` carries
/// a hard `>= 1.0` floor (a message-count "speedup" below one means
/// aggregation made the wire traffic *worse*), and any current metric
/// named `*.idle_fraction` carries a hard `[0, 1]` range (it is a
/// fraction of accounted wait time; a value outside the unit interval
/// means the idle-time accounting itself is broken). Two more hard rules
/// guard the causal-tracing suite the same way: any `*.causal_violations`
/// must be exactly zero (the gated suites run the virtual clock, where
/// Lamport order and wall order cannot disagree — a violation is a tracer
/// bug, not a measurement), and any `*.causal_len_advantage` must be
/// strictly positive (the paper's claim in happens-before hops: eager
/// notification shortens the mean causal chain; zero or negative means
/// the optimization stopped optimizing). A fifth hard rule guards the
/// continuation suite: any current `*.callback_loss` must be exactly zero
/// — it is `ops_with_callbacks - callbacks_run`, so a nonzero value in
/// either direction means a completion callback was lost or ran more than
/// once, and no committed band may excuse that.
pub fn compare(baseline: &BenchDoc, current: &BenchDoc) -> Report {
    let mut failures = Vec::new();
    for (field, b, c) in [
        ("suite", &baseline.suite, &current.suite),
        ("mode", &baseline.mode, &current.mode),
    ] {
        if b != c {
            failures.push(format!("{field} mismatch: baseline {b:?}, current {c:?}"));
        }
    }
    for (field, b, c) in [
        ("seed", baseline.seed, current.seed),
        ("ranks", baseline.ranks, current.ranks),
        ("samples", baseline.samples, current.samples),
    ] {
        if b != c {
            failures.push(format!("{field} mismatch: baseline {b}, current {c}"));
        }
    }
    let mut checked = 0;
    for bm in &baseline.metrics {
        match current.metrics.iter().find(|m| m.name == bm.name) {
            None => failures.push(format!("{}: missing from current run", bm.name)),
            Some(cm) => {
                checked += 1;
                let band = bm.band();
                let delta = (cm.value - bm.value).abs();
                if delta > band {
                    failures.push(format!(
                        "{}: baseline {} {u}, current {} {u} (|delta| {} > band {})",
                        bm.name,
                        bm.value,
                        cm.value,
                        delta,
                        band,
                        u = bm.unit,
                    ));
                }
            }
        }
    }
    for cm in &current.metrics {
        if !cm.name.ends_with(".agg_speedup") {
            continue;
        }
        if baseline.metrics.iter().all(|m| m.name != cm.name) {
            checked += 1;
        }
        if cm.value < 1.0 {
            failures.push(format!(
                "{}: aggregation speedup {} below the hard 1.0 floor \
                 (batching must not inflate wire traffic)",
                cm.name, cm.value,
            ));
        }
    }
    for cm in &current.metrics {
        if !cm.name.ends_with(".idle_fraction") {
            continue;
        }
        if baseline.metrics.iter().all(|m| m.name != cm.name) {
            checked += 1;
        }
        if !(0.0..=1.0).contains(&cm.value) {
            failures.push(format!(
                "{}: idle fraction {} outside the hard [0, 1] range \
                 (parked time cannot exceed total accounted wait time)",
                cm.name, cm.value,
            ));
        }
    }
    for cm in &current.metrics {
        if !cm.name.ends_with(".causal_violations") {
            continue;
        }
        if baseline.metrics.iter().all(|m| m.name != cm.name) {
            checked += 1;
        }
        if cm.value != 0.0 {
            failures.push(format!(
                "{}: {} causality violations on a virtual-clock run \
                 (Lamport order must agree with the virtual clock)",
                cm.name, cm.value,
            ));
        }
    }
    for cm in &current.metrics {
        if !cm.name.ends_with(".causal_len_advantage") {
            continue;
        }
        if baseline.metrics.iter().all(|m| m.name != cm.name) {
            checked += 1;
        }
        if cm.value <= 0.0 {
            failures.push(format!(
                "{}: eager causal-chain advantage {} not strictly positive \
                 (eager notification must shorten the mean happens-before chain)",
                cm.name, cm.value,
            ));
        }
    }
    for cm in &current.metrics {
        if !cm.name.ends_with(".callback_loss") {
            continue;
        }
        if baseline.metrics.iter().all(|m| m.name != cm.name) {
            checked += 1;
        }
        if cm.value != 0.0 {
            failures.push(format!(
                "{}: callback loss {} is not exactly zero \
                 (every callback-carrying op must run its continuation exactly once)",
                cm.name, cm.value,
            ));
        }
    }
    Report {
        suite: baseline.suite.clone(),
        checked,
        failures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(metrics: Vec<BenchMetric>) -> BenchDoc {
        BenchDoc {
            suite: "micro".into(),
            mode: "quick".into(),
            seed: 1,
            ranks: 2,
            samples: 24,
            metrics,
        }
    }

    fn metric(name: &str, value: f64, tol_rel: f64, tol_abs: f64) -> BenchMetric {
        BenchMetric {
            name: name.into(),
            unit: "ns".into(),
            value,
            tol_rel,
            tol_abs,
        }
    }

    #[test]
    fn within_band_passes() {
        let base = doc(vec![
            metric("a.p50_ns", 100.0, 0.05, 0.0),
            metric("b.count", 7.0, 0.0, 0.0),
        ]);
        let cur = doc(vec![
            metric("a.p50_ns", 104.0, 0.0, 0.0),
            metric("b.count", 7.0, 0.0, 0.0),
        ]);
        let r = compare(&base, &cur);
        assert!(r.passed(), "unexpected failures: {:?}", r.failures);
        assert_eq!(r.checked, 2);
    }

    #[test]
    fn outside_band_fails_with_baseline_band() {
        // The current run's own (loose) tolerance must not widen the gate.
        let base = doc(vec![metric("a.p50_ns", 100.0, 0.05, 0.0)]);
        let cur = doc(vec![metric("a.p50_ns", 110.0, 0.5, 1000.0)]);
        let r = compare(&base, &cur);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("a.p50_ns"), "{:?}", r.failures);
    }

    #[test]
    fn missing_metric_fails_and_extra_metric_is_ignored() {
        let base = doc(vec![metric("gone", 1.0, 0.0, 0.0)]);
        let cur = doc(vec![metric("new", 1.0, 0.0, 0.0)]);
        let r = compare(&base, &cur);
        assert_eq!(r.checked, 0);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("missing from current run"));
    }

    #[test]
    fn agg_speedup_floor_gates_even_without_baseline_entry() {
        // The hard floor applies to current metrics the baseline has never
        // seen — a regression cannot hide behind a stale baseline.
        let base = doc(vec![]);
        let cur = doc(vec![metric("gups-small.agg_speedup", 0.9, 0.0, 0.0)]);
        let r = compare(&base, &cur);
        assert_eq!(r.checked, 1);
        assert_eq!(r.failures.len(), 1);
        assert!(r.failures[0].contains("hard 1.0 floor"), "{:?}", r.failures);
        let ok = doc(vec![metric("gups-small.agg_speedup", 1.8, 0.0, 0.0)]);
        assert!(compare(&base, &ok).passed());
    }

    #[test]
    fn agg_speedup_floor_stacks_with_baseline_band() {
        // In the baseline with a zero band: drifting fails the band, and a
        // sub-1.0 value fails the floor even if the band would allow it.
        let base = doc(vec![metric("gups-small.agg_speedup", 0.9, 0.5, 0.0)]);
        let cur = doc(vec![metric("gups-small.agg_speedup", 0.9, 0.0, 0.0)]);
        let r = compare(&base, &cur);
        assert_eq!(r.checked, 1, "in-baseline metric is not double counted");
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(r.failures[0].contains("hard 1.0 floor"));
    }

    #[test]
    fn idle_fraction_range_gates_even_without_baseline_entry() {
        let base = doc(vec![]);
        for bad in [-0.1, 1.5] {
            let cur = doc(vec![metric("park.idle_fraction", bad, 0.0, 0.0)]);
            let r = compare(&base, &cur);
            assert_eq!(r.checked, 1);
            assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
            assert!(
                r.failures[0].contains("hard [0, 1] range"),
                "{:?}",
                r.failures
            );
        }
        for ok_val in [0.0, 0.5, 1.0] {
            let ok = doc(vec![metric("park.idle_fraction", ok_val, 0.0, 0.0)]);
            assert!(compare(&base, &ok).passed());
        }
    }

    #[test]
    fn causal_violations_zero_pin_gates_even_without_baseline_entry() {
        let base = doc(vec![]);
        let cur = doc(vec![metric(
            "v2021_3_6_eager.causal_violations",
            2.0,
            0.0,
            0.0,
        )]);
        let r = compare(&base, &cur);
        assert_eq!(r.checked, 1);
        assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
        assert!(
            r.failures[0].contains("causality violations"),
            "{:?}",
            r.failures
        );
        let ok = doc(vec![metric(
            "v2021_3_6_eager.causal_violations",
            0.0,
            0.0,
            0.0,
        )]);
        assert!(compare(&base, &ok).passed());
    }

    #[test]
    fn causal_len_advantage_floor_gates_even_without_baseline_entry() {
        let base = doc(vec![]);
        for bad in [0.0, -250.0] {
            let cur = doc(vec![metric("probe.causal_len_advantage", bad, 0.0, 0.0)]);
            let r = compare(&base, &cur);
            assert_eq!(r.checked, 1);
            assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
            assert!(
                r.failures[0].contains("not strictly positive"),
                "{:?}",
                r.failures
            );
        }
        let ok = doc(vec![metric("probe.causal_len_advantage", 333.0, 0.0, 0.0)]);
        assert!(compare(&base, &ok).passed());
    }

    #[test]
    fn callback_loss_zero_pin_gates_even_without_baseline_entry() {
        let base = doc(vec![]);
        // Loss in either direction fails: a lost callback (positive) and a
        // double-run callback (negative) are both exactly-once violations.
        for bad in [1.0, -2.0] {
            let cur = doc(vec![metric("continuations.callback_loss", bad, 0.0, 0.0)]);
            let r = compare(&base, &cur);
            assert_eq!(r.checked, 1);
            assert_eq!(r.failures.len(), 1, "{:?}", r.failures);
            assert!(r.failures[0].contains("exactly once"), "{:?}", r.failures);
        }
        let ok = doc(vec![metric("continuations.callback_loss", 0.0, 0.0, 0.0)]);
        assert!(compare(&base, &ok).passed());
    }

    #[test]
    fn identification_mismatch_fails() {
        let base = doc(vec![]);
        let mut cur = doc(vec![]);
        cur.mode = "full".into();
        cur.seed = 2;
        let r = compare(&base, &cur);
        assert_eq!(r.failures.len(), 2, "{:?}", r.failures);
    }

    #[test]
    fn parse_round_trip_and_schema_gate() {
        let json = r#"{"schema":"bench.v1","suite":"micro","mode":"quick",
            "seed":1,"ranks":2,"samples":24,"metrics":[
            {"name":"a","unit":"ns","value":3,"tol_rel":0,"tol_abs":0}]}"#;
        let d = parse_bench(json).expect("well-formed doc must parse");
        assert_eq!(d.metrics.len(), 1);
        assert_eq!(d.metrics[0].name, "a");
        assert!(parse_bench(&json.replace("bench.v1", "bench.v9"))
            .unwrap_err()
            .contains("unsupported schema"));
        assert!(parse_bench("{}").is_err());
    }
}
