//! Shared measurement harness for the paper's figures.
//!
//! Each figure has a module that produces its data series; the Criterion
//! benches and the `figures` binary both drive these, so the printed tables
//! and the benchmark timings come from the same code paths.

use std::time::{Duration, Instant};

use upcr::{launch, LibVersion, NetConfig, Rank, RuntimeConfig, Upcr};

pub mod criterion;
pub mod emit;
pub mod regress;

/// Figures 2–4: single-operation latency microbenchmarks.
pub mod micro {
    use super::*;

    /// The operations measured in the microbenchmark figures.
    #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
    pub enum MicroOp {
        /// 64-bit `rput` (value-less completion).
        Put,
        /// 64-bit `rget` (value-carrying completion).
        Get,
        /// 64-bit get written to memory (`copy`, value-less completion).
        GetInto,
        /// Non-fetching atomic add (existed in all versions).
        AmoAdd,
        /// Fetching atomic add, value in the completion.
        AmoFetchAdd,
        /// Fetching atomic add, value written to memory (§III-B; absent in
        /// 2021.3.0).
        AmoFetchAddInto,
    }

    impl MicroOp {
        /// All ops in figure order.
        pub const ALL: [MicroOp; 6] = [
            MicroOp::Put,
            MicroOp::Get,
            MicroOp::GetInto,
            MicroOp::AmoAdd,
            MicroOp::AmoFetchAdd,
            MicroOp::AmoFetchAddInto,
        ];

        /// Figure label.
        pub fn name(self) -> &'static str {
            match self {
                MicroOp::Put => "put",
                MicroOp::Get => "get",
                MicroOp::GetInto => "get->memory",
                MicroOp::AmoAdd => "atomic add",
                MicroOp::AmoFetchAdd => "fetch-add->value",
                MicroOp::AmoFetchAddInto => "fetch-add->memory",
            }
        }

        /// Whether the op exists under the given version semantics.
        pub fn available_in(self, version: LibVersion) -> bool {
            self != MicroOp::AmoFetchAddInto || version.has_nonfetching_fetch_amos()
        }
    }

    /// Time `iters` back-to-back `op().wait()` operations targeting
    /// co-located on-node memory (the paper's loop), returning the total
    /// wall time on the initiating rank.
    ///
    /// Runs 2 SMP ranks: rank 0 initiates against rank 1's segment (a
    /// co-located process, reached via shared-memory bypass); rank 1 sits in
    /// the exit barrier.
    pub fn run(version: LibVersion, op: MicroOp, iters: u64) -> Duration {
        assert!(op.available_in(version), "{op:?} unavailable in {version}");
        let rt = RuntimeConfig::smp(2)
            .with_version(version)
            .with_segment_size(1 << 16);
        let out = launch(rt, move |u| {
            let mine = u.new_::<u64>(0);
            let result = u.new_::<u64>(0);
            let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            let target = targets[1 - u.rank_me()];
            u.barrier();
            let mut elapsed = Duration::ZERO;
            if u.rank_me() == 0 {
                let ad = u.atomic_domain::<u64>();
                let t0 = Instant::now();
                match op {
                    MicroOp::Put => {
                        for i in 0..iters {
                            u.rput(i, target).wait();
                        }
                    }
                    MicroOp::Get => {
                        for _ in 0..iters {
                            std::hint::black_box(u.rget(target).wait());
                        }
                    }
                    MicroOp::GetInto => {
                        for _ in 0..iters {
                            u.copy(target, result, 1).wait();
                        }
                    }
                    MicroOp::AmoAdd => {
                        for _ in 0..iters {
                            ad.add(target, 1).wait();
                        }
                    }
                    MicroOp::AmoFetchAdd => {
                        for _ in 0..iters {
                            std::hint::black_box(ad.fetch_add(target, 1).wait());
                        }
                    }
                    MicroOp::AmoFetchAddInto => {
                        for _ in 0..iters {
                            ad.fetch_add_into(target, 1, result).wait();
                        }
                    }
                }
                elapsed = t0.elapsed();
            }
            u.barrier();
            u.delete_(mine);
            u.delete_(result);
            elapsed
        });
        out[0]
    }

    /// Nanoseconds per operation, averaged over `iters`.
    pub fn ns_per_op(version: LibVersion, op: MicroOp, iters: u64) -> f64 {
        run(version, op, iters).as_nanos() as f64 / iters as f64
    }
}

/// §IV-A's off-node claim: the extra locality branch does not slow down
/// operations that cross the (simulated) network.
pub mod offnode {
    use super::*;

    /// Measure off-node round-trip `rput().wait()` latency between two
    /// simulated nodes under the given version. Returns ns/op.
    pub fn rput_ns(version: LibVersion, iters: u64, latency_ns: u64) -> f64 {
        let rt = RuntimeConfig::udp(2, 1)
            .with_version(version)
            .with_segment_size(1 << 16)
            .with_net(NetConfig {
                latency_ns,
                jitter_ns: 0,
                ..NetConfig::default()
            });
        let out = launch(rt, move |u| {
            let mine = u.new_::<u64>(0);
            let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            let target = targets[1 - u.rank_me()];
            u.barrier();
            let mut elapsed = Duration::ZERO;
            if u.rank_me() == 0 {
                assert!(!u.is_local(target));
                let t0 = Instant::now();
                for i in 0..iters {
                    u.rput(i, target).wait();
                }
                elapsed = t0.elapsed();
            }
            u.barrier();
            elapsed
        });
        out[0].as_nanos() as f64 / iters as f64
    }
}

/// Tracing-overhead measurement for the observability subsystem: the same
/// local eager `rput` hot loop as [`micro::run`] with [`MicroOp::Put`]
/// (the pre-tracing baseline code path — tracing off is the default), but
/// with the per-rank trace flag set explicitly. The acceptance criterion
/// is that the disabled-mode loop stays within noise (< 3%) of the
/// baseline: every instrumentation site gates on one predictably-taken
/// branch, so `tracing=false` and the baseline must be indistinguishable.
///
/// [`MicroOp::Put`]: micro::MicroOp::Put
pub mod trace_overhead {
    use super::*;

    /// Time `iters` local eager `rput().wait()` operations with the trace
    /// flag set to `tracing`, returning rank 0's loop wall time.
    pub fn rput_loop(tracing: bool, iters: u64) -> Duration {
        let rt = RuntimeConfig::smp(2)
            .with_version(LibVersion::V2021_3_6Eager)
            .with_segment_size(1 << 16);
        let out = launch(rt, move |u| {
            u.trace_enabled(tracing);
            let mine = u.new_::<u64>(0);
            let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            let target = targets[1 - u.rank_me()];
            u.barrier();
            let mut elapsed = Duration::ZERO;
            if u.rank_me() == 0 {
                let t0 = Instant::now();
                for i in 0..iters {
                    u.rput(i, target).wait();
                }
                elapsed = t0.elapsed();
            }
            u.barrier();
            u.delete_(mine);
            elapsed
        });
        out[0]
    }

    /// Nanoseconds per operation, averaged over `iters`.
    pub fn ns_per_op(tracing: bool, iters: u64) -> f64 {
        rput_loop(tracing, iters).as_nanos() as f64 / iters as f64
    }

    /// The same loop with the *metric sampling* flag set instead of the
    /// trace flag: `metrics=false` measures the one disabled-mode branch
    /// per progress quantum, `metrics=true` adds the per-interval snapshot
    /// cost. The acceptance criterion mirrors tracing: disabled sampling
    /// stays within noise of the baseline.
    pub fn metrics_rput_loop(metrics: bool, iters: u64) -> Duration {
        let rt = RuntimeConfig::smp(2)
            .with_version(LibVersion::V2021_3_6Eager)
            .with_segment_size(1 << 16);
        let out = launch(rt, move |u| {
            u.metrics_enabled(metrics);
            let mine = u.new_::<u64>(0);
            let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
            let target = targets[1 - u.rank_me()];
            u.barrier();
            let mut elapsed = Duration::ZERO;
            if u.rank_me() == 0 {
                let t0 = Instant::now();
                for i in 0..iters {
                    u.rput(i, target).wait();
                }
                elapsed = t0.elapsed();
            }
            u.barrier();
            u.delete_(mine);
            elapsed
        });
        out[0]
    }

    /// Nanoseconds per operation for the metric-sampling loop.
    pub fn metrics_ns_per_op(metrics: bool, iters: u64) -> f64 {
        metrics_rput_loop(metrics, iters).as_nanos() as f64 / iters as f64
    }
}

/// A convenient latency-measurement harness for ad-hoc experiments: runs
/// `f` on rank 0 of a fresh SMP runtime and returns its duration.
pub fn time_on_rank0<F>(ranks: usize, version: LibVersion, f: F) -> Duration
where
    F: Fn(&Upcr) + Sync,
{
    let rt = RuntimeConfig::smp(ranks)
        .with_version(version)
        .with_segment_size(1 << 20);
    let out = launch(rt, move |u| {
        u.barrier();
        let t0 = Instant::now();
        if u.rank_me() == 0 {
            f(u);
        }
        let d = t0.elapsed();
        u.barrier();
        d
    });
    out[0]
}

/// Ablation knobs (DESIGN.md): measure the conjoining loop with individual
/// optimizations isolated by version choice and completion factory.
pub mod ablation {
    use super::*;
    use upcr::{conjoin, make_future, operation_cx};

    /// Synchronization batch: operations conjoined/registered before each
    /// wait. Mirrors the GUPS batching and keeps the dependency graph's
    /// live working set bounded (an unbatched million-node chain measures
    /// allocator pressure, not the notification mechanism).
    pub const BATCH: u64 = 1024;

    /// Conjoin `n` eager local rputs in [`BATCH`]-sized waves and wait per
    /// wave; returns ns/op. Under the eager version this exercises both the
    /// `when_all` fast path and the shared ready cell; under defer, the
    /// full graph construction.
    pub fn conjoin_loop_ns(version: LibVersion, n: u64) -> f64 {
        let d = time_on_rank0(2, version, |u| {
            let p = u.new_::<u64>(0);
            let mut left = n;
            while left > 0 {
                let b = left.min(BATCH);
                let mut f = make_future();
                for i in 0..b {
                    f = conjoin(f, u.rput(i, p));
                }
                f.wait();
                left -= b;
            }
        });
        d.as_nanos() as f64 / n as f64
    }

    /// Same loop but with explicitly deferred completion requests —
    /// isolates the notification mode from the other 2021.3.6
    /// optimizations.
    pub fn conjoin_loop_forced_defer_ns(version: LibVersion, n: u64) -> f64 {
        let d = time_on_rank0(2, version, |u| {
            let p = u.new_::<u64>(0);
            let mut left = n;
            while left > 0 {
                let b = left.min(BATCH);
                let mut f = make_future();
                for i in 0..b {
                    f = conjoin(f, u.rput_with(i, p, operation_cx::as_defer_future()));
                }
                f.wait();
                left -= b;
            }
        });
        d.as_nanos() as f64 / n as f64
    }

    /// Promise-tracked eager/defer loop: isolates promise-registration
    /// elision.
    pub fn promise_loop_ns(version: LibVersion, n: u64) -> f64 {
        let d = time_on_rank0(2, version, |u| {
            let p = u.new_::<u64>(0);
            let mut left = n;
            while left > 0 {
                let b = left.min(BATCH);
                let pr = upcr::Promise::new();
                for i in 0..b {
                    u.rput_with(i, p, operation_cx::as_promise(&pr));
                }
                pr.finalize().wait();
                left -= b;
            }
        });
        d.as_nanos() as f64 / n as f64
    }
}

/// Human-readable series formatting shared by the `figures` binary.
pub fn fmt_row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<28}");
    for c in cells {
        s.push_str(&format!("{c:>16}"));
    }
    s
}

/// The version list in figure order.
pub const VERSIONS: [LibVersion; 3] = [
    LibVersion::V2021_3_0,
    LibVersion::V2021_3_6Defer,
    LibVersion::V2021_3_6Eager,
];

/// Suppress unused warnings for re-exported Rank in downstream bins.
pub type _Rank = Rank;
