//! Benchmark result emission (`bench.v1` documents).
//!
//! Two gated suites, both produced by *deterministic* drives so the
//! committed baselines carry zero-width tolerance bands:
//!
//! * **micro** — the single-threaded virtual-clock probe
//!   ([`upcr::metrics::probe`]) per library version under a seeded chaos
//!   plan: latency quantiles per (op kind × completion path) plus the
//!   notification-path and reliability counters. Timestamps are logical,
//!   so every quantile is a pure function of the configuration.
//! * **gups** — the differential chaos harness ([`simtest`]) per
//!   (workload × version): state digest, completion count, and
//!   reliability counters. Multi-threaded, but each field is
//!   schedule-independent by construction (single-writer/commutative
//!   state, fault fates a pure hash of `(seed, msg, attempt)` over a
//!   fixed message-id set).
//!
//! The wall-clock **trace_overhead** suite is also emitted here (by the
//! Criterion bench) with wide relative bands; it is informational and not
//! committed as a baseline.

use simtest::Workload;
use upcr::metrics::probe::{run as probe_run, ProbeConfig};
use upcr::LibVersion;

use crate::regress::BENCH_SCHEMA;
use crate::VERSIONS;

/// Stable identifier for a library version inside metric names.
pub fn version_slug(v: LibVersion) -> &'static str {
    match v {
        LibVersion::V2021_3_0 => "v2021_3_0",
        LibVersion::V2021_3_6Defer => "v2021_3_6_defer",
        LibVersion::V2021_3_6Eager => "v2021_3_6_eager",
    }
}

fn mode_name(quick: bool) -> &'static str {
    if quick {
        "quick"
    } else {
        "full"
    }
}

/// Format a value with the shortest round-trip representation, rendering
/// integral values without a fraction — deterministic output for the
/// byte-identity gate.
fn fmt_num(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Incremental `bench.v1` document writer with fixed field order.
pub struct DocBuilder {
    head: String,
    metrics: Vec<String>,
}

impl DocBuilder {
    pub fn new(suite: &str, mode: &str, seed: u64, ranks: u64, samples: u64) -> Self {
        DocBuilder {
            head: format!(
                "{{\"schema\":\"{BENCH_SCHEMA}\",\"suite\":\"{suite}\",\"mode\":\"{mode}\",\
                 \"seed\":{seed},\"ranks\":{ranks},\"samples\":{samples}"
            ),
            metrics: Vec::new(),
        }
    }

    /// Add an exactly-reproducible metric (zero tolerance band).
    pub fn exact(&mut self, name: &str, unit: &str, value: f64) {
        self.metric(name, unit, value, 0.0, 0.0);
    }

    pub fn metric(&mut self, name: &str, unit: &str, value: f64, tol_rel: f64, tol_abs: f64) {
        self.metrics.push(format!(
            "{{\"name\":\"{name}\",\"unit\":\"{unit}\",\"value\":{},\
             \"tol_rel\":{},\"tol_abs\":{}}}",
            fmt_num(value),
            fmt_num(tol_rel),
            fmt_num(tol_abs)
        ));
    }

    pub fn finish(self) -> String {
        let mut out = self.head;
        out.push_str(",\"metrics\":[\n");
        out.push_str(&self.metrics.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// `BENCH_micro.json`: probe every library version under one seeded chaos
/// plan and record latency quantiles + path counters. Byte-identical
/// across runs and machines (virtual clock, single-threaded drive).
pub fn bench_micro_doc(quick: bool) -> String {
    let iters: u64 = if quick { 24 } else { 96 };
    let seed = 1u64;
    let mut b = DocBuilder::new("micro", mode_name(quick), seed, 2, iters);
    for &version in &VERSIONS {
        let r = probe_run(&ProbeConfig {
            version,
            iters,
            seed,
            chaos: true,
            trace: true,
            metrics: false,
            ..ProbeConfig::default()
        });
        let slug = version_slug(version);
        for row in r.hist.rows() {
            let op = format!("{slug}.{}_{}", row.kind.name(), row.path.name());
            b.exact(&format!("{op}_count"), "ops", row.count as f64);
            b.exact(&format!("{op}_p50_ns"), "ns", row.p50_ns as f64);
            b.exact(&format!("{op}_p99_ns"), "ns", row.p99_ns as f64);
        }
        b.exact(
            &format!("{slug}.eager_notifications"),
            "ops",
            r.stats.eager_notifications as f64,
        );
        b.exact(
            &format!("{slug}.deferred_enqueued"),
            "ops",
            r.stats.deferred_enqueued as f64,
        );
        b.exact(
            &format!("{slug}.net_injected"),
            "msgs",
            r.net.injected as f64,
        );
        b.exact(&format!("{slug}.net_retries"), "msgs", r.net.retries as f64);
    }
    b.finish()
}

/// `BENCH_gups.json`: sweep differential-harness workloads per library
/// version under the `combined` chaos plan and record each run's
/// schedule-independent outcome fields.
pub fn bench_gups_doc(quick: bool) -> String {
    let seed = 42u64;
    let workloads: &[Workload] = if quick {
        &[Workload::PutGetStorm, Workload::AtomicStorm]
    } else {
        &Workload::ALL
    };
    let plan = simtest::fault_plans(seed)
        .into_iter()
        .find(|(n, _)| *n == "combined")
        .expect("combined plan exists")
        .1;
    let mut b = DocBuilder::new(
        "gups",
        mode_name(quick),
        seed,
        simtest::RANKS as u64,
        workloads.len() as u64,
    );
    for &w in workloads {
        for &version in &VERSIONS {
            let o = simtest::run(w, version, seed, Some(plan));
            let key = format!("{}.{}", w.name(), version_slug(version));
            // The digest is 64-bit; split so both halves stay exact in the
            // JSON number space.
            b.exact(&format!("{key}.digest_hi"), "hash", (o.digest >> 32) as f64);
            b.exact(
                &format!("{key}.digest_lo"),
                "hash",
                (o.digest & 0xFFFF_FFFF) as f64,
            );
            b.exact(&format!("{key}.completions"), "ops", o.completions as f64);
            b.exact(&format!("{key}.injected"), "msgs", o.injected as f64);
            b.exact(&format!("{key}.retries"), "msgs", o.retries as f64);
            b.exact(
                &format!("{key}.drops_injected"),
                "msgs",
                o.drops_injected as f64,
            );
            b.exact(
                &format!("{key}.dup_suppressed"),
                "msgs",
                o.dup_suppressed as f64,
            );
        }
    }
    // Aggregation variant: deterministic GUPS-small on the eager build,
    // without and with per-target batching, under the same chaos plan.
    // Both digests are emitted (the gate pins them equal via the
    // committed baseline), and `agg_speedup` — the wire-message reduction
    // factor — carries a hard >= 1.0 floor in the regression gate:
    // aggregated GUPS must never inject more messages than unaggregated.
    let eager = LibVersion::V2021_3_6Eager;
    let (off, _) = simtest::run_agg(Workload::GupsSmall, eager, seed, Some(plan), None);
    let (on, stats) = simtest::run_agg(
        Workload::GupsSmall,
        eager,
        seed,
        Some(plan),
        Some(simtest::harness_agg(8)),
    );
    for (key, o) in [("agg_off", off), ("agg_on", on)] {
        b.exact(
            &format!("gups-small.{key}.digest_hi"),
            "hash",
            (o.digest >> 32) as f64,
        );
        b.exact(
            &format!("gups-small.{key}.digest_lo"),
            "hash",
            (o.digest & 0xFFFF_FFFF) as f64,
        );
        b.exact(
            &format!("gups-small.{key}.injected"),
            "msgs",
            o.injected as f64,
        );
    }
    b.exact(
        "gups-small.agg_on.batches",
        "msgs",
        stats.batches_injected as f64,
    );
    b.exact(
        "gups-small.agg_on.ops_coalesced",
        "ops",
        stats.ops_coalesced as f64,
    );
    b.exact(
        "gups-small.agg_speedup",
        "ratio",
        off.injected as f64 / on.injected as f64,
    );
    b.finish()
}

/// `BENCH_signals.json`: the notifiable-RMA + continuation suite. Four
/// halves:
///
/// * **park** — a wall-clock 4-rank world (2 ranks per node) where rank 0
///   blocks in `wait_signal` while ranks 1..3 `put_signal` distinct
///   badges. Emits only schedule-independent fields: the number of signal
///   ops, how many rode the conduit (exactly the two off-node senders),
///   the badge mask rank 0 woke with — and `polls_while_parked`, which the
///   committed baseline pins at **zero**: a parked waiter must burn no
///   progress polls. The derived `idle_fraction` (pinned 1.0, hard [0,1]
///   range in the gate) and `polls_per_op` (pinned 0) rows are computed
///   from the same pinned counts. (`park_wakeups` and `signals_coalesced`
///   depend on arrival timing and are deliberately excluded.)
/// * **signal-storm** — the virtual-clock chaos workload per library
///   version under the `combined` fault plan: digest, completions, and
///   reliability counters, all pure functions of `(seed, plan)`.
/// * **callback-storm / continuations** — the continuation-callback chaos
///   workload per library version (same deterministic outcome fields),
///   plus the world-summed continuation counters from the eager run:
///   `continuations.callbacks_run`, the analytic
///   `continuations.ops_with_callbacks`, and their difference
///   `continuations.callback_loss`, which carries a hard ==0 rule in the
///   regression gate regardless of the committed baseline — every
///   callback-carrying op must run its continuation exactly once.
/// * **notify** — wall-clock p50/p99 issue→continuation latency for a
///   cross-node `rput` with a callback, measured without and with the
///   background progress thread. Real time: wide bands, never committed
///   to the baseline (the determinism test filters these rows), purely
///   the informational with/without-thread comparison.
pub fn bench_signals_doc(quick: bool) -> String {
    let seed = 42u64;
    let mut b = DocBuilder::new("signals", mode_name(quick), seed, simtest::RANKS as u64, 1);

    // Park half: wall clock, so rank 0 genuinely parks on a condvar.
    let results = upcr::launch(
        upcr::RuntimeConfig::udp(simtest::RANKS, simtest::RANKS_PER_NODE)
            .with_segment_size(1 << 16),
        |u| {
            let mine = u.new_::<u64>(0);
            let target = u.broadcast(mine, 0);
            u.barrier();
            u.reset_stats();
            let me = u.rank_me();
            let mask = if me == 0 {
                let want = 0b1110u64;
                let mut seen = 0u64;
                while seen != want {
                    seen |= u.wait_signal(0, want & !seen);
                }
                seen
            } else {
                std::thread::sleep(std::time::Duration::from_millis(5));
                u.put_signal(me as u64, target, 0, 1 << me).wait();
                0
            };
            u.barrier();
            (u.stats(), u.net_stats(), mask)
        },
    );
    let signals_sent: u64 = results.iter().map(|(s, _, _)| s.signals_sent).sum();
    let polls_parked: u64 = results.iter().map(|(s, _, _)| s.polls_while_parked).sum();
    b.exact("park.signals_sent", "ops", signals_sent as f64);
    b.exact("park.net_signals", "msgs", results[0].1.signals as f64);
    b.exact("park.woken_mask", "bits", results[0].2 as f64);
    b.exact("park.polls_while_parked", "polls", polls_parked as f64);
    // Idle-efficiency gate rows, count-based so they stay exact (the
    // wall-clock `parked_ns`/`spinning_ns` counters are real time and
    // cannot carry a zero band): a parked waiter's idle fraction is
    // wakeups/(wakeups + polls) — pinned at 1.0 since polls_while_parked
    // is pinned at zero — and its polls per signal op is pinned at 0. The
    // regression gate additionally enforces a hard [0, 1] range on every
    // `*.idle_fraction` metric, baseline or not.
    let park_wakeups: u64 = results.iter().map(|(s, _, _)| s.park_wakeups).sum();
    let idle_fraction = if park_wakeups + polls_parked == 0 {
        1.0
    } else {
        park_wakeups as f64 / (park_wakeups + polls_parked) as f64
    };
    b.exact("park.idle_fraction", "ratio", idle_fraction);
    b.exact(
        "park.polls_per_op",
        "polls",
        polls_parked as f64 / signals_sent as f64,
    );

    // Chaos half: deterministic outcomes for the signal workload.
    let plan = simtest::fault_plans(seed)
        .into_iter()
        .find(|(n, _)| *n == "combined")
        .expect("combined plan exists")
        .1;
    for &version in &VERSIONS {
        let o = simtest::run(Workload::SignalStorm, version, seed, Some(plan));
        let key = format!("signal-storm.{}", version_slug(version));
        b.exact(&format!("{key}.digest_hi"), "hash", (o.digest >> 32) as f64);
        b.exact(
            &format!("{key}.digest_lo"),
            "hash",
            (o.digest & 0xFFFF_FFFF) as f64,
        );
        b.exact(&format!("{key}.completions"), "ops", o.completions as f64);
        b.exact(&format!("{key}.injected"), "msgs", o.injected as f64);
        b.exact(&format!("{key}.retries"), "msgs", o.retries as f64);
        b.exact(
            &format!("{key}.drops_injected"),
            "msgs",
            o.drops_injected as f64,
        );
        b.exact(
            &format!("{key}.dup_suppressed"),
            "msgs",
            o.dup_suppressed as f64,
        );
    }

    // Continuations half: deterministic callback-storm outcomes per
    // version under the same chaos plan, plus the measured world-summed
    // continuation counters from the eager run.
    let mut eager_counters = None;
    for &version in &VERSIONS {
        let (o, callbacks_run, ops_with_callbacks) =
            simtest::run_callback_storm_counters(version, seed, Some(plan));
        let key = format!("callback-storm.{}", version_slug(version));
        b.exact(&format!("{key}.digest_hi"), "hash", (o.digest >> 32) as f64);
        b.exact(
            &format!("{key}.digest_lo"),
            "hash",
            (o.digest & 0xFFFF_FFFF) as f64,
        );
        b.exact(&format!("{key}.completions"), "ops", o.completions as f64);
        b.exact(&format!("{key}.injected"), "msgs", o.injected as f64);
        b.exact(&format!("{key}.retries"), "msgs", o.retries as f64);
        b.exact(
            &format!("{key}.drops_injected"),
            "msgs",
            o.drops_injected as f64,
        );
        b.exact(
            &format!("{key}.dup_suppressed"),
            "msgs",
            o.dup_suppressed as f64,
        );
        if version == LibVersion::V2021_3_6Eager {
            eager_counters = Some((callbacks_run, ops_with_callbacks));
        }
    }
    let (callbacks_run, ops_with_callbacks) = eager_counters.expect("eager version is swept");
    b.exact("continuations.callbacks_run", "ops", callbacks_run as f64);
    b.exact(
        "continuations.ops_with_callbacks",
        "ops",
        ops_with_callbacks as f64,
    );
    // Exactly-once, as a gated metric: ops minus runs. The regression gate
    // hard-pins every `*.callback_loss` at exactly zero.
    b.exact(
        "continuations.callback_loss",
        "ops",
        ops_with_callbacks as f64 - callbacks_run as f64,
    );

    // Notify-latency half: wall clock, wide bands, not committed as a
    // baseline (strip `notify.*` rows when regenerating `ci/baseline/`).
    for (mode, thread) in [("thread_off", false), ("thread_on", true)] {
        let (p50, p99) = notify_latency_ns(thread);
        b.metric(
            &format!("notify.{mode}.p50_notify_ns"),
            "ns",
            p50 as f64,
            5.0,
            1e7,
        );
        b.metric(
            &format!("notify.{mode}.p99_notify_ns"),
            "ns",
            p99 as f64,
            5.0,
            1e7,
        );
    }
    b.finish()
}

/// Measure wall-clock issue→continuation latency for a cross-node
/// `rput_with(as_callback)`, without or with the background progress
/// thread. Rank 0 issues one put at a time to a rank on the other node
/// and waits for its continuation to fire: by spinning in `progress` when
/// the rank itself must drive completion, or by *sleeping* when the
/// progress thread is responsible — the measured gap is then pure
/// notification latency with zero rank-side polling. The remaining ranks
/// sit in the closing barrier, which drives progress while waiting.
/// Returns `(p50, p99)` in nanoseconds.
fn notify_latency_ns(progress_thread: bool) -> (u64, u64) {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    const SAMPLES: usize = 64;
    let results = upcr::launch(
        upcr::RuntimeConfig::udp(simtest::RANKS, simtest::RANKS_PER_NODE)
            .with_segment_size(1 << 16)
            .with_progress_thread(progress_thread),
        move |u| {
            let mine = u.new_array::<u64>(SAMPLES);
            // Rank 2 lives on the other node: every put rides the conduit.
            let target = u.broadcast(mine, 2);
            u.barrier();
            let mut lat = Vec::new();
            if u.rank_me() == 0 {
                for i in 0..SAMPLES {
                    let done = Arc::new(AtomicU64::new(0));
                    let d = Arc::clone(&done);
                    let t0 = std::time::Instant::now();
                    u.rput_with(
                        i as u64,
                        target.add(i),
                        upcr::operation_cx::as_callback(move |_: ()| {
                            d.store(1, Ordering::Release);
                        }),
                    );
                    while done.load(Ordering::Acquire) == 0 {
                        if progress_thread {
                            std::thread::sleep(std::time::Duration::from_micros(20));
                        } else {
                            u.progress();
                        }
                    }
                    lat.push(t0.elapsed().as_nanos() as u64);
                }
            }
            u.barrier();
            lat
        },
    );
    let mut lat = results
        .into_iter()
        .find(|l| !l.is_empty())
        .expect("rank 0 measured");
    lat.sort_unstable();
    (lat[lat.len() / 2], lat[lat.len() * 99 / 100])
}

/// `BENCH_causal.json`: the cross-rank causal-tracing suite. Probes every
/// library version under the seeded chaos plan with tracing on, feeds the
/// bundle through the happens-before assembler, and emits the assembly's
/// shape: node/edge counts, the causal chain depth, the virtual-clock
/// critical span, the violation count, and the per-completion-path mean
/// chain lengths (milli-hops). All byte-identical across runs (virtual
/// clock, single-threaded drive, deterministic assembly).
///
/// Two rows carry hard rules in the regression gate regardless of the
/// committed baseline: every `*.causal_violations` must be exactly zero
/// (Lamport order cannot disagree with a virtual clock), and
/// `probe.causal_len_advantage` — the defer-build mean chain length minus
/// the eager-build mean, in milli-hops — must stay strictly positive: the
/// paper's claim, in happens-before hops, is that eager notification
/// shortens the initiation→notification causal chain.
pub fn bench_causal_doc(quick: bool) -> String {
    let iters: u64 = if quick { 24 } else { 96 };
    let seed = 1u64;
    let mut b = DocBuilder::new("causal", mode_name(quick), seed, 2, iters);
    let mut mean_by_version = Vec::new();
    for &version in &VERSIONS {
        let r = probe_run(&ProbeConfig {
            version,
            iters,
            seed,
            chaos: true,
            trace: true,
            metrics: false,
            ..ProbeConfig::default()
        });
        let bundle = r.bundle.as_ref().expect("probe ran with tracing on");
        let asm = upcr::trace::assemble(bundle);
        let slug = version_slug(version);
        b.exact(
            &format!("{slug}.causal_nodes"),
            "events",
            asm.nodes.len() as f64,
        );
        b.exact(&format!("{slug}.hb_edges"), "edges", asm.hb_edges() as f64);
        b.exact(
            &format!("{slug}.causal_violations"),
            "events",
            asm.violations as f64,
        );
        b.exact(
            &format!("{slug}.chain_depth"),
            "hops",
            asm.chain_depth as f64,
        );
        b.exact(
            &format!("{slug}.critical_span_ns"),
            "ns",
            asm.critical_span_ns() as f64,
        );
        for path in upcr::trace::CompletionPath::ALL {
            if let Some(m) = asm.mean_chain_len_milli(path) {
                b.exact(
                    &format!("{slug}.mean_chain_{}_milli", path.name()),
                    "milli-hops",
                    m as f64,
                );
            }
        }
        // Overall mean across both paths — the cross-version comparand.
        let n = asm.op_chains.len() as u64;
        let mean_milli = (asm.op_chains.iter().map(|c| c.len).sum::<u64>() * 1000)
            .checked_div(n)
            .unwrap_or(0);
        b.exact(
            &format!("{slug}.mean_chain_milli"),
            "milli-hops",
            mean_milli as f64,
        );
        mean_by_version.push((version, mean_milli));
    }
    let mean_of = |v: LibVersion| {
        mean_by_version
            .iter()
            .find(|(mv, _)| *mv == v)
            .expect("version probed")
            .1 as f64
    };
    b.exact(
        "probe.causal_len_advantage",
        "milli-hops",
        mean_of(LibVersion::V2021_3_6Defer) - mean_of(LibVersion::V2021_3_6Eager),
    );
    b.finish()
}

/// `BENCH_matching.json`: the Figure-8 application — distributed maximal
/// weighted matching over every paper preset, per library version. Only
/// schedule-independent fields are emitted: the graph shape and the solve
/// *result* (matched-edge count, total weight in milli-units so it stays
/// exact in the JSON number space). Solve time and round/read counters
/// are schedule-dependent and excluded. The per-version rows let the gate
/// pin the paper's correctness claim: notification timing never changes
/// the matching.
pub fn bench_matching_doc(quick: bool) -> String {
    let ranks = 4usize;
    let scale = if quick { 0.02 } else { 0.05 };
    let presets = graphgen::Preset::ALL;
    let mut b = DocBuilder::new(
        "matching",
        mode_name(quick),
        0,
        ranks as u64,
        presets.len() as u64,
    );
    for preset in presets {
        let g = preset.generate(scale);
        b.exact(&format!("{}.vertices", preset.name()), "n", g.n as f64);
        b.exact(&format!("{}.edges", preset.name()), "m", g.edges() as f64);
        for &version in &VERSIONS {
            let r = matching::benchmark(ranks, version, &g);
            let key = format!("{}.{}", preset.name(), version_slug(version));
            b.exact(&format!("{key}.matched"), "edges", r.matched as f64);
            b.exact(
                &format!("{key}.weight_milli"),
                "milli",
                (r.weight * 1e3).round(),
            );
        }
    }
    b.finish()
}

/// `BENCH_trace_overhead.json`: wall-clock ns/op for the observability
/// overhead series. Machine-dependent — wide bands, never committed as a
/// gating baseline.
pub fn trace_overhead_doc(
    iters: u64,
    baseline_ns: f64,
    trace_off_ns: f64,
    trace_on_ns: f64,
    metrics_off_ns: f64,
    metrics_on_ns: f64,
) -> String {
    let mut b = DocBuilder::new("trace_overhead", "wall", 0, 2, iters);
    for (name, v) in [
        ("rput.baseline_ns", baseline_ns),
        ("rput.trace_off_ns", trace_off_ns),
        ("rput.trace_on_ns", trace_on_ns),
        ("rput.metrics_off_ns", metrics_off_ns),
        ("rput.metrics_on_ns", metrics_on_ns),
    ] {
        b.metric(name, "ns", v, 0.25, 5.0);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regress::parse_bench;

    #[test]
    fn micro_doc_is_deterministic_and_parses() {
        let a = bench_micro_doc(true);
        assert_eq!(a, bench_micro_doc(true), "probe doc must be replayable");
        let d = parse_bench(&a).expect("emitted doc must parse");
        assert_eq!(d.suite, "micro");
        assert_eq!(d.mode, "quick");
        assert!(
            d.metrics.len() > 3 * VERSIONS.len(),
            "every version contributes quantile + counter metrics"
        );
        assert!(d
            .metrics
            .iter()
            .all(|m| m.tol_rel == 0.0 && m.tol_abs == 0.0));
        // Both completion paths appear for the eager build.
        assert!(d
            .metrics
            .iter()
            .any(|m| m.name == "v2021_3_6_eager.put_eager_count" && m.value > 0.0));
        assert!(d
            .metrics
            .iter()
            .any(|m| m.name == "v2021_3_6_eager.put_deferred_count" && m.value > 0.0));
    }

    #[test]
    fn matching_doc_is_deterministic_and_parses() {
        let a = bench_matching_doc(true);
        assert_eq!(
            a,
            bench_matching_doc(true),
            "matching doc must be replayable"
        );
        let d = parse_bench(&a).expect("emitted doc must parse");
        assert_eq!(d.suite, "matching");
        assert!(d
            .metrics
            .iter()
            .all(|m| m.tol_rel == 0.0 && m.tol_abs == 0.0));
        // Every version matches the same edges at the same weight — the
        // paper's correctness claim, pinned per preset.
        for preset in graphgen::Preset::ALL {
            let row = |v: &str, f: &str| {
                let name = format!("{}.{v}.{f}", preset.name());
                d.metrics
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("missing metric {name}"))
                    .value
            };
            for field in ["matched", "weight_milli"] {
                let eager = row("v2021_3_6_eager", field);
                assert!(eager > 0.0, "{}: empty matching", preset.name());
                assert_eq!(eager, row("v2021_3_6_defer", field));
                assert_eq!(eager, row("v2021_3_0", field));
            }
        }
    }

    #[test]
    fn signals_doc_is_deterministic_and_pins_zero_parked_polls() {
        // The wall-clock `notify.*` rows are real time and cannot replay
        // byte-identically; everything else must.
        let stable = |doc: &str| {
            let d = parse_bench(doc).expect("emitted doc must parse");
            d.metrics
                .into_iter()
                .filter(|m| !m.name.starts_with("notify."))
                .collect::<Vec<_>>()
        };
        let a = bench_signals_doc(true);
        assert_eq!(
            stable(&a),
            stable(&bench_signals_doc(true)),
            "deterministic signal rows must be replayable"
        );
        let d = parse_bench(&a).expect("emitted doc must parse");
        assert_eq!(d.suite, "signals");
        for m in &d.metrics {
            if m.name.starts_with("notify.") {
                // Informational wall-clock rows carry wide bands and are
                // never committed to the baseline.
                assert!(m.tol_rel > 0.0 && m.tol_abs > 0.0, "{}", m.name);
                assert!(m.name.contains("_notify_ns"), "{}", m.name);
            } else {
                assert!(m.tol_rel == 0.0 && m.tol_abs == 0.0, "{}", m.name);
            }
        }
        // Both progress-thread modes contributed latency quantiles.
        for mode in ["thread_off", "thread_on"] {
            for q in ["p50", "p99"] {
                let name = format!("notify.{mode}.{q}_notify_ns");
                let row = d
                    .metrics
                    .iter()
                    .find(|m| m.name == name)
                    .unwrap_or_else(|| panic!("missing metric {name}"));
                assert!(row.value > 0.0, "{name} must be a real latency");
            }
        }
        let val = |name: &str| {
            d.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .value
        };
        // The acceptance criterion: a parked rank performs zero progress
        // polls; and exactly the two off-node signals rode the conduit.
        assert_eq!(val("park.polls_while_parked"), 0.0);
        assert_eq!(val("park.signals_sent"), 3.0);
        assert_eq!(val("park.net_signals"), 2.0);
        assert_eq!(val("park.woken_mask"), 14.0);
        // The derived idle-efficiency rows those pins imply.
        assert_eq!(val("park.idle_fraction"), 1.0);
        assert_eq!(val("park.polls_per_op"), 0.0);
        // Eager and defer agree on both chaos halves, field for field.
        for storm in ["signal-storm", "callback-storm"] {
            for field in ["digest_hi", "digest_lo", "completions", "injected"] {
                assert_eq!(
                    val(&format!("{storm}.v2021_3_6_eager.{field}")),
                    val(&format!("{storm}.v2021_3_6_defer.{field}"))
                );
            }
        }
        assert_eq!(val("signal-storm.v2021_3_6_eager.completions"), 24.0);
        // The exactly-once pin: every callback-carrying op ran its
        // continuation, so the loss row is exactly zero.
        assert_eq!(val("continuations.ops_with_callbacks"), 24.0);
        assert_eq!(val("continuations.callbacks_run"), 24.0);
        assert_eq!(val("continuations.callback_loss"), 0.0);
    }

    #[test]
    fn causal_doc_is_deterministic_and_pins_eager_advantage() {
        let a = bench_causal_doc(true);
        assert_eq!(a, bench_causal_doc(true), "causal doc must be replayable");
        let d = parse_bench(&a).expect("emitted doc must parse");
        assert_eq!(d.suite, "causal");
        assert!(d
            .metrics
            .iter()
            .all(|m| m.tol_rel == 0.0 && m.tol_abs == 0.0));
        let val = |name: &str| {
            d.metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("missing metric {name}"))
                .value
        };
        // Virtual clock: Lamport order and wall order can never disagree.
        for v in &VERSIONS {
            assert_eq!(val(&format!("{}.causal_violations", version_slug(*v))), 0.0);
        }
        // The paper's claim in happens-before hops: the eager build's mean
        // causal chain is strictly shorter than the defer build's.
        assert!(val("probe.causal_len_advantage") > 0.0);
        // The defer build never completes anything on the eager path, so
        // its per-path eager row is absent from the document.
        assert!(!d
            .metrics
            .iter()
            .any(|m| m.name == "v2021_3_6_defer.mean_chain_eager_milli"));
        assert!(val("v2021_3_6_eager.mean_chain_eager_milli") > 0.0);
    }

    #[test]
    fn trace_overhead_doc_carries_wide_bands() {
        let d = parse_bench(&trace_overhead_doc(100, 50.0, 51.0, 80.0, 50.5, 60.0)).unwrap();
        assert_eq!(d.suite, "trace_overhead");
        assert_eq!(d.metrics.len(), 5);
        assert!(d.metrics.iter().all(|m| m.tol_rel > 0.0));
    }
}
