//! Minimal benchmark harness with a criterion-compatible surface.
//!
//! The workspace builds fully offline, so the `criterion` crate is replaced
//! by this drop-in subset: benchmark groups, per-input benches with
//! `iter_custom` timing, and the `criterion_group!`/`criterion_main!`
//! macros. Sampling is simpler than criterion's (no outlier analysis or
//! bootstrap): each bench warms up, calibrates an iteration count that
//! fills the configured measurement time, then reports the min / mean /
//! max per-iteration time over `sample_size` samples. That is enough for
//! the figures here, which compare series against each other rather than
//! against nanosecond-accurate baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness state passed to every registered bench function.
#[derive(Default)]
pub struct Criterion {
    benches_run: usize,
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_secs(1),
        }
    }

    /// Print a one-line run summary (called by `criterion_main!`).
    pub fn final_summary(&self) {
        println!("\n{} benchmarks completed", self.benches_run);
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Target total time spent in timed samples per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Target time spent warming up / calibrating per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.new_bencher();
        f(&mut b, input);
        self.report(&id.0, &b);
        self
    }

    /// Run one benchmark with no input.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.new_bencher();
        f(&mut b);
        self.report(&name.to_string(), &b);
        self
    }

    /// End the group (parity with criterion; reporting happens per bench).
    pub fn finish(&mut self) {}

    fn new_bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        }
    }

    fn report(&mut self, id: &str, b: &Bencher) {
        self.c.benches_run += 1;
        if b.samples.is_empty() {
            println!("{}/{id:<40} no samples", self.name);
            return;
        }
        let min = b.samples.iter().min().unwrap();
        let max = b.samples.iter().max().unwrap();
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!(
            "{}/{id:<40} time: [{} {} {}]",
            self.name,
            fmt_time(*min),
            fmt_time(mean),
            fmt_time(*max),
        );
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// Parameter-only id, for groups benching one function over inputs.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to the benchmark closure; runs and times the measured code.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    /// Per-iteration time of each collected sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f(iters)` batches, where `f` returns the measured duration for
    /// exactly `iters` iterations (setup/teardown excluded by the callee).
    pub fn iter_custom<F>(&mut self, mut f: F)
    where
        F: FnMut(u64) -> Duration,
    {
        // Warm-up and calibration: grow the batch until one batch is long
        // enough to estimate the per-iteration cost reliably.
        let warm_target = self.warm_up_time.max(Duration::from_millis(1));
        let mut iters = 1u64;
        let mut elapsed = f(iters).max(Duration::from_nanos(1));
        let mut spent = elapsed;
        while spent < warm_target && elapsed < warm_target / 4 && iters < (1 << 30) {
            iters = iters.saturating_mul(2);
            elapsed = f(iters).max(Duration::from_nanos(1));
            spent += elapsed;
        }
        let per_iter = elapsed.as_secs_f64() / iters as f64;
        // Pick a per-sample batch that fills the measurement budget.
        let target_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let sample_iters = ((target_sample / per_iter).ceil() as u64).clamp(1, 1 << 30);
        for _ in 0..self.sample_size {
            let d = f(sample_iters);
            self.samples.push(Duration::from_secs_f64(
                d.as_secs_f64() / sample_iters as f64,
            ));
        }
    }

    /// Time repeated calls of `f`, preventing the result from being
    /// optimized away.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        self.iter_custom(|iters| {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            t0.elapsed()
        });
    }
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect bench functions into a single registration function, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::criterion::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Generate `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            let mut c = $crate::criterion::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

// Make the macros importable alongside the types:
// `use bench::criterion::{criterion_group, criterion_main, Criterion, ...}`.
pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_custom_collects_samples_and_reports() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("smoke");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(30))
                .warm_up_time(Duration::from_millis(5));
            g.bench_with_input(BenchmarkId::new("noop", 1), &1u64, |b, &x| {
                b.iter_custom(|iters| Duration::from_nanos(iters * x.max(1)))
            });
            g.bench_function("spin", |b| b.iter(|| std::hint::black_box(7u64).pow(3)));
            g.finish();
        }
        assert_eq!(c.benches_run, 2);
    }

    #[test]
    fn benchmark_ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("op", "v1").0, "op/v1");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }

    #[test]
    fn time_formatting_scales() {
        assert_eq!(fmt_time(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_time(Duration::from_micros(50)), "50.00 µs");
        assert_eq!(fmt_time(Duration::from_millis(50)), "50.00 ms");
        assert_eq!(fmt_time(Duration::from_secs(50)), "50.00 s");
    }
}
