//! Timed solve runs over the runtime, for the Figure 8 reproduction.

use std::time::Instant;

use graphgen::{Graph, Preset};
use upcr::{launch, LibVersion, RuntimeConfig, Upcr};

use crate::dist::{DistMatcher, SolveStats};

/// Result of one distributed matching run.
#[derive(Clone, Copy, Debug)]
pub struct MatchRun {
    /// Wall time of the solve step (slowest rank), seconds — the paper's
    /// Figure 8 metric.
    pub seconds: f64,
    /// Total matched edge weight.
    pub weight: f64,
    /// Number of matched edges.
    pub matched: usize,
    /// Solve statistics from rank 0.
    pub stats: SolveStats,
}

/// Run the distributed solve inside an active SPMD region; returns the
/// timing (identical on every rank) and this rank's gathered matching.
pub fn run(u: &Upcr, g: &Graph) -> (MatchRun, crate::sequential::Matching) {
    let mut matcher = DistMatcher::new(u, g);
    u.barrier();
    let t0 = Instant::now();
    let stats = matcher.solve(u);
    u.barrier();
    let seconds = f64::from_bits(u.allreduce_max_u64(t0.elapsed().as_secs_f64().to_bits()));
    let m = matcher.gather(u);
    matcher.free(u);
    (
        MatchRun {
            seconds,
            weight: m.weight,
            matched: m.edges(),
            stats,
        },
        m,
    )
}

/// Launch a fresh runtime (MPI conduit, as the paper used for this
/// application) and solve `g` under the given version.
pub fn benchmark(ranks: usize, version: LibVersion, g: &Graph) -> MatchRun {
    // Segment: two u64 words per owned vertex, plus scratch and slack.
    let per_rank_vertices = g.n.div_ceil(ranks);
    let seg = ((per_rank_vertices * 16 + 64 * 1024).next_power_of_two()).max(1 << 16);
    let rt = RuntimeConfig::mpi(ranks, ranks)
        .with_version(version)
        .with_segment_size(seg);
    let results = launch(rt, |u| run(u, g).0);
    results[0]
}

/// Convenience: benchmark a paper preset at the given scale.
pub fn benchmark_preset(ranks: usize, version: LibVersion, preset: Preset, scale: f64) -> MatchRun {
    let g = preset.generate(scale);
    benchmark(ranks, version, &g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::greedy;

    #[test]
    fn distributed_equals_greedy_on_presets() {
        for preset in [Preset::Channel, Preset::Youtube] {
            let g = preset.generate(0.02);
            let seq = greedy(&g);
            let rt = RuntimeConfig::mpi(4, 4).with_segment_size(1 << 20);
            let runs = launch(rt, |u| {
                let (_, m) = run(u, &g);
                m.validate(&g);
                m.assert_maximal(&g);
                m
            });
            for m in runs {
                assert_eq!(m.mate, seq.mate, "{}: distributed != greedy", preset.name());
                assert!((m.weight - seq.weight).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn distributed_equals_greedy_small_graphs() {
        for seed in 0..5 {
            let g = graphgen::powerlaw(200, 3, seed);
            let seq = greedy(&g);
            let rt = RuntimeConfig::mpi(8, 8).with_segment_size(1 << 18);
            let m = launch(rt, |u| run(u, &g).1);
            assert_eq!(m[0].mate, seq.mate, "seed {seed}");
        }
    }

    #[test]
    fn works_across_simulated_nodes() {
        let g = graphgen::mesh2d_irregular(20, 20, 0.1, 3);
        let seq = greedy(&g);
        // 4 ranks on 2 simulated nodes: cross-node reads take the network.
        let rt = RuntimeConfig::udp(4, 2).with_segment_size(1 << 18);
        let m = launch(rt, |u| run(u, &g).1);
        assert_eq!(m[0].mate, seq.mate);
    }

    #[test]
    fn all_versions_agree() {
        let g = graphgen::knn(400, 4, 11);
        let seq = greedy(&g);
        for version in LibVersion::ALL {
            let r = benchmark(4, version, &g);
            assert!(
                (r.weight - seq.weight).abs() < 1e-9,
                "{version}: weight mismatch"
            );
            assert_eq!(r.matched, seq.edges());
            assert!(r.stats.rounds > 0);
        }
    }

    #[test]
    fn single_rank_matches() {
        let g = graphgen::geometric(500, 8.0, 10, 2);
        let seq = greedy(&g);
        let r = benchmark(1, LibVersion::V2021_3_6Eager, &g);
        assert!((r.weight - seq.weight).abs() < 1e-9);
    }
}
