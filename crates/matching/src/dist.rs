//! Distributed locally-dominant half-approximate maximum-weight matching.
//!
//! The algorithm of the ExaGraph application (Manne–Bisseling pointer
//! matching, as in Ghosh et al.'s MPI/UPC++ implementations): vertices are
//! block-partitioned over ranks; each round every active vertex proposes to
//! its best *available* neighbor under the global edge order, and mutual
//! proposals become matches. Availability and proposals live in shared
//! segments; reading a non-owned vertex's state is a one-sided RMA
//! operation. As in the application, **same-rank targets are manually
//! optimized** (direct segment access) while targets on other ranks —
//! co-located or not — go through the runtime's RMA path, the path the
//! paper's eager notifications accelerate (§IV-C).
//!
//! With the strict edge order of
//! [`edge_beats`](crate::sequential::edge_beats), the result equals the
//! sequential greedy matching exactly.

use std::sync::atomic::Ordering;

use graphgen::{BlockPartition, Graph};
use upcr::{operation_cx, GlobalPtr, Promise, Upcr};

use crate::sequential::{edge_beats, Matching, UNMATCHED};

/// Shared-state encoding: vertex is unmatched and available.
const AVAILABLE: u64 = u64::MAX;
/// Vertex can never be matched (all neighbors taken).
const DEAD: u64 = u64::MAX - 1;
/// No current proposal.
const NO_CAND: u64 = u64::MAX;

/// How many remote reads are batched on one promise per round.
const READ_BATCH: usize = 512;

/// Statistics from a distributed solve, per rank.
#[derive(Clone, Copy, Debug, Default)]
pub struct SolveStats {
    /// Rounds until global quiescence.
    pub rounds: usize,
    /// Vertex-state reads answered by direct (same-rank) access.
    pub local_reads: u64,
    /// Vertex-state reads issued as RMA operations.
    pub rma_reads: u64,
}

/// The per-rank distributed matcher state.
pub struct DistMatcher<'g> {
    g: &'g Graph,
    part: BlockPartition,
    me: usize,
    range: std::ops::Range<usize>,
    /// All ranks' mate arrays (shared segments).
    mate_bases: Vec<GlobalPtr<u64>>,
    /// All ranks' proposal arrays.
    cand_bases: Vec<GlobalPtr<u64>>,
    /// Scratch block for batched remote reads.
    scratch: GlobalPtr<u64>,
    /// Per owned vertex: neighbors sorted best-first under the edge order.
    nbrs: Vec<Vec<(u32, f64)>>,
    /// Per owned vertex: position in its neighbor list.
    cursor: Vec<usize>,
    /// Local knowledge: vertex known matched/dead (never un-dies).
    known_dead: Vec<bool>,
}

impl<'g> DistMatcher<'g> {
    /// Collectively set up shared state for `g` on the current runtime.
    pub fn new(u: &Upcr, g: &'g Graph) -> Self {
        let part = BlockPartition::new(g.n, u.rank_n());
        let me = u.rank_me();
        let range = part.range(me);
        let local_len = range.len().max(1);
        let mate = u.new_array::<u64>(local_len);
        let cand = u.new_array::<u64>(local_len);
        let mate_words = u.local_slice_u64(mate, local_len);
        let cand_words = u.local_slice_u64(cand, local_len);
        for w in mate_words {
            w.store(AVAILABLE, Ordering::Relaxed);
        }
        for w in cand_words {
            w.store(NO_CAND, Ordering::Relaxed);
        }
        let mate_bases = (0..u.rank_n()).map(|r| u.broadcast(mate, r)).collect();
        let cand_bases = (0..u.rank_n()).map(|r| u.broadcast(cand, r)).collect();
        let scratch = u.new_array::<u64>(READ_BATCH);

        // Sort each owned vertex's neighbors best-first under the global
        // edge order (descending edge_beats).
        let mut nbrs = Vec::with_capacity(range.len());
        for v in range.clone() {
            let mut list: Vec<(u32, f64)> = g.neighbors(v).collect();
            let v32 = v as u32;
            list.sort_by(|&(a, wa), &(b, wb)| {
                if edge_beats(wa, v32, a, wb, v32, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            nbrs.push(list);
        }
        u.barrier();
        DistMatcher {
            g,
            part,
            me,
            range: range.clone(),
            mate_bases,
            cand_bases,
            scratch,
            nbrs,
            cursor: vec![0; range.len()],
            known_dead: vec![false; g.n],
        }
    }

    #[inline]
    fn mate_gptr(&self, v: usize) -> GlobalPtr<u64> {
        self.mate_bases[self.part.owner(v)].add(self.part.local_index(v))
    }

    #[inline]
    fn cand_gptr(&self, v: usize) -> GlobalPtr<u64> {
        self.cand_bases[self.part.owner(v)].add(self.part.local_index(v))
    }

    /// Read a batch of shared words; same-rank words directly, others via
    /// one-sided copies into scratch tracked by a single promise. The
    /// results land in `out`, aligned with `targets`.
    fn read_words(
        &self,
        u: &Upcr,
        targets: &[GlobalPtr<u64>],
        out: &mut Vec<u64>,
        stats: &mut SolveStats,
    ) {
        out.clear();
        out.resize(targets.len(), 0);
        let scratch_words = u.local_slice_u64(self.scratch, READ_BATCH);
        let mut base = 0;
        while base < targets.len() {
            let chunk = (targets.len() - base).min(READ_BATCH);
            let p = Promise::new();
            let mut remote_slots: Vec<usize> = Vec::new();
            for (k, &t) in targets[base..base + chunk].iter().enumerate() {
                if t.rank().idx() == self.me {
                    // The application's manual same-process optimization.
                    stats.local_reads += 1;
                    out[base + k] = u.local(t).get();
                } else {
                    // Co-located or remote process: RMA.
                    stats.rma_reads += 1;
                    u.copy_with(
                        t,
                        self.scratch.add(remote_slots.len()),
                        1,
                        operation_cx::as_promise(&p),
                    );
                    remote_slots.push(base + k);
                }
            }
            p.finalize().wait();
            for (slot, &idx) in remote_slots.iter().enumerate() {
                out[idx] = scratch_words[slot].load(Ordering::Relaxed);
            }
            base += chunk;
        }
    }

    /// Run the solve loop to global quiescence; returns per-rank stats.
    pub fn solve(&mut self, u: &Upcr) -> SolveStats {
        let mut stats = SolveStats::default();
        let mate_words = u.local_slice_u64(self.mate_bases[self.me], self.range.len().max(1));
        let cand_words = u.local_slice_u64(self.cand_bases[self.me], self.range.len().max(1));
        // Active = owned, unmatched, not dead.
        let mut active: Vec<usize> = (0..self.range.len()).collect();
        let mut targets: Vec<GlobalPtr<u64>> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        let mut results: Vec<u64> = Vec::new();
        loop {
            stats.rounds += 1;

            // ---- Phase A: propose to the best available neighbor --------
            // Iterate until every active vertex has an apparently-available
            // candidate or is dead (availability knowledge may lag a round;
            // that only costs an extra round, never correctness).
            let mut unsettled: Vec<usize> = active.clone();
            while !unsettled.is_empty() {
                targets.clear();
                owners.clear();
                let mut next_unsettled = Vec::new();
                for &lv in &unsettled {
                    // Advance past neighbors known to be taken.
                    loop {
                        match self.nbrs[lv].get(self.cursor[lv]).copied() {
                            None => {
                                // No available neighbor can exist: retire.
                                mate_words[lv].store(DEAD, Ordering::Relaxed);
                                self.known_dead[self.range.start + lv] = true;
                                break;
                            }
                            Some((nb, _)) if self.known_dead[nb as usize] => {
                                self.cursor[lv] += 1;
                            }
                            Some((nb, _)) => {
                                let nb = nb as usize;
                                if self.part.owner(nb) == self.me {
                                    stats.local_reads += 1;
                                    let state = u.local(self.mate_gptr(nb)).get();
                                    if state == AVAILABLE {
                                        cand_words[lv].store(nb as u64, Ordering::Relaxed);
                                        break;
                                    }
                                    self.known_dead[nb] = true;
                                    self.cursor[lv] += 1;
                                } else {
                                    targets.push(self.mate_gptr(nb));
                                    owners.push(lv);
                                    break;
                                }
                            }
                        }
                    }
                }
                if targets.is_empty() {
                    break;
                }
                // Batched RMA reads of candidate availability.
                let mut remote_out = Vec::new();
                self.read_remote_only(u, &targets, &mut remote_out, &mut stats);
                for (i, &lv) in owners.iter().enumerate() {
                    let nb = self.nbrs[lv][self.cursor[lv]].0 as usize;
                    if remote_out[i] == AVAILABLE {
                        cand_words[lv].store(nb as u64, Ordering::Relaxed);
                    } else {
                        self.known_dead[nb] = true;
                        self.cursor[lv] += 1;
                        next_unsettled.push(lv);
                    }
                }
                unsettled = next_unsettled;
            }
            // Drop vertices that died in phase A.
            active.retain(|&lv| mate_words[lv].load(Ordering::Relaxed) == AVAILABLE);
            u.barrier();

            // ---- Phase B: mutual proposals become matches ----------------
            targets.clear();
            owners.clear();
            for &lv in &active {
                let cand = cand_words[lv].load(Ordering::Relaxed);
                debug_assert_ne!(cand, NO_CAND);
                targets.push(self.cand_gptr(cand as usize));
                owners.push(lv);
            }
            self.read_words(u, &targets, &mut results, &mut stats);
            let mut matched_now = 0u64;
            for (i, &lv) in owners.iter().enumerate() {
                let v = self.range.start + lv;
                let cand = cand_words[lv].load(Ordering::Relaxed);
                if results[i] == v as u64 {
                    // Mutual: both owners record the match for their side.
                    mate_words[lv].store(cand, Ordering::Relaxed);
                    self.known_dead[v] = true;
                    self.known_dead[cand as usize] = true;
                    matched_now += 1;
                }
            }
            u.barrier();
            active.retain(|&lv| mate_words[lv].load(Ordering::Relaxed) == AVAILABLE);

            let global_active = u.allreduce_sum_u64(active.len() as u64);
            let _ = matched_now;
            if global_active == 0 {
                break;
            }
        }
        stats
    }

    /// Batched RMA-only reads (callers pre-filtered same-rank targets).
    fn read_remote_only(
        &self,
        u: &Upcr,
        targets: &[GlobalPtr<u64>],
        out: &mut Vec<u64>,
        stats: &mut SolveStats,
    ) {
        out.clear();
        out.resize(targets.len(), 0);
        let scratch_words = u.local_slice_u64(self.scratch, READ_BATCH);
        let mut base = 0;
        while base < targets.len() {
            let chunk = (targets.len() - base).min(READ_BATCH);
            let p = Promise::new();
            for (k, &t) in targets[base..base + chunk].iter().enumerate() {
                stats.rma_reads += 1;
                u.copy_with(t, self.scratch.add(k), 1, operation_cx::as_promise(&p));
            }
            p.finalize().wait();
            for k in 0..chunk {
                out[base + k] = scratch_words[k].load(Ordering::Relaxed);
            }
            base += chunk;
        }
    }

    /// Gather the complete matching onto the calling rank. Call after
    /// [`solve`](Self::solve); identical on every rank. Uses direct access
    /// for addressable segments (single-node runs) and RMA otherwise.
    pub fn gather(&self, u: &Upcr) -> Matching {
        let mut mate = vec![UNMATCHED; self.g.n];
        let mut weight = 0.0;
        #[allow(clippy::needless_range_loop)]
        for v in 0..self.g.n {
            let gp = self.mate_gptr(v);
            let state = if u.is_local(gp) {
                u.local(gp).get()
            } else {
                u.rget(gp).wait()
            };
            if state != AVAILABLE && state != DEAD {
                mate[v] = state as u32;
                if v < state as usize {
                    weight += self
                        .g
                        .edge_weight(v, state as usize)
                        .expect("matched pair is not an edge");
                }
            }
        }
        Matching { mate, weight }
    }

    /// Collectively release the shared arrays.
    pub fn free(&self, u: &Upcr) {
        u.barrier();
        u.delete_(self.mate_bases[self.me]);
        u.delete_(self.cand_bases[self.me]);
        u.delete_(self.scratch);
        u.barrier();
    }
}
