//! Sequential reference: greedy maximum-weight matching.
//!
//! The locally-dominant algorithm (Preis; Manne & Bisseling) computes
//! exactly the greedy matching when edge weights are totally ordered, so
//! this is both the ½-approximation baseline and the ground truth the
//! distributed implementation must reproduce bit-for-bit.

use graphgen::Graph;

/// Vertex states in a matching: `mate[v]` is the partner, or `UNMATCHED`.
pub const UNMATCHED: u32 = u32::MAX;

/// A matching: partner per vertex plus its total weight.
#[derive(Clone, Debug, PartialEq)]
pub struct Matching {
    /// `mate[v]` is `v`'s partner, or [`UNMATCHED`].
    pub mate: Vec<u32>,
    /// Sum of matched edge weights.
    pub weight: f64,
}

impl Matching {
    /// Number of matched edges.
    pub fn edges(&self) -> usize {
        self.mate.iter().filter(|&&m| m != UNMATCHED).count() / 2
    }

    /// Check structural validity against `g`: symmetry and edge existence.
    /// Panics with a description on violation.
    pub fn validate(&self, g: &Graph) {
        assert_eq!(self.mate.len(), g.n);
        let mut weight = 0.0;
        for v in 0..g.n {
            let m = self.mate[v];
            if m == UNMATCHED {
                continue;
            }
            assert_ne!(m as usize, v, "vertex {v} matched to itself");
            assert_eq!(
                self.mate[m as usize] as usize, v,
                "mate asymmetry: mate[{v}]={m} but mate[{m}]={}",
                self.mate[m as usize]
            );
            let w = g
                .edge_weight(v, m as usize)
                .unwrap_or_else(|| panic!("matched pair ({v},{m}) is not an edge"));
            if v < m as usize {
                weight += w;
            }
        }
        assert!(
            (weight - self.weight).abs() <= 1e-9 * weight.abs().max(1.0),
            "weight mismatch: recomputed {weight}, recorded {}",
            self.weight
        );
    }

    /// Check maximality: no edge remains with both endpoints unmatched
    /// (greedy/locally-dominant matchings are maximal).
    pub fn assert_maximal(&self, g: &Graph) {
        for v in 0..g.n {
            if self.mate[v] != UNMATCHED {
                continue;
            }
            for (u, _) in g.neighbors(v) {
                assert!(
                    self.mate[u as usize] != UNMATCHED,
                    "edge ({v},{u}) has both endpoints unmatched"
                );
            }
        }
    }
}

/// The strict total order on edges used by both implementations: weight
/// first, canonical endpoint pair as the tiebreak. Returns whether edge
/// `(a1,b1,w1)` beats `(a2,b2,w2)`.
#[inline]
pub fn edge_beats(w1: f64, a1: u32, b1: u32, w2: f64, a2: u32, b2: u32) -> bool {
    let k1 = (w1, a1.min(b1), a1.max(b1));
    let k2 = (w2, a2.min(b2), a2.max(b2));
    k1 > k2
}

/// Greedy maximum-weight matching: repeatedly take the heaviest remaining
/// edge whose endpoints are both free. ½-approximation of the optimum.
pub fn greedy(g: &Graph) -> Matching {
    let mut edges: Vec<(f64, u32, u32)> = Vec::with_capacity(g.edges());
    for v in 0..g.n {
        for (u, w) in g.neighbors(v) {
            if (v as u32) < u {
                edges.push((w, v as u32, u));
            }
        }
    }
    // Heaviest first, with the same tiebreak order as `edge_beats`.
    edges.sort_by(|a, b| {
        let ka = (b.0, b.1, b.2); // note: reversed for descending sort
        let kb = (a.0, a.1, a.2);
        ka.partial_cmp(&kb).expect("NaN edge weight")
    });
    let mut mate = vec![UNMATCHED; g.n];
    let mut weight = 0.0;
    for (w, a, b) in edges {
        if mate[a as usize] == UNMATCHED && mate[b as usize] == UNMATCHED {
            mate[a as usize] = b;
            mate[b as usize] = a;
            weight += w;
        }
    }
    Matching { mate, weight }
}

/// Exact maximum-weight matching by brute force (exponential; tiny graphs
/// only). Used by tests to confirm the ½-approximation bound.
pub fn brute_force_optimum(g: &Graph) -> f64 {
    assert!(g.n <= 20, "brute force is exponential");
    let mut edges: Vec<(f64, u32, u32)> = Vec::new();
    for v in 0..g.n {
        for (u, w) in g.neighbors(v) {
            if (v as u32) < u {
                edges.push((w, v as u32, u));
            }
        }
    }
    fn rec(edges: &[(f64, u32, u32)], used: u32) -> f64 {
        let Some((&(w, a, b), rest)) = edges.split_first() else {
            return 0.0;
        };
        let skip = rec(rest, used);
        if used & (1 << a) == 0 && used & (1 << b) == 0 {
            let take = w + rec(rest, used | (1 << a) | (1 << b));
            if take > skip {
                return take;
            }
        }
        skip
    }
    rec(&edges, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen::Graph;

    #[test]
    fn path_graph_greedy() {
        // Path 0-1-2-3 with weights 1, 3, 1: greedy takes the middle edge.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1.0, 3.0, 1.0]));
        let m = greedy(&g);
        m.validate(&g);
        assert_eq!(m.weight, 3.0);
        assert_eq!(m.mate[1], 2);
        assert_eq!(m.mate[0], UNMATCHED);
        assert_eq!(m.edges(), 1);
    }

    #[test]
    fn path_graph_increasing_weights() {
        // 0-1 (1), 1-2 (2), 2-3 (3): greedy takes 2-3 then 0-1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)], Some(&[1.0, 2.0, 3.0]));
        let m = greedy(&g);
        m.validate(&g);
        m.assert_maximal(&g);
        assert_eq!(m.weight, 4.0);
        assert_eq!(m.edges(), 2);
    }

    #[test]
    fn greedy_is_half_approximate() {
        for seed in 0..10u64 {
            let g = graphgen::powerlaw(16, 2, seed);
            let m = greedy(&g);
            m.validate(&g);
            m.assert_maximal(&g);
            let opt = brute_force_optimum(&g);
            assert!(
                m.weight >= 0.5 * opt - 1e-12,
                "seed {seed}: greedy {} below half of optimum {opt}",
                m.weight
            );
            assert!(m.weight <= opt + 1e-12);
        }
    }

    #[test]
    fn empty_and_single_edge() {
        let g = Graph::from_edges(3, &[], None);
        let m = greedy(&g);
        assert_eq!(m.edges(), 0);
        assert_eq!(m.weight, 0.0);

        let g = Graph::from_edges(2, &[(0, 1)], Some(&[5.0]));
        let m = greedy(&g);
        assert_eq!(m.edges(), 1);
        assert_eq!(m.weight, 5.0);
    }

    #[test]
    fn edge_beats_is_total_order_with_ties() {
        // Same weight: canonical pair breaks the tie deterministically.
        assert!(edge_beats(1.0, 5, 2, 1.0, 1, 3));
        assert!(!edge_beats(1.0, 1, 3, 1.0, 5, 2));
        assert!(edge_beats(2.0, 0, 1, 1.0, 5, 9));
        // Symmetric endpoint order does not matter.
        assert_eq!(
            edge_beats(1.0, 2, 5, 1.0, 1, 3),
            edge_beats(1.0, 5, 2, 1.0, 3, 1)
        );
    }

    #[test]
    #[should_panic(expected = "asymmetry")]
    fn validate_catches_asymmetry() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)], None);
        let m = Matching {
            mate: vec![1, 2, 1],
            weight: 0.0,
        };
        m.validate(&g);
    }
}
