//! Message-driven distributed matching — the "MPI-style" baseline.
//!
//! The ExaGraph application began as an MPI code (Ghosh et al. [15] in the
//! paper) whose UPC++ RMA port the paper measures; the paper notes the two
//! perform comparably. This module implements the message-passing flavor:
//! instead of *reading* neighbor state with one-sided operations, ranks
//! exchange explicit protocol messages (via `rpc_ff` active messages) —
//! REQUEST (I propose to you), MATCH (mutual, we are paired), and REJECT
//! (I am taken; advance your pointer).
//!
//! Both implementations compute exactly the greedy matching under the same
//! edge order, which the tests assert; the benchmark harness can compare
//! their communication profiles.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use graphgen::{BlockPartition, Graph};
use upcr::{Rank, Upcr};

use crate::sequential::{edge_beats, Matching, UNMATCHED};

/// Protocol messages between vertex owners.
#[derive(Clone, Copy, Debug)]
enum Msg {
    /// `from` proposes to `to` (both global vertex ids).
    Request { from: u32, to: u32 },
    /// `from` accepts `to`'s proposal: the edge is matched.
    Accept { from: u32, to: u32 },
    /// `from` is no longer available; `to` must re-propose elsewhere.
    Reject { from: u32, to: u32 },
}

thread_local! {
    /// Per-rank inbox, filled by incoming active messages.
    static INBOX: RefCell<VecDeque<Msg>> = const { RefCell::new(VecDeque::new()) };
    /// Messages consumed on this rank (for termination detection).
    static CONSUMED: AtomicU64 = const { AtomicU64::new(0) };
}

/// Per-rank matcher state for the message-passing algorithm.
struct MpState {
    part: BlockPartition,
    me: usize,
    range: std::ops::Range<usize>,
    /// Sorted candidate lists (best-first), as in the RMA matcher.
    nbrs: Vec<Vec<(u32, f64)>>,
    cursor: Vec<usize>,
    /// mate[global vertex] for owned vertices only (indexed locally).
    mate: Vec<u32>,
    /// Vertices that proposed to an owned vertex and await a verdict.
    pending_in: Vec<Vec<u32>>,
    /// Messages sent by this rank (termination detection).
    sent: u64,
}

/// Statistics from a message-passing solve.
#[derive(Clone, Copy, Debug, Default)]
pub struct MpStats {
    /// Protocol messages sent by this rank.
    pub messages: u64,
    /// Progress rounds until quiescence.
    pub rounds: usize,
}

impl MpState {
    fn new(u: &Upcr, g: &Graph) -> Self {
        let part = BlockPartition::new(g.n, u.rank_n());
        let me = u.rank_me();
        let range = part.range(me);
        let mut nbrs = Vec::with_capacity(range.len());
        for v in range.clone() {
            let v32 = v as u32;
            let mut list: Vec<(u32, f64)> = g.neighbors(v).collect();
            list.sort_by(|&(a, wa), &(b, wb)| {
                if edge_beats(wa, v32, a, wb, v32, b) {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            nbrs.push(list);
        }
        MpState {
            part,
            me,
            range: range.clone(),
            nbrs,
            cursor: vec![0; range.len()],
            mate: vec![UNMATCHED; range.len()],
            pending_in: vec![Vec::new(); range.len()],
            sent: 0,
        }
    }

    #[inline]
    fn local(&self, v: u32) -> usize {
        v as usize - self.range.start
    }

    /// The current best-candidate of an owned vertex, if any.
    fn candidate(&self, v: u32) -> Option<u32> {
        self.nbrs[self.local(v)]
            .get(self.cursor[self.local(v)])
            .map(|&(u, _)| u)
    }

    fn send(&mut self, u: &Upcr, msg: Msg) {
        let to = match msg {
            Msg::Request { to, .. } | Msg::Accept { to, .. } | Msg::Reject { to, .. } => to,
        };
        let owner = self.part.owner(to as usize);
        self.sent += 1;
        if owner == self.me {
            INBOX.with(|q| q.borrow_mut().push_back(msg));
        } else {
            u.rpc_ff(Rank(owner as u32), move || {
                INBOX.with(|q| q.borrow_mut().push_back(msg));
            });
        }
    }

    /// Send the initial (or re-) proposal of owned vertex `v`.
    fn propose(&mut self, u: &Upcr, v: u32) {
        if let Some(c) = self.candidate(v) {
            self.send(u, Msg::Request { from: v, to: c });
        }
        // A vertex with an exhausted list is dead; nothing to do — any
        // pending proposals to it are rejected when processed.
    }

    /// Record a match for owned vertex `v` with partner `p`, rejecting all
    /// other suitors.
    fn set_mate(&mut self, u: &Upcr, v: u32, p: u32) {
        let lv = self.local(v);
        self.mate[lv] = p;
        let suitors = std::mem::take(&mut self.pending_in[lv]);
        for s in suitors {
            if s != p {
                self.send(u, Msg::Reject { from: v, to: s });
            }
        }
    }

    /// Process one message addressed to an owned vertex.
    fn handle(&mut self, u: &Upcr, msg: Msg) {
        match msg {
            Msg::Request { from, to } => {
                let lv = self.local(to);
                if self.mate[lv] != UNMATCHED {
                    self.send(u, Msg::Reject { from: to, to: from });
                    return;
                }
                if self.candidate(to) == Some(from) {
                    // Mutual preference: accept and match.
                    self.set_mate(u, to, from);
                    self.send(u, Msg::Accept { from: to, to: from });
                } else {
                    // Remember the suitor; if our preferred choices fall
                    // through we may come back to it (when our cursor
                    // reaches `from` we will propose to it ourselves).
                    self.pending_in[lv].push(from);
                }
            }
            Msg::Accept { from, to } => {
                // Our proposal was accepted. Crossing accepts (both sides
                // matched via each other's Request) make this a no-op.
                if self.mate[self.local(to)] == UNMATCHED {
                    debug_assert_eq!(self.candidate(to), Some(from));
                    self.set_mate(u, to, from);
                }
            }
            Msg::Reject { from, to } => {
                let lv = self.local(to);
                if self.mate[lv] != UNMATCHED {
                    return; // already matched elsewhere; stale reject
                }
                // Advance past `from` and re-propose. A reject for a
                // non-current candidate is stale (our proposal to it was
                // answered already and we moved on); ignore it — our
                // outstanding proposal to the current candidate still has a
                // pending verdict, so no progress is lost.
                if self.candidate(to) != Some(from) {
                    return;
                }
                self.cursor[lv] += 1;
                // If the new candidate already proposed to us, the edge is
                // mutually preferred right now: match on the spot.
                if let Some(c) = self.candidate(to) {
                    if self.pending_in[lv].contains(&c) {
                        self.set_mate(u, to, c);
                        self.send(u, Msg::Accept { from: to, to: c });
                        return;
                    }
                }
                self.propose(u, to);
            }
        }
    }
}

/// Solve by message passing; returns the gathered matching (identical on
/// every rank) and this rank's statistics.
pub fn solve_mp(u: &Upcr, g: &Graph) -> (Matching, MpStats) {
    INBOX.with(|q| q.borrow_mut().clear());
    CONSUMED.with(|c| c.store(0, Ordering::Relaxed));
    let mut st = MpState::new(u, g);
    u.barrier();

    // Initial proposals.
    for v in st.range.clone() {
        st.propose(u, v as u32);
    }

    // Drive to quiescence: drain inbox, then check global message balance.
    let mut stats = MpStats::default();
    loop {
        stats.rounds += 1;
        loop {
            u.progress(); // moves rpc_ff payloads into INBOX
            let Some(msg) = INBOX.with(|q| q.borrow_mut().pop_front()) else {
                break;
            };
            st.handle(u, msg);
            CONSUMED.with(|c| c.fetch_add(1, Ordering::Relaxed));
        }
        let sent = u.allreduce_sum_u64(st.sent);
        let consumed = u.allreduce_sum_u64(CONSUMED.with(|c| c.load(Ordering::Relaxed)));
        if sent == consumed {
            break;
        }
        std::thread::yield_now();
    }
    stats.messages = st.sent;

    // Publish results into shared memory for gathering.
    let local_len = st.range.len().max(1);
    let arr = u.new_array::<u64>(local_len);
    for (i, &m) in st.mate.iter().enumerate() {
        u.local(arr.add(i))
            .set(if m == UNMATCHED { u64::MAX } else { m as u64 });
    }
    let bases: Vec<_> = (0..u.rank_n()).map(|r| u.broadcast(arr, r)).collect();
    u.barrier();
    let mut mate = vec![UNMATCHED; g.n];
    let mut weight = 0.0;
    let part = BlockPartition::new(g.n, u.rank_n());
    #[allow(clippy::needless_range_loop)]
    for v in 0..g.n {
        let owner = part.owner(v);
        let gp = bases[owner].add(part.local_index(v));
        let raw = if u.is_local(gp) {
            u.local(gp).get()
        } else {
            u.rget(gp).wait()
        };
        if raw != u64::MAX {
            mate[v] = raw as u32;
            if v < raw as usize {
                weight += g.edge_weight(v, raw as usize).expect("matched non-edge");
            }
        }
    }
    u.barrier();
    u.delete_(arr);
    u.barrier();
    (Matching { mate, weight }, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::greedy;
    use upcr::{launch, RuntimeConfig};

    fn check(g: &Graph, ranks: usize) {
        let seq = greedy(g);
        let rt = RuntimeConfig::mpi(ranks, ranks).with_segment_size(1 << 20);
        let out = launch(rt, |u| solve_mp(u, g).0);
        for m in out {
            assert_eq!(m.mate, seq.mate, "message-passing result must equal greedy");
            assert!((m.weight - seq.weight).abs() < 1e-9);
        }
    }

    #[test]
    fn mp_equals_greedy_small() {
        for seed in 0..4 {
            check(&graphgen::powerlaw(120, 2, seed), 4);
        }
    }

    #[test]
    fn mp_equals_greedy_mesh() {
        check(&graphgen::mesh3d(6, 6, 6), 4);
        check(&graphgen::mesh2d_irregular(15, 15, 0.1, 3), 2);
    }

    #[test]
    fn mp_equals_greedy_single_rank() {
        check(&graphgen::knn(200, 4, 9), 1);
    }

    #[test]
    fn mp_and_rma_agree() {
        let g = graphgen::geometric(400, 8.0, 10, 7);
        let rt = RuntimeConfig::mpi(4, 4).with_segment_size(1 << 22);
        let mp = launch(rt, |u| solve_mp(u, &g).0);
        let rma = crate::benchmark(4, upcr::LibVersion::V2021_3_6Eager, &g);
        assert_eq!(mp[0].edges(), rma.matched);
        assert!((mp[0].weight - rma.weight).abs() < 1e-9);
    }
}
