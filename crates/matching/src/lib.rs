//! # matching — half-approximate maximum-weight graph matching
//!
//! Reproduces the graph-matching application from *"Optimization of
//! Asynchronous Communication Operations through Eager Notifications"*
//! (SC 2021, §IV-C / Figure 8): the ExaGraph locally-dominant matching,
//! with vertices block-partitioned over ranks and availability/proposal
//! state read through one-sided RMA. Same-rank targets are manually
//! optimized (as in the original application); co-located-rank targets take
//! the runtime RMA path that eager notification accelerates.
//!
//! [`sequential::greedy`] is the reference: on totally-ordered edge
//! weights the distributed result equals it exactly, which the tests
//! verify along with validity, symmetry, maximality, and the
//! ½-approximation bound.

pub mod dist;
pub mod dist_mp;
pub mod harness;
pub mod sequential;

pub use dist::{DistMatcher, SolveStats};
pub use dist_mp::{solve_mp, MpStats};
pub use harness::{benchmark, benchmark_preset, run, MatchRun};
pub use sequential::{brute_force_optimum, edge_beats, greedy, Matching, UNMATCHED};
