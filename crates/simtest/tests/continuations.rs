//! Differential and regression coverage for the continuation-callback
//! completion mode and the background progress thread.
//!
//! The acceptance bar: the callback-storm workload must be observationally
//! equivalent across eager/defer builds under every chaos plan, and a
//! thread-on simulated run must be **byte-identical** to a thread-off one
//! (the progress thread is a strict no-op under the virtual clock, so
//! seeded schedules stay replayable). The age-flush starvation regressions
//! pin the bugfix that a quiescent sender's coalescer bucket is flushed by
//! someone else — a peer's progress quantum under the virtual clock, the
//! background progress thread under the wall clock.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use gasnex::{AggConfig, Transport};
use simtest::{fault_plans, run, run_with_options, Outcome, Workload};
use upcr::{launch, LibVersion, RuntimeConfig};

/// The eight fixed seeds the chaos CI job sweeps.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn assert_equivalent(seed: u64, plan_name: &str, a: Outcome, b: Outcome) {
    simtest::assert_outcomes_match(
        &format!("callback-storm seed={seed} plan={plan_name}"),
        a,
        b,
    );
}

#[test]
fn callback_storm_equivalent_under_chaos_with_and_without_thread() {
    // Full sweep: 8 seeds × 3 plans. For each cell the defer and eager
    // builds must agree, and requesting the progress thread on the
    // virtual-clock conduit must change nothing at all (no-op rule).
    for &seed in &SEEDS {
        for (name, plan) in fault_plans(seed) {
            let defer = run(
                Workload::CallbackStorm,
                LibVersion::V2021_3_6Defer,
                seed,
                Some(plan),
            );
            let eager = run(
                Workload::CallbackStorm,
                LibVersion::V2021_3_6Eager,
                seed,
                Some(plan),
            );
            assert_equivalent(seed, name, defer, eager);
            let (threaded, _) = run_with_options(
                Workload::CallbackStorm,
                LibVersion::V2021_3_6Eager,
                seed,
                Some(plan),
                Transport::Sim,
                true,
            );
            assert_equivalent(seed, &format!("{name}+thread"), eager, threaded);
            assert!(eager.injected > 0, "callback storm must use the network");
        }
    }
}

#[test]
fn progress_thread_is_noop_under_virtual_clock_to_the_byte() {
    // Beyond outcome equality: the per-rank quiesced snapshots — every
    // counter the runtime exposes — must be byte-identical with the
    // thread flag on and off, because under ClockMode::Virtual the thread
    // is never spawned.
    let (_, plan) = fault_plans(5).pop().expect("combined plan");
    let (off, snaps_off) = run_with_options(
        Workload::CallbackStorm,
        LibVersion::V2021_3_6Eager,
        5,
        Some(plan),
        Transport::Sim,
        false,
    );
    let (on, snaps_on) = run_with_options(
        Workload::CallbackStorm,
        LibVersion::V2021_3_6Eager,
        5,
        Some(plan),
        Transport::Sim,
        true,
    );
    assert_eq!(off, on);
    for (r, (a, b)) in snaps_off.iter().zip(&snaps_on).enumerate() {
        assert_eq!(
            a, b,
            "rank {r}: thread-on snapshot diverged from thread-off under the virtual clock"
        );
    }
}

#[test]
fn callback_storm_replays_identically() {
    let (_, plan) = fault_plans(21).pop().expect("combined plan");
    let a = run(
        Workload::CallbackStorm,
        LibVersion::V2021_3_6Eager,
        21,
        Some(plan),
    );
    let b = run(
        Workload::CallbackStorm,
        LibVersion::V2021_3_6Eager,
        21,
        Some(plan),
    );
    assert_eq!(a, b, "callback-storm chaos run must replay identically");
}

#[test]
fn callback_storm_agrees_across_sim_and_udp_with_progress_thread() {
    // The Sim-vs-UDP smoke: the same workload carried by real loopback
    // datagrams with the background progress thread actually running
    // (wall clock) must compute the same digest and completion count as
    // the simulated thread-off run. Reliability counters are not
    // comparable across conduits (real-wire retransmission races).
    let sim = run(Workload::CallbackStorm, LibVersion::V2021_3_6Eager, 3, None);
    let (udp, _) = run_with_options(
        Workload::CallbackStorm,
        LibVersion::V2021_3_6Eager,
        3,
        None,
        Transport::UdpSocket,
        true,
    );
    assert_eq!(sim.digest, udp.digest, "digest must be conduit-independent");
    assert_eq!(
        sim.completions, udp.completions,
        "completion count must be conduit-independent"
    );
}

#[test]
fn quiescent_senders_bucket_age_flushes_via_peer_progress() {
    // Age-flush starvation regression, virtual clock: rank 1 buffers one
    // put below the size threshold and then goes quiescent — it never
    // calls progress again until released. Rank 0's progress quanta must
    // age-flush the *foreign* bucket once the virtual clock passes its
    // deadline. Before the fix this loop never observed the value.
    let buffered = Arc::new(AtomicBool::new(false));
    let released = Arc::new(AtomicBool::new(false));
    let rt = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 14)
        .with_net(simtest::net_for(None))
        .with_agg(
            AggConfig::enabled(64)
                .with_max_age_ns(50_000)
                .with_max_inflight(64),
        );
    let (buffered2, released2) = (Arc::clone(&buffered), Arc::clone(&released));
    launch(rt, move |u| {
        let mine = u.new_::<u64>(0);
        let r0 = u.broadcast(mine, 0);
        let r1 = u.broadcast(mine, 1);
        u.barrier();
        if u.rank_me() == 1 {
            // Buffer one put to rank 0 (1 op < flush_ops = 64, so only the
            // age trigger can ever flush it), then stop progressing.
            let _pending = u.rput(7u64, r0);
            buffered2.store(true, Ordering::Release);
            while !released2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
        } else {
            while !buffered2.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            // Keep the virtual clock moving with real cross-node traffic;
            // each quantum also tries the foreign age-flush.
            let slot = &u.local_slice_u64(mine, 1)[0];
            let mut tries = 0u64;
            while slot.load(Ordering::Acquire) != 7 {
                u.rget(r1).wait();
                tries += 1;
                assert!(
                    tries < 200_000,
                    "quiescent sender's bucket never age-flushed (starvation regression)"
                );
            }
            released2.store(true, Ordering::Release);
        }
        u.barrier();
    });
}

#[test]
fn quiescent_senders_bucket_age_flushes_via_progress_thread() {
    // Age-flush starvation regression, wall clock: after rank 1 buffers
    // the put, *no rank* calls progress at all — the background progress
    // thread alone must age-flush the bucket, poll the conduit, and land
    // the write in rank 0's segment.
    let buffered = Arc::new(AtomicBool::new(false));
    let released = Arc::new(AtomicBool::new(false));
    let rt = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 14)
        .with_agg(
            AggConfig::enabled(64)
                .with_max_age_ns(1_000_000)
                .with_max_inflight(64),
        )
        .with_progress_thread(true);
    let (buffered2, released2) = (Arc::clone(&buffered), Arc::clone(&released));
    launch(rt, move |u| {
        let mine = u.new_::<u64>(0);
        let r0 = u.broadcast(mine, 0);
        u.barrier();
        if u.rank_me() == 1 {
            let _pending = u.rput(7u64, r0);
            buffered2.store(true, Ordering::Release);
            while !released2.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        } else {
            while !buffered2.load(Ordering::Acquire) {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let slot = &u.local_slice_u64(mine, 1)[0];
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while slot.load(Ordering::Acquire) != 7 {
                assert!(
                    std::time::Instant::now() < deadline,
                    "progress thread never age-flushed the quiescent sender's bucket"
                );
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            released2.store(true, Ordering::Release);
        }
        u.barrier();
        // The thread did real work: it polled, and this node's counters saw
        // the flush (counter lives on the flushing thread's home rank).
        let s = u.stats();
        if u.rank_me() == 0 {
            assert!(
                s.progress_thread_polls > 0,
                "progress thread must have polled on node 0"
            );
        }
    });
}

#[test]
fn callbacks_drain_on_the_progress_thread_without_rank_polls() {
    // A rank that issues a callback-carrying local op and then sleeps
    // (zero progress calls) still sees the callback run: the background
    // progress thread drains the queue.
    let rt = RuntimeConfig::smp(1)
        .with_segment_size(1 << 14)
        .with_progress_thread(true);
    launch(rt, move |u| {
        let hit = Arc::new(AtomicBool::new(false));
        let p = u.new_::<u64>(0);
        let h = Arc::clone(&hit);
        u.rput_with(
            9u64,
            p,
            upcr::operation_cx::as_callback(move |_: ()| {
                h.store(true, Ordering::Release);
            }),
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !hit.load(Ordering::Acquire) {
            assert!(
                std::time::Instant::now() < deadline,
                "progress thread never drained the callback queue"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = u.stats();
        assert_eq!(s.callbacks_run, 1);
        assert!(s.progress_thread_polls > 0);
        u.barrier();
    });
}
