//! Chaos differential for the notifiable-RMA signal path.
//!
//! [`Workload::SignalStorm`] sends *only* signal-carrying messages
//! (put-with-signal and amo-with-signal), so this sweep exercises the
//! SIGNAL delivery path — badge coalescing after receiver dedup — under
//! the full fault matrix: for every seed × plan, an eager run and a defer
//! run must produce bit-identical [`Outcome`]s, and the workload's own
//! internal asserts (counter == `ranks - 1`, payloads intact, badge word
//! empty after consumption) prove every signal was delivered exactly once
//! no matter how often the wire dropped, duplicated, or reordered it.

use simtest::{fault_plans, run, run_agg, Outcome, Workload, RANKS};
use upcr::LibVersion;

/// The eight fixed seeds the chaos CI job sweeps (same as differential.rs).
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn assert_equivalent(seed: u64, plan_name: &str, a: Outcome, b: Outcome) {
    // Routed through the harness helper so a digest mismatch auto-dumps
    // every rank's quiesced introspection snapshot before panicking.
    simtest::assert_outcomes_match(&format!("signal-storm seed={seed} plan={plan_name}"), a, b);
}

#[test]
fn signal_storm_equivalent_under_chaos() {
    // The storm injects only ~16 messages per run, so any individual
    // (seed, plan) cell may dodge a probabilistic fault; the sweep-wide
    // totals must show every fault class actually hit signal messages.
    let (mut total_drops, mut total_dups) = (0u64, 0u64);
    for &seed in &SEEDS {
        for (name, plan) in fault_plans(seed) {
            let defer = run(
                Workload::SignalStorm,
                LibVersion::V2021_3_6Defer,
                seed,
                Some(plan),
            );
            let eager = run(
                Workload::SignalStorm,
                LibVersion::V2021_3_6Eager,
                seed,
                Some(plan),
            );
            assert_equivalent(seed, name, defer, eager);
            assert!(
                eager.injected > 0,
                "signal storm must put signal messages on the wire"
            );
            if plan.drop_ppm > 0 {
                assert_eq!(
                    eager.retries, eager.drops_injected,
                    "every dropped signal fires exactly one retransmission"
                );
                total_drops += eager.drops_injected;
            }
            if plan.dup_ppm > 0 {
                total_dups += eager.dup_suppressed;
            }
        }
    }
    assert!(total_drops > 0, "no plan ever dropped a signal message");
    assert!(total_dups > 0, "no plan ever duplicated a signal message");
}

#[test]
fn signal_storm_exact_message_counts_fault_free() {
    // 4 ranks × 3 peers × 2 signal ops (put_signal + amo_signal) = 24
    // completed operations; only the 2-peers-off-node share injects, so
    // 4 ranks × 2 off-node peers × 2 ops = 16 wire messages — all signals.
    for version in [LibVersion::V2021_3_6Defer, LibVersion::V2021_3_6Eager] {
        let o = run(Workload::SignalStorm, version, 7, None);
        assert_eq!(o.completions, (RANKS * (RANKS - 1) * 2) as u64);
        assert_eq!(o.injected, (RANKS * 2 * 2) as u64);
        assert_eq!(o.retries, 0, "fault-free run must not retry");
    }
}

#[test]
fn duplicated_signal_racing_its_reordered_original_is_promoted_not_reapplied() {
    // Under the dup+reorder plan a duplicated copy can overtake its
    // reordered original; the conduit *promotes* the trailing copy to be
    // the real delivery (`dup_promoted`) rather than swallowing it. Every
    // message in this workload is a signal, so a promotion here IS a
    // promoted signal — and the workload's counter assert proves the race
    // still applied the amo (and OR-ed the badge) exactly once. The plan
    // seeds are fixed, so at least one sweep seed must exhibit the race.
    // An aggressive duplicate+reorder plan: the storm only injects ~16
    // messages per run, so the sweep plans' 20% dup rate rarely lines a
    // duplicate up ahead of its reordered original. Crank both knobs and
    // let every duplicate race.
    let mut promoted = 0u64;
    for &seed in &SEEDS {
        let plan = upcr::FaultPlan::seeded(seed.wrapping_mul(0xD135_87A9) ^ 0x3C3C)
            .with_dups(600_000)
            .with_reorder(600_000, 12_000);
        let (o, net) = run_agg(
            Workload::SignalStorm,
            LibVersion::V2021_3_6Eager,
            seed,
            Some(plan),
            None,
        );
        assert!(o.dup_suppressed + net.dup_promoted > 0, "seed {seed} inert");
        promoted += net.dup_promoted;
    }
    assert!(
        promoted > 0,
        "no sweep seed promoted a duplicated signal over its reordered \
         original — the race this test exists to cover never happened"
    );
}

#[test]
fn signal_storm_replays_identically() {
    // Virtual clock + seeded plan: the whole outcome, including the
    // signal-delivery schedule, is a pure function of (seed, plan).
    let (_, plan) = fault_plans(13).pop().expect("combined plan");
    let a = run(
        Workload::SignalStorm,
        LibVersion::V2021_3_6Eager,
        13,
        Some(plan),
    );
    let b = run(
        Workload::SignalStorm,
        LibVersion::V2021_3_6Eager,
        13,
        Some(plan),
    );
    assert_eq!(a, b, "signal chaos run must replay identically");
}

#[test]
fn legacy_2021_3_0_agrees_on_signals() {
    for &seed in &SEEDS[..2] {
        let (name, plan) = fault_plans(seed).pop().expect("combined plan");
        let legacy = run(
            Workload::SignalStorm,
            LibVersion::V2021_3_0,
            seed,
            Some(plan),
        );
        let eager = run(
            Workload::SignalStorm,
            LibVersion::V2021_3_6Eager,
            seed,
            Some(plan),
        );
        assert_equivalent(seed, name, legacy, eager);
    }
}
