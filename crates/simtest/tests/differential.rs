//! The differential eager/defer equivalence sweep.
//!
//! For every workload × seed × fault plan, a defer-mode run and an
//! eager-mode run must produce identical [`Outcome`]s: the same final
//! shared-memory digest, the same completion count, and the same
//! reliability-layer counters — the paper's "semantics unchanged" claim as
//! an executable invariant, exercised under an adversarial network. Every
//! faulted run must also terminate (the retry layer guarantees delivery)
//! with its backoff bounded by the plan.

use gasnex::FaultPlan;
use simtest::{fault_plans, run, Outcome, Workload};
use upcr::LibVersion;

/// The eight fixed seeds the chaos CI job sweeps.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn assert_equivalent(w: Workload, seed: u64, plan_name: &str, a: Outcome, b: Outcome) {
    // Routed through the harness helper so a digest mismatch auto-dumps
    // every rank's quiesced introspection snapshot before panicking.
    simtest::assert_outcomes_match(&format!("{} seed={seed} plan={plan_name}", w.name()), a, b);
}

fn assert_faults_exercised(w: Workload, seed: u64, name: &str, plan: &FaultPlan, o: &Outcome) {
    assert!(
        o.injected > 0,
        "{}: workload must use the network",
        w.name()
    );
    if plan.drop_ppm > 0 {
        assert!(
            o.drops_injected > 0,
            "{} seed={} plan={}: drop plan never dropped ({} messages)",
            w.name(),
            seed,
            name,
            o.injected
        );
        assert_eq!(
            o.retries, o.drops_injected,
            "every drop fires exactly one retransmission"
        );
        assert!(
            o.max_backoff_ns >= plan.rto_ns && o.max_backoff_ns <= plan.max_backoff_ns,
            "{} seed={} plan={}: backoff {} outside [{}, {}]",
            w.name(),
            seed,
            name,
            o.max_backoff_ns,
            plan.rto_ns,
            plan.max_backoff_ns
        );
    }
    if plan.dup_ppm > 0 {
        assert!(
            o.dup_suppressed > 0,
            "{} seed={} plan={}: dup plan never duplicated",
            w.name(),
            seed,
            name
        );
    }
}

/// Sweep one workload through every seed × plan, asserting eager/defer
/// equivalence and that the plan's faults actually fired and stayed
/// bounded.
fn sweep(w: Workload) {
    for &seed in &SEEDS {
        for (name, plan) in fault_plans(seed) {
            let defer = run(w, LibVersion::V2021_3_6Defer, seed, Some(plan));
            let eager = run(w, LibVersion::V2021_3_6Eager, seed, Some(plan));
            assert_equivalent(w, seed, name, defer, eager);
            assert_faults_exercised(w, seed, name, &plan, &eager);
        }
    }
}

#[test]
fn put_get_storm_equivalent_under_chaos() {
    sweep(Workload::PutGetStorm);
}

#[test]
fn atomic_storm_equivalent_under_chaos() {
    sweep(Workload::AtomicStorm);
}

#[test]
fn when_all_fan_in_equivalent_under_chaos() {
    sweep(Workload::WhenAllFanIn);
}

#[test]
fn gups_small_equivalent_under_chaos() {
    sweep(Workload::GupsSmall);
}

#[test]
fn legacy_2021_3_0_agrees_on_combined_plan() {
    // The all-deferred 2021.3.0 build must compute the same thing too — a
    // smaller matrix, since the full sweep above already covers the
    // defer/eager pair the paper's optimization distinguishes.
    for &seed in &SEEDS[..2] {
        let (name, plan) = fault_plans(seed).pop().expect("combined plan");
        for w in Workload::ALL {
            let legacy = run(w, LibVersion::V2021_3_0, seed, Some(plan));
            let eager = run(w, LibVersion::V2021_3_6Eager, seed, Some(plan));
            assert_equivalent(w, seed, name, legacy, eager);
        }
    }
}

#[test]
fn fault_free_baseline_agrees_across_all_versions() {
    for &seed in &SEEDS[..2] {
        for w in Workload::ALL {
            let outcomes: Vec<Outcome> = LibVersion::ALL
                .iter()
                .map(|&v| run(w, v, seed, None))
                .collect();
            for o in &outcomes[1..] {
                assert_equivalent(w, seed, "none", outcomes[0], *o);
            }
            let o = outcomes[0];
            assert_eq!(o.retries, 0, "fault-free run must not retry");
            assert_eq!(o.drops_injected, 0);
            assert_eq!(o.dup_suppressed, 0);
            assert_eq!(o.max_backoff_ns, 0);
        }
    }
}

#[test]
fn chaos_runs_replay_identically() {
    // Same (workload, seed, plan, version) twice: the virtual clock plus
    // the seeded fault plan make the whole outcome reproducible.
    let (_, plan) = fault_plans(13).pop().expect("combined plan");
    for w in [Workload::PutGetStorm, Workload::AtomicStorm] {
        let a = run(w, LibVersion::V2021_3_6Eager, 13, Some(plan));
        let b = run(w, LibVersion::V2021_3_6Eager, 13, Some(plan));
        assert_eq!(a, b, "{}: chaos run must replay identically", w.name());
    }
}

#[test]
fn gups_benchmark_entry_survives_chaos() {
    // The public multi-node GUPS entry point on a faulted network: the
    // atomic variant must stay exact and the run must terminate.
    let cfg = gups::GupsConfig {
        log2_table: 10,
        updates_per_word: 1,
        batch: 16,
        verify: true,
    };
    let plan = fault_plans(21)
        .into_iter()
        .find(|(n, _)| *n == "combined")
        .expect("combined plan")
        .1;
    let rt = upcr::RuntimeConfig::udp(4, 2)
        .with_version(LibVersion::V2021_3_6Defer)
        .with_net(simtest::net_for(Some(plan)));
    let r = gups::benchmark_on(rt, &cfg, gups::Variant::AmoFuture);
    assert_eq!(r.errors, 0, "chaos GUPS must stay exact");
    assert_eq!(r.updates, cfg.total_updates());
}
