//! Aggregation-enabled differential tests.
//!
//! Per-target coalescing changes *how many wire messages* carry the same
//! logical operations — it must never change what the program computes.
//! Three invariants pin that down:
//!
//! 1. Degenerate batching (`flush_ops = 1`) is *observationally identical*
//!    to no batching at all: every push flushes a one-op batch, so the
//!    injected message sequence — and therefore the entire [`Outcome`],
//!    chaos counters included — matches the unaggregated run bit for bit.
//! 2. With real batching on, the eager/defer differential invariant still
//!    holds under every fault plan: batch boundaries derive from program
//!    order (size flushes) plus phase structure (the remainder flush at
//!    the first progress call), not from notification timing.
//! 3. Real batching actually batches: GUPS-small injects strictly fewer
//!    wire messages with an identical memory digest, and replays
//!    identically.

use simtest::{fault_plans, harness_agg, run, run_agg, Outcome, Workload};
use upcr::{launch, GlobalPtr, LibVersion, RuntimeConfig};

/// The eight fixed seeds the chaos CI job sweeps.
const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

fn assert_equivalent(w: Workload, seed: u64, label: &str, a: Outcome, b: Outcome) {
    assert_eq!(
        a,
        b,
        "{} seed={} {}: aggregation must preserve observational equivalence",
        w.name(),
        seed,
        label
    );
}

/// Satellite: flush-size-1 aggregation is a semantic no-op. Every candidate
/// op becomes its own one-op batch injected at its original program point,
/// so even the reliability counters (pure functions of the message-id
/// sequence) are unchanged — across all eight seeds, both notification
/// modes, fault-free and under the combined adversary.
#[test]
fn flush_size_one_is_observationally_identical_to_no_aggregation() {
    for &seed in &SEEDS {
        for version in [LibVersion::V2021_3_6Defer, LibVersion::V2021_3_6Eager] {
            let combined = fault_plans(seed).pop().expect("combined plan").1;
            for (label, plan) in [("plan=none", None), ("plan=combined", Some(combined))] {
                for w in [Workload::AtomicStorm, Workload::GupsSmall] {
                    let base = run(w, version, seed, plan);
                    let (agg, stats) = run_agg(w, version, seed, plan, Some(harness_agg(1)));
                    assert_equivalent(w, seed, label, base, agg);
                    assert!(
                        stats.batches_injected > 0,
                        "{label}: candidate ops must still route through the coalescer"
                    );
                    assert_eq!(
                        stats.batches_injected, stats.ops_coalesced,
                        "{label}: flush_ops = 1 makes every batch a single op"
                    );
                }
            }
        }
    }
}

/// Acceptance: the eager/defer differential suite stays bit-identical
/// under every fault plan with real aggregation enabled. Faults act on
/// whole batches — a dropped batch retransmits all its constituents, a
/// duplicated batch dedups as one message — and none of that may depend
/// on the notification mode.
#[test]
fn eager_defer_equivalent_with_aggregation_under_every_plan() {
    for &seed in &SEEDS[..3] {
        for (name, plan) in fault_plans(seed) {
            for w in [
                Workload::PutGetStorm,
                Workload::AtomicStorm,
                Workload::GupsSmall,
            ] {
                let agg = Some(harness_agg(4));
                let (defer, _) = run_agg(w, LibVersion::V2021_3_6Defer, seed, Some(plan), agg);
                let (eager, _) = run_agg(w, LibVersion::V2021_3_6Eager, seed, Some(plan), agg);
                assert_equivalent(w, seed, name, defer, eager);
            }
        }
    }
}

/// Acceptance: on deterministic GUPS-small, aggregation coalesces for real
/// (`batches_injected < ops_coalesced`, strictly fewer wire messages) while
/// producing the identical outcome digest — and the aggregated run replays
/// bit-identically, batching counters included.
#[test]
fn gups_small_aggregation_reduces_messages_with_identical_digest() {
    let seed = 7;
    let base = run(Workload::GupsSmall, LibVersion::V2021_3_6Eager, seed, None);
    let agg_cfg = Some(harness_agg(8));
    let (agg, stats) = run_agg(
        Workload::GupsSmall,
        LibVersion::V2021_3_6Eager,
        seed,
        None,
        agg_cfg,
    );
    assert_eq!(agg.digest, base.digest, "aggregation must not change state");
    assert_eq!(agg.completions, base.completions);
    assert!(stats.batches_injected > 0, "GUPS must exercise batching");
    assert!(
        stats.batches_injected < stats.ops_coalesced,
        "batches must carry more than one op on average: {} batches for {} ops",
        stats.batches_injected,
        stats.ops_coalesced
    );
    assert!(
        agg.injected < base.injected,
        "coalescing must reduce wire messages: {} aggregated vs {} direct",
        agg.injected,
        base.injected
    );
    let (agg2, stats2) = run_agg(
        Workload::GupsSmall,
        LibVersion::V2021_3_6Eager,
        seed,
        None,
        agg_cfg,
    );
    assert_eq!(agg, agg2, "aggregated chaos-free run must replay");
    assert_eq!(
        (stats.batches_injected, stats.ops_coalesced, stats.injected),
        (
            stats2.batches_injected,
            stats2.ops_coalesced,
            stats2.injected
        ),
        "batching counters must replay"
    );
}

/// The explicit-flush surfaces: [`upcr::Upcr::agg_flush`] drains buffers on
/// demand, and entering a barrier flushes implicitly — buffered ops never
/// linger across a synchronization point. Age flushing is disabled
/// (`max_age_ns = u64::MAX`) and the size threshold is unreachable, so any
/// delivery here is attributable to an explicit flush.
#[test]
fn explicit_flush_api_and_barrier_drain_buffers() {
    let agg = gasnex::AggConfig::enabled(1024)
        .with_max_age_ns(u64::MAX)
        .with_max_inflight(64);
    let rt = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 16)
        .with_net(simtest::net_for(None))
        .with_agg(agg);
    launch(rt, |u| {
        const WORDS: usize = 4;
        let n = u.rank_n();
        let me = u.rank_me();
        let target = (me + 1) % n;
        let base = u.new_array::<u64>(WORDS);
        let bases: Vec<GlobalPtr<u64>> = u
            .gather_all(base.encode())
            .into_iter()
            .map(GlobalPtr::decode)
            .collect();
        u.barrier();

        // Phase 1: buffer three cross-node puts, then flush by hand.
        let puts: Vec<_> = (0..3)
            .map(|j| u.rput((me as u64 + 1) * 100 + j as u64, bases[target].add(j)))
            .collect();
        assert_eq!(u.agg_flush(), 1, "three buffered puts form one batch");
        assert_eq!(u.agg_flush(), 0, "second flush finds nothing buffered");
        for f in &puts {
            f.wait();
        }

        // Phase 2: buffer one more put and let the barrier flush it.
        let f = u.rput(u64::MAX, bases[target].add(WORDS - 1));
        u.barrier();
        f.wait();

        u.barrier();
        while u.net_stats().pending > 0 {
            u.progress();
        }
        u.barrier();
        let s = u.net_stats();
        // Two ranks, each one hand flush + at least one barrier flush (a
        // barrier is also re-entered above, but empty buffers don't count).
        assert_eq!(s.flushes_explicit, 4, "explicit flushes: {s:?}");
        assert_eq!(s.flushes_size, 0);
        assert_eq!(s.flushes_age, 0, "age flushing was disabled");
        assert_eq!(s.ops_coalesced, 8, "3 + 1 buffered ops per rank");
        assert_eq!(s.batches_injected, 4);
        let slice = u.local_slice_u64(base, WORDS);
        let sent = (target as u64 + 1) * 100;
        for (j, w) in slice.iter().enumerate().take(3) {
            assert_eq!(
                w.load(std::sync::atomic::Ordering::Relaxed),
                sent + j as u64
            );
        }
        assert_eq!(
            slice[WORDS - 1].load(std::sync::atomic::Ordering::Relaxed),
            u64::MAX
        );
    });
}
