//! Snapshot determinism and the stall watchdog, end to end.
//!
//! Two properties of the introspection layer are pinned here:
//!
//! * **Snapshot determinism** — a quiesced snapshot is a pure function of
//!   the program's communication pattern: same seed + fault plan must
//!   render byte-identical text *and* JSON on every rank, across library
//!   versions (eager vs defer), across repeats, and across conduits (the
//!   simulated delay queue vs real kernel sockets).
//! * **Watchdog diagnosis** — a seeded partition stall must trip the
//!   wait-graph watchdog with a diagnosis that names the blocked rank, the
//!   notify-word edge it waits on, the partitioned peer whose carrier is
//!   stuck on the wire, and the last flight-recorder event touching it —
//!   deterministically, so the text itself replays byte for byte.

use gasnex::Transport;
use simtest::{fault_plans, run_with_snapshots, watchdog_stall_demo, Workload};
use upcr::{launch, LibVersion, RuntimeConfig};

#[test]
fn quiesced_snapshots_byte_identical_across_versions_and_repeats() {
    let (_, plan) = fault_plans(13).pop().expect("combined plan");
    let (o_defer, defer) = run_with_snapshots(
        Workload::SignalStorm,
        LibVersion::V2021_3_6Defer,
        13,
        Some(plan),
        Transport::Sim,
    );
    let (o_eager, eager) = run_with_snapshots(
        Workload::SignalStorm,
        LibVersion::V2021_3_6Eager,
        13,
        Some(plan),
        Transport::Sim,
    );
    let (_, again) = run_with_snapshots(
        Workload::SignalStorm,
        LibVersion::V2021_3_6Eager,
        13,
        Some(plan),
        Transport::Sim,
    );
    assert_eq!(o_defer, o_eager, "outcomes must agree before snapshots can");
    assert_eq!(
        defer, eager,
        "quiesced snapshots must be byte-identical across library versions"
    );
    assert_eq!(
        eager, again,
        "quiesced snapshots must replay byte-identically"
    );
    assert_eq!(defer.len(), simtest::RANKS);
    for (rank, (text, json)) in defer.iter().enumerate() {
        assert!(
            text.starts_with(&format!(
                "=== upcr snapshot: rank {rank}/{} ===",
                simtest::RANKS
            )),
            "{text}"
        );
        // Quiesced: every dynamic section drained, every badge consumed.
        assert!(text.contains("pending ops: 0"), "{text}");
        assert!(text.contains("in-flight messages: 0"), "{text}");
        assert!(text.contains("notify words: 0"), "{text}");
        let v = upcr::trace::parse_json(json).expect("snapshot JSON parses");
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("snapshot.v1")
        );
    }
}

/// Leave unconsumed badge residue on rank 0 and snapshot at quiesce, on
/// the chosen conduit under its wall-clock default network. Both ranks see
/// the same world-global notify state, and the rendering must not depend
/// on which conduit carried the signal.
fn badge_residue_snapshots(transport: Transport) -> Vec<(String, String)> {
    let rt = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 14)
        .with_transport(transport);
    launch(rt, |u| {
        let mine = u.new_::<u64>(0);
        let target = u.broadcast(mine, 0);
        u.barrier();
        // Both ranks post a badge to rank 0's word 3; nobody consumes it.
        u.put_signal(u.rank_me() as u64 + 1, target, 3, 1 << u.rank_me())
            .wait();
        u.barrier();
        while u.net_stats().pending > 0 {
            u.progress();
        }
        u.barrier();
        let s = u.snapshot();
        (s.render_text(), s.render_json())
    })
}

#[test]
fn quiesced_snapshots_byte_identical_across_conduits() {
    let sim = badge_residue_snapshots(Transport::Sim);
    let udp = badge_residue_snapshots(Transport::UdpSocket);
    assert_eq!(
        sim, udp,
        "quiesced snapshots must not depend on the conduit that carried the signals"
    );
    for (text, json) in &sim {
        assert!(
            text.contains("notify words: 1"),
            "badge residue must survive quiesce: {text}"
        );
        assert!(
            text.contains("rank 0 word 3 bits 0x3 (no waiter)"),
            "{text}"
        );
        assert!(json.contains(
            "\"notify_words\":[{\"rank\":0,\"word\":3,\"bits\":3,\"waiter_mask\":null}]"
        ));
    }
}

#[test]
fn watchdog_diagnosis_names_partitioned_rank_pair_deterministically() {
    let diagnosis = watchdog_stall_demo(700);
    // The blocked rank and the exact wait-graph edge it sits on...
    assert!(
        diagnosis.contains(
            "wait-graph stall: rank 0 blocked 700ms in wait_signal on notify word 0 mask 0x2"
        ),
        "{diagnosis}"
    );
    assert!(
        diagnosis.contains("rank 0 --[notify word 0 mask 0x2]--> unsatisfied (no badge posted)"),
        "{diagnosis}"
    );
    // ...the partitioned peer whose carrier is stuck on the wire...
    assert!(
        diagnosis.contains("candidate carriers in flight toward rank 0:"),
        "{diagnosis}"
    );
    assert!(diagnosis.contains("from rank 1 (attempt 0)"), "{diagnosis}");
    // ...and the flight recorder's last sighting of that carrier.
    assert!(
        diagnosis.contains("flight recorder: last wire event touching this edge:"),
        "{diagnosis}"
    );
    assert!(diagnosis.ends_with("injected\n"), "{diagnosis}");
    // Seeded stall, seeded diagnosis: the whole text replays.
    let again = watchdog_stall_demo(700);
    assert_eq!(diagnosis, again, "stall diagnosis must be deterministic");
}
