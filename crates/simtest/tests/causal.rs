//! Cross-rank causal tracing, end to end.
//!
//! Four properties of the Lamport-stamped tracing pipeline are pinned:
//!
//! * **Monotonicity** — every rank's recorded Lamport stamps are strictly
//!   increasing, and every traced wire inject carries a nonzero stamp.
//! * **Determinism** — the assembled causal timeline (text rendering and
//!   all) is byte-identical across repeats under every differential fault
//!   plan, for the single-threaded probe drive on the virtual clock.
//! * **The paper's claim in hops** — the eager build's mean
//!   initiation→notification happens-before chain is strictly shorter
//!   than the defer build's, and the defer build never completes anything
//!   on the eager path.
//! * **Violation detection** — virtual-clock runs report exactly zero
//!   causality violations across every workload, while a hand-skewed
//!   bundle (wall timestamps contradicting a happens-before edge) trips
//!   the counter.

use simtest::{fault_plans, net_for, run_observed, Workload};
use upcr::metrics::probe::{run as probe_run, run_with_net, ProbeConfig};
use upcr::trace::{
    assemble, chrome_trace_json_with_flows, parse_json, CausalAssembly, CompletionPath, EventKind,
    NetEventKind, NetTraceEvent, OpKind, RankTrace, TraceBundle, TraceEvent, TraceOp,
};
use upcr::{launch, LibVersion, RuntimeConfig};

fn combined_plan(seed: u64) -> gasnex::FaultPlan {
    fault_plans(seed)
        .into_iter()
        .find(|(n, _)| *n == "combined")
        .expect("combined plan exists")
        .1
}

fn overall_mean_milli(asm: &CausalAssembly) -> u64 {
    let n = asm.op_chains.len() as u64;
    assert!(n > 0, "assembly has completed op chains");
    asm.op_chains.iter().map(|c| c.len).sum::<u64>() * 1000 / n
}

#[test]
fn lamport_stamps_strictly_monotone_per_rank() {
    let o = run_observed(
        Workload::GupsSmall,
        LibVersion::V2021_3_6Eager,
        42,
        Some(combined_plan(42)),
        None,
        None,
        false,
    );
    assert_eq!(o.bundle.ranks.len(), simtest::RANKS);
    for rt in &o.bundle.ranks {
        assert!(!rt.events.is_empty(), "rank {} recorded nothing", rt.rank);
        for w in rt.events.windows(2) {
            assert!(
                w[1].lclock > w[0].lclock,
                "rank {}: lclock not strictly increasing ({} -> {})",
                rt.rank,
                w[0].lclock,
                w[1].lclock
            );
        }
    }
    // Every traced wire event carries a real stamp (zero is the
    // tracing-off sentinel and must never appear in a traced run).
    assert!(!o.bundle.net.is_empty());
    for e in &o.bundle.net {
        assert!(e.lclock > 0, "untraced stamp on wire event {e:?}");
    }
}

#[test]
fn assembled_timeline_byte_identical_across_repeats_under_all_plans() {
    for (name, plan) in fault_plans(7) {
        let cfg = ProbeConfig {
            iters: 12,
            seed: 7,
            trace: true,
            ..ProbeConfig::default()
        };
        let run = || {
            let r = run_with_net(&cfg, net_for(Some(plan)));
            let bundle = r.bundle.expect("probe ran with tracing on");
            assemble(&bundle)
        };
        let (a, b) = (run(), run());
        assert_eq!(
            a.render_text(),
            b.render_text(),
            "plan {name}: assembled timeline must replay byte-identically"
        );
        assert_eq!(a.violations, 0, "plan {name}: virtual clock cannot skew");
        assert!(a.hb_edges() > 0, "plan {name}: empty happens-before DAG");
        assert!(a.chain_depth > 0, "plan {name}: empty critical path");
    }
}

#[test]
fn eager_vs_defer_differ_only_in_notification_placement() {
    // Same seed, same plan, same single-threaded drive: the wire schedule
    // is identical across builds, so the assemblies differ only where the
    // notification edges sit — the defer build's chains are longer by the
    // drain hop, and its eager path is empty.
    let probe = |version| {
        let r = probe_run(&ProbeConfig {
            version,
            iters: 12,
            seed: 7,
            chaos: true,
            trace: true,
            ..ProbeConfig::default()
        });
        assemble(&r.bundle.expect("probe ran with tracing on"))
    };
    let eager = probe(LibVersion::V2021_3_6Eager);
    let defer = probe(LibVersion::V2021_3_6Defer);
    assert!(
        defer.mean_chain_len_milli(CompletionPath::Eager).is_none(),
        "defer build completed something on the eager path"
    );
    // A local eager put notifies at initiation: a two-hop chain, exactly.
    assert_eq!(
        eager.mean_chain_len_milli(CompletionPath::Eager),
        Some(2000)
    );
    assert!(
        overall_mean_milli(&eager) < overall_mean_milli(&defer),
        "eager notification must shorten the mean causal chain ({} vs {})",
        overall_mean_milli(&eager),
        overall_mean_milli(&defer)
    );
    // The same number of ops completed either way.
    assert_eq!(eager.op_chains.len(), defer.op_chains.len());
}

#[test]
fn skewed_wall_clocks_trip_the_violation_counter() {
    // One op, one message — but the delivery's wall timestamp (stamped by
    // the receiving process) predates the inject that caused it (stamped
    // by the sender), the signature of cross-process clock skew. Lamport
    // order is intact — the delivery merged the sender's stamp — so only
    // wall time lies.
    let op = TraceOp {
        id: 1,
        kind: OpKind::Put,
    };
    let bundle = TraceBundle {
        ranks: vec![RankTrace {
            rank: 0,
            events: vec![
                TraceEvent {
                    ts_ns: 100,
                    seq: 0,
                    op,
                    kind: EventKind::Init,
                    lclock: 1,
                },
                TraceEvent {
                    ts_ns: 1_000,
                    seq: 1,
                    op,
                    kind: EventKind::NetInject { msg: 0 },
                    lclock: 2,
                },
            ],
            dropped: 0,
        }],
        net: vec![
            NetTraceEvent {
                ts_ns: 1_100,
                msg: 0,
                attempt: 0,
                kind: NetEventKind::Inject,
                lclock: 3,
            },
            NetTraceEvent {
                ts_ns: 700, // skewed: before the inject that caused it
                msg: 0,
                attempt: 0,
                kind: NetEventKind::Deliver,
                lclock: 4,
            },
        ],
    };
    let asm = assemble(&bundle);
    assert_eq!(asm.violations, 1, "skewed wire edge must be flagged");
    // Straightening the clock clears the count.
    let mut fixed = bundle;
    fixed.net[1].ts_ns = 1_500;
    assert_eq!(assemble(&fixed).violations, 0);
}

#[test]
fn take_causal_updates_stats_and_report_renders() {
    let results = launch(
        RuntimeConfig::udp(simtest::RANKS, simtest::RANKS_PER_NODE).with_segment_size(1 << 16),
        |u| {
            u.trace_enabled(true);
            let mine = u.new_::<u64>(0);
            let target = u.broadcast(mine, 0);
            u.barrier();
            let me = u.rank_me();
            if me != 0 {
                u.rput(me as u64, target).wait();
            }
            u.barrier();
            let report = u.causal_report();
            (report, u.stats())
        },
    );
    for (rank, (report, stats)) in results.iter().enumerate() {
        if rank == 0 {
            let text = report.as_ref().expect("rank 0 assembles");
            assert!(
                text.starts_with("causal timeline v1:"),
                "unexpected report header: {text}"
            );
            assert!(stats.hb_edges > 0, "assembly must update the edge counter");
            assert_eq!(stats.causal_violations, 0, "in-process clocks agree");
            assert!(stats.causal_chain_depth > 0);
        } else {
            assert!(report.is_none(), "only rank 0 renders");
            assert_eq!(stats.hb_edges, 0);
        }
    }
}

#[test]
fn flow_export_parses_and_carries_flow_events() {
    let r = probe_run(&ProbeConfig {
        iters: 8,
        seed: 3,
        chaos: true,
        trace: true,
        ..ProbeConfig::default()
    });
    let bundle = r.bundle.expect("probe ran with tracing on");
    let asm = assemble(&bundle);
    let json = chrome_trace_json_with_flows(&bundle, &asm);
    parse_json(&json).expect("flow export must be valid JSON");
    assert!(
        json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""),
        "flow start/finish events missing from the export"
    );
    assert!(
        json.contains("process_name"),
        "row-naming metadata missing from the export"
    );
}

#[test]
fn virtual_clock_runs_report_zero_violations_across_workloads() {
    for w in Workload::ALL.into_iter().chain([Workload::SignalStorm]) {
        for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
            let o = run_observed(w, version, 42, Some(combined_plan(42)), None, None, false);
            let asm = assemble(&o.bundle);
            assert_eq!(
                asm.violations,
                0,
                "{} / {version:?}: Lamport order disagreed with the virtual clock",
                w.name()
            );
            assert!(asm.hb_edges() > 0);
        }
    }
}
