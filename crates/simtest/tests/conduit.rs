//! Conduit-swap regression suite.
//!
//! Two invariants, one per half of the conduit refactor:
//!
//! 1. **Trait-extraction is behaviour-free**: `SimNetwork` behind the
//!    `Conduit` trait must reproduce the pre-refactor outcomes *exactly* —
//!    digests, completion counts, reliability counters, and the full wire
//!    trace. The golden values below were captured from the pre-trait
//!    code (verified stable across repeated runs) by
//!    `examples/golden_capture.rs`; any drift means the refactor changed
//!    scheduling, fate hashing, or counter accounting.
//!
//! 2. **Transport independence**: the same seeded workload run over real
//!    loopback UDP sockets must produce the same digest and completion
//!    count as the simulated network, for both eager and deferred
//!    notification builds — the paper's claim is about the runtime, not
//!    the wire. Reliability counters are excluded: real-wire
//!    retransmission races make them schedule-dependent.

use simtest::{fault_plans, run, run_udp, udp_fault_plans, wire_trace_probe, Outcome, Workload};
use upcr::LibVersion;

/// Pre-refactor PutGetStorm digests, one per harness seed 0..8. The digest
/// is a pure function of `(workload, seed)` — identical across versions
/// and fault plans — because workload memory images are schedule-free.
const GOLDEN_DIGESTS: [u64; 8] = [
    0xf028_8bf7_319f_d508,
    0x6f28_e824_ce78_362b,
    0xbf08_6d82_1278_b9d0,
    0xfec3_14d6_a3fd_8ea6,
    0x6ce0_5589_c3fd_e29f,
    0xdedf_d7f9_04ff_d232,
    0x9858_b78f_86f8_f3d8,
    0xa807_19e2_5cf1_c85f,
];

/// Pre-refactor reliability counters per seed:
/// `(retries, drops, dups, max_backoff_ns)`.
const GOLDEN_DROP_HEAVY: [(u64, u64, u64, u64); 8] = [(62, 62, 0, 64_000); 8];
const GOLDEN_DUP_REORDER: [(u64, u64, u64, u64); 8] = [
    (0, 0, 45, 0),
    (0, 0, 31, 0),
    (0, 0, 36, 0),
    (0, 0, 33, 0),
    (0, 0, 32, 0),
    (0, 0, 38, 0),
    (0, 0, 21, 0),
    (0, 0, 48, 0),
];
const GOLDEN_COMBINED: [(u64, u64, u64, u64); 8] = [
    (41, 41, 26, 16_000),
    (40, 40, 28, 64_000),
    (26, 26, 30, 16_000),
    (42, 42, 19, 16_000),
    (37, 37, 28, 8_000),
    (35, 35, 27, 16_000),
    (32, 32, 20, 8_000),
    (46, 46, 19, 64_000),
];

/// PutGetStorm on 4 ranks: 192 puts + 192 gets waited on, of which the 192
/// cross-rank writes/reads to non-self targets inject 192 wire messages.
const GOLDEN_COMPLETIONS: u64 = 384;
const GOLDEN_INJECTED: u64 = 192;

fn check_golden(seed: u64, plan_idx: usize, table: &[(u64, u64, u64, u64); 8]) {
    let (plan_name, plan) = fault_plans(seed).swap_remove(plan_idx);
    let (retries, drops, dups, backoff) = table[seed as usize];
    for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
        let o = run(Workload::PutGetStorm, version, seed, Some(plan));
        let want = Outcome {
            digest: GOLDEN_DIGESTS[seed as usize],
            completions: GOLDEN_COMPLETIONS,
            injected: GOLDEN_INJECTED,
            delivered: GOLDEN_INJECTED,
            retries,
            drops_injected: drops,
            dup_suppressed: dups,
            max_backoff_ns: backoff,
        };
        assert_eq!(
            o, want,
            "seed {seed} plan {plan_name} {version:?}: outcome drifted from the \
             pre-refactor golden"
        );
    }
}

#[test]
fn sim_behind_trait_matches_prerefactor_drop_heavy_goldens() {
    for seed in 0..8 {
        check_golden(seed, 0, &GOLDEN_DROP_HEAVY);
    }
}

#[test]
fn sim_behind_trait_matches_prerefactor_dup_reorder_goldens() {
    for seed in 0..8 {
        check_golden(seed, 1, &GOLDEN_DUP_REORDER);
    }
}

#[test]
fn sim_behind_trait_matches_prerefactor_combined_goldens() {
    for seed in 0..8 {
        check_golden(seed, 2, &GOLDEN_COMBINED);
    }
}

#[test]
fn sim_behind_trait_matches_prerefactor_wire_traces() {
    // Full wire-event streams (every inject/drop/retry/deliver/dup-discard
    // with its virtual-clock timestamp), pinned as (event count, hash).
    let golden = [
        ("drop-heavy", 182, 0x6178_6154_3355_0865_u64),
        ("dup-reorder", 138, 0x891a_bc65_7b58_478c),
        ("combined", 172, 0x8489_5f56_6be3_2026),
    ];
    for ((plan_name, plan), (want_name, want_events, want_hash)) in
        fault_plans(3).into_iter().zip(golden)
    {
        assert_eq!(plan_name, want_name);
        let (events, hash) = wire_trace_probe(plan, 64);
        assert_eq!(
            (events, hash),
            (want_events, want_hash),
            "plan {plan_name}: wire trace drifted from the pre-refactor golden"
        );
    }
}

/// Pre-signal fault-free digests for the remaining three workloads,
/// captured before the notifiable-RMA (put/amo-with-signal) layer was
/// added. The signal machinery rides the same conduits, injection paths,
/// and message IDs as ordinary traffic — so workloads that never issue a
/// signal op must reproduce these values bit-for-bit. Each entry is
/// `(digest per seed 0..8, completions, injected)`.
const GOLDEN_PRESIGNAL_ATOMIC_STORM: ([u64; 8], u64, [u64; 8]) = (
    [
        0x9851_ac3a_b163_ac05,
        0x4a76_229b_ff73_b8c3,
        0xc470_7263_7fbd_a8a9,
        0x326c_8b8c_ff5a_2663,
        0x2e1d_3647_d788_a36a,
        0x2832_592e_c291_a113,
        0xf6dc_d153_3de5_0c47,
        0xefa4_0d1c_2e1b_e985,
    ],
    256,
    [127, 132, 128, 134, 129, 132, 129, 138],
);
const GOLDEN_PRESIGNAL_WHEN_ALL: ([u64; 8], u64, u64) = (
    [
        0xe40f_ceb3_cb6f_ff7e,
        0x3951_fc33_39f1_05f4,
        0xc453_9ac5_13e0_a8cf,
        0xe981_2fb3_c119_795e,
        0x1d0d_0e16_ffd0_1c43,
        0x2ab8_7788_2a5c_404a,
        0xb517_414e_ff16_4d77,
        0x5b96_6874_9b25_bcd2,
    ],
    768,
    192,
);
/// GUPS folds (updates, errors), both seed-independent: one value.
const GOLDEN_PRESIGNAL_GUPS: (u64, u64, u64) = (0x1b38_a3dc_4e0d_1752, 1024, 464);

#[test]
fn signal_free_workloads_match_presignal_goldens() {
    // The no-behaviour-change proof for the signal PR: on fault-free runs
    // of every pre-existing workload, digests, completion counts, and
    // injection counts are unchanged from before the signal layer existed.
    for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
        for seed in 0..8u64 {
            let o = run(Workload::AtomicStorm, version, seed, None);
            let (digests, completions, injected) = GOLDEN_PRESIGNAL_ATOMIC_STORM;
            assert_eq!(
                (o.digest, o.completions, o.injected),
                (digests[seed as usize], completions, injected[seed as usize]),
                "atomic-storm seed {seed} {version:?} drifted from the pre-signal golden"
            );
            let o = run(Workload::WhenAllFanIn, version, seed, None);
            let (digests, completions, injected) = GOLDEN_PRESIGNAL_WHEN_ALL;
            assert_eq!(
                (o.digest, o.completions, o.injected),
                (digests[seed as usize], completions, injected),
                "when-all-fan-in seed {seed} {version:?} drifted from the pre-signal golden"
            );
            let o = run(Workload::GupsSmall, version, seed, None);
            assert_eq!(
                (o.digest, o.completions, o.injected),
                GOLDEN_PRESIGNAL_GUPS,
                "gups-small seed {seed} {version:?} drifted from the pre-signal golden"
            );
        }
    }
}

/// The differential the tentpole exists for: same seed, same workload,
/// identical digests and completion counts on the simulated conduit and
/// the real UDP socket conduit — eager and deferred builds.
fn assert_transport_independent(workload: Workload, seed: u64) {
    for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
        let sim = run(workload, version, seed, None);
        let udp = run_udp(workload, version, seed, None);
        assert_eq!(
            (sim.digest, sim.completions),
            (udp.digest, udp.completions),
            "{} seed {seed} {version:?}: real-socket run diverged from the simulator",
            workload.name()
        );
    }
}

#[test]
fn udp_socket_matches_sim_put_get_storm() {
    for seed in [0, 3] {
        assert_transport_independent(Workload::PutGetStorm, seed);
    }
}

#[test]
fn udp_socket_matches_sim_atomic_storm() {
    assert_transport_independent(Workload::AtomicStorm, 1);
}

#[test]
fn udp_socket_matches_sim_when_all_fan_in() {
    assert_transport_independent(Workload::WhenAllFanIn, 2);
}

#[test]
fn udp_socket_matches_sim_gups_small() {
    assert_transport_independent(Workload::GupsSmall, 5);
}

#[test]
fn udp_socket_matches_sim_signal_storm() {
    // Signal frames on a real kernel wire (KIND_SIGNAL datagrams with
    // retransmission and dedup) versus the simulator's delivery heap: the
    // badge masks, payloads, and amo counter must agree exactly. The UDP
    // run uses a wall clock, so ranks genuinely park in `wait_signal` and
    // are woken by the conduit-polling rank.
    for seed in [0, 7] {
        assert_transport_independent(Workload::SignalStorm, seed);
    }
}

#[test]
fn udp_socket_signal_storm_survives_wire_faults() {
    // Deliberately dropped and duplicated SIGNAL datagrams: retransmission
    // must re-carry the badge and receiver dedup must keep the amo counter
    // exact (the workload asserts counter == ranks-1 internally).
    for (plan_name, plan) in udp_fault_plans(9) {
        let sim = run(Workload::SignalStorm, LibVersion::V2021_3_6Eager, 9, None);
        let udp = run_udp(
            Workload::SignalStorm,
            LibVersion::V2021_3_6Eager,
            9,
            Some(plan),
        );
        assert_eq!(
            (sim.digest, sim.completions),
            (udp.digest, udp.completions),
            "plan {plan_name}: faulted signal-storm socket run diverged"
        );
    }
}

#[test]
fn udp_socket_survives_wire_faults_with_identical_digests() {
    // Deliberate drops and duplicates on the real wire: the reliability
    // layer must still converge to the simulator's digest.
    for (plan_name, plan) in udp_fault_plans(4) {
        for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
            let sim = run(Workload::PutGetStorm, version, 4, None);
            let udp = run_udp(Workload::PutGetStorm, version, 4, Some(plan));
            assert_eq!(
                (sim.digest, sim.completions),
                (udp.digest, udp.completions),
                "plan {plan_name} {version:?}: faulted socket run diverged"
            );
            if plan_name == "drop-heavy" {
                assert!(
                    udp.drops_injected > 0,
                    "plan {plan_name}: fault plan should have dropped frames"
                );
            } else {
                assert!(
                    udp.dup_suppressed > 0,
                    "plan {plan_name}: fault plan should have duplicated frames"
                );
            }
        }
    }
}

#[test]
fn eager_and_defer_agree_on_every_conduit() {
    // The paper's claim, quantified over transports: notification timing
    // never changes program results, whichever wire carries the traffic.
    let eager_sim = run(Workload::PutGetStorm, LibVersion::V2021_3_6Eager, 6, None);
    let defer_sim = run(Workload::PutGetStorm, LibVersion::V2021_3_6Defer, 6, None);
    let eager_udp = run_udp(Workload::PutGetStorm, LibVersion::V2021_3_6Eager, 6, None);
    let defer_udp = run_udp(Workload::PutGetStorm, LibVersion::V2021_3_6Defer, 6, None);
    assert_eq!(eager_sim.digest, defer_sim.digest);
    assert_eq!(eager_udp.digest, defer_udp.digest);
    assert_eq!(eager_sim.digest, eager_udp.digest);
    assert_eq!(
        (eager_sim.completions, defer_sim.completions),
        (eager_udp.completions, defer_udp.completions)
    );
}
