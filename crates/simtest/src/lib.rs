//! # simtest — differential eager/defer correctness harness
//!
//! The paper's central claim is that eager notification changes only *when*
//! a completion is signalled, never *what* the program computes. This crate
//! turns that claim into an executable invariant: it runs the same seeded
//! workload under every [`LibVersion`] on a multi-node world whose network
//! is a deterministic adversary (the chaos mode of `gasnex::SimNetwork` —
//! seeded drops, duplicates, reordering, burst delays, and partition
//! windows over a virtual clock), and reduces each run to an [`Outcome`]:
//! a digest of the final shared-memory state, the number of completed
//! operations, and the reliability-layer counters. Two runs are
//! *observationally equivalent* exactly when their outcomes are equal.
//!
//! Workload state is constructed so the final memory image is independent
//! of thread scheduling: every shared word has a single writer (put/get
//! storms, `when_all` fan-ins) or only commutative updates (atomic storms,
//! GUPS xor), so any divergence between library versions is a real
//! semantics change, not a race artifact.

use std::sync::Mutex;

use gasnex::{AggConfig, FaultPlan, NetConfig, NetStats, Transport};
use graphgen::SeededRng;
use gups::{GupsConfig, Variant};
use upcr::{conjoin, launch, GlobalPtr, LibVersion, RuntimeConfig, Upcr};

/// Ranks per differential run.
pub const RANKS: usize = 4;
/// Ranks per simulated node (two nodes, so half the traffic crosses the
/// simulated network).
pub const RANKS_PER_NODE: usize = 2;

/// The seeded workloads the harness sweeps. Each is deterministic in final
/// memory state for a fixed `(workload, seed)` regardless of scheduling or
/// library version.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Disjoint-slot RMA put storm followed by a read-back get storm.
    PutGetStorm,
    /// Fetching and non-fetching atomics with per-counter commutative op
    /// classes (add counters, xor counters).
    AtomicStorm,
    /// Rounds of `when_all`-conjoined local + remote puts per rank.
    WhenAllFanIn,
    /// A small GUPS run (atomic-xor variant, exact) over the faulted
    /// network, verified against the race-free table.
    GupsSmall,
    /// Notifiable-RMA storm: every rank put-signals a private slot on every
    /// peer and amo-signals a shared counter, then blocks in `wait_signal`
    /// for the full badge mask. The counter proves exactly-once delivery
    /// (`Add` is duplicate-sensitive where the badge OR is duplicate-blind).
    SignalStorm,
    /// Continuation-callback storm: every rank issues a put and a get to
    /// every peer with `operation_cx::as_callback` completions, folding
    /// each callback's observation into a commutative accumulator, and
    /// asserts every callback ran exactly once (`callbacks_run` equals the
    /// number of callback-carrying ops).
    CallbackStorm,
}

impl Workload {
    /// The original golden-pinned workloads, in sweep order. Deliberately
    /// excludes [`Workload::SignalStorm`] and [`Workload::CallbackStorm`]:
    /// their own differential sweeps cover them explicitly, and keeping
    /// this list stable proves the pre-existing workloads' wire schedules
    /// (and digests) did not move.
    pub const ALL: [Workload; 4] = [
        Workload::PutGetStorm,
        Workload::AtomicStorm,
        Workload::WhenAllFanIn,
        Workload::GupsSmall,
    ];

    /// Human-readable name for assertion messages.
    pub fn name(self) -> &'static str {
        match self {
            Workload::PutGetStorm => "put-get-storm",
            Workload::AtomicStorm => "atomic-storm",
            Workload::WhenAllFanIn => "when-all-fan-in",
            Workload::GupsSmall => "gups-small",
            Workload::SignalStorm => "signal-storm",
            Workload::CallbackStorm => "callback-storm",
        }
    }
}

/// Everything observable about one run. Two semantically equivalent runs
/// must agree on every field: the memory digest and completion count by the
/// paper's claim, and the network counters because fault fates are a pure
/// function of `(plan seed, message id, attempt)` and both runs inject the
/// same logical messages.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Order-insensitive-free digest of the final shared state, folded in
    /// rank order (identical on every rank, asserted inside the run).
    pub digest: u64,
    /// Completed communication operations summed over ranks
    /// (`rputs + rgets + amos + rpcs`; every one was waited on).
    pub completions: u64,
    /// Logical messages injected into the simulated network.
    pub injected: u64,
    /// Logical messages delivered (equals `injected` after the drain).
    pub delivered: u64,
    /// Retransmissions performed by the reliability layer.
    pub retries: u64,
    /// Transmission attempts the fault plan dropped.
    pub drops_injected: u64,
    /// Duplicate copies suppressed by receiver dedup.
    pub dup_suppressed: u64,
    /// Largest retransmission backoff applied, bounded by the plan.
    pub max_backoff_ns: u64,
}

/// Per-rank quiesced snapshots (rendered text) from the most recent
/// harness run in this process, retained so a digest mismatch — inside a
/// run or across the two runs of a differential pair — can dump the
/// runtime's introspection state before the panic unwinds. Diagnostics
/// only: parallel tests may interleave runs, so on a failure the dump is
/// best-effort about *which* run it shows, but every line it prints is a
/// real quiesced snapshot.
static LAST_RUN_SNAPSHOTS: Mutex<Vec<String>> = Mutex::new(Vec::new());

fn record_snapshots(snaps: &[(String, String)]) {
    *LAST_RUN_SNAPSHOTS.lock().unwrap() = snaps.iter().map(|(text, _)| text.clone()).collect();
}

/// Dump every rank's quiesced snapshot from the most recent harness run to
/// stderr. Called automatically on any differential mismatch; public so
/// ad-hoc tests can dump too.
pub fn dump_last_snapshots(context: &str) {
    let snaps = LAST_RUN_SNAPSHOTS.lock().unwrap();
    eprintln!("--- per-rank quiesced snapshots ({context}) ---");
    if snaps.is_empty() {
        eprintln!("(none recorded: no harness run completed in this process)");
    }
    for s in snaps.iter() {
        eprint!("{s}");
    }
    eprintln!("--- end snapshots ---");
}

/// Assert two runs of a differential pair produced the same [`Outcome`],
/// auto-dumping the most recent run's per-rank snapshots before panicking
/// on a divergence. Every equivalence sweep routes through this so a
/// digest mismatch always arrives with runtime state attached.
#[track_caller]
pub fn assert_outcomes_match(context: &str, a: Outcome, b: Outcome) {
    if a != b {
        dump_last_snapshots(context);
        panic!("{context}: runs are not observationally equivalent:\n  a = {a:?}\n  b = {b:?}");
    }
}

/// The named fault plans the harness sweeps for a given seed. Includes the
/// combined drop+duplicate+reorder adversary the acceptance criteria call
/// for, plus burst and partition windows.
pub fn fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop-heavy",
            FaultPlan::seeded(seed)
                .with_drops(250_000)
                .with_retry(4_000, 64_000, 6),
        ),
        (
            "dup-reorder",
            FaultPlan::seeded(seed.wrapping_mul(0x9E37_79B9) ^ 0xA5A5)
                .with_dups(200_000)
                .with_reorder(300_000, 6_000),
        ),
        (
            "combined",
            FaultPlan::seeded(seed.wrapping_mul(0x85EB_CA6B) ^ 0x5A5A)
                .with_drops(150_000)
                .with_dups(120_000)
                .with_reorder(200_000, 5_000)
                .with_burst(20_000, 4_000, 8_000)
                .with_partition(10_000, 40_000)
                .with_retry(4_000, 64_000, 6),
        ),
    ]
}

/// Network configuration for a run: virtual clock (replayable schedules),
/// non-zero latency and jitter, and optionally a fault plan.
pub fn net_for(plan: Option<FaultPlan>) -> NetConfig {
    let base = NetConfig {
        latency_ns: 800,
        jitter_ns: 300,
        ..NetConfig::default()
    }
    .with_virtual_clock();
    match plan {
        Some(p) => base.with_faults(p),
        None => base,
    }
}

/// Run `workload` under `version` with the given seed and optional fault
/// plan, reducing the run to its [`Outcome`].
pub fn run(workload: Workload, version: LibVersion, seed: u64, plan: Option<FaultPlan>) -> Outcome {
    run_agg(workload, version, seed, plan, None).0
}

/// The named fault plans a real-socket run can honour: only deliberate
/// drops (skip the `send_to`) and duplicates (send the frame twice) are
/// expressible on a kernel wire, and the retransmission timers are scaled
/// to loopback RTTs rather than the simulator's nanosecond latencies.
pub fn udp_fault_plans(seed: u64) -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "drop-heavy",
            FaultPlan::seeded(seed)
                .with_drops(250_000)
                .with_retry(300_000, 4_800_000, 6),
        ),
        (
            "dup-heavy",
            FaultPlan::seeded(seed.wrapping_mul(0x9E37_79B9) ^ 0xA5A5).with_dups(200_000),
        ),
    ]
}

/// Network configuration for a real-socket run: wall clock (kernel sockets
/// cannot be time-warped) and optionally a drop/dup-only fault plan. The
/// latency knobs are irrelevant — the loopback path sets the real latency.
pub fn net_for_udp(plan: Option<FaultPlan>) -> NetConfig {
    let base = NetConfig::default();
    match plan {
        Some(p) => base.with_faults(p),
        None => base,
    }
}

/// Like [`run`], but carried by the real loopback-UDP socket conduit
/// instead of the simulated network: every cross-node delivery travels as
/// an actual kernel datagram, with sender retransmission and receiver
/// dedup on the wire.
///
/// The digest and completion count must match the simulated run for the
/// same `(workload, seed)` — that equality is the transport-independence
/// claim the differential tests pin. The reliability counters are *not*
/// comparable: real-wire retransmission races (an ACK arriving just after
/// a timer fires) make them schedule-dependent.
pub fn run_udp(
    workload: Workload,
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Outcome {
    run_with_snapshots(workload, version, seed, plan, Transport::UdpSocket).0
}

/// Run `workload` on the chosen conduit and return the outcome plus every
/// rank's quiesced snapshot as `(text, json)` renderings, in rank order.
/// The simulated conduit gets the harness's virtual-clock chaos network
/// ([`net_for`]); the kernel-socket conduit gets the wall-clock socket
/// network ([`net_for_udp`]). The snapshot renderings are taken at
/// quiesce, so they are a pure function of the program — the
/// conduit-independence tests compare them byte for byte.
pub fn run_with_snapshots(
    workload: Workload,
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
    transport: Transport,
) -> (Outcome, Vec<(String, String)>) {
    run_with_options(workload, version, seed, plan, transport, false)
}

/// The most general runner: choice of conduit *and* an optional background
/// progress thread ([`upcr::RuntimeConfig::with_progress_thread`]). The
/// thread is a strict no-op on the simulated (virtual-clock) conduit, so a
/// thread-on sim run must be byte-identical to a thread-off one — the
/// differential tests pin exactly that.
pub fn run_with_options(
    workload: Workload,
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
    transport: Transport,
    progress_thread: bool,
) -> (Outcome, Vec<(String, String)>) {
    let net = match transport {
        Transport::Sim => net_for(plan),
        Transport::UdpSocket => net_for_udp(plan),
    };
    let rt = RuntimeConfig::udp(RANKS, RANKS_PER_NODE)
        .with_version(version)
        .with_segment_size(1 << 18)
        .with_net(net)
        .with_transport(transport)
        .with_progress_thread(progress_thread);
    let results = launch(rt, move |u| {
        let digest = run_workload(u, workload, seed);
        u.barrier();
        while u.net_stats().pending > 0 {
            u.progress();
        }
        u.barrier();
        let s = u.stats();
        let completions = u.allreduce_sum_u64(s.rputs + s.rgets + s.amos + s.rpcs);
        let net = u.net_stats();
        (digest, completions, net, quiesced_snapshot(u))
    });
    let net = results[0].2;
    let per_rank: Vec<(u64, u64)> = results.iter().map(|r| (r.0, r.1)).collect();
    let snaps: Vec<(String, String)> = results.into_iter().map(|r| r.3).collect();
    check_rank_agreement(&per_rank, &snaps);
    (outcome_from(per_rank[0].0, per_rank[0].1, net), snaps)
}

/// Dispatch one workload body on the calling rank.
fn run_workload(u: &Upcr, workload: Workload, seed: u64) -> u64 {
    match workload {
        Workload::PutGetStorm => put_get_storm(u, seed),
        Workload::AtomicStorm => atomic_storm(u, seed),
        Workload::WhenAllFanIn => when_all_fan_in(u, seed),
        Workload::GupsSmall => gups_small(u),
        Workload::SignalStorm => signal_storm(u, seed),
        Workload::CallbackStorm => callback_storm(u, seed),
    }
}

/// Hash a wire-level trace into one word (order-sensitive over every field
/// of every event) — the compact form the conduit-swap golden tests pin.
pub fn wire_trace_hash(events: &[gasnex::NetTraceEvent]) -> u64 {
    let mut h = 0u64;
    for e in events {
        h = fold(h, e.ts_ns);
        h = fold(h, e.msg);
        h = fold(h, u64::from(e.attempt));
        h = fold(
            h,
            match e.kind {
                gasnex::NetEventKind::Inject => 1,
                gasnex::NetEventKind::Drop { backoff_ns } => fold(2, backoff_ns),
                gasnex::NetEventKind::Retry => 3,
                gasnex::NetEventKind::Deliver => 4,
                gasnex::NetEventKind::DupDiscard => 5,
                gasnex::NetEventKind::Signal { rank, token } => {
                    fold(fold(6, u64::from(rank)), token)
                }
            },
        );
    }
    h
}

/// Drive a fresh 2-rank world single-threadedly under `plan` with wire
/// tracing on: inject `n` empty deliveries, drain, and return the traced
/// event count and [`wire_trace_hash`]. With the virtual clock the result
/// is a pure function of the plan, which makes it a golden-testable probe
/// of the conduit's whole drop/retry/dup/dedup schedule.
pub fn wire_trace_probe(plan: FaultPlan, n: u64) -> (usize, u64) {
    let w = gasnex::World::new(
        gasnex::GasnexConfig::udp(2, 1)
            .with_segment_size(1 << 12)
            .with_net(net_for(Some(plan))),
    );
    w.net().set_tracing(true);
    for _ in 0..n {
        w.net().inject(Box::new(|_| {}));
    }
    while w.net().pending() > 0 {
        w.net().poll(&w);
    }
    let events = w.net().take_trace();
    (events.len(), wire_trace_hash(&events))
}

/// The aggregation configuration the differential harness sweeps when a
/// test wants batching on: size-driven flushes only (`max_age_ns = 0`, so
/// batch boundaries depend purely on program order, not clock readings)
/// with enough in-flight headroom that backpressure bypass never triggers.
/// Both properties keep eager and deferred runs injecting identical wire
/// messages.
pub fn harness_agg(flush_ops: usize) -> AggConfig {
    AggConfig::enabled(flush_ops)
        .with_max_age_ns(0)
        .with_max_inflight(64)
}

/// Like [`run`], but with an optional per-target aggregation configuration,
/// and returning the raw network counter snapshot alongside the outcome so
/// tests can observe the batching counters (`batches_injected`,
/// `ops_coalesced`, flush-reason counts) that are deliberately *not* part
/// of the differential [`Outcome`].
pub fn run_agg(
    workload: Workload,
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
    agg: Option<AggConfig>,
) -> (Outcome, NetStats) {
    let mut rt = RuntimeConfig::udp(RANKS, RANKS_PER_NODE)
        .with_version(version)
        .with_segment_size(1 << 18)
        .with_net(net_for(plan));
    if let Some(a) = agg {
        rt = rt.with_agg(a);
    }
    let results = launch(rt, move |u| {
        let digest = run_workload(u, workload, seed);
        // Drain duplicate echoes so the reliability counters are final and
        // deterministic, then snapshot everything.
        u.barrier();
        while u.net_stats().pending > 0 {
            u.progress();
        }
        u.barrier();
        let s = u.stats();
        let completions = u.allreduce_sum_u64(s.rputs + s.rgets + s.amos + s.rpcs);
        let net = u.net_stats();
        (digest, completions, net, quiesced_snapshot(u))
    });
    let net = results[0].2;
    let per_rank: Vec<(u64, u64)> = results.iter().map(|r| (r.0, r.1)).collect();
    let snaps: Vec<(String, String)> = results.into_iter().map(|r| r.3).collect();
    check_rank_agreement(&per_rank, &snaps);
    (outcome_from(per_rank[0].0, per_rank[0].1, net), net)
}

/// Run the callback-storm workload and return, alongside the outcome, the
/// world-summed continuation counters the bench gate pins:
/// `(outcome, callbacks_run, ops_with_callbacks)`. The op count is the
/// workload's analytic callback-carrying op total (every rank issues
/// `2 * (RANKS - 1)` callback-completed ops); the run counter is the
/// *measured* sum of every rank's `callbacks_run` stat, so losing or
/// double-running a continuation anywhere in the world shows up as a
/// nonzero `callback_loss` in `BENCH_signals.json`.
pub fn run_callback_storm_counters(
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
) -> (Outcome, u64, u64) {
    let rt = RuntimeConfig::udp(RANKS, RANKS_PER_NODE)
        .with_version(version)
        .with_segment_size(1 << 18)
        .with_net(net_for(plan));
    let results = launch(rt, move |u| {
        let digest = callback_storm(u, seed);
        u.barrier();
        while u.net_stats().pending > 0 {
            u.progress();
        }
        u.barrier();
        let s = u.stats();
        let completions = u.allreduce_sum_u64(s.rputs + s.rgets + s.amos + s.rpcs);
        let callbacks = u.allreduce_sum_u64(s.callbacks_run);
        (
            digest,
            completions,
            u.net_stats(),
            callbacks,
            quiesced_snapshot(u),
        )
    });
    let net = results[0].2;
    let callbacks = results[0].3;
    let per_rank: Vec<(u64, u64)> = results.iter().map(|r| (r.0, r.1)).collect();
    let snaps: Vec<(String, String)> = results.into_iter().map(|r| r.4).collect();
    check_rank_agreement(&per_rank, &snaps);
    let ops_with_callbacks = (RANKS * 2 * (RANKS - 1)) as u64;
    (
        outcome_from(per_rank[0].0, per_rank[0].1, net),
        callbacks,
        ops_with_callbacks,
    )
}

/// Like [`run`], but with operation-lifecycle tracing enabled: returns the
/// outcome plus the assembled trace bundle (every rank's span events and
/// the world-global wire events) and the cross-rank merged latency
/// histograms. Used by the `simtest` binary's `--trace-out` mode and the
/// CI trace-smoke job.
pub fn run_traced(
    workload: Workload,
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
) -> (Outcome, upcr::TraceBundle, upcr::Histograms) {
    let o = run_observed(workload, version, seed, plan, None, None, false);
    (o.outcome, o.bundle, o.hists)
}

/// Everything an observed run produced: the differential outcome, the
/// span-and-wire trace bundle, the cross-rank merged latency histograms,
/// and — when metric sampling was requested — each rank's sampled
/// time-series paired with that rank's own histograms (the exporters label
/// series by rank, so per-rank histograms keep the labels honest).
pub struct Observed {
    pub outcome: Outcome,
    pub bundle: upcr::TraceBundle,
    pub hists: upcr::Histograms,
    pub per_rank: Vec<(upcr::RankSeries, upcr::Histograms)>,
    /// Each rank's quiesced introspection snapshot as `(text, json)`
    /// renderings, in rank order. Taken at quiesce, so they are a pure
    /// function of the program — byte-identical across library versions
    /// and conduits for the same `(workload, seed)`.
    pub snapshots: Vec<(String, String)>,
}

/// Superset of [`run_traced`]: lifecycle tracing always on, plus optional
/// fixed-interval metric sampling on every rank and optional per-target
/// aggregation. Used by the `simtest` binary's
/// `--metrics-out`/`--prom-out`/`--agg` modes.
pub fn run_observed(
    workload: Workload,
    version: LibVersion,
    seed: u64,
    plan: Option<FaultPlan>,
    metrics: Option<upcr::MetricsConfig>,
    agg: Option<AggConfig>,
    progress_thread: bool,
) -> Observed {
    let mut rt = RuntimeConfig::udp(RANKS, RANKS_PER_NODE)
        .with_version(version)
        .with_segment_size(1 << 18)
        .with_net(net_for(plan))
        .with_progress_thread(progress_thread);
    if let Some(a) = agg {
        rt = rt.with_agg(a);
    }
    let results = launch(rt, move |u| {
        u.trace_enabled(true);
        if let Some(cfg) = metrics {
            u.metrics_config(cfg);
            u.metrics_enabled(true);
        }
        let digest = run_workload(u, workload, seed);
        u.barrier();
        while u.net_stats().pending > 0 {
            u.progress();
        }
        u.barrier();
        let s = u.stats();
        let completions = u.allreduce_sum_u64(s.rputs + s.rgets + s.amos + s.rpcs);
        let net = u.net_stats();
        // The wire-event sink is world-global; rank 0 drains it after the
        // final barrier so every delivery has been recorded.
        let net_trace = if u.rank_me() == 0 {
            u.take_net_trace()
        } else {
            Vec::new()
        };
        let series = metrics.map(|_| u.take_metrics());
        (
            digest,
            completions,
            net,
            u.take_trace(),
            u.latency_report(),
            net_trace,
            series,
            quiesced_snapshot(u),
        )
    });
    let (digest, completions, net) = (results[0].0, results[0].1, results[0].2);
    let agreement: Vec<(u64, u64)> = results.iter().map(|r| (r.0, r.1)).collect();
    let snapshots: Vec<(String, String)> = results.iter().map(|r| r.7.clone()).collect();
    check_rank_agreement(&agreement, &snapshots);
    let mut bundle = upcr::TraceBundle {
        ranks: Vec::new(),
        net: Vec::new(),
    };
    let mut hists = upcr::Histograms::new();
    let mut per_rank = Vec::new();
    for (_, _, _, trace, hist, net_trace, series, _) in results {
        bundle.ranks.push(trace);
        hists.merge(&hist);
        if !net_trace.is_empty() {
            bundle.net = net_trace;
        }
        if let Some(s) = series {
            per_rank.push((s, hist));
        }
    }
    Observed {
        outcome: outcome_from(digest, completions, net),
        bundle,
        hists,
        per_rank,
        snapshots,
    }
}

/// Capture this rank's quiesced introspection snapshot as
/// `(text, json)` — the closure tail of every harness runner. Taken after
/// the final barrier, so the dynamic sections (pending ops, buckets,
/// in-flight messages) are empty and the rendering is a pure function of
/// the program: byte-identical across library versions and conduits.
fn quiesced_snapshot(u: &Upcr) -> (String, String) {
    let s = u.snapshot();
    (s.render_text(), s.render_json())
}

/// Verify every rank agreed with rank 0 on `(digest, completions)`,
/// auto-dumping all ranks' quiesced snapshots before panicking on a
/// divergence.
fn check_rank_agreement(per_rank: &[(u64, u64)], snaps: &[(String, String)]) {
    record_snapshots(snaps);
    let (digest, completions) = per_rank[0];
    for (r, &(d, c)) in per_rank.iter().enumerate() {
        if (d, c) != (digest, completions) {
            dump_last_snapshots("ranks disagree on outcome");
            panic!(
                "rank {r} disagrees on outcome: digest {d:#018x} completions {c} \
                 vs rank 0's digest {digest:#018x} completions {completions}"
            );
        }
    }
}

fn outcome_from(digest: u64, completions: u64, net: NetStats) -> Outcome {
    assert_eq!(
        net.injected, net.delivered,
        "drained run must have delivered every injected message"
    );
    assert_eq!(net.pending, 0, "drained run must leave nothing pending");
    Outcome {
        digest,
        completions,
        injected: net.injected,
        delivered: net.delivered,
        retries: net.retries,
        drops_injected: net.drops_injected,
        dup_suppressed: net.dup_suppressed,
        max_backoff_ns: net.max_backoff_ns,
    }
}

/// Digest fold: order-sensitive splitmix chaining (state is always folded
/// in a canonical order — slot order within a rank, rank order globally).
pub fn fold(h: u64, v: u64) -> u64 {
    graphgen::splitmix64(h ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Words per rank in [`Workload::PutGetStorm`]'s array. Public because the
/// multi-process UDP runner reproduces the same final image out of real
/// datagrams and folds it with [`storm_slot_val`]/[`fold`].
pub const STORM_WORDS: usize = 48;

/// The value [`Workload::PutGetStorm`] leaves in slot `slot` of rank
/// `target`'s array (round 0) — the analytic final image the multi-process
/// runner checks its datagram-built state against.
pub fn storm_slot_val(seed: u64, target: usize, slot: usize) -> u64 {
    slot_val(seed, target, slot, 0)
}

/// Deterministic per-slot value, independent of which rank computes it.
fn slot_val(seed: u64, target: usize, slot: usize, round: usize) -> u64 {
    fold(
        fold(fold(seed, target as u64), slot as u64),
        round as u64 + 1,
    )
}

/// Broadcast every rank's base pointer (encoded) so any rank can address
/// any rank's array.
fn gather_ptrs(u: &Upcr, base: GlobalPtr<u64>) -> Vec<GlobalPtr<u64>> {
    u.gather_all(base.encode())
        .into_iter()
        .map(GlobalPtr::decode)
        .collect()
}

/// Digest this rank's local array, then fold all ranks' digests in rank
/// order. Identical on every rank.
fn digest_arrays(u: &Upcr, base: GlobalPtr<u64>, words: usize) -> u64 {
    let slice = u.local_slice_u64(base, words);
    let mut h = 0x9E37_79B9_7F4A_7C15;
    for w in slice {
        h = fold(h, w.load(std::sync::atomic::Ordering::Relaxed));
    }
    let all = u.gather_all(h);
    let mut d = 0;
    for x in all {
        d = fold(d, x);
    }
    d
}

/// RMA storm: every slot `j` of every rank's array is written by exactly
/// one rank (`j % rank_n`), so the final image is race-free; afterwards the
/// writer reads every slot back and checks the value survived the faulted
/// network intact.
fn put_get_storm(u: &Upcr, seed: u64) -> u64 {
    const WORDS: usize = STORM_WORDS;
    let n = u.rank_n();
    let me = u.rank_me();
    let base = u.new_array::<u64>(WORDS);
    let bases = gather_ptrs(u, base);
    u.barrier();
    let mut puts = Vec::new();
    for (t, b) in bases.iter().enumerate().take(n) {
        for j in (me..WORDS).step_by(n) {
            puts.push(u.rput(slot_val(seed, t, j, 0), b.add(j)));
        }
    }
    for f in &puts {
        f.wait();
    }
    u.barrier();
    let mut gets = Vec::new();
    for (t, b) in bases.iter().enumerate().take(n) {
        for j in (me..WORDS).step_by(n) {
            gets.push((t, j, u.rget(b.add(j))));
        }
    }
    for (t, j, f) in gets {
        assert_eq!(
            f.wait(),
            slot_val(seed, t, j, 0),
            "slot ({t},{j}) corrupted by the faulted network"
        );
    }
    u.barrier();
    digest_arrays(u, base, WORDS)
}

/// Atomic storm: counters 0..4 take only (fetching and non-fetching) adds,
/// counters 4..8 only xors, so every counter's final value is a commutative
/// fold of all ranks' operands — deterministic despite racing updates.
fn atomic_storm(u: &Upcr, seed: u64) -> u64 {
    const COUNTERS: usize = 8;
    const OPS: usize = 64;
    let n = u.rank_n();
    let me = u.rank_me();
    let base = u.new_array::<u64>(COUNTERS);
    let bases = gather_ptrs(u, base);
    let ad = u.atomic_domain::<u64>();
    let mut rng = SeededRng::seed_from_u64(fold(seed, me as u64));
    u.barrier();
    let mut unit = Vec::new();
    let mut fetched = Vec::new();
    for _ in 0..OPS {
        let t = rng.below(n);
        let c = rng.below(COUNTERS);
        let v = rng.next_u64();
        let p = bases[t].add(c);
        match (c < COUNTERS / 2, rng.below(2) == 0) {
            (true, true) => unit.push(ad.add(p, v)),
            (true, false) => fetched.push(ad.fetch_add(p, v)),
            (false, true) => unit.push(ad.bit_xor(p, v)),
            (false, false) => fetched.push(ad.fetch_bit_xor(p, v)),
        }
    }
    for f in &unit {
        f.wait();
    }
    for f in &fetched {
        // Fetched values depend on interleaving; only completion matters.
        f.wait();
    }
    u.barrier();
    digest_arrays(u, base, COUNTERS)
}

/// `when_all` fan-in: each round conjoins a ready base future with puts to
/// this rank's own slots (addressable — the eager path) and to the next
/// rank's slots (cross-node for half the ranks), then waits on the single
/// conjoined future. Slot writers stay disjoint: rank r writes the low half
/// of its own array and the high half of its successor's.
fn when_all_fan_in(u: &Upcr, seed: u64) -> u64 {
    const WORDS: usize = 32;
    const ROUNDS: usize = 6;
    let n = u.rank_n();
    let me = u.rank_me();
    let next = (me + 1) % n;
    let base = u.new_array::<u64>(WORDS);
    let bases = gather_ptrs(u, base);
    u.barrier();
    for round in 0..ROUNDS {
        let mut f = u.make_future();
        for j in 0..WORDS / 2 {
            f = conjoin(f, u.rput(slot_val(seed, me, j, round), bases[me].add(j)));
        }
        for j in WORDS / 2..WORDS {
            f = conjoin(
                f,
                u.rput(slot_val(seed, next, j, round), bases[next].add(j)),
            );
        }
        f.wait();
    }
    u.barrier();
    digest_arrays(u, base, WORDS)
}

/// Notifiable-RMA storm. Each rank owns an array of `rank_n + 1` words:
/// slots `0..n` are put-signal landing pads (slot `r` written only by rank
/// `r`, so the image is race-free) and slot `n` is a counter taking only
/// commutative `Add`s. Every rank `r` sends every peer `t`:
///
/// * `put_signal(slot_val, t.slot[r], word 0, badge 1 << r)`
/// * `amo_signal(Add 1, t.slot[n], word 0, badge 1 << (r + n))`
///
/// then blocks in `wait_signal` until the full mask (both badges from all
/// `n - 1` peers) has arrived, and checks the counter equals `n - 1`.
/// `Add` is duplicate-sensitive where the badge OR is duplicate-blind: a
/// replayed signal message would leave the badge mask unchanged but push
/// the counter past `n - 1`, so the equality is an exactly-once proof for
/// the whole signal path under drops, dups, and reordering.
fn signal_storm(u: &Upcr, seed: u64) -> u64 {
    let n = u.rank_n();
    let me = u.rank_me();
    let words = n + 1;
    let base = u.new_array::<u64>(words);
    let bases = gather_ptrs(u, base);
    u.barrier();
    let mut pending = Vec::new();
    for (t, b) in bases.iter().enumerate().take(n) {
        if t == me {
            continue;
        }
        pending.push(u.put_signal(slot_val(seed, t, me, 0), b.add(me), 0, 1 << me));
        pending.push(u.amo_signal(b.add(n), upcr::AmoOp::Add, 1u64, 0, 1 << (me + n)));
    }
    for f in &pending {
        f.wait();
    }
    // Full badge mask: every peer's put badge and amo badge.
    let expected: u64 = (0..n)
        .filter(|&r| r != me)
        .map(|r| (1u64 << r) | (1u64 << (r + n)))
        .fold(0, |m, b| m | b);
    let mut seen = 0u64;
    while seen != expected {
        seen |= u.wait_signal(0, expected & !seen);
    }
    // Badges are observed-exactly-once: the word is now empty.
    assert_eq!(u.test_signal(0, u64::MAX), 0, "badge observed twice");
    // Every peer's put landed before (or with) its badge...
    let slice = u.local_slice_u64(base, words);
    for r in (0..n).filter(|&r| r != me) {
        assert_eq!(
            slice[r].load(std::sync::atomic::Ordering::Relaxed),
            slot_val(seed, me, r, 0),
            "peer {r}'s put-with-signal payload lost or corrupted"
        );
    }
    // ...and the counter took each peer's Add exactly once.
    assert_eq!(
        slice[n].load(std::sync::atomic::Ordering::Relaxed),
        (n - 1) as u64,
        "amo-with-signal applied a duplicate or lost an update"
    );
    u.barrier();
    // `seen` is rank-specific (each rank waits on a different mask), so it
    // must not enter the cross-rank digest; the loop exit already proved
    // `seen == expected`.
    digest_arrays(u, base, words)
}

/// Continuation-callback storm. Each rank owns an array of `rank_n` words
/// (slot `r` written only by rank `r`, so the image is race-free). Two
/// waves, both completed through [`upcr::operation_cx::as_callback`]:
///
/// * **Put wave** — rank `r` writes `slot_val` into its slot on every
///   peer; each put's callback XORs a per-op token into a local
///   accumulator (XOR is commutative, so drain order — rank thread,
///   signalling thread, or background progress thread — cannot change the
///   result).
/// * **Get wave** — after a barrier, rank `r` reads its own slot back
///   from every peer with a value-carrying callback that XORs the fetched
///   word into the same accumulator, proving the callback observed the
///   landed data.
///
/// The rank drives `progress` until a shared counter shows every callback
/// ran, then asserts `callbacks_run == ops_with_callbacks` — the
/// exactly-once claim of the callback completion mode — and folds the
/// accumulator into the digest. Callbacks touch only plain `Arc`-shared
/// state (no runtime calls), so the workload is valid under the background
/// progress thread, where a foreign thread may execute them.
fn callback_storm(u: &Upcr, seed: u64) -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let n = u.rank_n();
    let me = u.rank_me();
    let base = u.new_array::<u64>(n);
    let bases = gather_ptrs(u, base);
    u.barrier();
    let ran = Arc::new(AtomicU64::new(0));
    let acc = Arc::new(AtomicU64::new(0));
    let expected_ops = 2 * (n - 1) as u64;
    // Put wave: single-writer slots, callback folds a deterministic token.
    for (t, b) in bases.iter().enumerate().take(n) {
        if t == me {
            continue;
        }
        let token = fold(fold(seed, 0xCA11), (t * n + me) as u64);
        let (ran, acc) = (Arc::clone(&ran), Arc::clone(&acc));
        u.rput_with(
            slot_val(seed, t, me, 0),
            b.add(me),
            upcr::operation_cx::as_callback(move |_: ()| {
                acc.fetch_xor(token, Ordering::Relaxed);
                ran.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }
    while ran.load(Ordering::Relaxed) < (n - 1) as u64 {
        u.progress();
    }
    u.barrier();
    // Get wave: value-carrying callbacks observe the landed puts.
    for (t, b) in bases.iter().enumerate().take(n) {
        if t == me {
            continue;
        }
        let (ran, acc) = (Arc::clone(&ran), Arc::clone(&acc));
        u.rget_with(
            b.add(me),
            upcr::operation_cx::as_callback(move |v: u64| {
                acc.fetch_xor(v, Ordering::Relaxed);
                ran.fetch_add(1, Ordering::Relaxed);
            }),
        );
    }
    while ran.load(Ordering::Relaxed) < expected_ops {
        u.progress();
    }
    // Exactly-once: every callback-carrying op ran its continuation once.
    assert_eq!(
        u.stats().callbacks_run,
        expected_ops,
        "callbacks_run must equal the number of callback-carrying ops"
    );
    // The accumulator is a commutative fold of known values: each peer's
    // token plus this rank's own slot value fetched back from each peer.
    let mut want = 0u64;
    for t in (0..n).filter(|&t| t != me) {
        want ^= fold(fold(seed, 0xCA11), (t * n + me) as u64);
        want ^= slot_val(seed, t, me, 0);
    }
    assert_eq!(
        acc.load(Ordering::Relaxed),
        want,
        "callback-observed values diverged from the race-free image"
    );
    u.barrier();
    // Fold the *global* accumulator image — the XOR over every rank's
    // pinned `want` — so all ranks digest the same value (the per-rank
    // assert above already ties each local accumulator to its share).
    let mut all = 0u64;
    for r in 0..n {
        for t in (0..n).filter(|&t| t != r) {
            all ^= fold(fold(seed, 0xCA11), (t * n + r) as u64);
            all ^= slot_val(seed, t, r, 0);
        }
    }
    fold(digest_arrays(u, base, n), all)
}

/// Small GUPS (atomic-xor variant — exact by construction): the digest is
/// the verified error count folded with the update count, so any lost or
/// double-applied update under the faulted network shows up.
fn gups_small(u: &Upcr) -> u64 {
    let cfg = GupsConfig {
        log2_table: 10,
        updates_per_word: 1,
        batch: 16,
        verify: true,
    };
    let r = gups::run(u, &cfg, Variant::AmoFuture);
    assert_eq!(r.errors, 0, "atomic GUPS must stay exact under chaos");
    fold(fold(0, r.updates as u64), r.errors as u64)
}

/// Wall-clock nanoseconds after the epoch of this run at which the
/// partition window opens in [`watchdog_stall_demo`]. Setup (allocation,
/// pointer gather, one barrier) finishes orders of magnitude earlier, so
/// only the deliberately-delayed signal lands inside the window.
const STALL_PARTITION_AT_NS: u64 = 100_000_000;

/// Deliberately provoke a wait-graph stall and return the watchdog's
/// diagnosis text — the CI smoke path for the stall watchdog.
///
/// Two single-rank nodes on the *simulated* conduit under the wall clock
/// (partition windows are expressible there; the kernel-socket conduit
/// rejects them), with a partition lasting an hour: after a 100 ms grace
/// window for setup traffic, rank 1's put-with-signal is injected inside
/// the partition and its delivery shifted to the window's end, while rank
/// 0 parks in `wait_signal` on the never-arriving badge. The watchdog
/// (armed at `watchdog_ms`, which must exceed the ~250 ms injection
/// delay for the carrier edge to be visible) trips and panics with a
/// diagnosis naming the blocked rank, its notify-word edge, the stuck
/// in-flight carrier from rank 1, and the last wire event touching it.
pub fn watchdog_stall_demo(watchdog_ms: u64) -> String {
    let plan = FaultPlan::seeded(1).with_partition(STALL_PARTITION_AT_NS, 3_600_000_000_000);
    let rt = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 14)
        .with_net(NetConfig::default().with_faults(plan))
        .with_watchdog_ms(watchdog_ms);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        launch(rt, |u| {
            u.trace_enabled(true);
            let base = u.new_array::<u64>(1);
            let bases = gather_ptrs(u, base);
            u.barrier();
            if u.rank_me() == 1 {
                // Inject well inside the partition window: the carrier
                // enters the wire but its delivery is shifted an hour out,
                // far past rank 0's watchdog.
                std::thread::sleep(std::time::Duration::from_millis(250));
                let _pending = u.put_signal(7u64, bases[0], 0, 0b10);
                // Never waited: rank 0's watchdog aborts the world first.
            } else {
                u.wait_signal(0, 0b10);
            }
            u.barrier();
        });
    }));
    let payload = result.expect_err("partition stall must trip the watchdog");
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(other) => std::panic::resume_unwind(other),
    }
}
