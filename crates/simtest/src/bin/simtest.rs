//! Command-line driver for the differential harness with trace export.
//!
//! Runs one seeded workload on the 4-rank / 2-node chaos world and
//! optionally exports the operation-lifecycle trace as Chrome
//! `trace_event` JSON (load in `chrome://tracing` or Perfetto):
//!
//! ```text
//! simtest --workload gups-small --seed 42 --plan combined \
//!         --version eager --trace-out trace.json --check-notify
//! ```
//!
//! `--check-notify` re-parses the exported JSON and fails unless it
//! contains at least one eager and one deferred notification event — the
//! CI trace-smoke job's acceptance check.
//!
//! `--causal-out PATH` assembles the cross-rank causal timeline (the
//! Lamport-merged rank rings plus the wire trace) and writes the Chrome
//! trace JSON *with flow arrows* (`"ph":"s"/"f"`), so Perfetto draws the
//! inject→deliver and signal→wakeup edges across rank rows. The bin fails
//! if the assembly reports any causality violation — impossible under the
//! sim conduit's virtual clock, so a nonzero count is a tracing bug.
//!
//! `--snapshot-out PATH` writes every rank's quiesced introspection
//! snapshot (`snapshot.v1` JSON, one document per rank in a top-level
//! array). `--watchdog-demo` runs no workload: it deliberately provokes a
//! partition stall, prints the watchdog's wait-graph diagnosis, and fails
//! unless the diagnosis names the blocked rank — the CI watchdog-smoke
//! job's acceptance check. `--watchdog-ms N` sets the demo's stall
//! watchdog (default 700 ms; must exceed the demo's ~250 ms injection
//! delay so the stuck carrier is on the wire when the watchdog trips).

use std::process::ExitCode;

use simtest::{fault_plans, harness_agg, run_observed, watchdog_stall_demo, Workload};
use upcr::metrics::{metrics_json_multi, prometheus_text_multi};
use upcr::trace::{count_notifications, parse_json, summary_table};
use upcr::{LibVersion, MetricsConfig};

struct Args {
    workload: Workload,
    seed: u64,
    plan: Option<String>,
    version: LibVersion,
    agg_flush: Option<usize>,
    trace_out: Option<String>,
    causal_out: Option<String>,
    metrics_out: Option<String>,
    prom_out: Option<String>,
    snapshot_out: Option<String>,
    check_notify: bool,
    watchdog_demo: bool,
    watchdog_ms: u64,
    progress_thread: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simtest [--workload put-get-storm|atomic-storm|when-all-fan-in|gups-small|signal-storm|callback-storm]\n\
         \x20              [--seed N] [--plan none|drop-heavy|dup-reorder|combined]\n\
         \x20              [--version eager|2021.3.0|2021.3.6-defer] [--agg] [--agg-flush N]\n\
         \x20              [--progress-thread]\n\
         \x20              [--trace-out PATH] [--causal-out PATH]\n\
         \x20              [--metrics-out PATH] [--prom-out PATH]\n\
         \x20              [--snapshot-out PATH] [--check-notify]\n\
         \x20              [--watchdog-demo] [--watchdog-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: Workload::GupsSmall,
        seed: 42,
        plan: Some("combined".to_string()),
        version: LibVersion::V2021_3_6Eager,
        agg_flush: None,
        trace_out: None,
        causal_out: None,
        metrics_out: None,
        prom_out: None,
        snapshot_out: None,
        check_notify: false,
        watchdog_demo: false,
        watchdog_ms: 700,
        progress_thread: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--workload" => {
                let v = val();
                // `Workload::ALL` deliberately excludes SignalStorm and
                // CallbackStorm (its stability pins the pre-existing wire
                // schedules); the bin still drives them for the smoke jobs.
                args.workload = Workload::ALL
                    .into_iter()
                    .chain([Workload::SignalStorm, Workload::CallbackStorm])
                    .find(|w| w.name() == v)
                    .unwrap_or_else(|| usage());
            }
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--plan" => {
                let v = val();
                args.plan = (v != "none").then_some(v);
            }
            "--version" => {
                args.version = match val().as_str() {
                    "eager" | "2021.3.6" => LibVersion::V2021_3_6Eager,
                    "2021.3.0" => LibVersion::V2021_3_0,
                    "2021.3.6-defer" | "defer" => LibVersion::V2021_3_6Defer,
                    _ => usage(),
                };
            }
            // --agg enables batching at the harness flush threshold;
            // --agg-flush N picks the size threshold explicitly.
            "--agg" => args.agg_flush = args.agg_flush.or(Some(4)),
            "--agg-flush" => args.agg_flush = Some(val().parse().unwrap_or_else(|_| usage())),
            "--trace-out" => args.trace_out = Some(val()),
            "--causal-out" => args.causal_out = Some(val()),
            "--metrics-out" => args.metrics_out = Some(val()),
            "--prom-out" => args.prom_out = Some(val()),
            "--snapshot-out" => args.snapshot_out = Some(val()),
            "--check-notify" => args.check_notify = true,
            // A no-op on the sim conduit's virtual clock by design; accepted
            // so scripted sweeps can pass one flag set to both runners.
            "--progress-thread" => args.progress_thread = true,
            "--watchdog-demo" => args.watchdog_demo = true,
            "--watchdog-ms" => args.watchdog_ms = val().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.watchdog_demo {
        let diagnosis = watchdog_stall_demo(args.watchdog_ms);
        print!("{diagnosis}");
        if diagnosis.starts_with("wait-graph stall: rank 0 blocked") {
            println!("watchdog-demo: ok (diagnosis names the blocked rank)");
            return ExitCode::SUCCESS;
        }
        eprintln!("error: diagnosis does not name the blocked rank");
        return ExitCode::FAILURE;
    }
    let plan = args.plan.as_deref().map(|name| {
        fault_plans(args.seed)
            .into_iter()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| usage())
            .1
    });

    let sample_metrics =
        (args.metrics_out.is_some() || args.prom_out.is_some()).then(MetricsConfig::default);
    let agg = args.agg_flush.map(harness_agg);
    let observed = run_observed(
        args.workload,
        args.version,
        args.seed,
        plan,
        sample_metrics,
        agg,
        args.progress_thread,
    );
    let (outcome, bundle, hists) = (observed.outcome, &observed.bundle, &observed.hists);
    println!(
        "workload={} seed={} version={:?} digest={:#018x} completions={} injected={} retries={} drops={} dups={}",
        args.workload.name(),
        args.seed,
        args.version,
        outcome.digest,
        outcome.completions,
        outcome.injected,
        outcome.retries,
        outcome.drops_injected,
        outcome.dup_suppressed,
    );
    print!("{}", summary_table(hists));

    let parts: Vec<_> = observed.per_rank.iter().map(|(s, h)| (s, h)).collect();
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, metrics_json_multi(&parts)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("metrics: {} rank series -> {path}", parts.len());
    }
    if let Some(path) = &args.prom_out {
        if let Err(e) = std::fs::write(path, prometheus_text_multi(&parts)) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("prometheus exposition: {} ranks -> {path}", parts.len());
    }

    if let Some(path) = &args.snapshot_out {
        let docs: Vec<&str> = observed.snapshots.iter().map(|(_, j)| j.as_str()).collect();
        let body = format!("[\n{}\n]\n", docs.join(",\n"));
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "snapshots: {} quiesced rank snapshots -> {path}",
            observed.snapshots.len()
        );
    }

    let json = upcr::trace::chrome_trace_json(bundle);
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        let events: usize = bundle.ranks.iter().map(|r| r.events.len()).sum();
        println!(
            "trace: {} rank events + {} wire events -> {path}",
            events,
            bundle.net.len()
        );
    }

    if let Some(path) = &args.causal_out {
        // The sim conduit runs the virtual clock, where Lamport order and
        // wall order cannot disagree — a nonzero violation count here is a
        // bug in the assembler or the clock piggyback, so the bin fails.
        let asm = upcr::trace::assemble(bundle);
        let flows = upcr::trace::chrome_trace_json_with_flows(bundle, &asm);
        if let Err(e) = std::fs::write(path, &flows) {
            eprintln!("error: writing {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "causal: nodes={} hb_edges={} violations={} chain_depth={} span={}ns -> {path}",
            asm.nodes.len(),
            asm.hb_edges(),
            asm.violations,
            asm.chain_depth,
            asm.critical_span_ns()
        );
        if asm.violations != 0 {
            eprintln!(
                "error: {} causality violations on a virtual-clock run",
                asm.violations
            );
            return ExitCode::FAILURE;
        }
    }

    if args.check_notify {
        if let Err(e) = parse_json(&json) {
            eprintln!("error: exported trace is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
        match count_notifications(&json) {
            Ok((eager, deferred)) if eager >= 1 && deferred >= 1 => {
                println!("check-notify: ok ({eager} eager, {deferred} deferred)");
            }
            Ok((eager, deferred)) => {
                eprintln!(
                    "error: expected >=1 eager and >=1 deferred notification, \
                     got {eager} eager / {deferred} deferred"
                );
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
