//! Multi-process UDP runner: ranks as real OS processes, data as real
//! datagrams.
//!
//! The in-process `UdpConduit` proves the *control* path is
//! transport-independent (closures cannot cross the wire, so its DATA
//! frames carry no payload). This runner closes the remaining gap: it
//! forks each rank as a separate OS process, and the PutGetStorm payload
//! words themselves travel inside loopback datagrams between processes
//! that share no memory at all. Each rank builds its slice of the final
//! image purely out of what arrived on the wire, digests it, and the
//! parent folds the per-rank digests in rank order — the same digest
//! formula the in-process harness uses — then checks the result against
//! the analytic final image and (unless `--no-sim`) against in-process
//! simulator runs of the same workload under both notification versions.
//!
//! ```text
//! udprun [--ranks N] [--seed S] [--no-sim] [--signals] [--watchdog-ms N]
//!        [--progress-thread] [--trace-out PATH]
//! ```
//!
//! With `--signals` the storm is replaced by the multi-process analogue of
//! `wait_signal`: each rank datagrams its badge (`1 << rank`) to every
//! peer as a SIG frame, a socket-service thread ORs arriving badges into a
//! condvar-guarded notification word, and the **main thread parks on the
//! condvar** — never touching the socket — until the expected mask is
//! covered, then reports `SIGDONE <mask>` for the parent to verify.
//!
//! Protocol (parent <-> child over pipes, child <-> child over UDP):
//!
//! 1. Parent spawns `udprun --child R --ranks N --seed S` per rank.
//! 2. Each child binds 127.0.0.1:0 and prints `ADDR <addr>`.
//! 3. Parent broadcasts `PEERS <addr0> <addr1> ...` on every stdin.
//! 4. Children exchange PUT/ACK datagrams (retransmitting on a timer,
//!    deduplicating by `(src, msg)`) until every PUT they sent is acked,
//!    then print `PUTS_DONE`.
//! 5. Parent waits for all, broadcasts `GO`; children digest their local
//!    arrays and print `DIGEST <hex> APPLIED <n>`.
//! 6. Parent folds digests in rank order and verifies.
//!
//! With `--trace-out PATH` every frame grows 8 bytes to piggyback the
//! sender's Lamport clock (30 → 38 bytes), each child keeps its own
//! logical clock (tick on send, `max(local, carried)+1` merge on
//! receive), records its span and wire events, and ships them back over
//! the pipe after `DIGEST` as `TEV`/`NEV` lines terminated by
//! `TRACE_END` (step 5½). The parent rebuilds a [`upcr::trace::TraceBundle`]
//! from all ranks' lines — wire message ids are globally unique,
//! `(src << 32) | seq` — runs the same causal assembler the sim conduit
//! feeds, writes the Chrome trace with flow arrows to PATH, and *reports*
//! (never asserts zero) causality violations: each OS process stamps
//! wall time from its own clock, and detecting that skew is exactly what
//! the assembler's violation counter is for.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use simtest::{fold, run, storm_slot_val, Workload, STORM_WORDS};
use upcr::LibVersion;

const MAGIC: u8 = 0xC8;
const KIND_PUT: u8 = 3;
const KIND_ACK: u8 = 4;
const KIND_SIG: u8 = 5;
const KIND_SIGACK: u8 = 6;
const FRAME_LEN: usize = 38;
const RTO: Duration = Duration::from_millis(5);
/// Default protocol watchdog: any child stuck past this long (serving the
/// wire, or parked on the signal condvar) aborts with a diagnosis line
/// instead of hanging CI. Override with `--watchdog-ms N`.
const DEADLINE: Duration = Duration::from_secs(30);

/// `[magic][kind][msg u64][src u32][target u32][slot u32][value u64][lclock u64]`;
/// ACK frames echo the PUT's header and ignore the value field. The
/// trailing Lamport stamp (grown in PR 9, 30 → 38 bytes) carries the
/// sender's logical clock at first transmission; retransmissions re-send
/// the same frame — a retry is the same logical send. Untraced runs
/// carry 0 there and never read it.
fn encode(
    kind: u8,
    msg: u64,
    src: u32,
    target: u32,
    slot: u32,
    value: u64,
    lclock: u64,
) -> [u8; FRAME_LEN] {
    let mut b = [0u8; FRAME_LEN];
    b[0] = MAGIC;
    b[1] = kind;
    b[2..10].copy_from_slice(&msg.to_le_bytes());
    b[10..14].copy_from_slice(&src.to_le_bytes());
    b[14..18].copy_from_slice(&target.to_le_bytes());
    b[18..22].copy_from_slice(&slot.to_le_bytes());
    b[22..30].copy_from_slice(&value.to_le_bytes());
    b[30..38].copy_from_slice(&lclock.to_le_bytes());
    b
}

#[allow(clippy::type_complexity)]
fn decode(b: &[u8]) -> Option<(u8, u64, u32, u32, u32, u64, u64)> {
    if b.len() != FRAME_LEN || b[0] != MAGIC {
        return None;
    }
    Some((
        b[1],
        u64::from_le_bytes(b[2..10].try_into().ok()?),
        u32::from_le_bytes(b[10..14].try_into().ok()?),
        u32::from_le_bytes(b[14..18].try_into().ok()?),
        u32::from_le_bytes(b[18..22].try_into().ok()?),
        u64::from_le_bytes(b[22..30].try_into().ok()?),
        u64::from_le_bytes(b[30..38].try_into().ok()?),
    ))
}

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Wall nanoseconds since the UNIX epoch — the one clock base every child
/// process shares. Real kernel clock jitter between processes is exactly
/// the skew hazard the causal assembler's violation counter detects.
fn epoch_ns() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("system clock before the unix epoch")
        .as_nanos() as u64
}

/// Child-side causal recorder: one Lamport counter per process (the
/// multi-process analogue of the sim conduit's per-rank clock slot),
/// ticked on every recorded event, merged `max(local, carried)+1` on
/// every received frame. Events are buffered as the `TEV`/`NEV` pipe
/// lines the parent parses back into a [`upcr::trace::TraceBundle`].
struct Tracer {
    lc: u64,
    seq: u64,
    tev: Vec<String>,
    nev: Vec<String>,
}

impl Tracer {
    fn new() -> Self {
        Tracer {
            lc: 0,
            seq: 0,
            tev: Vec::new(),
            nev: Vec::new(),
        }
    }

    fn tick(&mut self) -> u64 {
        self.lc += 1;
        self.lc
    }

    fn merge(&mut self, carried: u64) -> u64 {
        self.lc = self.lc.max(carried) + 1;
        self.lc
    }

    fn span(&mut self, rest: std::fmt::Arguments) {
        let lc = self.tick();
        let seq = self.seq;
        self.seq += 1;
        self.tev
            .push(format!("TEV {} {seq} {lc} {rest}", epoch_ns()));
    }

    fn init(&mut self, op: u64) {
        self.span(format_args!("init {op}"));
    }

    fn inject(&mut self, op: u64, msg: u64) {
        self.span(format_args!("inject {op} {msg}"));
    }

    fn notify(&mut self, op: u64, latency_ns: u64) {
        self.span(format_args!("notify {op} {latency_ns}"));
    }

    fn net(&mut self, lclock: u64, msg: u64, attempt: u32, kind: &str) {
        self.nev.push(format!(
            "NEV {} {lclock} {msg} {attempt} {kind}",
            epoch_ns()
        ));
    }

    /// Ship everything over the pipe, terminated by `TRACE_END`.
    fn dump(&self) {
        for l in self.tev.iter().chain(self.nev.iter()) {
            println!("{l}");
        }
        println!("TRACE_END");
        std::io::stdout().flush().unwrap();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: usize = parse_flag(&args, "--ranks")
        .map(|v| v.parse().expect("--ranks"))
        .unwrap_or(4);
    let seed: u64 = parse_flag(&args, "--seed")
        .map(|v| v.parse().expect("--seed"))
        .unwrap_or(0);
    let signals = args.iter().any(|a| a == "--signals");
    let watchdog_ms: Option<u64> =
        parse_flag(&args, "--watchdog-ms").map(|v| v.parse().expect("--watchdog-ms"));
    let deadline = watchdog_ms.map_or(DEADLINE, Duration::from_millis);
    let trace_out = parse_flag(&args, "--trace-out");
    if let Some(me) = parse_flag(&args, "--child") {
        let me = me.parse().expect("--child");
        if signals {
            child_signals(me, ranks, deadline);
        } else {
            child(
                me,
                ranks,
                seed,
                deadline,
                args.iter().any(|a| a == "--trace"),
            );
        }
    } else if signals {
        parent_signals(ranks, seed, watchdog_ms);
    } else {
        parent(
            ranks,
            seed,
            !args.iter().any(|a| a == "--no-sim"),
            args.iter().any(|a| a == "--progress-thread"),
            watchdog_ms,
            trace_out,
        );
    }
}

/// Receive the `PEERS` broadcast (spawning the stdin-relay thread) and
/// return the peer address list plus the stdin channel.
fn recv_peers(ranks: usize) -> (Vec<SocketAddr>, mpsc::Receiver<String>) {
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(std::io::stdin()).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let peers: Vec<SocketAddr> = loop {
        let line = rx.recv().expect("parent closed stdin before PEERS");
        if let Some(rest) = line.strip_prefix("PEERS ") {
            break rest
                .split_whitespace()
                .map(|a| a.parse().expect("peer addr"))
                .collect();
        }
    };
    assert_eq!(peers.len(), ranks, "parent sent wrong peer count");
    (peers, rx)
}

/// Multi-process `wait_signal`: each rank datagrams its badge (`1 << me`)
/// to every peer as a SIG frame (retransmitted until SIGACKed, duplicates
/// re-acked and OR-suppressed), while a dedicated socket-service thread
/// ORs arriving badges into a condvar-guarded notification word. The main
/// thread **parks on the condvar** — it never touches the socket, the
/// process-level analogue of the in-runtime zero-polls-while-parked
/// guarantee — until the word covers the full expected mask, then prints
/// `SIGDONE <mask>` for the parent to verify.
fn child_signals(me: usize, ranks: usize, deadline: Duration) {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.set_nonblocking(true).expect("nonblocking");
    println!("ADDR {}", sock.local_addr().expect("local_addr"));
    std::io::stdout().flush().unwrap();
    let (peers, rx) = recv_peers(ranks);

    let expected: u64 = (0..ranks)
        .filter(|&r| r != me)
        .fold(0, |m, r| m | (1u64 << r));
    let word = std::sync::Arc::new((std::sync::Mutex::new(0u64), std::sync::Condvar::new()));

    let w2 = std::sync::Arc::clone(&word);
    let service = std::thread::spawn(move || {
        struct Flight {
            frame: [u8; FRAME_LEN],
            to: SocketAddr,
            due: Instant,
        }
        let badge = 1u64 << me;
        let mut unacked: HashMap<u64, Flight> = HashMap::new();
        for (t, peer) in peers.iter().enumerate() {
            if t == me {
                continue;
            }
            let frame = encode(KIND_SIG, t as u64, me as u32, t as u32, 0, badge, 0);
            let _ = sock.send_to(&frame, peer);
            unacked.insert(
                t as u64,
                Flight {
                    frame,
                    to: *peer,
                    due: Instant::now() + RTO,
                },
            );
        }
        let mut applied: HashSet<(u32, u64)> = HashSet::new();
        let mut buf = [0u8; 64];
        let start = Instant::now();
        loop {
            assert!(
                start.elapsed() < deadline,
                "rank {me}: signal watchdog ({deadline:?}) expired with {} unacked signals",
                unacked.len()
            );
            loop {
                let (len, _) = match sock.recv_from(&mut buf) {
                    Ok(r) => r,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => panic!("rank {me}: recv: {e}"),
                };
                let Some((kind, msg, src, target, _slot, value, _lclock)) = decode(&buf[..len])
                else {
                    continue;
                };
                match kind {
                    KIND_SIG => {
                        assert_eq!(target as usize, me, "rank {me}: misrouted SIG");
                        // First arrival ORs the badge in and wakes the
                        // parked main thread if the mask is now covered;
                        // duplicates only re-ack (the badge OR would be
                        // idempotent anyway — that's the coalescing law).
                        if applied.insert((src, msg)) {
                            let (lock, cv) = &*w2;
                            let mut bits = lock.lock().unwrap();
                            *bits |= value;
                            if *bits & expected == expected {
                                cv.notify_all();
                            }
                        }
                        let ack = encode(KIND_SIGACK, msg, me as u32, src, 0, 0, 0);
                        let _ = sock.send_to(&ack, peers[src as usize]);
                    }
                    KIND_SIGACK => {
                        unacked.remove(&msg);
                    }
                    _ => {}
                }
            }
            let now = Instant::now();
            for f in unacked.values_mut() {
                if f.due <= now {
                    let _ = sock.send_to(&f.frame, f.to);
                    f.due = now + RTO;
                }
            }
            // Keep serving (re-acks for peers whose SIGACKs got lost)
            // until the parent releases the world.
            match rx.try_recv() {
                Ok(line) if line.trim() == "GO" => break,
                Ok(_) => {}
                Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => panic!("rank {me}: parent vanished"),
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(unacked.is_empty(), "rank {me}: exited with unacked signals");
    });

    // The parked waiter: condvar only, no socket, no spinning.
    let (lock, cv) = &*word;
    let mut bits = lock.lock().unwrap();
    while *bits & expected != expected {
        let (guard, timeout) = cv
            .wait_timeout(bits, deadline)
            .expect("notification word poisoned");
        bits = guard;
        assert!(
            !timeout.timed_out(),
            "rank {me}: parked past the watchdog ({deadline:?}) still missing badge \
             bits {:#x} of {expected:#x}",
            expected & !*bits
        );
    }
    let got = *bits;
    drop(bits);
    println!("SIGDONE {got:016x}");
    std::io::stdout().flush().unwrap();
    service.join().expect("service thread");
}

/// Parent half of `--signals`: same PEERS handshake, then each child must
/// report a `SIGDONE` mask equal to everyone-but-itself.
fn parent_signals(ranks: usize, seed: u64, watchdog_ms: Option<u64>) {
    assert!(ranks <= 64, "badges are bits of one u64 word");
    let exe = std::env::current_exe().expect("current_exe");
    let mut children = Vec::new();
    for r in 0..ranks {
        let mut args = vec![
            "--child".to_string(),
            r.to_string(),
            "--ranks".to_string(),
            ranks.to_string(),
            "--seed".to_string(),
            seed.to_string(),
            "--signals".to_string(),
        ];
        if let Some(ms) = watchdog_ms {
            args.push("--watchdog-ms".to_string());
            args.push(ms.to_string());
        }
        let child = Command::new(&exe)
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn child rank");
        children.push(child);
    }
    let mut stdins = Vec::new();
    let mut stdouts = Vec::new();
    for c in &mut children {
        stdins.push(c.stdin.take().expect("child stdin"));
        stdouts.push(BufReader::new(c.stdout.take().expect("child stdout")));
    }
    let expect_line = |r: &mut BufReader<std::process::ChildStdout>, prefix: &str| -> String {
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                r.read_line(&mut line).expect("read child") > 0,
                "child exited before sending {prefix}"
            );
            if let Some(rest) = line.trim_end().strip_prefix(prefix) {
                return rest.to_string();
            }
        }
    };

    let addrs: Vec<String> = stdouts
        .iter_mut()
        .map(|r| expect_line(r, "ADDR "))
        .collect();
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for s in &mut stdins {
        s.write_all(peers_line.as_bytes()).expect("send PEERS");
        s.flush().unwrap();
    }
    for (rank, r) in stdouts.iter_mut().enumerate() {
        let rest = expect_line(r, "SIGDONE ");
        let got = u64::from_str_radix(rest.trim(), 16).expect("SIGDONE hex");
        let expected: u64 = (0..ranks)
            .filter(|&p| p != rank)
            .fold(0, |m, p| m | (1u64 << p));
        assert_eq!(got, expected, "rank {rank} woke with the wrong badge mask");
    }
    for s in &mut stdins {
        s.write_all(b"GO\n").expect("send GO");
        s.flush().unwrap();
    }
    for c in &mut children {
        assert!(c.wait().expect("wait child").success(), "child rank failed");
    }
    println!("udprun: ranks={ranks} signal masks verified, waiters parked without polling");
    println!("udprun: OK");
}

fn child(me: usize, ranks: usize, seed: u64, deadline: Duration, trace: bool) {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.set_nonblocking(true).expect("nonblocking");
    println!("ADDR {}", sock.local_addr().expect("local_addr"));
    std::io::stdout().flush().unwrap();

    // Stdin lines arrive on a channel so the main loop can keep serving
    // datagrams while waiting for the parent's coordination messages.
    let (peers, rx) = recv_peers(ranks);

    let mut tr = trace.then(Tracer::new);
    // Queue every PUT this rank owns: slot j of target t for j ≡ me (mod n).
    struct Flight {
        frame: [u8; FRAME_LEN],
        to: SocketAddr,
        due: Instant,
        attempt: u32,
        op: u64,
        init_ns: u64,
    }
    let mut unacked: HashMap<u64, Flight> = HashMap::new();
    let mut msg_seq = 0u64;
    for (t, peer) in peers.iter().enumerate() {
        for j in (me..STORM_WORDS).step_by(ranks) {
            let v = storm_slot_val(seed, t, j);
            // Globally unique wire id: rank-local sequence tagged with the
            // source rank, so the parent can merge all ranks' wire events
            // into one per-message chain.
            let gmsg = ((me as u64) << 32) | msg_seq;
            let op = msg_seq + 1;
            let init_ns = epoch_ns();
            let mut wire_lc = 0;
            if let Some(tc) = tr.as_mut() {
                tc.init(op);
                tc.inject(op, gmsg);
                wire_lc = tc.tick();
                tc.net(wire_lc, gmsg, 0, "inject");
            }
            let frame = encode(KIND_PUT, gmsg, me as u32, t as u32, j as u32, v, wire_lc);
            let _ = sock.send_to(&frame, peer);
            unacked.insert(
                gmsg,
                Flight {
                    frame,
                    to: *peer,
                    due: Instant::now() + RTO,
                    attempt: 0,
                    op,
                    init_ns,
                },
            );
            msg_seq += 1;
        }
    }

    let mut array = [0u64; STORM_WORDS];
    let mut applied: HashSet<(u32, u64)> = HashSet::new();
    let mut announced = false;
    let mut buf = [0u8; 64];
    let start = Instant::now();
    loop {
        assert!(
            start.elapsed() < deadline,
            "rank {me}: protocol watchdog ({deadline:?}) expired with {} unacked puts",
            unacked.len()
        );
        // Serve the wire.
        loop {
            let (len, _) = match sock.recv_from(&mut buf) {
                Ok(r) => r,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => panic!("rank {me}: recv: {e}"),
            };
            let Some((kind, msg, src, target, slot, value, lclock)) = decode(&buf[..len]) else {
                continue;
            };
            match kind {
                KIND_PUT => {
                    assert_eq!(target as usize, me, "rank {me}: misrouted PUT");
                    let fresh = applied.insert((src, msg));
                    if fresh {
                        array[slot as usize] = value;
                    }
                    if let Some(tc) = tr.as_mut() {
                        // Merge the carried stamp even for duplicates: the
                        // frame was observed, so the clock saw it.
                        let merged = tc.merge(lclock);
                        tc.net(merged, msg, 0, if fresh { "deliver" } else { "dup" });
                    }
                    // Ack (and re-ack duplicates: our previous ack may be
                    // the datagram that got lost). ACKs carry lclock 0,
                    // matching the sim conduit's untraced carrier frames.
                    let ack = encode(KIND_ACK, msg, me as u32, src, slot, 0, 0);
                    let _ = sock.send_to(&ack, peers[src as usize]);
                }
                KIND_ACK => {
                    if let Some(f) = unacked.remove(&msg) {
                        if let Some(tc) = tr.as_mut() {
                            // The first ACK completes the op: the deferred
                            // notification path of the multi-process world.
                            tc.notify(f.op, epoch_ns().saturating_sub(f.init_ns));
                        }
                    }
                }
                _ => {}
            }
        }
        // Retransmit overdue flights. A retry is the same logical send, so
        // the frame (and its Lamport stamp) goes out unmodified; the retry
        // wire event still ticks the clock — it is a fresh observable act.
        let now = Instant::now();
        for (gmsg, f) in unacked.iter_mut() {
            if f.due <= now {
                let _ = sock.send_to(&f.frame, f.to);
                f.due = now + RTO;
                f.attempt += 1;
                if let Some(tc) = tr.as_mut() {
                    let lc = tc.tick();
                    tc.net(lc, *gmsg, f.attempt, "retry");
                }
            }
        }
        if unacked.is_empty() && !announced {
            println!("PUTS_DONE");
            std::io::stdout().flush().unwrap();
            announced = true;
        }
        // GO only arrives after every rank's PUTs are acked, i.e. applied.
        match rx.try_recv() {
            Ok(line) if line.trim() == "GO" => break,
            Ok(_) => {}
            Err(mpsc::TryRecvError::Empty) => {}
            Err(mpsc::TryRecvError::Disconnected) => panic!("rank {me}: parent vanished"),
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for w in array {
        h = fold(h, w);
    }
    println!("DIGEST {h:016x} APPLIED {}", applied.len());
    std::io::stdout().flush().unwrap();
    if let Some(tc) = &tr {
        tc.dump();
    }
}

/// Parse one child `TEV <ts> <seq> <lclock> <kind> ...` line back into the
/// core trace event type. Every multi-process op is a Put completing on the
/// deferred path (the ACK is the notification).
fn parse_tev(rest: &str, rank: usize) -> upcr::trace::TraceEvent {
    use upcr::trace::{CompletionPath, EventKind, OpKind, TraceOp};
    let mut it = rest.split_whitespace();
    fn num(it: &mut std::str::SplitWhitespace, rank: usize, rest: &str) -> u64 {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("rank {rank}: malformed TEV field in {rest:?}"))
    }
    let (ts_ns, seq, lclock) = (
        num(&mut it, rank, rest),
        num(&mut it, rank, rest),
        num(&mut it, rank, rest),
    );
    let kind_s = it
        .next()
        .unwrap_or_else(|| panic!("rank {rank}: TEV kind missing in {rest:?}"));
    let op_id = num(&mut it, rank, rest);
    let kind = match kind_s {
        "init" => EventKind::Init,
        "inject" => EventKind::NetInject {
            msg: num(&mut it, rank, rest),
        },
        "notify" => EventKind::Notify {
            path: CompletionPath::Deferred,
            latency_ns: num(&mut it, rank, rest),
        },
        other => panic!("rank {rank}: unknown TEV kind {other:?}"),
    };
    upcr::trace::TraceEvent {
        ts_ns,
        seq,
        op: TraceOp {
            id: op_id,
            kind: OpKind::Put,
        },
        kind,
        lclock,
    }
}

/// Parse one child `NEV <ts> <lclock> <msg> <attempt> <kind>` line.
fn parse_nev(rest: &str, rank: usize) -> upcr::trace::NetTraceEvent {
    use upcr::trace::NetEventKind;
    let mut it = rest.split_whitespace();
    let mut num = || -> u64 {
        it.next()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("rank {rank}: malformed NEV field in {rest:?}"))
    };
    let (ts_ns, lclock, msg, attempt) = (num(), num(), num(), num() as u32);
    let kind = match it.next() {
        Some("inject") => NetEventKind::Inject,
        Some("retry") => NetEventKind::Retry,
        Some("deliver") => NetEventKind::Deliver,
        Some("dup") => NetEventKind::DupDiscard,
        other => panic!("rank {rank}: unknown NEV kind {other:?}"),
    };
    upcr::trace::NetTraceEvent {
        ts_ns,
        msg,
        attempt,
        kind,
        lclock,
    }
}

fn parent(
    ranks: usize,
    seed: u64,
    verify_sim: bool,
    progress_thread: bool,
    watchdog_ms: Option<u64>,
    trace_out: Option<String>,
) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut children = Vec::new();
    for r in 0..ranks {
        let mut args = vec![
            "--child".to_string(),
            r.to_string(),
            "--ranks".to_string(),
            ranks.to_string(),
            "--seed".to_string(),
            seed.to_string(),
        ];
        if trace_out.is_some() {
            args.push("--trace".to_string());
        }
        if let Some(ms) = watchdog_ms {
            args.push("--watchdog-ms".to_string());
            args.push(ms.to_string());
        }
        let child = Command::new(&exe)
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn child rank");
        children.push(child);
    }
    let mut stdins = Vec::new();
    let mut stdouts = Vec::new();
    for c in &mut children {
        stdins.push(c.stdin.take().expect("child stdin"));
        stdouts.push(BufReader::new(c.stdout.take().expect("child stdout")));
    }
    let expect_line = |r: &mut BufReader<std::process::ChildStdout>, prefix: &str| -> String {
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                r.read_line(&mut line).expect("read child") > 0,
                "child exited before sending {prefix}"
            );
            if let Some(rest) = line.trim_end().strip_prefix(prefix) {
                return rest.to_string();
            }
        }
    };

    let addrs: Vec<String> = stdouts
        .iter_mut()
        .map(|r| expect_line(r, "ADDR "))
        .collect();
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for s in &mut stdins {
        s.write_all(peers_line.as_bytes()).expect("send PEERS");
        s.flush().unwrap();
    }
    for r in &mut stdouts {
        expect_line(r, "PUTS_DONE");
    }
    for s in &mut stdins {
        s.write_all(b"GO\n").expect("send GO");
        s.flush().unwrap();
    }

    let mut digest = 0u64;
    let mut total_applied = 0u64;
    let mut bundle = upcr::trace::TraceBundle::default();
    for (rank, r) in stdouts.iter_mut().enumerate() {
        let rest = expect_line(r, "DIGEST ");
        let mut it = rest.split_whitespace();
        let h = u64::from_str_radix(it.next().expect("digest"), 16).expect("digest hex");
        let applied: u64 = match (it.next(), it.next()) {
            (Some("APPLIED"), Some(n)) => n.parse().expect("applied count"),
            _ => panic!("malformed DIGEST line from rank {rank}"),
        };
        digest = fold(digest, h);
        total_applied += applied;
        if trace_out.is_some() {
            // Step 5½: drain this rank's trace lines up to TRACE_END.
            let mut events = Vec::new();
            let mut line = String::new();
            loop {
                line.clear();
                assert!(
                    r.read_line(&mut line).expect("read child") > 0,
                    "rank {rank} exited before TRACE_END"
                );
                let l = line.trim_end();
                if l == "TRACE_END" {
                    break;
                } else if let Some(rest) = l.strip_prefix("TEV ") {
                    events.push(parse_tev(rest, rank));
                } else if let Some(rest) = l.strip_prefix("NEV ") {
                    bundle.net.push(parse_nev(rest, rank));
                }
            }
            bundle.ranks.push(upcr::trace::RankTrace {
                rank: rank as u32,
                events,
                dropped: 0,
            });
        }
    }
    for c in &mut children {
        assert!(c.wait().expect("wait child").success(), "child rank failed");
    }

    if let Some(path) = &trace_out {
        use upcr::trace::NetEventKind;
        // The assembler expects each message's wire chain in causal order.
        // Lamport-major gets inject < deliver < dup right (the receiver
        // merges before stamping both); the kind rank breaks inject/retry
        // ties (retries re-send the original stamp).
        fn kind_rank(k: &NetEventKind) -> u8 {
            match k {
                NetEventKind::Inject => 0,
                NetEventKind::Retry => 1,
                NetEventKind::Deliver => 2,
                NetEventKind::DupDiscard => 3,
                _ => 4,
            }
        }
        bundle
            .net
            .sort_by_key(|e| (e.msg, e.lclock, kind_rank(&e.kind), e.ts_ns));
        let asm = upcr::trace::assemble(&bundle);
        let flows = upcr::trace::chrome_trace_json_with_flows(&bundle, &asm);
        std::fs::write(path, &flows).unwrap_or_else(|e| panic!("udprun: writing {path}: {e}"));
        // Violations are *reported*, never asserted zero: each OS process
        // stamps its own kernel clock, and surfacing their skew against
        // Lamport order is the point of the counter.
        println!(
            "udprun: causal nodes={} hb_edges={} violations={} chain_depth={} -> {path}",
            asm.nodes.len(),
            asm.hb_edges(),
            asm.violations,
            asm.chain_depth
        );
    }

    // Analytic expectation: the same fold over the known final image.
    let mut expected = 0u64;
    for t in 0..ranks {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for j in 0..STORM_WORDS {
            h = fold(h, storm_slot_val(seed, t, j));
        }
        expected = fold(expected, h);
    }
    println!(
        "udprun: ranks={ranks} seed={seed} datagrams_applied={total_applied} \
         digest={digest:#018x}"
    );
    assert_eq!(
        digest, expected,
        "multi-process digest diverged from the analytic final image"
    );
    assert_eq!(total_applied as usize, ranks * STORM_WORDS);

    if verify_sim && ranks != simtest::RANKS {
        println!(
            "udprun: skipping sim differential (harness is fixed at {} ranks)",
            simtest::RANKS
        );
    } else if verify_sim {
        // The same workload through the in-process runtime on the simulated
        // conduit, both notification versions — the three-way differential.
        for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
            let o = run(Workload::PutGetStorm, version, seed, None);
            assert_eq!(
                o.digest, digest,
                "{version:?} simulator digest diverged from the multi-process run"
            );
            println!("udprun: {version:?} sim digest matches");
        }
        if progress_thread {
            // Fourth leg of the differential: the in-process runtime on the
            // real kernel-socket conduit with the background progress
            // thread actually running (wall clock), same digest required.
            let (o, _) = simtest::run_with_options(
                Workload::PutGetStorm,
                LibVersion::V2021_3_6Eager,
                seed,
                None,
                gasnex::Transport::UdpSocket,
                true,
            );
            assert_eq!(
                o.digest, digest,
                "progress-thread UDP-conduit digest diverged from the multi-process run"
            );
            println!("udprun: progress-thread udp-conduit digest matches");
        }
    }
    println!("udprun: OK");
}
