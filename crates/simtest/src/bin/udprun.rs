//! Multi-process UDP runner: ranks as real OS processes, data as real
//! datagrams.
//!
//! The in-process `UdpConduit` proves the *control* path is
//! transport-independent (closures cannot cross the wire, so its DATA
//! frames carry no payload). This runner closes the remaining gap: it
//! forks each rank as a separate OS process, and the PutGetStorm payload
//! words themselves travel inside loopback datagrams between processes
//! that share no memory at all. Each rank builds its slice of the final
//! image purely out of what arrived on the wire, digests it, and the
//! parent folds the per-rank digests in rank order — the same digest
//! formula the in-process harness uses — then checks the result against
//! the analytic final image and (unless `--no-sim`) against in-process
//! simulator runs of the same workload under both notification versions.
//!
//! ```text
//! udprun [--ranks N] [--seed S] [--no-sim] [--signals] [--watchdog-ms N]
//! ```
//!
//! With `--signals` the storm is replaced by the multi-process analogue of
//! `wait_signal`: each rank datagrams its badge (`1 << rank`) to every
//! peer as a SIG frame, a socket-service thread ORs arriving badges into a
//! condvar-guarded notification word, and the **main thread parks on the
//! condvar** — never touching the socket — until the expected mask is
//! covered, then reports `SIGDONE <mask>` for the parent to verify.
//!
//! Protocol (parent <-> child over pipes, child <-> child over UDP):
//!
//! 1. Parent spawns `udprun --child R --ranks N --seed S` per rank.
//! 2. Each child binds 127.0.0.1:0 and prints `ADDR <addr>`.
//! 3. Parent broadcasts `PEERS <addr0> <addr1> ...` on every stdin.
//! 4. Children exchange PUT/ACK datagrams (retransmitting on a timer,
//!    deduplicating by `(src, msg)`) until every PUT they sent is acked,
//!    then print `PUTS_DONE`.
//! 5. Parent waits for all, broadcasts `GO`; children digest their local
//!    arrays and print `DIGEST <hex> APPLIED <n>`.
//! 6. Parent folds digests in rank order and verifies.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, UdpSocket};
use std::process::{Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use simtest::{fold, run, storm_slot_val, Workload, STORM_WORDS};
use upcr::LibVersion;

const MAGIC: u8 = 0xC8;
const KIND_PUT: u8 = 3;
const KIND_ACK: u8 = 4;
const KIND_SIG: u8 = 5;
const KIND_SIGACK: u8 = 6;
const FRAME_LEN: usize = 30;
const RTO: Duration = Duration::from_millis(5);
/// Default protocol watchdog: any child stuck past this long (serving the
/// wire, or parked on the signal condvar) aborts with a diagnosis line
/// instead of hanging CI. Override with `--watchdog-ms N`.
const DEADLINE: Duration = Duration::from_secs(30);

/// `[magic][kind][msg u64][src u32][target u32][slot u32][value u64]`;
/// ACK frames echo the PUT's header and ignore the value field.
fn encode(kind: u8, msg: u64, src: u32, target: u32, slot: u32, value: u64) -> [u8; FRAME_LEN] {
    let mut b = [0u8; FRAME_LEN];
    b[0] = MAGIC;
    b[1] = kind;
    b[2..10].copy_from_slice(&msg.to_le_bytes());
    b[10..14].copy_from_slice(&src.to_le_bytes());
    b[14..18].copy_from_slice(&target.to_le_bytes());
    b[18..22].copy_from_slice(&slot.to_le_bytes());
    b[22..30].copy_from_slice(&value.to_le_bytes());
    b
}

fn decode(b: &[u8]) -> Option<(u8, u64, u32, u32, u32, u64)> {
    if b.len() != FRAME_LEN || b[0] != MAGIC {
        return None;
    }
    Some((
        b[1],
        u64::from_le_bytes(b[2..10].try_into().ok()?),
        u32::from_le_bytes(b[10..14].try_into().ok()?),
        u32::from_le_bytes(b[14..18].try_into().ok()?),
        u32::from_le_bytes(b[18..22].try_into().ok()?),
        u64::from_le_bytes(b[22..30].try_into().ok()?),
    ))
}

fn parse_flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ranks: usize = parse_flag(&args, "--ranks")
        .map(|v| v.parse().expect("--ranks"))
        .unwrap_or(4);
    let seed: u64 = parse_flag(&args, "--seed")
        .map(|v| v.parse().expect("--seed"))
        .unwrap_or(0);
    let signals = args.iter().any(|a| a == "--signals");
    let watchdog_ms: Option<u64> =
        parse_flag(&args, "--watchdog-ms").map(|v| v.parse().expect("--watchdog-ms"));
    let deadline = watchdog_ms.map_or(DEADLINE, Duration::from_millis);
    if let Some(me) = parse_flag(&args, "--child") {
        let me = me.parse().expect("--child");
        if signals {
            child_signals(me, ranks, deadline);
        } else {
            child(me, ranks, seed, deadline);
        }
    } else if signals {
        parent_signals(ranks, seed, watchdog_ms);
    } else {
        parent(
            ranks,
            seed,
            !args.iter().any(|a| a == "--no-sim"),
            watchdog_ms,
        );
    }
}

/// Receive the `PEERS` broadcast (spawning the stdin-relay thread) and
/// return the peer address list plus the stdin channel.
fn recv_peers(ranks: usize) -> (Vec<SocketAddr>, mpsc::Receiver<String>) {
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::spawn(move || {
        for line in BufReader::new(std::io::stdin()).lines() {
            let Ok(line) = line else { break };
            if tx.send(line).is_err() {
                break;
            }
        }
    });
    let peers: Vec<SocketAddr> = loop {
        let line = rx.recv().expect("parent closed stdin before PEERS");
        if let Some(rest) = line.strip_prefix("PEERS ") {
            break rest
                .split_whitespace()
                .map(|a| a.parse().expect("peer addr"))
                .collect();
        }
    };
    assert_eq!(peers.len(), ranks, "parent sent wrong peer count");
    (peers, rx)
}

/// Multi-process `wait_signal`: each rank datagrams its badge (`1 << me`)
/// to every peer as a SIG frame (retransmitted until SIGACKed, duplicates
/// re-acked and OR-suppressed), while a dedicated socket-service thread
/// ORs arriving badges into a condvar-guarded notification word. The main
/// thread **parks on the condvar** — it never touches the socket, the
/// process-level analogue of the in-runtime zero-polls-while-parked
/// guarantee — until the word covers the full expected mask, then prints
/// `SIGDONE <mask>` for the parent to verify.
fn child_signals(me: usize, ranks: usize, deadline: Duration) {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.set_nonblocking(true).expect("nonblocking");
    println!("ADDR {}", sock.local_addr().expect("local_addr"));
    std::io::stdout().flush().unwrap();
    let (peers, rx) = recv_peers(ranks);

    let expected: u64 = (0..ranks)
        .filter(|&r| r != me)
        .fold(0, |m, r| m | (1u64 << r));
    let word = std::sync::Arc::new((std::sync::Mutex::new(0u64), std::sync::Condvar::new()));

    let w2 = std::sync::Arc::clone(&word);
    let service = std::thread::spawn(move || {
        struct Flight {
            frame: [u8; FRAME_LEN],
            to: SocketAddr,
            due: Instant,
        }
        let badge = 1u64 << me;
        let mut unacked: HashMap<u64, Flight> = HashMap::new();
        for (t, peer) in peers.iter().enumerate() {
            if t == me {
                continue;
            }
            let frame = encode(KIND_SIG, t as u64, me as u32, t as u32, 0, badge);
            let _ = sock.send_to(&frame, peer);
            unacked.insert(
                t as u64,
                Flight {
                    frame,
                    to: *peer,
                    due: Instant::now() + RTO,
                },
            );
        }
        let mut applied: HashSet<(u32, u64)> = HashSet::new();
        let mut buf = [0u8; 64];
        let start = Instant::now();
        loop {
            assert!(
                start.elapsed() < deadline,
                "rank {me}: signal watchdog ({deadline:?}) expired with {} unacked signals",
                unacked.len()
            );
            loop {
                let (len, _) = match sock.recv_from(&mut buf) {
                    Ok(r) => r,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => panic!("rank {me}: recv: {e}"),
                };
                let Some((kind, msg, src, target, _slot, value)) = decode(&buf[..len]) else {
                    continue;
                };
                match kind {
                    KIND_SIG => {
                        assert_eq!(target as usize, me, "rank {me}: misrouted SIG");
                        // First arrival ORs the badge in and wakes the
                        // parked main thread if the mask is now covered;
                        // duplicates only re-ack (the badge OR would be
                        // idempotent anyway — that's the coalescing law).
                        if applied.insert((src, msg)) {
                            let (lock, cv) = &*w2;
                            let mut bits = lock.lock().unwrap();
                            *bits |= value;
                            if *bits & expected == expected {
                                cv.notify_all();
                            }
                        }
                        let ack = encode(KIND_SIGACK, msg, me as u32, src, 0, 0);
                        let _ = sock.send_to(&ack, peers[src as usize]);
                    }
                    KIND_SIGACK => {
                        unacked.remove(&msg);
                    }
                    _ => {}
                }
            }
            let now = Instant::now();
            for f in unacked.values_mut() {
                if f.due <= now {
                    let _ = sock.send_to(&f.frame, f.to);
                    f.due = now + RTO;
                }
            }
            // Keep serving (re-acks for peers whose SIGACKs got lost)
            // until the parent releases the world.
            match rx.try_recv() {
                Ok(line) if line.trim() == "GO" => break,
                Ok(_) => {}
                Err(mpsc::TryRecvError::Empty) => {}
                Err(mpsc::TryRecvError::Disconnected) => panic!("rank {me}: parent vanished"),
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        assert!(unacked.is_empty(), "rank {me}: exited with unacked signals");
    });

    // The parked waiter: condvar only, no socket, no spinning.
    let (lock, cv) = &*word;
    let mut bits = lock.lock().unwrap();
    while *bits & expected != expected {
        let (guard, timeout) = cv
            .wait_timeout(bits, deadline)
            .expect("notification word poisoned");
        bits = guard;
        assert!(
            !timeout.timed_out(),
            "rank {me}: parked past the watchdog ({deadline:?}) still missing badge \
             bits {:#x} of {expected:#x}",
            expected & !*bits
        );
    }
    let got = *bits;
    drop(bits);
    println!("SIGDONE {got:016x}");
    std::io::stdout().flush().unwrap();
    service.join().expect("service thread");
}

/// Parent half of `--signals`: same PEERS handshake, then each child must
/// report a `SIGDONE` mask equal to everyone-but-itself.
fn parent_signals(ranks: usize, seed: u64, watchdog_ms: Option<u64>) {
    assert!(ranks <= 64, "badges are bits of one u64 word");
    let exe = std::env::current_exe().expect("current_exe");
    let mut children = Vec::new();
    for r in 0..ranks {
        let mut args = vec![
            "--child".to_string(),
            r.to_string(),
            "--ranks".to_string(),
            ranks.to_string(),
            "--seed".to_string(),
            seed.to_string(),
            "--signals".to_string(),
        ];
        if let Some(ms) = watchdog_ms {
            args.push("--watchdog-ms".to_string());
            args.push(ms.to_string());
        }
        let child = Command::new(&exe)
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn child rank");
        children.push(child);
    }
    let mut stdins = Vec::new();
    let mut stdouts = Vec::new();
    for c in &mut children {
        stdins.push(c.stdin.take().expect("child stdin"));
        stdouts.push(BufReader::new(c.stdout.take().expect("child stdout")));
    }
    let expect_line = |r: &mut BufReader<std::process::ChildStdout>, prefix: &str| -> String {
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                r.read_line(&mut line).expect("read child") > 0,
                "child exited before sending {prefix}"
            );
            if let Some(rest) = line.trim_end().strip_prefix(prefix) {
                return rest.to_string();
            }
        }
    };

    let addrs: Vec<String> = stdouts
        .iter_mut()
        .map(|r| expect_line(r, "ADDR "))
        .collect();
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for s in &mut stdins {
        s.write_all(peers_line.as_bytes()).expect("send PEERS");
        s.flush().unwrap();
    }
    for (rank, r) in stdouts.iter_mut().enumerate() {
        let rest = expect_line(r, "SIGDONE ");
        let got = u64::from_str_radix(rest.trim(), 16).expect("SIGDONE hex");
        let expected: u64 = (0..ranks)
            .filter(|&p| p != rank)
            .fold(0, |m, p| m | (1u64 << p));
        assert_eq!(got, expected, "rank {rank} woke with the wrong badge mask");
    }
    for s in &mut stdins {
        s.write_all(b"GO\n").expect("send GO");
        s.flush().unwrap();
    }
    for c in &mut children {
        assert!(c.wait().expect("wait child").success(), "child rank failed");
    }
    println!("udprun: ranks={ranks} signal masks verified, waiters parked without polling");
    println!("udprun: OK");
}

fn child(me: usize, ranks: usize, seed: u64, deadline: Duration) {
    let sock = UdpSocket::bind("127.0.0.1:0").expect("bind");
    sock.set_nonblocking(true).expect("nonblocking");
    println!("ADDR {}", sock.local_addr().expect("local_addr"));
    std::io::stdout().flush().unwrap();

    // Stdin lines arrive on a channel so the main loop can keep serving
    // datagrams while waiting for the parent's coordination messages.
    let (peers, rx) = recv_peers(ranks);

    // Queue every PUT this rank owns: slot j of target t for j ≡ me (mod n).
    struct Flight {
        frame: [u8; FRAME_LEN],
        to: SocketAddr,
        due: Instant,
    }
    let mut unacked: HashMap<u64, Flight> = HashMap::new();
    let mut msg_seq = 0u64;
    for (t, peer) in peers.iter().enumerate() {
        for j in (me..STORM_WORDS).step_by(ranks) {
            let v = storm_slot_val(seed, t, j);
            let frame = encode(KIND_PUT, msg_seq, me as u32, t as u32, j as u32, v);
            let _ = sock.send_to(&frame, peer);
            unacked.insert(
                msg_seq,
                Flight {
                    frame,
                    to: *peer,
                    due: Instant::now() + RTO,
                },
            );
            msg_seq += 1;
        }
    }

    let mut array = [0u64; STORM_WORDS];
    let mut applied: HashSet<(u32, u64)> = HashSet::new();
    let mut announced = false;
    let mut buf = [0u8; 64];
    let start = Instant::now();
    loop {
        assert!(
            start.elapsed() < deadline,
            "rank {me}: protocol watchdog ({deadline:?}) expired with {} unacked puts",
            unacked.len()
        );
        // Serve the wire.
        loop {
            let (len, _) = match sock.recv_from(&mut buf) {
                Ok(r) => r,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) => panic!("rank {me}: recv: {e}"),
            };
            let Some((kind, msg, src, target, slot, value)) = decode(&buf[..len]) else {
                continue;
            };
            match kind {
                KIND_PUT => {
                    assert_eq!(target as usize, me, "rank {me}: misrouted PUT");
                    if applied.insert((src, msg)) {
                        array[slot as usize] = value;
                    }
                    // Ack (and re-ack duplicates: our previous ack may be
                    // the datagram that got lost).
                    let ack = encode(KIND_ACK, msg, me as u32, src, slot, 0);
                    let _ = sock.send_to(&ack, peers[src as usize]);
                }
                KIND_ACK => {
                    unacked.remove(&msg);
                }
                _ => {}
            }
        }
        // Retransmit overdue flights.
        let now = Instant::now();
        for f in unacked.values_mut() {
            if f.due <= now {
                let _ = sock.send_to(&f.frame, f.to);
                f.due = now + RTO;
            }
        }
        if unacked.is_empty() && !announced {
            println!("PUTS_DONE");
            std::io::stdout().flush().unwrap();
            announced = true;
        }
        // GO only arrives after every rank's PUTs are acked, i.e. applied.
        match rx.try_recv() {
            Ok(line) if line.trim() == "GO" => break,
            Ok(_) => {}
            Err(mpsc::TryRecvError::Empty) => {}
            Err(mpsc::TryRecvError::Disconnected) => panic!("rank {me}: parent vanished"),
        }
        std::thread::sleep(Duration::from_micros(200));
    }

    let mut h = 0x9E37_79B9_7F4A_7C15u64;
    for w in array {
        h = fold(h, w);
    }
    println!("DIGEST {h:016x} APPLIED {}", applied.len());
    std::io::stdout().flush().unwrap();
}

fn parent(ranks: usize, seed: u64, verify_sim: bool, watchdog_ms: Option<u64>) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut children = Vec::new();
    for r in 0..ranks {
        let mut args = vec![
            "--child".to_string(),
            r.to_string(),
            "--ranks".to_string(),
            ranks.to_string(),
            "--seed".to_string(),
            seed.to_string(),
        ];
        if let Some(ms) = watchdog_ms {
            args.push("--watchdog-ms".to_string());
            args.push(ms.to_string());
        }
        let child = Command::new(&exe)
            .args(&args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawn child rank");
        children.push(child);
    }
    let mut stdins = Vec::new();
    let mut stdouts = Vec::new();
    for c in &mut children {
        stdins.push(c.stdin.take().expect("child stdin"));
        stdouts.push(BufReader::new(c.stdout.take().expect("child stdout")));
    }
    let expect_line = |r: &mut BufReader<std::process::ChildStdout>, prefix: &str| -> String {
        let mut line = String::new();
        loop {
            line.clear();
            assert!(
                r.read_line(&mut line).expect("read child") > 0,
                "child exited before sending {prefix}"
            );
            if let Some(rest) = line.trim_end().strip_prefix(prefix) {
                return rest.to_string();
            }
        }
    };

    let addrs: Vec<String> = stdouts
        .iter_mut()
        .map(|r| expect_line(r, "ADDR "))
        .collect();
    let peers_line = format!("PEERS {}\n", addrs.join(" "));
    for s in &mut stdins {
        s.write_all(peers_line.as_bytes()).expect("send PEERS");
        s.flush().unwrap();
    }
    for r in &mut stdouts {
        expect_line(r, "PUTS_DONE");
    }
    for s in &mut stdins {
        s.write_all(b"GO\n").expect("send GO");
        s.flush().unwrap();
    }

    let mut digest = 0u64;
    let mut total_applied = 0u64;
    for (rank, r) in stdouts.iter_mut().enumerate() {
        let rest = expect_line(r, "DIGEST ");
        let mut it = rest.split_whitespace();
        let h = u64::from_str_radix(it.next().expect("digest"), 16).expect("digest hex");
        let applied: u64 = match (it.next(), it.next()) {
            (Some("APPLIED"), Some(n)) => n.parse().expect("applied count"),
            _ => panic!("malformed DIGEST line from rank {rank}"),
        };
        digest = fold(digest, h);
        total_applied += applied;
    }
    for c in &mut children {
        assert!(c.wait().expect("wait child").success(), "child rank failed");
    }

    // Analytic expectation: the same fold over the known final image.
    let mut expected = 0u64;
    for t in 0..ranks {
        let mut h = 0x9E37_79B9_7F4A_7C15u64;
        for j in 0..STORM_WORDS {
            h = fold(h, storm_slot_val(seed, t, j));
        }
        expected = fold(expected, h);
    }
    println!(
        "udprun: ranks={ranks} seed={seed} datagrams_applied={total_applied} \
         digest={digest:#018x}"
    );
    assert_eq!(
        digest, expected,
        "multi-process digest diverged from the analytic final image"
    );
    assert_eq!(total_applied as usize, ranks * STORM_WORDS);

    if verify_sim && ranks != simtest::RANKS {
        println!(
            "udprun: skipping sim differential (harness is fixed at {} ranks)",
            simtest::RANKS
        );
    } else if verify_sim {
        // The same workload through the in-process runtime on the simulated
        // conduit, both notification versions — the three-way differential.
        for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
            let o = run(Workload::PutGetStorm, version, seed, None);
            assert_eq!(
                o.digest, digest,
                "{version:?} simulator digest diverged from the multi-process run"
            );
            println!("udprun: {version:?} sim digest matches");
        }
    }
    println!("udprun: OK");
}
