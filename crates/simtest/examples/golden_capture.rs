//! One-shot golden capture for the conduit-swap regression suite.
//!
//! Prints the outcome and wire-trace goldens `tests/conduit.rs` pins. Run
//! it before and after a conduit-layer change and diff the output: any
//! difference is a behaviour change the refactor was not allowed to make.

use simtest::{fault_plans, run, wire_trace_probe, Workload};
use upcr::LibVersion;

fn main() {
    // Digest goldens: 8 seeds x eager/defer x all three fault plans.
    for seed in 0..8u64 {
        for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
            for (plan_name, plan) in fault_plans(seed) {
                let o = run(Workload::PutGetStorm, version, seed, Some(plan));
                println!(
                    "OUTCOME seed={} version={:?} plan={} digest={:#018x} completions={} injected={} retries={} drops={} dups={} backoff={}",
                    seed, version, plan_name, o.digest, o.completions, o.injected,
                    o.retries, o.drops_injected, o.dup_suppressed, o.max_backoff_ns
                );
            }
        }
    }
    // Wire-trace goldens: a single-threaded drive of the conduit under each
    // plan, with tracing on. The event stream is a pure function of the seed.
    for (plan_name, plan) in fault_plans(3) {
        let (events, hash) = wire_trace_probe(plan, 64);
        println!("TRACE plan={plan_name} events={events} hash={hash:#018x}");
    }
}
