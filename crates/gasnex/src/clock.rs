//! Per-rank Lamport clocks for cross-rank causal tracing.
//!
//! One logical clock per rank plus one extra *unrouted* slot for wire
//! traffic that carries no routing hint (collective fan-out actions, test
//! injections). The clocks implement the classic Lamport discipline:
//!
//! * **tick** — a rank-local event advances that rank's clock by one and
//!   returns the post-tick value, which stamps the event.
//! * **merge** — receiving a message stamped `seen` advances the receiving
//!   rank's clock to `max(local, seen) + 1`, so every delivery is ordered
//!   after both its send and everything the receiver already observed.
//!
//! The slots are plain atomics shared by every rank thread and both
//! conduit implementations; a rank's stamps are strictly monotone because
//! `tick` is a fetch-add and `merge` a CAS-max loop — concurrent tickers
//! can interleave but never repeat or regress a value.
//!
//! Ticking is **gated on tracing**: the conduits and the trace layer only
//! call `tick`/`merge` when their trace sinks are recording, so untraced
//! runs pay nothing and every clock reads zero — which keeps quiesced
//! snapshots byte-identical whether or not the causal subsystem exists.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The shared bank of per-rank Lamport clocks (`ranks` slots) plus the
/// trailing unrouted/wire slot.
#[derive(Debug)]
pub struct LamportClocks {
    slots: Box<[AtomicU64]>,
    /// Total ticks + merges performed, feeding `NetStats::lclock_ticks`.
    ticks: AtomicU64,
}

impl LamportClocks {
    /// A zeroed clock bank for `ranks` ranks (allocates `ranks + 1` slots;
    /// the last is the unrouted/wire slot).
    pub fn new(ranks: usize) -> Arc<Self> {
        Arc::new(LamportClocks {
            slots: (0..=ranks).map(|_| AtomicU64::new(0)).collect(),
            ticks: AtomicU64::new(0),
        })
    }

    /// Number of rank slots (excluding the unrouted slot).
    pub fn ranks(&self) -> usize {
        self.slots.len() - 1
    }

    /// The slot index for traffic with no routing hint.
    #[inline]
    pub fn unrouted_slot(&self) -> usize {
        self.slots.len() - 1
    }

    /// Map an optional rank index to its slot, clamping unknown or absent
    /// ranks to the unrouted slot.
    #[inline]
    pub fn slot_for(&self, rank: Option<u32>) -> usize {
        match rank {
            Some(r) if (r as usize) < self.ranks() => r as usize,
            _ => self.unrouted_slot(),
        }
    }

    /// Advance `slot`'s clock by one local event; returns the post-tick
    /// stamp (strictly monotone per slot).
    #[inline]
    pub fn tick(&self, slot: usize) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        self.slots[slot].fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Lamport merge: advance `slot`'s clock to `max(local, seen) + 1` and
    /// return the merged stamp.
    pub fn merge(&self, slot: usize, seen: u64) -> u64 {
        self.ticks.fetch_add(1, Ordering::Relaxed);
        let cell = &self.slots[slot];
        let mut cur = cell.load(Ordering::SeqCst);
        loop {
            let next = cur.max(seen) + 1;
            match cell.compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return next,
                Err(seen_now) => cur = seen_now,
            }
        }
    }

    /// Read `slot`'s current clock without advancing it.
    pub fn peek(&self, slot: usize) -> u64 {
        self.slots[slot].load(Ordering::SeqCst)
    }

    /// Total ticks + merges performed since creation.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_is_strictly_monotone_per_slot() {
        let c = LamportClocks::new(2);
        let mut last = 0;
        for _ in 0..100 {
            let v = c.tick(0);
            assert!(v > last, "tick must strictly advance");
            last = v;
        }
        assert_eq!(c.peek(0), 100);
        assert_eq!(c.peek(1), 0, "other slots are untouched");
        assert_eq!(c.ticks(), 100);
    }

    #[test]
    fn merge_takes_max_plus_one() {
        let c = LamportClocks::new(2);
        assert_eq!(c.merge(1, 41), 42, "behind: jump past the sender");
        assert_eq!(c.merge(1, 5), 43, "ahead: still advances by one");
        assert_eq!(c.peek(1), 43);
        assert_eq!(c.ticks(), 2);
    }

    #[test]
    fn unrouted_slot_is_the_trailing_slot() {
        let c = LamportClocks::new(4);
        assert_eq!(c.ranks(), 4);
        assert_eq!(c.unrouted_slot(), 4);
        assert_eq!(c.slot_for(Some(2)), 2);
        assert_eq!(c.slot_for(Some(9)), 4, "out-of-range clamps to unrouted");
        assert_eq!(c.slot_for(None), 4);
    }

    #[test]
    fn concurrent_ticks_never_repeat() {
        let c = LamportClocks::new(1);
        let mut seen: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| (0..250).map(|_| c.tick(0)).collect::<Vec<_>>()))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000, "every tick value is unique");
        assert_eq!(c.peek(0), 1000);
    }
}
