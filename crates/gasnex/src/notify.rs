//! Notification objects: badge-coalescing words with parked waiters.
//!
//! Modeled on the seL4 notification object (and the UNR paper's unified
//! put+notify RMA): every rank owns a small array of 64-bit *notification
//! words*. A put-with-signal delivery posts a badge that is OR-coalesced
//! into the target's word, and a rank may wait on a word with a mask,
//! *parking its thread* — zero CPU — until a matching badge arrives.
//!
//! Each word is a tiny three-state machine, the OR making every
//! transition lossless:
//!
//! ```text
//!            post(badge)                    post(badge), mask match
//!   Idle ───────────────────▶ Active   Waiting ─────────────────────▶ Idle*
//!   (bits == 0, no waiter)    (bits |= badge)   (waiter taken, EventCore
//!                                                signalled; consumed bits
//!   Active ─ post ─▶ Active (bits |= badge,      cleared by the waker)
//!                    "coalesced")
//!   Idle ─ wait(mask) ─▶ Waiting (waiter parked on the word)
//! ```
//!
//! **Coalescing happens after dedup**: `post` is only ever called from
//! inside a delivery action, and both conduits (the chaos simulator's
//! ack/retry/dedup heap and the UDP frame layer) execute each delivery
//! action exactly once — so a badge is OR-ed exactly once no matter how
//! many times the wire dropped, duplicated, or reordered the message.
//!
//! Parking is bounded by a reservation counter: at most `ranks - 1`
//! threads may be parked at once, guaranteeing at least one awake rank to
//! drive conduit progress (both conduits deliver *all* due traffic from
//! any caller's poll). A rank refused a reservation falls back to polling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::EventCore;
use crate::rank::Rank;

/// A parked waiter: wake the event when `bits & mask != 0`.
struct Waiter {
    mask: u64,
    ev: Arc<EventCore>,
}

/// One notification word: the badge accumulator plus at most one waiter.
#[derive(Default)]
struct WordState {
    bits: u64,
    waiter: Option<Waiter>,
}

/// Point-in-time view of one non-idle notification word, produced by
/// [`NotifyTable::snapshot`] for the live-snapshot API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NotifyWordSnapshot {
    /// Owning rank.
    pub rank: u32,
    /// Word index within the rank's table.
    pub word: usize,
    /// Posted-but-unconsumed badge bits.
    pub bits: u64,
    /// Mask of the registered waiter, when one is parked on the word.
    pub waiter_mask: Option<u64>,
}

/// Per-world table of notification words, indexed `[rank][word]`.
pub struct NotifyTable {
    words: Box<[Box<[Mutex<WordState>]>]>,
    /// Threads currently parked via [`NotifyTable::try_reserve_park`];
    /// capped at `ranks - 1` so conduit progress never stalls.
    parked: AtomicUsize,
    ranks: usize,
}

impl NotifyTable {
    /// A table of `words` zeroed notification words per rank.
    pub fn new(ranks: usize, words: usize) -> Self {
        NotifyTable {
            words: (0..ranks)
                .map(|_| (0..words).map(|_| Mutex::default()).collect())
                .collect(),
            parked: AtomicUsize::new(0),
            ranks,
        }
    }

    /// Notification words per rank.
    pub fn words_per_rank(&self) -> usize {
        self.words.first().map_or(0, |w| w.len())
    }

    fn word(&self, rank: Rank, word: usize) -> &Mutex<WordState> {
        &self.words[rank.0 as usize][word]
    }

    /// OR `badge` into `(rank, word)` and wake a matching parked waiter.
    /// Returns `true` when the post *coalesced* — the word was already
    /// Active (non-zero) when the badge arrived.
    ///
    /// Must only be called from a post-dedup context (a delivery action):
    /// the OR itself is idempotent, but the coalescing counter and the
    /// exactly-once signal test suite both assume one call per signal op.
    pub fn post(&self, rank: Rank, word: usize, badge: u64) -> bool {
        let mut st = self.word(rank, word).lock().unwrap();
        let coalesced = st.bits != 0;
        st.bits |= badge;
        let wake = match &st.waiter {
            Some(w) if w.mask & st.bits != 0 => st.waiter.take(),
            _ => None,
        };
        drop(st);
        if let Some(w) = wake {
            w.ev.signal();
        }
        coalesced
    }

    /// Consume and return the currently-set bits of `mask` on `(rank,
    /// word)` — zero when none are set. The returned bits are cleared, so
    /// repeated waits observe each badge exactly once.
    pub fn try_consume(&self, rank: Rank, word: usize, mask: u64) -> u64 {
        let mut st = self.word(rank, word).lock().unwrap();
        let got = st.bits & mask;
        st.bits &= !mask;
        got
    }

    /// Register `ev` to be signalled when any bit of `mask` is set on
    /// `(rank, word)`. If bits already match, the event is signalled
    /// immediately (the Waiting state is never entered). At most one
    /// waiter per word — ranks wait on their own words only.
    pub fn register_waiter(&self, rank: Rank, word: usize, mask: u64, ev: Arc<EventCore>) {
        assert_ne!(mask, 0, "waiting with an empty mask would never wake");
        let mut st = self.word(rank, word).lock().unwrap();
        if st.bits & mask != 0 {
            drop(st);
            ev.signal();
            return;
        }
        assert!(
            st.waiter.is_none(),
            "notification word supports a single parked waiter"
        );
        st.waiter = Some(Waiter { mask, ev });
    }

    /// Drop the registered waiter on `(rank, word)`, if any — used when a
    /// park attempt is abandoned after registration.
    pub fn clear_waiter(&self, rank: Rank, word: usize) {
        self.word(rank, word).lock().unwrap().waiter = None;
    }

    /// Reserve a parking slot. Fails when the reservation would leave no
    /// rank awake to drive the conduit; the caller must poll instead.
    pub fn try_reserve_park(&self) -> bool {
        self.parked
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |p| {
                if p + 1 < self.ranks {
                    Some(p + 1)
                } else {
                    None
                }
            })
            .is_ok()
    }

    /// Release a reservation taken by [`NotifyTable::try_reserve_park`].
    pub fn unreserve_park(&self) {
        self.parked.fetch_sub(1, Ordering::AcqRel);
    }

    /// Threads currently holding a park reservation (diagnostics).
    pub fn parked(&self) -> usize {
        self.parked.load(Ordering::Acquire)
    }

    /// Snapshot every non-idle notification word in canonical
    /// `(rank, word)` order: the posted-but-unconsumed badge bits and the
    /// registered waiter's mask (if one is parked). Idle words (no bits,
    /// no waiter) are skipped so quiesced tables render identically
    /// regardless of table size.
    pub fn snapshot(&self) -> Vec<NotifyWordSnapshot> {
        let mut out = Vec::new();
        for (rank, per_rank) in self.words.iter().enumerate() {
            for (word, w) in per_rank.iter().enumerate() {
                let st = w.lock().unwrap();
                if st.bits == 0 && st.waiter.is_none() {
                    continue;
                }
                out.push(NotifyWordSnapshot {
                    rank: rank as u32,
                    word,
                    bits: st.bits,
                    waiter_mask: st.waiter.as_ref().map(|w| w.mask),
                });
            }
        }
        out
    }

    /// Signal every registered waiter (world abort: parked threads must
    /// wake, observe the abort flag, and unwind instead of hanging).
    pub fn wake_all(&self) {
        for per_rank in self.words.iter() {
            for w in per_rank.iter() {
                let taken = w.lock().unwrap().waiter.take();
                if let Some(w) = taken {
                    w.ev.signal();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const R0: Rank = Rank(0);

    #[test]
    fn post_sets_and_consume_clears() {
        let t = NotifyTable::new(2, 2);
        assert!(!t.post(R0, 0, 0b01), "Idle -> Active is not a coalesce");
        assert!(t.post(R0, 0, 0b10), "Active -> Active coalesces");
        assert_eq!(t.try_consume(R0, 0, 0b11), 0b11);
        assert_eq!(t.try_consume(R0, 0, 0b11), 0, "badges consumed once");
        // Other words and ranks are untouched.
        assert_eq!(t.try_consume(R0, 1, u64::MAX), 0);
        assert_eq!(t.try_consume(Rank(1), 0, u64::MAX), 0);
    }

    #[test]
    fn consume_is_mask_selective() {
        let t = NotifyTable::new(1, 1);
        t.post(R0, 0, 0b1110);
        assert_eq!(t.try_consume(R0, 0, 0b0110), 0b0110);
        assert_eq!(t.try_consume(R0, 0, u64::MAX), 0b1000, "unmasked bits stay");
    }

    #[test]
    fn waiter_wakes_on_matching_post_only() {
        let t = NotifyTable::new(1, 1);
        let ev = EventCore::new();
        t.register_waiter(R0, 0, 0b100, Arc::clone(&ev));
        t.post(R0, 0, 0b001);
        assert!(!ev.is_done(), "non-matching badge must not wake");
        t.post(R0, 0, 0b100);
        assert!(ev.is_done());
        // The waiter is one-shot: a further post coalesces quietly.
        assert!(t.post(R0, 0, 0b010));
        assert_eq!(t.try_consume(R0, 0, u64::MAX), 0b111, "no badge lost");
    }

    #[test]
    fn register_on_already_active_word_signals_immediately() {
        let t = NotifyTable::new(1, 1);
        t.post(R0, 0, 0b1);
        let ev = EventCore::new();
        t.register_waiter(R0, 0, 0b1, Arc::clone(&ev));
        assert!(ev.is_done());
    }

    #[test]
    fn park_reservations_leave_one_rank_awake() {
        let t = NotifyTable::new(3, 1);
        assert!(t.try_reserve_park());
        assert!(t.try_reserve_park());
        assert!(!t.try_reserve_park(), "third of three must stay awake");
        t.unreserve_park();
        assert!(t.try_reserve_park());
        assert_eq!(t.parked(), 2);
    }

    #[test]
    fn single_rank_world_never_parks() {
        let t = NotifyTable::new(1, 1);
        assert!(!t.try_reserve_park());
    }

    #[test]
    fn wake_all_signals_parked_waiters() {
        let t = NotifyTable::new(2, 2);
        let a = EventCore::new();
        let b = EventCore::new();
        t.register_waiter(R0, 0, 1, Arc::clone(&a));
        t.register_waiter(Rank(1), 1, 1, Arc::clone(&b));
        t.wake_all();
        assert!(a.is_done() && b.is_done());
    }
}
