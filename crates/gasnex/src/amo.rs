//! Remote atomic memory operations (AMOs).
//!
//! The analogue of `gex_AD_OpNB`. All operations act on a 64-bit word in a
//! shared segment using hardware atomics; coherency with direct CPU access
//! holds because every simulated node lives in one address space — the same
//! guarantee GASNet-EX atomic domains provide on real systems (where it may
//! require routing through NIC offload, which is why application code cannot
//! "manually localize" atomics, as the paper notes).
//!
//! Signed comparisons for `Min`/`Max` reinterpret the word as `i64`.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::segment::Segment;

/// The operation kinds of an atomic domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// Atomic read; returns the value.
    Get,
    /// Atomic write.
    Set,
    /// Non-fetching arithmetic/bitwise update.
    Add,
    Sub,
    And,
    Or,
    Xor,
    Min,
    Max,
    /// Fetching variants: perform the update and return the prior value.
    FetchAdd,
    FetchSub,
    FetchAnd,
    FetchOr,
    FetchXor,
    FetchMin,
    FetchMax,
    /// Swap in `operand`, returning the prior value.
    Swap,
    /// Compare-and-swap: if current == `operand`, store `operand2`;
    /// returns the prior value either way.
    CompareSwap,
}

impl AmoOp {
    /// Whether the operation produces a value the initiator consumes.
    pub fn is_fetching(self) -> bool {
        matches!(
            self,
            AmoOp::Get
                | AmoOp::FetchAdd
                | AmoOp::FetchSub
                | AmoOp::FetchAnd
                | AmoOp::FetchOr
                | AmoOp::FetchXor
                | AmoOp::FetchMin
                | AmoOp::FetchMax
                | AmoOp::Swap
                | AmoOp::CompareSwap
        )
    }

    /// The non-fetching counterpart of a fetching op, if any. (`Get`,
    /// `Swap`, and `CompareSwap` have none.)
    pub fn non_fetching(self) -> Option<AmoOp> {
        Some(match self {
            AmoOp::FetchAdd => AmoOp::Add,
            AmoOp::FetchSub => AmoOp::Sub,
            AmoOp::FetchAnd => AmoOp::And,
            AmoOp::FetchOr => AmoOp::Or,
            AmoOp::FetchXor => AmoOp::Xor,
            AmoOp::FetchMin => AmoOp::Min,
            AmoOp::FetchMax => AmoOp::Max,
            _ => return None,
        })
    }
}

/// Execute `op` on the word at `off` in `seg`. `operand2` is only used by
/// [`AmoOp::CompareSwap`]. `signed` selects signed comparison for min/max.
/// Returns the *prior* value of the word (for `Get`, the loaded value).
pub fn execute(
    seg: &Segment,
    off: usize,
    op: AmoOp,
    operand: u64,
    operand2: u64,
    signed: bool,
) -> u64 {
    let a: &AtomicU64 = seg.atomic_u64(off);
    // Acquire/release so an AMO can be used to publish data written via RMA.
    const ORD: Ordering = Ordering::AcqRel;
    match op {
        AmoOp::Get => a.load(Ordering::Acquire),
        AmoOp::Set => {
            // `swap` rather than `store` so we can return the prior value
            // uniformly; the initiator ignores it for non-fetching ops.
            a.swap(operand, ORD)
        }
        AmoOp::Add | AmoOp::FetchAdd => a.fetch_add(operand, ORD),
        AmoOp::Sub | AmoOp::FetchSub => a.fetch_sub(operand, ORD),
        AmoOp::And | AmoOp::FetchAnd => a.fetch_and(operand, ORD),
        AmoOp::Or | AmoOp::FetchOr => a.fetch_or(operand, ORD),
        AmoOp::Xor | AmoOp::FetchXor => a.fetch_xor(operand, ORD),
        AmoOp::Min | AmoOp::FetchMin => fetch_min(a, operand, signed),
        AmoOp::Max | AmoOp::FetchMax => fetch_max(a, operand, signed),
        AmoOp::Swap => a.swap(operand, ORD),
        AmoOp::CompareSwap => match a.compare_exchange(operand, operand2, ORD, Ordering::Acquire) {
            Ok(prev) | Err(prev) => prev,
        },
    }
}

fn fetch_min(a: &AtomicU64, v: u64, signed: bool) -> u64 {
    let res = a.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
        let keep = if signed {
            (cur as i64) <= (v as i64)
        } else {
            cur <= v
        };
        if keep {
            None
        } else {
            Some(v)
        }
    });
    match res {
        Ok(prev) | Err(prev) => prev,
    }
}

fn fetch_max(a: &AtomicU64, v: u64, signed: bool) -> u64 {
    let res = a.fetch_update(Ordering::AcqRel, Ordering::Acquire, |cur| {
        let keep = if signed {
            (cur as i64) >= (v as i64)
        } else {
            cur >= v
        };
        if keep {
            None
        } else {
            Some(v)
        }
    });
    match res {
        Ok(prev) | Err(prev) => prev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> Segment {
        Segment::new(64)
    }

    #[test]
    fn get_set_swap() {
        let s = seg();
        assert_eq!(execute(&s, 0, AmoOp::Get, 0, 0, false), 0);
        execute(&s, 0, AmoOp::Set, 7, 0, false);
        assert_eq!(execute(&s, 0, AmoOp::Get, 0, 0, false), 7);
        let prev = execute(&s, 0, AmoOp::Swap, 9, 0, false);
        assert_eq!(prev, 7);
        assert_eq!(s.read_u64(0), 9);
    }

    #[test]
    fn arithmetic_ops_return_prior() {
        let s = seg();
        s.write_u64(8, 10);
        assert_eq!(execute(&s, 8, AmoOp::FetchAdd, 5, 0, false), 10);
        assert_eq!(execute(&s, 8, AmoOp::FetchSub, 3, 0, false), 15);
        assert_eq!(s.read_u64(8), 12);
        // Non-fetching flavours have identical memory effects.
        execute(&s, 8, AmoOp::Add, 8, 0, false);
        assert_eq!(s.read_u64(8), 20);
    }

    #[test]
    fn bitwise_ops() {
        let s = seg();
        s.write_u64(0, 0b1100);
        assert_eq!(execute(&s, 0, AmoOp::FetchAnd, 0b1010, 0, false), 0b1100);
        assert_eq!(s.read_u64(0), 0b1000);
        execute(&s, 0, AmoOp::Or, 0b0011, 0, false);
        assert_eq!(s.read_u64(0), 0b1011);
        execute(&s, 0, AmoOp::Xor, 0b1111, 0, false);
        assert_eq!(s.read_u64(0), 0b0100);
    }

    #[test]
    fn min_max_unsigned_and_signed() {
        let s = seg();
        s.write_u64(0, 100);
        execute(&s, 0, AmoOp::Min, 50, 0, false);
        assert_eq!(s.read_u64(0), 50);
        execute(&s, 0, AmoOp::Min, 80, 0, false);
        assert_eq!(s.read_u64(0), 50);
        execute(&s, 0, AmoOp::Max, 75, 0, false);
        assert_eq!(s.read_u64(0), 75);

        // Signed: -1 (as u64::MAX) is less than 5 under signed comparison.
        s.write_u64(8, 5);
        execute(&s, 8, AmoOp::Min, (-1i64) as u64, 0, true);
        assert_eq!(s.read_u64(8) as i64, -1);
        // Unsigned would have kept 5.
        s.write_u64(16, 5);
        execute(&s, 16, AmoOp::Min, (-1i64) as u64, 0, false);
        assert_eq!(s.read_u64(16), 5);
    }

    #[test]
    fn compare_swap_success_and_failure() {
        let s = seg();
        s.write_u64(0, 42);
        let prev = execute(&s, 0, AmoOp::CompareSwap, 42, 99, false);
        assert_eq!(prev, 42);
        assert_eq!(s.read_u64(0), 99);
        let prev = execute(&s, 0, AmoOp::CompareSwap, 42, 7, false);
        assert_eq!(prev, 99, "failed CAS returns current value");
        assert_eq!(s.read_u64(0), 99, "failed CAS leaves memory unchanged");
    }

    #[test]
    fn fetching_classification() {
        assert!(AmoOp::FetchAdd.is_fetching());
        assert!(AmoOp::Get.is_fetching());
        assert!(AmoOp::CompareSwap.is_fetching());
        assert!(!AmoOp::Add.is_fetching());
        assert!(!AmoOp::Set.is_fetching());
        assert_eq!(AmoOp::FetchAdd.non_fetching(), Some(AmoOp::Add));
        assert_eq!(AmoOp::FetchXor.non_fetching(), Some(AmoOp::Xor));
        assert_eq!(AmoOp::Get.non_fetching(), None);
        assert_eq!(AmoOp::Swap.non_fetching(), None);
    }

    #[test]
    fn concurrent_fetch_add_is_exact() {
        use std::sync::Arc;
        let s = Arc::new(Segment::new(8));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    execute(&s, 0, AmoOp::Add, 1, 0, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read_u64(0), 80_000);
    }

    #[test]
    fn concurrent_min_converges() {
        use std::sync::Arc;
        let s = Arc::new(Segment::new(8));
        s.write_u64(0, u64::MAX);
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    execute(&s, 0, AmoOp::Min, t * 1000 + i, 0, false);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.read_u64(0), 0);
    }
}
