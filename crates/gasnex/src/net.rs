//! Simulated inter-node network: the [`Conduit`] impl used by default.
//!
//! Operations between ranks on different simulated nodes are injected here
//! as boxed delivery actions with a due time (`now + latency ± jitter`).
//! Any rank's progress call drains the due actions — modelling a NIC that
//! makes progress independently of which CPU polls, as GASNet-EX offloaded
//! operations do. Two properties matter for fidelity to the paper:
//!
//! 1. An injected operation **never completes synchronously**: even with
//!    zero latency, delivery happens at a later poll, so the initiator's
//!    event is pending at initiation — off-node operations always take the
//!    deferred-notification path, exactly as in the paper.
//! 2. Delivery order is by due time (ties broken by injection sequence), so
//!    with uniform latency the network is point-to-point ordered.
//!
//! # Chaos mode
//!
//! With a [`FaultPlan`] the network becomes a deterministic adversary. Each
//! logical message carries a sequence number (`msg`); every fault decision
//! is a pure hash of `(plan seed, msg, attempt)`, so a fixed seed replays
//! the identical schedule — especially under [`ClockMode::Virtual`], where
//! "now" is a logical counter that time-warps to the earliest due delivery
//! instead of reading `Instant`. The reliability layer on top:
//!
//! * **Drops** never lose the payload; they convert the delivery into a
//!   retransmission timer that fires after a bounded exponential backoff
//!   (`rto_ns << attempt`, capped at `max_backoff_ns`) and re-enters fate
//!   selection with `attempt + 1`. The attempt before `max_attempts` is
//!   exempt from drops, so every message is eventually delivered.
//! * **Duplicates** enqueue a second wire copy of the message; the two
//!   copies share the payload through one slot, so whichever copy arrives
//!   first delivers the action and the other is suppressed
//!   (`dup_suppressed`) — exactly-once execution without caring which copy
//!   won the race. A duplicate that overtakes its reordered original is
//!   *promoted* (`dup_promoted`), not swallowed. The receiver-side `acked`
//!   set holds a message id only between the first and second copy's
//!   arrival, so it stays bounded by the number of in-flight dup pairs.
//! * **Reorder / burst / partition** only shift due times; they can starve
//!   but never cancel a delivery.
//!
//! # Aggregation hooks
//!
//! The sender-side aggregation layer ([`crate::aggregate`]) injects batch
//! messages through the ordinary [`Conduit::inject_to`] path — a batch is
//! one logical message whose action fans out to its constituent ops, so
//! drop/dup/reorder fates act on whole batches and a retransmission
//! re-sends the batch payload. The network only keeps the aggregate
//! counters (`batches_injected`, `ops_coalesced`, per-reason flush counts,
//! buffer-occupancy high-water) so they surface in [`NetStats`] next to
//! the reliability counters.
//!
//! # Lock granularity
//!
//! Three independent pieces of state, so observers never contend with
//! delivery: the **clock** is an atomic (`vclock`) or a lock-free `Instant`
//! read; the **delivery heap** has the only lock the delivery path takes
//! (plus the dedup set); and **statistics** — including the `reset_stats`
//! baseline — live entirely in atomics ([`ConduitCounters`]), so `now_ns()`
//! and `stats()` are wait-free with respect to a poll in progress.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::sync::Mutex;
use std::time::Instant;

use crate::clock::LamportClocks;
use crate::conduit::{Conduit, ConduitCounters, InFlight};
use crate::config::{ClockMode, FaultPlan, NetConfig};
use crate::rank::Rank;
use crate::world::World;

/// A delivery action: performs the remote side of an operation (data
/// movement, atomic execution, AM enqueue) and signals its event.
pub type NetAction = Box<dyn FnOnce(&World) + Send>;

/// What happened to a message on the wire (trace-mode only).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetEventKind {
    /// Message entered the conduit (`Conduit::inject_to`).
    Inject,
    /// The fault plan dropped this transmission attempt; a retransmission
    /// timer was armed `backoff_ns` in the future.
    Drop { backoff_ns: u64 },
    /// A retransmission timer fired and the next attempt was scheduled.
    Retry,
    /// The delivery action executed (exactly once per message).
    Deliver,
    /// A duplicated wire copy was discarded by receiver-side dedup.
    DupDiscard,
    /// An initiator-side completion signal was routed to a rank's ready
    /// queue (recorded by `World::route_signal`, not by the conduit).
    Signal { rank: u32, token: u64 },
}

/// One wire-level trace record. `msg` is the logical message id returned by
/// [`Conduit::inject_to`], which lets core-level operation traces correlate
/// their `NetInject` events with the retries and delivery seen down here.
/// `Signal` events use `msg = u64::MAX` (they belong to an event core, not
/// a wire message).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetTraceEvent {
    /// Timestamp from the conduit clock (wall or virtual, per `ClockMode`).
    pub ts_ns: u64,
    /// Logical message id (`u64::MAX` for `Signal` events).
    pub msg: u64,
    /// Transmission attempt the event belongs to (0-based).
    pub attempt: u32,
    pub kind: NetEventKind,
    /// Lamport stamp: the sender's post-tick clock on `Inject` (carried
    /// unchanged by `Drop`/`Retry`/`DupDiscard`), the receiver's merged
    /// clock on `Deliver`, the signalled rank's tick on `Signal`. Zero
    /// when tracing was off at the recording site.
    pub lclock: u64,
}

/// Whether a statistic is a monotonic counter or a level gauge. Declared
/// here (the lowest crate that exports stats) so both [`NetStats`] and the
/// runtime's per-rank stats share one vocabulary; `upcr` re-exports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldClass {
    /// Monotonically increasing; `since` subtracts, resets re-baseline it.
    Counter,
    /// A level (queue depth, high-water mark); `since` passes the later
    /// sample through, and resets re-prime rather than zero it.
    Gauge,
}

/// Snapshot of a conduit's counters, including the chaos-mode reliability
/// layer. `injected`/`delivered`/`pending` count logical messages exactly
/// as the quiescence protocol sees them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Logical messages injected since creation.
    pub injected: u64,
    /// Logical messages delivered (each action executes exactly once).
    pub delivered: u64,
    /// Messages awaiting delivery: undelivered messages, pending
    /// retransmission timers, and duplicate copies not yet suppressed.
    pub pending: usize,
    /// Polls that lost the queue-lock race twice and returned a busy hint.
    pub contended_polls: u64,
    /// Retransmissions performed after an injected drop.
    pub retries: u64,
    /// Transmission attempts the fault plan dropped.
    pub drops_injected: u64,
    /// Duplicate copies discarded by receiver-side sequence-number dedup.
    pub dup_suppressed: u64,
    /// Largest retransmission backoff applied (gauge; bounded by the plan's
    /// `max_backoff_ns`).
    pub max_backoff_ns: u64,
    /// Duplicate copies that arrived before their original and were
    /// promoted to perform the delivery.
    pub dup_promoted: u64,
    /// Batch messages injected by the aggregation layer.
    pub batches_injected: u64,
    /// Fine-grained operations carried inside those batches.
    pub ops_coalesced: u64,
    /// Batch flushes triggered by the size threshold.
    pub flushes_size: u64,
    /// Batch flushes triggered by the age timeout.
    pub flushes_age: u64,
    /// Batch flushes triggered explicitly (barrier / quiesce / user flush).
    pub flushes_explicit: u64,
    /// Deepest per-target aggregation buffer observed (gauge).
    pub agg_occupancy_highwater: u64,
    /// Signal-carrying messages (put/amo-with-signal) injected.
    pub signals: u64,
    /// Lamport clock advances (ticks + merges) performed by the causal
    /// tracing layer. Zero unless tracing is enabled.
    pub lclock_ticks: u64,
}

impl NetStats {
    /// Field names and classes, in declaration order — the registration
    /// hook the runtime's metrics registry consumes. Order matches
    /// [`NetStats::values`].
    pub const FIELDS: &'static [(&'static str, FieldClass)] = &[
        ("injected", FieldClass::Counter),
        ("delivered", FieldClass::Counter),
        ("pending", FieldClass::Gauge),
        ("contended_polls", FieldClass::Counter),
        ("retries", FieldClass::Counter),
        ("drops_injected", FieldClass::Counter),
        ("dup_suppressed", FieldClass::Counter),
        ("max_backoff_ns", FieldClass::Gauge),
        ("dup_promoted", FieldClass::Counter),
        ("batches_injected", FieldClass::Counter),
        ("ops_coalesced", FieldClass::Counter),
        ("flushes_size", FieldClass::Counter),
        ("flushes_age", FieldClass::Counter),
        ("flushes_explicit", FieldClass::Counter),
        ("agg_occupancy_highwater", FieldClass::Gauge),
        ("signals", FieldClass::Counter),
        ("lclock_ticks", FieldClass::Counter),
    ];

    /// Field values in the same order as [`NetStats::FIELDS`].
    pub fn values(&self) -> Vec<u64> {
        vec![
            self.injected,
            self.delivered,
            self.pending as u64,
            self.contended_polls,
            self.retries,
            self.drops_injected,
            self.dup_suppressed,
            self.max_backoff_ns,
            self.dup_promoted,
            self.batches_injected,
            self.ops_coalesced,
            self.flushes_size,
            self.flushes_age,
            self.flushes_explicit,
            self.agg_occupancy_highwater,
            self.signals,
            self.lclock_ticks,
        ]
    }

    /// Field-wise difference (`self - earlier`): counters subtract
    /// (saturating at zero); gauges (`pending`, `max_backoff_ns`) report
    /// the later sample unchanged — a queue depth is a level, not a count.
    pub fn since(&self, earlier: &NetStats) -> NetStats {
        NetStats {
            injected: self.injected.saturating_sub(earlier.injected),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            pending: self.pending,
            contended_polls: self.contended_polls.saturating_sub(earlier.contended_polls),
            retries: self.retries.saturating_sub(earlier.retries),
            drops_injected: self.drops_injected.saturating_sub(earlier.drops_injected),
            dup_suppressed: self.dup_suppressed.saturating_sub(earlier.dup_suppressed),
            max_backoff_ns: self.max_backoff_ns,
            dup_promoted: self.dup_promoted.saturating_sub(earlier.dup_promoted),
            batches_injected: self
                .batches_injected
                .saturating_sub(earlier.batches_injected),
            ops_coalesced: self.ops_coalesced.saturating_sub(earlier.ops_coalesced),
            flushes_size: self.flushes_size.saturating_sub(earlier.flushes_size),
            flushes_age: self.flushes_age.saturating_sub(earlier.flushes_age),
            flushes_explicit: self
                .flushes_explicit
                .saturating_sub(earlier.flushes_explicit),
            agg_occupancy_highwater: self.agg_occupancy_highwater,
            signals: self.signals.saturating_sub(earlier.signals),
            lclock_ticks: self.lclock_ticks.saturating_sub(earlier.lclock_ticks),
        }
    }
}

enum Payload {
    /// Transmission attempt number `attempt` of message `msg`, carrying the
    /// delivery action. If `dropped`, the entry is the retransmission timer
    /// for a lost packet: popping it reschedules attempt `attempt + 1`
    /// instead of delivering.
    Attempt {
        msg: u64,
        attempt: u32,
        dropped: bool,
        /// Routing hint recorded at injection — not used for delivery
        /// (the queue is global) but surfaced by `inflight()` so a stall
        /// diagnosis can name the rank pair a stuck message belongs to.
        route: Option<(u32, u32)>,
        /// The sender's Lamport stamp, piggybacked on the wire message
        /// (zero when tracing was off at injection).
        lclock: u64,
        action: NetAction,
    },
    /// One of the two wire copies of a duplicated transmission. Both copies
    /// share the payload through `slot`; whichever pops first takes it and
    /// delivers, the other finds the slot empty and is suppressed.
    /// `primary` marks the copy scheduled on the original (possibly
    /// reordered) due time — when the trailing copy wins the race, the
    /// delivery is counted as a promotion.
    Copy {
        msg: u64,
        attempt: u32,
        primary: bool,
        route: Option<(u32, u32)>,
        /// The sender's Lamport stamp (both copies carry the same stamp).
        lclock: u64,
        slot: std::sync::Arc<Mutex<Option<NetAction>>>,
    },
}

struct Delivery {
    due_ns: u64,
    seq: u64,
    payload: Payload,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.due_ns == other.due_ns && self.seq == other.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_ns, self.seq).cmp(&(other.due_ns, other.seq))
    }
}

/// The global delay queue: the simulated [`Conduit`].
pub struct SimNetwork {
    cfg: NetConfig,
    epoch: Instant,
    /// Logical nanoseconds under `ClockMode::Virtual`; advances only inside
    /// `poll` (under the queue lock), time-warping to the earliest due
    /// delivery when nothing is currently due.
    vclock: std::sync::atomic::AtomicU64,
    /// Heap tie-break sequence. Distinct from the message counter because
    /// retries and duplicates push extra heap entries for the same logical
    /// message.
    heap_seq: std::sync::atomic::AtomicU64,
    queue: Mutex<BinaryHeap<Reverse<Delivery>>>,
    /// Receiver-side dedup: ids of duplicated messages whose *first* copy
    /// has arrived but whose second copy is still in flight. The second
    /// copy's arrival evicts the id, and non-duplicated messages never
    /// enter, so the set is bounded by the in-flight dup pairs.
    acked: Mutex<HashSet<u64>>,
    /// Counters, gauges, baseline, and the wire-event sink — all atomic or
    /// independently locked, never touched under the queue lock's scope in
    /// a way an observer would wait on.
    ctr: ConduitCounters,
    /// Shared per-rank Lamport clocks: ticked at injection, merged at
    /// delivery — only while tracing is on.
    clocks: std::sync::Arc<LamportClocks>,
}

use std::sync::atomic::Ordering;

impl SimNetwork {
    /// Create a network with the given latency parameters, sharing the
    /// world's Lamport clock bank for causal stamps.
    pub fn new(cfg: NetConfig, clocks: std::sync::Arc<LamportClocks>) -> Self {
        if let Some(plan) = cfg.faults {
            plan.validate();
        }
        SimNetwork {
            cfg,
            epoch: Instant::now(),
            vclock: std::sync::atomic::AtomicU64::new(0),
            heap_seq: std::sync::atomic::AtomicU64::new(0),
            queue: Mutex::new(BinaryHeap::new()),
            acked: Mutex::new(HashSet::new()),
            ctr: ConduitCounters::new(std::sync::Arc::clone(&clocks)),
            clocks,
        }
    }

    /// The network's notion of "now": nanoseconds since creation under
    /// `ClockMode::Wall`, or the logical time-warp counter under
    /// `ClockMode::Virtual`. This is the clock every trace timestamp uses,
    /// so virtual-clock traces are bit-replayable.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        match self.cfg.clock {
            ClockMode::Wall => self.epoch.elapsed().as_nanos() as u64,
            ClockMode::Virtual => self.vclock.load(Ordering::SeqCst),
        }
    }

    /// Record one wire event with its Lamport stamp (no-op unless tracing
    /// is on).
    #[inline]
    fn record(&self, msg: u64, attempt: u32, kind: NetEventKind, lclock: u64) {
        if self.ctr.tracing() {
            self.ctr
                .trace_event(self.now_ns(), msg, attempt, kind, lclock);
        }
    }

    /// Deterministic per-decision hash: a pure function of the plan seed
    /// (0 without a plan), the message id, the attempt, and a salt that
    /// decorrelates the different decisions taken for one attempt.
    fn mix(&self, msg: u64, attempt: u32, salt: u64) -> u64 {
        let seed = self.cfg.faults.map_or(0, |f| f.seed);
        splitmix64(splitmix64(splitmix64(seed ^ msg) ^ u64::from(attempt)) ^ salt)
    }

    /// Bounded exponential backoff for retransmission `attempt`.
    fn backoff_ns(plan: &FaultPlan, attempt: u32) -> u64 {
        plan.rto_ns
            .saturating_mul(1u64 << attempt.min(32))
            .min(plan.max_backoff_ns)
            .max(1)
    }

    /// Apply the plan's burst and partition windows to a due time. Both
    /// only push deliveries later; neither can cancel one.
    fn shape(&self, mut due: u64) -> u64 {
        if let Some(plan) = &self.cfg.faults {
            if plan.burst_period_ns > 0 && due % plan.burst_period_ns < plan.burst_len_ns {
                due += plan.burst_extra_ns;
            }
            if due >= plan.partition_at_ns && due < plan.partition_until_ns {
                due = plan.partition_until_ns;
            }
        }
        due
    }

    /// Schedule transmission attempt `attempt` of message `msg`, running
    /// fate selection (drop / duplicate / reorder) against the fault plan.
    /// Caller holds the queue lock and has already accounted the message in
    /// `pending_len`; duplicate copies add their own pending entry here.
    fn schedule_attempt(
        &self,
        q: &mut BinaryHeap<Reverse<Delivery>>,
        msg: u64,
        attempt: u32,
        route: Option<(u32, u32)>,
        lclock: u64,
        action: NetAction,
    ) {
        let now = self.now_ns();
        let plan = self.cfg.faults;
        if let Some(plan) = &plan {
            let droppable = attempt + 1 < plan.max_attempts;
            if droppable && ppm(self.mix(msg, attempt, 1)) < plan.drop_ppm {
                // Lost packet: keep the payload on the retransmission timer
                // so nothing can leak, and re-enter fate selection when the
                // timer fires.
                let backoff = Self::backoff_ns(plan, attempt);
                self.ctr.note_drop(backoff);
                self.record(
                    msg,
                    attempt,
                    NetEventKind::Drop {
                        backoff_ns: backoff,
                    },
                    lclock,
                );
                q.push(Reverse(Delivery {
                    due_ns: now + backoff,
                    seq: self.heap_seq.fetch_add(1, Ordering::Relaxed),
                    payload: Payload::Attempt {
                        msg,
                        attempt,
                        dropped: true,
                        route,
                        lclock,
                        action,
                    },
                }));
                return;
            }
        }
        let jitter = if self.cfg.jitter_ns == 0 {
            0
        } else {
            // Deterministic per-attempt jitter from the seeded mix — never
            // from wall-clock state, so identical seeds replay identical
            // schedules.
            self.mix(msg, attempt, 0) % (self.cfg.jitter_ns + 1)
        };
        let reorder = match &plan {
            Some(p) if p.reorder_span_ns > 0 && ppm(self.mix(msg, attempt, 2)) < p.reorder_ppm => {
                self.mix(msg, attempt, 3) % (p.reorder_span_ns + 1)
            }
            _ => 0,
        };
        let due = self.shape(now + self.cfg.latency_ns + jitter + reorder);
        let duplicated = plan
            .as_ref()
            .is_some_and(|p| ppm(self.mix(msg, attempt, 4)) < p.dup_ppm);
        if duplicated {
            // The wire carried two copies sharing one payload slot. The
            // primary keeps the reordered due time; the extra copy trails
            // the *un-reordered* arrival by a sub-latency offset, so a
            // heavily reordered primary can lose the race and the trailing
            // copy gets promoted to deliver.
            let lag = 1 + self.mix(msg, attempt, 5) % self.cfg.latency_ns.max(1);
            let slot = std::sync::Arc::new(Mutex::new(Some(action)));
            q.push(Reverse(Delivery {
                due_ns: due,
                seq: self.heap_seq.fetch_add(1, Ordering::Relaxed),
                payload: Payload::Copy {
                    msg,
                    attempt,
                    primary: true,
                    route,
                    lclock,
                    slot: std::sync::Arc::clone(&slot),
                },
            }));
            self.ctr.pending_len.fetch_add(1, Ordering::SeqCst);
            q.push(Reverse(Delivery {
                due_ns: self.shape(now + self.cfg.latency_ns + jitter + lag),
                seq: self.heap_seq.fetch_add(1, Ordering::Relaxed),
                payload: Payload::Copy {
                    msg,
                    attempt,
                    primary: false,
                    route,
                    lclock,
                    slot,
                },
            }));
        } else {
            q.push(Reverse(Delivery {
                due_ns: due,
                seq: self.heap_seq.fetch_add(1, Ordering::Relaxed),
                payload: Payload::Attempt {
                    msg,
                    attempt,
                    dropped: false,
                    route,
                    lclock,
                    action,
                },
            }));
        }
    }

    /// Polls that lost the queue-lock race twice and returned a busy hint.
    pub fn contended_polls(&self) -> u64 {
        self.ctr.contended_polls()
    }

    /// How many dup-pair ids the receiver-side dedup set currently holds
    /// (first copy arrived, second still in flight). Bounded by `pending`.
    pub fn acked_len(&self) -> usize {
        self.acked.lock().unwrap().len()
    }

    /// Heap entries currently queued (test hook; takes the queue lock).
    pub fn heap_len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    /// Hold the queue lock and run `f` (test hook for simulating a rank
    /// mid-drain).
    pub fn while_queue_locked<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.queue.lock().unwrap();
        f()
    }

    /// The configured latency parameters.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }

    /// Snapshot every heap entry the network still owes a delivery for,
    /// in deterministic `(msg, due_ns, seq)` order. Takes the queue lock
    /// briefly; never executes actions.
    pub fn inflight(&self) -> Vec<InFlight> {
        let q = self.queue.lock().unwrap();
        let mut out: Vec<(u64, InFlight)> = q
            .iter()
            .map(|Reverse(d)| {
                let (msg, attempt, retransmit, route) = match &d.payload {
                    Payload::Attempt {
                        msg,
                        attempt,
                        dropped,
                        route,
                        ..
                    } => (*msg, *attempt, *dropped, *route),
                    Payload::Copy {
                        msg,
                        attempt,
                        route,
                        ..
                    } => (*msg, *attempt, false, *route),
                };
                (
                    d.seq,
                    InFlight {
                        msg,
                        attempt,
                        retransmit,
                        due_ns: d.due_ns,
                        route,
                    },
                )
            })
            .collect();
        out.sort_by_key(|(seq, f)| (f.msg, f.due_ns, *seq));
        out.into_iter().map(|(_, f)| f).collect()
    }
}

impl Conduit for SimNetwork {
    /// Inject an operation for delivery after the configured latency. The
    /// simulated network keeps one global delay queue, so the routing hint
    /// does not affect delivery — exactly the pre-trait behaviour,
    /// preserving every seeded schedule byte-for-byte — but it is recorded
    /// on the heap entry so `inflight()` can name the rank pair a stuck
    /// message belongs to.
    fn inject_to(&self, route: Option<(Rank, Rank)>, action: NetAction) -> u64 {
        let msg = self.ctr.next_msg();
        self.ctr.pending_len.fetch_add(1, Ordering::SeqCst);
        let route = route.map(|(s, t)| (s.0, t.0));
        // Lamport send event: tick the injecting rank's clock and stamp
        // the wire message with the post-tick value (tracing-gated, so
        // untraced runs never touch the clock bank).
        let lclock = if self.ctr.tracing() {
            self.clocks
                .tick(self.clocks.slot_for(route.map(|(s, _)| s)))
        } else {
            0
        };
        self.record(msg, 0, NetEventKind::Inject, lclock);
        {
            let mut q = self.queue.lock().unwrap();
            self.schedule_attempt(&mut q, msg, 0, route, lclock, action);
        }
        // New traffic: prod a parked progress thread (no-op when unarmed).
        self.ctr.wake();
        msg
    }

    /// Signal-carrying injection: identical wire behaviour to `inject_to`
    /// (the badge rides inside the delivery action, which the chaos layer
    /// already executes exactly once post-dedup), plus the signal counter.
    fn inject_signal_to(&self, route: Option<(Rank, Rank)>, action: NetAction) -> u64 {
        self.ctr.note_signal();
        self.inject_to(route, action)
    }

    /// Execute all deliveries whose due time has passed. Returns the number
    /// of work items observed: deliveries performed (including suppressed
    /// duplicates and retransmission timers fired), or a busy hint of 1
    /// when another rank holds the queue while deliveries are outstanding —
    /// a rank that loses the lock race must not conclude "locally idle"
    /// while due work may exist (it would make quiescence sampling
    /// transiently wrong).
    fn poll(&self, world: &World) -> usize {
        let mut q = match self.queue.try_lock() {
            Ok(q) => q,
            Err(_) => {
                // The holder is usually mid-drain for a few microseconds;
                // retry once before falling back to the busy hint.
                std::thread::yield_now();
                match self.queue.try_lock() {
                    Ok(q) => q,
                    Err(_) => {
                        self.ctr.note_contended_poll();
                        return usize::from(self.ctr.pending() > 0);
                    }
                }
            }
        };
        if q.is_empty() {
            return 0;
        }
        let now = match self.cfg.clock {
            ClockMode::Wall => self.epoch.elapsed().as_nanos() as u64,
            ClockMode::Virtual => {
                // Time-warp: nothing observable happens between now and the
                // earliest due time, so jump straight there. The store is
                // safe because the clock only mutates under the queue lock.
                let t = self.vclock.load(Ordering::SeqCst);
                let earliest = q.peek().map_or(t, |Reverse(d)| d.due_ns);
                if earliest > t {
                    self.vclock.store(earliest, Ordering::SeqCst);
                    earliest
                } else {
                    t
                }
            }
        };
        let mut due = Vec::new();
        while let Some(Reverse(d)) = q.peek() {
            if d.due_ns > now {
                break;
            }
            due.push(q.pop().unwrap().0);
        }
        drop(q); // run actions without holding the lock: they may re-inject
        let n = due.len();
        for d in due {
            match d.payload {
                Payload::Attempt {
                    msg,
                    attempt,
                    dropped: true,
                    route,
                    lclock,
                    action,
                } => {
                    // Retransmission timer fired: resend with the next
                    // attempt number. The logical message stays pending:
                    // this pops one heap entry and pushes exactly one (or
                    // two sharing one extra `pending_len` increment if the
                    // resend is duplicated), so `pending()` keeps mirroring
                    // the heap length. The retransmission carries the
                    // original send stamp — it is the same logical send.
                    self.ctr.note_retry();
                    self.record(msg, attempt + 1, NetEventKind::Retry, lclock);
                    let mut q = self.queue.lock().unwrap();
                    self.schedule_attempt(&mut q, msg, attempt + 1, route, lclock, action);
                }
                Payload::Attempt {
                    msg,
                    attempt,
                    dropped: false,
                    route,
                    lclock,
                    action,
                } => {
                    // Lamport receive: merge the carried stamp into the
                    // destination rank's clock before the action runs, so
                    // every rank-side event the delivery causes is stamped
                    // after the wire hop.
                    let merged = if self.ctr.tracing() {
                        self.clocks
                            .merge(self.clocks.slot_for(route.map(|(_, t)| t)), lclock)
                    } else {
                        0
                    };
                    self.record(msg, attempt, NetEventKind::Deliver, merged);
                    (action)(world);
                    // Counted after the action so injected == delivered
                    // implies no action is mid-flight (quiescence
                    // detection).
                    self.ctr.note_delivered();
                    self.ctr.pending_len.fetch_sub(1, Ordering::SeqCst);
                }
                Payload::Copy {
                    msg,
                    attempt,
                    primary,
                    route,
                    lclock,
                    slot,
                } => {
                    // Receiver-side dedup over the two wire copies. The
                    // first arrival registers the id and takes the payload;
                    // the second finds the id present, evicts it (keeping
                    // `acked` bounded by in-flight dup pairs), and is
                    // suppressed. A trailing copy that overtakes its
                    // reordered primary is promoted, not swallowed.
                    let first = {
                        let mut acked = self.acked.lock().unwrap();
                        let first = acked.insert(msg);
                        if !first {
                            acked.remove(&msg);
                        }
                        first
                    };
                    if first {
                        let action = slot
                            .lock()
                            .unwrap()
                            .take()
                            .expect("first copy holds the payload");
                        let merged = if self.ctr.tracing() {
                            self.clocks
                                .merge(self.clocks.slot_for(route.map(|(_, t)| t)), lclock)
                        } else {
                            0
                        };
                        self.record(msg, attempt, NetEventKind::Deliver, merged);
                        (action)(world);
                        self.ctr.note_delivered();
                        if !primary {
                            self.ctr.note_dup_promoted();
                        }
                    } else {
                        self.record(msg, attempt, NetEventKind::DupDiscard, lclock);
                        self.ctr.note_dup_suppressed();
                    }
                    self.ctr.pending_len.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        n
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        SimNetwork::now_ns(self)
    }

    fn injected(&self) -> u64 {
        self.ctr.injected()
    }

    fn delivered(&self) -> u64 {
        self.ctr.delivered()
    }

    fn pending(&self) -> usize {
        self.ctr.pending()
    }

    fn stats(&self) -> NetStats {
        self.ctr.stats()
    }

    fn reset_stats(&self) {
        self.ctr.reset_stats();
    }

    fn set_tracing(&self, on: bool) {
        self.ctr.set_tracing(on);
    }

    fn tracing(&self) -> bool {
        self.ctr.tracing()
    }

    fn take_trace(&self) -> Vec<NetTraceEvent> {
        self.ctr.take_trace()
    }

    fn peek_trace(&self) -> Vec<NetTraceEvent> {
        self.ctr.peek_trace()
    }

    fn inflight(&self) -> Vec<InFlight> {
        SimNetwork::inflight(self)
    }

    fn trace_event(&self, msg: u64, attempt: u32, kind: NetEventKind, lclock: u64) {
        self.record(msg, attempt, kind, lclock);
    }

    fn clocks(&self) -> &std::sync::Arc<LamportClocks> {
        &self.clocks
    }

    fn note_batch(&self, ops: u64, reason: crate::aggregate::FlushReason) {
        self.ctr.note_batch(ops, reason);
    }

    fn note_agg_occupancy(&self, depth: usize) {
        self.ctr.note_agg_occupancy(depth);
    }

    fn set_progress_waker(&self, waker: Option<std::sync::Arc<dyn Fn() + Send + Sync>>) {
        self.ctr.set_waker(waker);
    }

    fn wake_progress(&self) {
        self.ctr.wake();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[inline]
pub(crate) fn ppm(x: u64) -> u32 {
    (x % 1_000_000) as u32
}

/// SplitMix64 mixer, used for deterministic jitter and fault fates.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GasnexConfig;
    use std::sync::atomic::AtomicU64;

    fn test_world() -> std::sync::Arc<World> {
        World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12))
    }

    fn world_with_net(net: NetConfig) -> std::sync::Arc<World> {
        World::new(
            GasnexConfig::udp(2, 1)
                .with_segment_size(1 << 12)
                .with_net(net),
        )
    }

    /// The concrete simulator behind the world's conduit (these tests
    /// exercise SimNetwork internals the trait doesn't expose).
    fn sim(w: &World) -> &SimNetwork {
        w.net()
            .as_any()
            .downcast_ref()
            .expect("default transport is the simulator")
    }

    #[test]
    fn zero_latency_still_asynchronous() {
        let w = world_with_net(NetConfig {
            latency_ns: 0,
            jitter_ns: 0,
            ..NetConfig::default()
        });
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        let h = std::sync::Arc::clone(&hit);
        w.net().inject(Box::new(move |_| {
            h.store(1, Ordering::Relaxed);
        }));
        // Injection alone must not execute the action.
        assert_eq!(hit.load(Ordering::Relaxed), 0);
        assert_eq!(w.net().pending(), 1);
        w.net().poll(&w);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        assert_eq!(w.net().pending(), 0);
        assert_eq!(w.net().delivered(), 1);
    }

    #[test]
    fn latency_delays_delivery() {
        let w = world_with_net(NetConfig {
            latency_ns: 3_000_000,
            jitter_ns: 0,
            ..NetConfig::default()
        });
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        let h = std::sync::Arc::clone(&hit);
        w.net().inject(Box::new(move |_| {
            h.store(1, Ordering::Relaxed);
        }));
        w.net().poll(&w);
        assert_eq!(
            hit.load(Ordering::Relaxed),
            0,
            "delivered before latency elapsed"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
        w.net().poll(&w);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn uniform_latency_preserves_order() {
        let w = test_world();
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let log = std::sync::Arc::clone(&log);
            w.net()
                .inject(Box::new(move |_| log.lock().unwrap().push(i)));
        }
        std::thread::sleep(std::time::Duration::from_micros(10));
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        assert_eq!(*log.lock().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn contended_poll_reports_busy_not_idle() {
        let w = world_with_net(NetConfig {
            latency_ns: 0,
            jitter_ns: 0,
            ..NetConfig::default()
        });
        w.net().inject(Box::new(|_| {}));
        // Simulate another rank mid-drain by holding the queue lock.
        sim(&w).while_queue_locked(|| {
            assert_eq!(
                w.net().poll(&w),
                1,
                "lost lock race with pending work must report busy"
            );
            assert_eq!(sim(&w).contended_polls(), 1);
            assert_eq!(
                w.net().delivered(),
                0,
                "busy hint must not deliver anything"
            );
        });
        assert_eq!(
            w.net().poll(&w),
            1,
            "after the holder releases, delivery proceeds"
        );
        assert_eq!(w.net().pending(), 0);
        // With an empty queue, a lost race reports idle (nothing due).
        sim(&w).while_queue_locked(|| {
            assert_eq!(w.net().poll(&w), 0);
        });
    }

    #[test]
    fn actions_may_reinject() {
        let w = world_with_net(NetConfig {
            latency_ns: 0,
            jitter_ns: 0,
            ..NetConfig::default()
        });
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        let h = std::sync::Arc::clone(&hit);
        w.net().inject(Box::new(move |world| {
            let h2 = std::sync::Arc::clone(&h);
            world.net().inject(Box::new(move |_| {
                h2.store(2, Ordering::Relaxed);
            }));
        }));
        w.net().poll(&w);
        w.net().poll(&w);
        assert_eq!(hit.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for _ in 0..2 {
            let mut vals = Vec::new();
            for seq in 0..100u64 {
                vals.push(splitmix64(seq) % 101);
            }
            assert!(vals.iter().all(|&v| v <= 100));
            // Same seeds give same jitter.
            assert_eq!(vals[0], splitmix64(0) % 101);
        }
    }

    /// Drive a world to completion single-threadedly, recording the
    /// delivery order of `n` injected markers.
    fn delivery_schedule(net: NetConfig, n: u64) -> (Vec<u64>, NetStats) {
        let w = world_with_net(net);
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        for i in 0..n {
            let log = std::sync::Arc::clone(&log);
            w.net()
                .inject(Box::new(move |_| log.lock().unwrap().push(i)));
        }
        let mut spins = 0u64;
        while w.net().delivered() < n || w.net().pending() > 0 {
            w.net().poll(&w);
            spins += 1;
            assert!(spins < 1_000_000, "chaos schedule failed to terminate");
        }
        let order = log.lock().unwrap().clone();
        (order, w.net().stats())
    }

    #[test]
    fn virtual_clock_replays_identical_schedules() {
        // Satellite regression: with the virtual clock, the delivery
        // schedule is a pure function of the seed — two runs replay
        // identically, and a different seed produces a different order.
        let plan = FaultPlan::seeded(7)
            .with_drops(120_000)
            .with_dups(90_000)
            .with_reorder(250_000, 9_000);
        let net = NetConfig {
            latency_ns: 1_000,
            jitter_ns: 800,
            ..NetConfig::default()
        }
        .with_virtual_clock()
        .with_faults(plan);
        let (a, sa) = delivery_schedule(net, 64);
        let (b, sb) = delivery_schedule(net, 64);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_eq!(sa, sb, "same seed must replay the same fault counters");
        assert_ne!(
            a,
            (0..64).collect::<Vec<_>>(),
            "chaos plan should actually reorder deliveries"
        );
        let other = NetConfig {
            faults: Some(FaultPlan { seed: 8, ..plan }),
            ..net
        };
        let (c, _) = delivery_schedule(other, 64);
        assert_ne!(a, c, "a different seed should produce a different schedule");
    }

    #[test]
    fn drops_retry_with_bounded_backoff_and_terminate() {
        let plan = FaultPlan::seeded(3)
            .with_drops(400_000)
            .with_retry(2_000, 16_000, 5);
        let (order, stats) = delivery_schedule(NetConfig::chaos(plan), 128);
        assert_eq!(order.len(), 128, "every message must eventually deliver");
        assert_eq!(stats.delivered, 128);
        assert_eq!(stats.pending, 0);
        assert!(stats.drops_injected > 0, "plan should have dropped packets");
        assert_eq!(
            stats.retries, stats.drops_injected,
            "every drop fires exactly one retransmission"
        );
        assert!(stats.max_backoff_ns >= 2_000);
        assert!(
            stats.max_backoff_ns <= 16_000,
            "backoff must respect the plan cap, got {}",
            stats.max_backoff_ns
        );
    }

    #[test]
    fn duplicates_are_suppressed_exactly_once() {
        let plan = FaultPlan::seeded(11).with_dups(500_000);
        let (order, stats) = delivery_schedule(NetConfig::chaos(plan), 96);
        assert_eq!(order.len(), 96, "dedup must not lose or double-deliver");
        assert_eq!(stats.delivered, 96);
        assert!(stats.dup_suppressed > 0, "plan should have duplicated");
        assert_eq!(stats.pending, 0);
    }

    #[test]
    fn reset_stats_rebaselines_counters_and_reprimes_gauges() {
        let plan = FaultPlan::seeded(3)
            .with_drops(400_000)
            .with_retry(2_000, 16_000, 5);
        let w = world_with_net(NetConfig::chaos(plan));
        for _ in 0..64 {
            w.net().inject(Box::new(|_| {}));
        }
        while w.net().delivered() < 64 || w.net().pending() > 0 {
            w.net().poll(&w);
        }
        let before = w.net().stats();
        assert_eq!(before.delivered, 64);
        assert!(before.max_backoff_ns > 0);

        w.net().reset_stats();
        let after = w.net().stats();
        assert_eq!(after.injected, 0, "counters re-baseline to zero");
        assert_eq!(after.delivered, 0);
        assert_eq!(after.retries, 0);
        assert_eq!(after.drops_injected, 0);
        assert_eq!(after.max_backoff_ns, 0, "peak gauge re-primes");
        // Quiescence detection keeps seeing the raw totals.
        assert_eq!(w.net().injected(), 64);
        assert_eq!(w.net().delivered(), 64);

        // A gauge keeps reporting the live level after reset: inject
        // without polling and `pending` must show the queue depth.
        w.net().inject(Box::new(|_| {}));
        let live = w.net().stats();
        assert_eq!(live.pending, 1, "gauges report the live level");
        assert_eq!(live.injected, 1, "counters count from the baseline");
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
    }

    #[test]
    fn dup_racing_ahead_of_reordered_original_is_promoted() {
        // Satellite regression: the duplicate copy trails the *un-reordered*
        // arrival, so a primary pushed far out by reorder loses the race and
        // the trailing copy must be promoted to deliver — the old code
        // consulted the acked set and threw the answer away, silently
        // swallowing exactly this schedule. With latency 1_000 the dup lag
        // is at most 1_000 ns while reorder can add up to 50_000 ns, so
        // promotions are guaranteed at these rates.
        let plan = FaultPlan::seeded(17)
            .with_dups(500_000)
            .with_reorder(500_000, 50_000);
        let net = NetConfig {
            latency_ns: 1_000,
            jitter_ns: 300,
            ..NetConfig::default()
        }
        .with_virtual_clock()
        .with_faults(plan);
        let (order, stats) = delivery_schedule(net, 128);
        assert_eq!(order.len(), 128, "every message delivers exactly once");
        assert_eq!(stats.delivered, 128);
        assert_eq!(stats.pending, 0);
        assert!(
            stats.dup_promoted > 0,
            "schedule must exercise the dup-races-ahead path"
        );
        assert!(stats.dup_suppressed > 0, "losing copies are discarded");
        let (order2, stats2) = delivery_schedule(net, 128);
        assert_eq!(order, order2, "promotion is deterministic under a seed");
        assert_eq!(stats, stats2);
    }

    #[test]
    fn acked_set_stays_bounded_by_inflight_dup_pairs() {
        // Satellite regression: the dedup set used to accumulate every
        // delivered msg id forever. Now an id lives only between the two
        // copies' arrivals, so at every step acked ≤ pending and the set is
        // empty once the wire drains.
        let plan = FaultPlan::seeded(23)
            .with_drops(150_000)
            .with_dups(400_000)
            .with_reorder(300_000, 20_000)
            .with_retry(2_000, 32_000, 6);
        let net = NetConfig {
            latency_ns: 1_000,
            jitter_ns: 500,
            ..NetConfig::default()
        }
        .with_virtual_clock()
        .with_faults(plan);
        let w = world_with_net(net);
        let n = 512u64;
        for _ in 0..n {
            w.net().inject(Box::new(|_| {}));
        }
        let mut spins = 0u64;
        while w.net().delivered() < n || w.net().pending() > 0 {
            w.net().poll(&w);
            assert!(
                sim(&w).acked_len() <= w.net().pending(),
                "dedup set must stay bounded by in-flight messages"
            );
            spins += 1;
            assert!(spins < 1_000_000, "chaos schedule failed to terminate");
        }
        assert_eq!(sim(&w).acked_len(), 0, "drained wire leaves no dedup state");
        let s = w.net().stats();
        assert!(s.dup_suppressed > 0, "plan must actually duplicate");
        assert_eq!(s.delivered, n);
    }

    #[test]
    fn pending_mirrors_heap_length_under_every_plan() {
        // Satellite audit: `pending()` must equal the heap length at every
        // quiescent point under each fault-plan shape — the retry path pops
        // one timer and pushes one attempt (plus a self-accounted dup
        // copy), so no path may leak the counter in either direction.
        let shapes: &[FaultPlan] = &[
            FaultPlan::seeded(31)
                .with_drops(250_000)
                .with_retry(4_000, 64_000, 6),
            FaultPlan::seeded(37)
                .with_dups(200_000)
                .with_reorder(300_000, 6_000),
            FaultPlan::seeded(41)
                .with_drops(150_000)
                .with_dups(120_000)
                .with_reorder(200_000, 5_000)
                .with_retry(4_000, 64_000, 6),
        ];
        for plan in shapes {
            let net = NetConfig {
                latency_ns: 800,
                jitter_ns: 300,
                ..NetConfig::default()
            }
            .with_virtual_clock()
            .with_faults(*plan);
            let w = world_with_net(net);
            let n = 256u64;
            for _ in 0..n {
                w.net().inject(Box::new(|_| {}));
            }
            let mut spins = 0u64;
            loop {
                let heap = sim(&w).heap_len();
                assert_eq!(
                    w.net().pending(),
                    heap,
                    "pending() must mirror the heap under seed {}",
                    plan.seed
                );
                if w.net().delivered() >= n && heap == 0 {
                    break;
                }
                w.net().poll(&w);
                spins += 1;
                assert!(spins < 1_000_000, "chaos schedule failed to terminate");
            }
            assert_eq!(w.net().pending(), 0);
            assert_eq!(w.net().delivered(), n);
        }
    }

    #[test]
    fn partition_stalls_then_heals() {
        // All deliveries due inside the window stall until it heals; with
        // the virtual clock the heal is observed by time-warp, not sleep.
        let plan = FaultPlan::seeded(5).with_partition(0, 1_000_000);
        let net = NetConfig {
            latency_ns: 100,
            jitter_ns: 0,
            ..NetConfig::default()
        }
        .with_virtual_clock()
        .with_faults(plan);
        let w = world_with_net(net);
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        for _ in 0..8 {
            let h = std::sync::Arc::clone(&hit);
            w.net().inject(Box::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }));
        }
        // First poll warps to the heal time and delivers everything.
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        assert_eq!(hit.load(Ordering::Relaxed), 8);
        assert!(
            w.net().now_ns() >= 1_000_000,
            "deliveries must wait for the partition to heal"
        );
    }
}
