//! Simulated inter-node network.
//!
//! Operations between ranks on different simulated nodes are injected here
//! as boxed delivery actions with a due time (`now + latency ± jitter`).
//! Any rank's progress call drains the due actions — modelling a NIC that
//! makes progress independently of which CPU polls, as GASNet-EX offloaded
//! operations do. Two properties matter for fidelity to the paper:
//!
//! 1. An injected operation **never completes synchronously**: even with
//!    zero latency, delivery happens at a later poll, so the initiator's
//!    event is pending at initiation — off-node operations always take the
//!    deferred-notification path, exactly as in the paper.
//! 2. Delivery order is by due time (ties broken by injection sequence), so
//!    with uniform latency the network is point-to-point ordered.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::config::NetConfig;
use crate::world::World;

/// A delivery action: performs the remote side of an operation (data
/// movement, atomic execution, AM enqueue) and signals its event.
pub type NetAction = Box<dyn FnOnce(&World) + Send>;

struct Delivery {
    due_ns: u64,
    seq: u64,
    action: NetAction,
}

impl PartialEq for Delivery {
    fn eq(&self, other: &Self) -> bool {
        self.due_ns == other.due_ns && self.seq == other.seq
    }
}
impl Eq for Delivery {}
impl PartialOrd for Delivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Delivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due_ns, self.seq).cmp(&(other.due_ns, other.seq))
    }
}

/// The global delay queue.
pub struct SimNetwork {
    cfg: NetConfig,
    epoch: Instant,
    seq: AtomicU64,
    queue: Mutex<BinaryHeap<Reverse<Delivery>>>,
    /// Lock-free mirror of the queue length, so a rank that loses the
    /// `poll` lock race can still tell whether deliveries are outstanding.
    pending_len: AtomicUsize,
    /// Polls that lost the lock race twice and reported a busy hint instead
    /// of draining (observability for the quiescence fix).
    contended_polls: AtomicU64,
    delivered: AtomicU64,
}

impl SimNetwork {
    /// Create a network with the given latency parameters.
    pub fn new(cfg: NetConfig) -> Self {
        SimNetwork {
            cfg,
            epoch: Instant::now(),
            seq: AtomicU64::new(0),
            queue: Mutex::new(BinaryHeap::new()),
            pending_len: AtomicUsize::new(0),
            contended_polls: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
        }
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Inject an operation for delivery after the configured latency.
    pub fn inject(&self, action: NetAction) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let jitter = if self.cfg.jitter_ns == 0 {
            0
        } else {
            // Deterministic per-message jitter from a mixed sequence number.
            splitmix64(seq) % (self.cfg.jitter_ns + 1)
        };
        let due_ns = self.now_ns() + self.cfg.latency_ns + jitter;
        self.pending_len.fetch_add(1, Ordering::SeqCst);
        self.queue.lock().unwrap().push(Reverse(Delivery {
            due_ns,
            seq,
            action,
        }));
    }

    /// Execute all deliveries whose due time has passed. Returns the number
    /// of work items observed: deliveries performed, or a busy hint of 1
    /// when another rank holds the queue while deliveries are outstanding —
    /// a rank that loses the lock race must not conclude "locally idle"
    /// while due work may exist (it would make quiescence sampling
    /// transiently wrong).
    pub fn poll(&self, world: &World) -> usize {
        let mut q = match self.queue.try_lock() {
            Ok(q) => q,
            Err(_) => {
                // The holder is usually mid-drain for a few microseconds;
                // retry once before falling back to the busy hint.
                std::thread::yield_now();
                match self.queue.try_lock() {
                    Ok(q) => q,
                    Err(_) => {
                        self.contended_polls.fetch_add(1, Ordering::SeqCst);
                        return usize::from(self.pending_len.load(Ordering::SeqCst) > 0);
                    }
                }
            }
        };
        if q.is_empty() {
            return 0;
        }
        let now = self.now_ns();
        let mut due = Vec::new();
        while let Some(Reverse(d)) = q.peek() {
            if d.due_ns > now {
                break;
            }
            due.push(q.pop().unwrap().0);
        }
        drop(q); // run actions without holding the lock: they may re-inject
        let n = due.len();
        for d in due {
            (d.action)(world);
            // Counted after the action so injected == delivered implies no
            // action is mid-flight (quiescence detection).
            self.delivered.fetch_add(1, Ordering::SeqCst);
            self.pending_len.fetch_sub(1, Ordering::SeqCst);
        }
        n
    }

    /// Total operations injected since creation.
    pub fn injected(&self) -> u64 {
        self.seq.load(Ordering::SeqCst)
    }

    /// Number of operations awaiting delivery (including any being drained
    /// right now). Lock-free, so it stays readable while a poll is running.
    pub fn pending(&self) -> usize {
        self.pending_len.load(Ordering::SeqCst)
    }

    /// Polls that lost the queue-lock race twice and returned a busy hint.
    pub fn contended_polls(&self) -> u64 {
        self.contended_polls.load(Ordering::SeqCst)
    }

    /// Total operations delivered since creation.
    pub fn delivered(&self) -> u64 {
        self.delivered.load(Ordering::Relaxed)
    }

    /// The configured latency parameters.
    pub fn config(&self) -> NetConfig {
        self.cfg
    }
}

/// SplitMix64 mixer, used for deterministic jitter.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GasnexConfig;

    fn test_world() -> std::sync::Arc<World> {
        World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12))
    }

    #[test]
    fn zero_latency_still_asynchronous() {
        let w = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12).with_net(
            NetConfig {
                latency_ns: 0,
                jitter_ns: 0,
            },
        ));
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        let h = std::sync::Arc::clone(&hit);
        w.net().inject(Box::new(move |_| {
            h.store(1, Ordering::Relaxed);
        }));
        // Injection alone must not execute the action.
        assert_eq!(hit.load(Ordering::Relaxed), 0);
        assert_eq!(w.net().pending(), 1);
        w.net().poll(&w);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        assert_eq!(w.net().pending(), 0);
        assert_eq!(w.net().delivered(), 1);
    }

    #[test]
    fn latency_delays_delivery() {
        let w = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12).with_net(
            NetConfig {
                latency_ns: 3_000_000,
                jitter_ns: 0,
            },
        ));
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        let h = std::sync::Arc::clone(&hit);
        w.net().inject(Box::new(move |_| {
            h.store(1, Ordering::Relaxed);
        }));
        w.net().poll(&w);
        assert_eq!(
            hit.load(Ordering::Relaxed),
            0,
            "delivered before latency elapsed"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
        w.net().poll(&w);
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn uniform_latency_preserves_order() {
        let w = test_world();
        let log = std::sync::Arc::new(Mutex::new(Vec::new()));
        for i in 0..20 {
            let log = std::sync::Arc::clone(&log);
            w.net()
                .inject(Box::new(move |_| log.lock().unwrap().push(i)));
        }
        std::thread::sleep(std::time::Duration::from_micros(10));
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        assert_eq!(*log.lock().unwrap(), (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn contended_poll_reports_busy_not_idle() {
        let w = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12).with_net(
            NetConfig {
                latency_ns: 0,
                jitter_ns: 0,
            },
        ));
        w.net().inject(Box::new(|_| {}));
        // Simulate another rank mid-drain by holding the queue lock.
        let guard = w.net().queue.lock().unwrap();
        assert_eq!(
            w.net().poll(&w),
            1,
            "lost lock race with pending work must report busy"
        );
        assert_eq!(w.net().contended_polls(), 1);
        assert_eq!(
            w.net().delivered(),
            0,
            "busy hint must not deliver anything"
        );
        drop(guard);
        assert_eq!(
            w.net().poll(&w),
            1,
            "after the holder releases, delivery proceeds"
        );
        assert_eq!(w.net().pending(), 0);
        // With an empty queue, a lost race reports idle (nothing due).
        let guard = w.net().queue.lock().unwrap();
        assert_eq!(w.net().poll(&w), 0);
        drop(guard);
    }

    #[test]
    fn actions_may_reinject() {
        let w = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12).with_net(
            NetConfig {
                latency_ns: 0,
                jitter_ns: 0,
            },
        ));
        let hit = std::sync::Arc::new(AtomicU64::new(0));
        let h = std::sync::Arc::clone(&hit);
        w.net().inject(Box::new(move |world| {
            let h2 = std::sync::Arc::clone(&h);
            world.net().inject(Box::new(move |_| {
                h2.store(2, Ordering::Relaxed);
            }));
        }));
        w.net().poll(&w);
        w.net().poll(&w);
        assert_eq!(hit.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        for _ in 0..2 {
            let mut vals = Vec::new();
            for seq in 0..100u64 {
                vals.push(splitmix64(seq) % 101);
            }
            assert!(vals.iter().all(|&v| v <= 100));
            // Same seeds give same jitter.
            assert_eq!(vals[0], splitmix64(0) % 101);
        }
    }
}
