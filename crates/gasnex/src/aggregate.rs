//! Sender-side message aggregation for fine-grained operations.
//!
//! The paper's GUPS chapter shows per-message overhead dominating
//! fine-grained remote atomics; the standard PGAS remedy is sender-side
//! coalescing. This module packs fine-grained puts and non-fetching
//! atomics headed for the same target into one batch message on the
//! [`Conduit`], while preserving completion semantics exactly: each
//! constituent op keeps its own completion object (and trace span — the
//! `tag` threaded through [`Coalescer::push`]), and the batch's single
//! delivery action fans out to the constituents in push order.
//!
//! A batch is one logical wire message, so the chaos fault plan operates
//! on whole batches: a drop re-arms the retransmission timer carrying the
//! batch payload, a duplicate duplicates the batch, and reorder shifts the
//! batch's due time. Nothing in the reliability layer distinguishes a
//! batch from a single-op message.
//!
//! # Flush policy
//!
//! Three triggers, each counted separately in [`crate::NetStats`]:
//!
//! * **Size** — a bucket reaching `flush_ops` buffered operations flushes
//!   inside the initiating call ([`Push::Flushed`]).
//! * **Age** — [`Coalescer::flush_due`] flushes buckets whose oldest op
//!   has waited at least `max_age_ns` on the network clock; the runtime
//!   calls it from every progress quantum, so `max_age_ns == 0` means
//!   "flush at the next progress call".
//! * **Explicit** — [`Coalescer::flush_all`] drains everything; barriers
//!   and quiescence use it so no op can linger across a synchronization
//!   point.
//!
//! # Backpressure
//!
//! Each target tracks its in-flight (injected, not yet delivered) batch
//! count. When a bucket is empty and the target already has
//! `max_inflight` batches on the wire, the buffer is *closed*: the op
//! bypasses aggregation and is injected immediately ([`Push::Bypassed`]),
//! bounding the burst a single target can have queued behind one poll.

use std::mem;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::conduit::Conduit;
use crate::net::NetAction;
use crate::rank::Rank;

/// Why a batch left its buffer. Also recorded on the runtime's
/// `BatchFlush` trace events.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlushReason {
    /// The bucket reached the configured size threshold.
    Size,
    /// The bucket's oldest op exceeded the age timeout.
    Age,
    /// An explicit flush (barrier, quiescence, or user request).
    Explicit,
}

impl FlushReason {
    pub fn name(self) -> &'static str {
        match self {
            FlushReason::Size => "size",
            FlushReason::Age => "age",
            FlushReason::Explicit => "explicit",
        }
    }
}

/// Aggregation knob carried by [`crate::GasnexConfig`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AggConfig {
    /// Master switch; disabled costs one branch per initiation.
    pub enabled: bool,
    /// Size threshold: a bucket flushes when it holds this many ops.
    pub flush_ops: usize,
    /// Age timeout on the network clock; 0 flushes at the next progress
    /// quantum.
    pub max_age_ns: u64,
    /// Per-target bound on injected-but-undelivered batches; at the bound
    /// new ops bypass the (closed) buffer.
    pub max_inflight: usize,
}

impl Default for AggConfig {
    fn default() -> Self {
        AggConfig {
            enabled: false,
            flush_ops: 16,
            max_age_ns: 0,
            max_inflight: 4,
        }
    }
}

impl AggConfig {
    /// Aggregation on, flushing every `flush_ops` operations.
    pub fn enabled(flush_ops: usize) -> Self {
        AggConfig {
            enabled: true,
            flush_ops,
            ..AggConfig::default()
        }
    }

    /// Override the age timeout.
    pub fn with_max_age_ns(mut self, ns: u64) -> Self {
        self.max_age_ns = ns;
        self
    }

    /// Override the per-target in-flight batch bound.
    pub fn with_max_inflight(mut self, n: usize) -> Self {
        self.max_inflight = n;
        self
    }

    /// Validate the knob, panicking with a descriptive message on
    /// nonsensical parameters.
    pub fn validate(&self) {
        if self.enabled {
            assert!(
                self.flush_ops >= 1,
                "gasnex: AggConfig.flush_ops must be at least 1"
            );
            assert!(
                self.max_inflight >= 1,
                "gasnex: AggConfig.max_inflight must be at least 1"
            );
        }
    }
}

/// Point-in-time view of one non-empty coalescer bucket, produced by
/// [`Coalescer::snapshot_buckets`] for the live-snapshot API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BucketSnapshot {
    /// Target rank the bucket buffers operations for.
    pub target: u32,
    /// Operations currently buffered.
    pub occupancy: usize,
    /// Age of the oldest buffered op on the network clock (`now -
    /// opened_ns`, saturating).
    pub age_ns: u64,
    /// Batches injected for this target and not yet delivered.
    pub inflight: usize,
}

/// What [`Coalescer::push`] did with an operation.
pub enum Push<T> {
    /// Buffered; a later size/age/explicit flush will carry it.
    Buffered,
    /// The push crossed the size threshold and the bucket flushed.
    Flushed(Batch<T>),
    /// Backpressure: the target's buffer was closed, so the op was
    /// injected directly as its own message with this id.
    Bypassed { msg: u64 },
}

/// One flushed batch: the wire message id, how many ops it carries, why
/// it flushed, and the caller's per-op tags in push (= fan-out) order.
pub struct Batch<T> {
    pub msg: u64,
    pub ops: u32,
    pub reason: FlushReason,
    pub tags: Vec<T>,
}

struct Bucket<T> {
    ops: Vec<(NetAction, T)>,
    /// Network-clock time the oldest buffered op entered (valid while
    /// `ops` is non-empty).
    opened_ns: u64,
    /// Batches injected for this target and not yet delivered; shared
    /// with the in-flight batch actions, which decrement on delivery.
    inflight: Arc<AtomicUsize>,
}

/// Per-rank, per-target coalescing buffers. Single-threaded: lives in the
/// initiating rank's context, so pushes and flushes need no locking; only
/// the in-flight counters are shared with delivery actions.
pub struct Coalescer<T> {
    cfg: AggConfig,
    /// The initiating rank: the source half of every routed batch
    /// injection (socket transports pick the source node socket from it).
    me: Rank,
    buckets: Vec<Bucket<T>>,
}

impl<T: Copy> Coalescer<T> {
    /// Buffers for `ranks` possible targets under `cfg`, initiating from
    /// rank `me`.
    pub fn new(cfg: AggConfig, ranks: usize, me: Rank) -> Self {
        cfg.validate();
        Coalescer {
            cfg,
            me,
            buckets: (0..ranks)
                .map(|_| Bucket {
                    ops: Vec::new(),
                    opened_ns: 0,
                    inflight: Arc::new(AtomicUsize::new(0)),
                })
                .collect(),
        }
    }

    /// Buffer `action` for `target`, flushing on the size threshold or
    /// bypassing a closed buffer. `tag` rides along so the caller can
    /// correlate each op with the batch message that carried it.
    pub fn push(&mut self, target: usize, action: NetAction, tag: T, net: &dyn Conduit) -> Push<T> {
        let route = Some((self.me, Rank(target as u32)));
        let b = &mut self.buckets[target];
        if b.ops.is_empty() && b.inflight.load(Ordering::SeqCst) >= self.cfg.max_inflight {
            return Push::Bypassed {
                msg: net.inject_to(route, action),
            };
        }
        if b.ops.is_empty() {
            b.opened_ns = net.now_ns();
        }
        b.ops.push((action, tag));
        net.note_agg_occupancy(b.ops.len());
        if b.ops.len() >= self.cfg.flush_ops {
            Push::Flushed(Self::flush_bucket(b, route, net, FlushReason::Size))
        } else {
            Push::Buffered
        }
    }

    /// Inject one batch message carrying every op buffered in `b`. The
    /// delivery action fans out to the constituents in push order, then
    /// releases the target's in-flight slot.
    fn flush_bucket(
        b: &mut Bucket<T>,
        route: Option<(Rank, Rank)>,
        net: &dyn Conduit,
        reason: FlushReason,
    ) -> Batch<T> {
        let buffered = mem::take(&mut b.ops);
        let tags: Vec<T> = buffered.iter().map(|(_, t)| *t).collect();
        let actions: Vec<NetAction> = buffered.into_iter().map(|(a, _)| a).collect();
        let k = actions.len();
        let inflight = Arc::clone(&b.inflight);
        inflight.fetch_add(1, Ordering::SeqCst);
        let msg = net.inject_to(
            route,
            Box::new(move |w| {
                for a in actions {
                    a(w);
                }
                inflight.fetch_sub(1, Ordering::SeqCst);
            }),
        );
        net.note_batch(k as u64, reason);
        Batch {
            msg,
            ops: k as u32,
            reason,
            tags,
        }
    }

    /// Flush every bucket whose oldest op has aged past `max_age_ns` on
    /// the network clock (all non-empty buckets when the timeout is 0).
    pub fn flush_due(&mut self, net: &dyn Conduit) -> Vec<Batch<T>> {
        let now = net.now_ns();
        let me = self.me;
        let mut out = Vec::new();
        for (target, b) in self.buckets.iter_mut().enumerate() {
            if !b.ops.is_empty() && now.saturating_sub(b.opened_ns) >= self.cfg.max_age_ns {
                let route = Some((me, Rank(target as u32)));
                out.push(Self::flush_bucket(b, route, net, FlushReason::Age));
            }
        }
        out
    }

    /// Flush every non-empty bucket regardless of age.
    pub fn flush_all(&mut self, net: &dyn Conduit, reason: FlushReason) -> Vec<Batch<T>> {
        let me = self.me;
        let mut out = Vec::new();
        for (target, b) in self.buckets.iter_mut().enumerate() {
            if !b.ops.is_empty() {
                let route = Some((me, Rank(target as u32)));
                out.push(Self::flush_bucket(b, route, net, reason));
            }
        }
        out
    }

    /// Total operations currently buffered across all targets. Quiescence
    /// treats a non-empty coalescer as outstanding local work.
    pub fn buffered(&self) -> usize {
        self.buckets.iter().map(|b| b.ops.len()).sum()
    }

    /// Snapshot every bucket that holds buffered ops or in-flight batches,
    /// in ascending target order, against `now` on the network clock.
    pub fn snapshot_buckets(&self, now_ns: u64) -> Vec<BucketSnapshot> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(target, b)| {
                let inflight = b.inflight.load(Ordering::SeqCst);
                if b.ops.is_empty() && inflight == 0 {
                    return None;
                }
                Some(BucketSnapshot {
                    target: target as u32,
                    occupancy: b.ops.len(),
                    age_ns: if b.ops.is_empty() {
                        0
                    } else {
                        now_ns.saturating_sub(b.opened_ns)
                    },
                    inflight,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GasnexConfig, NetConfig};
    use crate::world::World;
    use std::sync::atomic::AtomicU64;

    fn quick_world() -> std::sync::Arc<World> {
        World::new(
            GasnexConfig::udp(2, 1)
                .with_segment_size(1 << 12)
                .with_net(NetConfig {
                    latency_ns: 0,
                    jitter_ns: 0,
                    ..NetConfig::default()
                }),
        )
    }

    fn marker(log: &Arc<std::sync::Mutex<Vec<u32>>>, i: u32) -> NetAction {
        let log = Arc::clone(log);
        Box::new(move |_| log.lock().unwrap().push(i))
    }

    #[test]
    fn size_threshold_flushes_one_batch_in_push_order() {
        let w = quick_world();
        let mut c: Coalescer<u32> = Coalescer::new(AggConfig::enabled(3), 2, Rank(0));
        let log = Arc::new(std::sync::Mutex::new(Vec::new()));
        assert!(matches!(
            c.push(1, marker(&log, 0), 0, w.net()),
            Push::Buffered
        ));
        assert!(matches!(
            c.push(1, marker(&log, 1), 1, w.net()),
            Push::Buffered
        ));
        assert_eq!(c.buffered(), 2);
        let batch = match c.push(1, marker(&log, 2), 2, w.net()) {
            Push::Flushed(b) => b,
            _ => panic!("third push must cross the size threshold"),
        };
        assert_eq!(batch.ops, 3);
        assert_eq!(batch.reason, FlushReason::Size);
        assert_eq!(batch.tags, vec![0, 1, 2]);
        assert_eq!(c.buffered(), 0);
        // One wire message; fan-out happens at delivery, in push order.
        assert_eq!(w.net().injected(), 1);
        assert!(log.lock().unwrap().is_empty(), "no synchronous delivery");
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
        let s = w.net().stats();
        assert_eq!(s.batches_injected, 1);
        assert_eq!(s.ops_coalesced, 3);
        assert_eq!(s.flushes_size, 1);
        assert_eq!(s.agg_occupancy_highwater, 3);
    }

    #[test]
    fn age_and_explicit_flushes_count_separately() {
        let w = quick_world();
        let cfg = AggConfig::enabled(100).with_max_age_ns(0);
        let mut c: Coalescer<()> = Coalescer::new(cfg, 2, Rank(0));
        c.push(0, Box::new(|_| {}), (), w.net());
        let due = c.flush_due(w.net());
        assert_eq!(due.len(), 1, "max_age_ns = 0 flushes at the next call");
        assert_eq!(due[0].reason, FlushReason::Age);
        c.push(1, Box::new(|_| {}), (), w.net());
        let all = c.flush_all(w.net(), FlushReason::Explicit);
        assert_eq!(all.len(), 1);
        assert_eq!(c.buffered(), 0);
        assert!(c.flush_all(w.net(), FlushReason::Explicit).is_empty());
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        let s = w.net().stats();
        assert_eq!(
            (s.flushes_age, s.flushes_explicit, s.flushes_size),
            (1, 1, 0)
        );
        assert_eq!(s.batches_injected, 2);
        assert_eq!(s.ops_coalesced, 2);
    }

    #[test]
    fn closed_buffer_bypasses_to_direct_injection() {
        let w = quick_world();
        let cfg = AggConfig::enabled(1).with_max_inflight(1);
        let mut c: Coalescer<()> = Coalescer::new(cfg, 2, Rank(0));
        let hit = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hit);
        // flush_ops = 1: the first push flushes immediately, occupying the
        // target's only in-flight slot until the batch delivers.
        assert!(matches!(
            c.push(1, Box::new(|_| {}), (), w.net()),
            Push::Flushed(_)
        ));
        let bypass = c.push(
            1,
            Box::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }),
            (),
            w.net(),
        );
        assert!(
            matches!(bypass, Push::Bypassed { .. }),
            "a closed buffer must fall back to immediate injection"
        );
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        assert_eq!(hit.load(Ordering::Relaxed), 1);
        // The slot reopened once the batch delivered.
        assert!(matches!(
            c.push(1, Box::new(|_| {}), (), w.net()),
            Push::Flushed(_)
        ));
        while w.net().pending() > 0 {
            w.net().poll(&w);
        }
        let s = w.net().stats();
        assert_eq!(s.batches_injected, 2, "the bypassed op is not a batch");
        assert_eq!(s.injected, 3);
    }

    #[test]
    #[should_panic(expected = "flush_ops")]
    fn zero_flush_ops_rejected_when_enabled() {
        AggConfig {
            enabled: true,
            flush_ops: 0,
            ..AggConfig::default()
        }
        .validate();
    }
}
