//! Shared memory segments.
//!
//! Each rank owns one segment; every rank in the world can read and write
//! every segment (this models GASNet's process-shared memory on a node, and
//! doubles as the target memory for simulated-network deliveries).
//!
//! # Memory model
//!
//! Segment storage is an array of `AtomicU64` words. All access goes through
//! relaxed (or, for synchronizing operations, acquire/release) atomic word
//! operations, so concurrent conflicting accesses from different ranks are
//! *races with well-defined outcomes* (lost updates, torn multi-word
//! transfers) rather than undefined behaviour — exactly the semantics the
//! HPCC RandomAccess benchmark's "unsynchronized one-sided operations, some
//! lost updates permitted" mode requires. On x86-64 a relaxed atomic load or
//! store compiles to a plain `mov`, so this costs nothing on the critical
//! paths the paper measures.
//!
//! Sub-word and unaligned accesses splice bytes into the containing word
//! with a compare-exchange loop; aligned word-multiple transfers (the common
//! case — everything the paper benchmarks is 64-bit) take the fast path.

use std::sync::atomic::{AtomicU64, Ordering};

/// A single rank's shared segment.
pub struct Segment {
    words: Box<[AtomicU64]>,
}

// Number of bytes per storage word.
const W: usize = 8;

impl Segment {
    /// Allocate a zeroed segment of at least `bytes` bytes (rounded up to a
    /// whole number of words).
    pub fn new(bytes: usize) -> Self {
        let nwords = bytes.div_ceil(W);
        let mut v = Vec::with_capacity(nwords);
        v.resize_with(nwords, || AtomicU64::new(0));
        Segment {
            words: v.into_boxed_slice(),
        }
    }

    /// Segment capacity in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len() * W
    }

    /// Whether the segment has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    #[inline]
    fn word(&self, off: usize) -> &AtomicU64 {
        &self.words[off / W]
    }

    /// Read the aligned 64-bit word at byte offset `off` (relaxed).
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        debug_assert!(off.is_multiple_of(W), "unaligned u64 read at offset {off}");
        self.word(off).load(Ordering::Relaxed)
    }

    /// Write the aligned 64-bit word at byte offset `off` (relaxed).
    #[inline]
    pub fn write_u64(&self, off: usize, val: u64) {
        debug_assert!(off.is_multiple_of(W), "unaligned u64 write at offset {off}");
        self.word(off).store(val, Ordering::Relaxed);
    }

    /// Direct access to the atomic word containing byte offset `off`
    /// (which must be 8-byte aligned). This is the hook for hardware remote
    /// atomics and for "manual localization" application code.
    #[inline]
    pub fn atomic_u64(&self, off: usize) -> &AtomicU64 {
        assert!(
            off.is_multiple_of(W),
            "atomic access requires 8-byte alignment, got offset {off}"
        );
        self.word(off)
    }

    /// A view of `len` consecutive 64-bit words starting at byte offset
    /// `off` (8-byte aligned), for bulk direct access after a downcast.
    pub fn atomic_slice_u64(&self, off: usize, len: usize) -> &[AtomicU64] {
        assert!(
            off.is_multiple_of(W),
            "atomic slice requires 8-byte alignment, got offset {off}"
        );
        let start = off / W;
        &self.words[start..start + len]
    }

    /// Read a scalar of `size` bytes (1, 2, 4, or 8) at byte offset `off`,
    /// which must be aligned to `size`. Returns the value zero-extended.
    #[inline]
    pub fn read_scalar(&self, off: usize, size: usize) -> u64 {
        debug_assert!(size.is_power_of_two() && size <= W);
        debug_assert!(
            off.is_multiple_of(size),
            "scalar read misaligned: off {off} size {size}"
        );
        if size == W {
            return self.read_u64(off);
        }
        let word = self.word(off).load(Ordering::Relaxed);
        let shift = (off % W) * 8;
        let mask = mask_for(size);
        (word >> shift) & mask
    }

    /// Write a scalar of `size` bytes (1, 2, 4, or 8) at byte offset `off`,
    /// which must be aligned to `size`.
    #[inline]
    pub fn write_scalar(&self, off: usize, size: usize, val: u64) {
        debug_assert!(size.is_power_of_two() && size <= W);
        debug_assert!(
            off.is_multiple_of(size),
            "scalar write misaligned: off {off} size {size}"
        );
        if size == W {
            return self.write_u64(off, val);
        }
        let shift = (off % W) * 8;
        let mask = mask_for(size) << shift;
        let bits = (val << shift) & mask;
        let w = self.word(off);
        // Splice the bytes into the containing word. A CAS loop keeps
        // concurrent writers to *different* bytes of the word from clobbering
        // each other.
        let mut cur = w.load(Ordering::Relaxed);
        loop {
            let next = (cur & !mask) | bits;
            match w.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(c) => cur = c,
            }
        }
    }

    /// Copy `src` into the segment starting at byte offset `off`.
    pub fn copy_in(&self, off: usize, src: &[u8]) {
        self.for_each_chunk(off, src.len(), |kind| match kind {
            Chunk::Word { seg_off, buf_range } => {
                let mut b = [0u8; W];
                b.copy_from_slice(&src[buf_range]);
                self.write_u64(seg_off, u64::from_le_bytes(b));
            }
            Chunk::Bytes { seg_off, buf_range } => {
                for (i, &byte) in src[buf_range.clone()].iter().enumerate() {
                    self.write_scalar(seg_off + i, 1, byte as u64);
                }
            }
        });
    }

    /// Copy `dst.len()` bytes out of the segment starting at byte offset
    /// `off`.
    pub fn copy_out(&self, off: usize, dst: &mut [u8]) {
        self.for_each_chunk(off, dst.len(), |kind| match kind {
            Chunk::Word { seg_off, buf_range } => {
                let w = self.read_u64(seg_off);
                dst[buf_range].copy_from_slice(&w.to_le_bytes());
            }
            Chunk::Bytes { seg_off, buf_range } => {
                let start = buf_range.start;
                for i in 0..buf_range.len() {
                    dst[start + i] = self.read_scalar(seg_off + i, 1) as u8;
                }
            }
        });
    }

    /// Decompose a (possibly unaligned) byte range into an unaligned head,
    /// aligned full words, and an unaligned tail.
    fn for_each_chunk(&self, off: usize, len: usize, mut f: impl FnMut(Chunk)) {
        assert!(
            off.checked_add(len).is_some_and(|end| end <= self.len()),
            "segment access out of bounds: off {off} len {len} capacity {}",
            self.len()
        );
        let mut seg = off;
        let mut buf = 0usize;
        let end = off + len;
        // Head: bytes up to the next word boundary.
        let head = (W - seg % W) % W;
        let head = head.min(len);
        if head > 0 {
            f(Chunk::Bytes {
                seg_off: seg,
                buf_range: buf..buf + head,
            });
            seg += head;
            buf += head;
        }
        // Middle: full words.
        while seg + W <= end {
            f(Chunk::Word {
                seg_off: seg,
                buf_range: buf..buf + W,
            });
            seg += W;
            buf += W;
        }
        // Tail.
        if seg < end {
            f(Chunk::Bytes {
                seg_off: seg,
                buf_range: buf..buf + (end - seg),
            });
        }
    }
}

enum Chunk {
    Word {
        seg_off: usize,
        buf_range: std::ops::Range<usize>,
    },
    Bytes {
        seg_off: usize,
        buf_range: std::ops::Range<usize>,
    },
}

#[inline]
fn mask_for(size: usize) -> u64 {
    if size >= 8 {
        u64::MAX
    } else {
        (1u64 << (size * 8)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_roundtrip() {
        let s = Segment::new(64);
        s.write_u64(8, 0xdead_beef_cafe_f00d);
        assert_eq!(s.read_u64(8), 0xdead_beef_cafe_f00d);
        assert_eq!(s.read_u64(0), 0);
        assert_eq!(s.read_u64(16), 0);
    }

    #[test]
    fn capacity_rounds_up_to_words() {
        let s = Segment::new(13);
        assert_eq!(s.len(), 16);
        assert!(!s.is_empty());
    }

    #[test]
    fn scalar_sizes_roundtrip() {
        let s = Segment::new(64);
        s.write_scalar(3, 1, 0xAB);
        s.write_scalar(4, 4, 0x1234_5678);
        assert_eq!(s.read_scalar(3, 1), 0xAB);
        assert_eq!(s.read_scalar(4, 4), 0x1234_5678);
        // A 2-byte write at offset 2 covers bytes 2..4, overwriting byte 3.
        s.write_scalar(2, 2, 0xBEEF);
        assert_eq!(s.read_scalar(2, 2), 0xBEEF);
        assert_eq!(s.read_scalar(3, 1), 0xBE);
        assert_eq!(s.read_scalar(4, 4), 0x1234_5678);
    }

    #[test]
    fn sub_word_writes_do_not_clobber_neighbors() {
        let s = Segment::new(16);
        s.write_u64(0, u64::MAX);
        s.write_scalar(2, 2, 0);
        assert_eq!(s.read_u64(0), 0xFFFF_FFFF_0000_FFFF);
    }

    #[test]
    fn copy_roundtrip_aligned() {
        let s = Segment::new(128);
        let data: Vec<u8> = (0..64).map(|i| i as u8).collect();
        s.copy_in(16, &data);
        let mut out = vec![0u8; 64];
        s.copy_out(16, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn copy_roundtrip_unaligned_head_tail() {
        let s = Segment::new(128);
        let data: Vec<u8> = (0..29).map(|i| (i * 7) as u8).collect();
        s.copy_in(3, &data);
        let mut out = vec![0u8; 29];
        s.copy_out(3, &mut out);
        assert_eq!(out, data);
        // Bytes outside the range are untouched.
        assert_eq!(s.read_scalar(2, 1), 0);
        assert_eq!(s.read_scalar(32, 1), 0);
    }

    #[test]
    fn copy_empty_is_noop() {
        let s = Segment::new(16);
        s.copy_in(5, &[]);
        let mut out = [];
        s.copy_out(5, &mut out);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn copy_out_of_bounds_panics() {
        let s = Segment::new(16);
        s.copy_in(10, &[0u8; 8]);
    }

    #[test]
    #[should_panic(expected = "8-byte alignment")]
    fn atomic_unaligned_panics() {
        let s = Segment::new(16);
        s.atomic_u64(4);
    }

    #[test]
    fn atomic_view_shares_storage() {
        let s = Segment::new(32);
        s.atomic_u64(8).store(42, Ordering::Relaxed);
        assert_eq!(s.read_u64(8), 42);
        let slice = s.atomic_slice_u64(0, 4);
        assert_eq!(slice[1].load(Ordering::Relaxed), 42);
    }

    #[test]
    fn concurrent_byte_splicing_is_lossless() {
        // Two threads write disjoint bytes of the same word concurrently;
        // the CAS splice must not lose either.
        use std::sync::Arc;
        let s = Arc::new(Segment::new(8));
        let mut handles = Vec::new();
        for t in 0..4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    s.write_scalar(t as usize * 2, 2, 0x0100u64 + t as u64);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u8 {
            assert_eq!(s.read_scalar(t as usize * 2, 2), 0x0100 + t as u64);
        }
    }
}
