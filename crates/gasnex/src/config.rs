//! Configuration for a `gasnex` world: conduit selection, process layout,
//! segment sizing, and simulated-network parameters.

/// Which conduit flavor the world runs over.
///
/// In the real GASNet-EX these select genuinely different transports. In this
/// single-process reproduction all transports are shared memory; the conduit
/// still matters because it controls what the layered runtime may assume:
///
/// * [`Conduit::Smp`] supports only a single (simulated) node, which lets the
///   runtime treat every global pointer as directly addressable (the
///   "constexpr `is_local`" optimization the paper describes for 2021.3.6).
/// * [`Conduit::Udp`] and [`Conduit::Mpi`] permit multiple simulated nodes;
///   co-located ranks communicate through process-shared memory while ranks
///   on different simulated nodes go through the [`SimNetwork`] delay queue.
///
/// [`SimNetwork`]: crate::net::SimNetwork
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Conduit {
    /// Shared-memory conduit: exactly one node.
    Smp,
    /// UDP conduit stand-in: multi-node capable, process-shared memory
    /// within a node.
    Udp,
    /// MPI conduit stand-in: as `Udp`, plus the collective bootstrap the
    /// graph-matching application relies on.
    Mpi,
}

impl Conduit {
    /// Whether this conduit guarantees that every rank is on the same node,
    /// making every global pointer directly addressable.
    pub fn single_node_only(self) -> bool {
        matches!(self, Conduit::Smp)
    }
}

/// Parameters of the simulated inter-node network.
///
/// Operations between ranks on different simulated nodes are injected into a
/// delay queue and delivered no earlier than `latency_ns` (± up to
/// `jitter_ns`, deterministic per message) after injection. A latency of zero
/// still forces asynchronous completion: delivery happens at a later progress
/// poll, never synchronously during initiation — exactly the property the
/// paper's off-node operations have.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Base one-way latency in nanoseconds.
    pub latency_ns: u64,
    /// Maximum additional deterministic jitter in nanoseconds.
    pub jitter_ns: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Roughly EDR InfiniBand-scale small-message latency.
        NetConfig {
            latency_ns: 1_500,
            jitter_ns: 0,
        }
    }
}

/// Configuration of a `gasnex` world.
#[derive(Clone, Debug)]
pub struct GasnexConfig {
    /// Total number of ranks (SPMD "processes", realized as threads).
    pub ranks: usize,
    /// Number of ranks per simulated node. Ranks `[k*n, (k+1)*n)` form node
    /// `k`. Must evenly divide or exceed `ranks` shape constraints are not
    /// required; the last node may be ragged.
    pub ranks_per_node: usize,
    /// Size in bytes of each rank's shared segment.
    pub segment_size: usize,
    /// Conduit flavor.
    pub conduit: Conduit,
    /// Simulated network parameters (only used when more than one node).
    pub net: NetConfig,
}

impl GasnexConfig {
    /// Single-node SMP configuration with `ranks` ranks and a default
    /// 8 MiB-per-rank segment.
    pub fn smp(ranks: usize) -> Self {
        GasnexConfig {
            ranks,
            ranks_per_node: ranks.max(1),
            segment_size: 8 << 20,
            conduit: Conduit::Smp,
            net: NetConfig::default(),
        }
    }

    /// Multi-node configuration over the UDP conduit stand-in.
    pub fn udp(ranks: usize, ranks_per_node: usize) -> Self {
        GasnexConfig {
            ranks,
            ranks_per_node: ranks_per_node.max(1),
            segment_size: 8 << 20,
            conduit: Conduit::Udp,
            net: NetConfig::default(),
        }
    }

    /// Multi-node configuration over the MPI conduit stand-in.
    pub fn mpi(ranks: usize, ranks_per_node: usize) -> Self {
        GasnexConfig {
            conduit: Conduit::Mpi,
            ..Self::udp(ranks, ranks_per_node)
        }
    }

    /// Override the per-rank segment size in bytes.
    pub fn with_segment_size(mut self, bytes: usize) -> Self {
        self.segment_size = bytes;
        self
    }

    /// Override the simulated network parameters.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Number of simulated nodes implied by this configuration.
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// Validate the configuration, panicking with a descriptive message on
    /// nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.ranks > 0, "gasnex: world must have at least one rank");
        assert!(
            self.ranks_per_node > 0,
            "gasnex: ranks_per_node must be positive"
        );
        assert!(
            self.segment_size >= 64,
            "gasnex: segment must be at least 64 bytes, got {}",
            self.segment_size
        );
        if self.conduit.single_node_only() {
            assert!(
                self.nodes() == 1,
                "gasnex: SMP conduit supports a single node, but {} ranks with \
                 {} ranks/node gives {} nodes",
                self.ranks,
                self.ranks_per_node,
                self.nodes()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smp_is_one_node() {
        let c = GasnexConfig::smp(16);
        c.validate();
        assert_eq!(c.nodes(), 1);
        assert!(c.conduit.single_node_only());
    }

    #[test]
    fn udp_node_count_rounds_up() {
        let c = GasnexConfig::udp(10, 4);
        c.validate();
        assert_eq!(c.nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "SMP conduit supports a single node")]
    fn smp_multinode_rejected() {
        let mut c = GasnexConfig::smp(8);
        c.ranks_per_node = 2;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        GasnexConfig::smp(0).validate();
    }

    #[test]
    fn builders_apply() {
        let c = GasnexConfig::udp(4, 2)
            .with_segment_size(1 << 16)
            .with_net(NetConfig {
                latency_ns: 10,
                jitter_ns: 5,
            });
        assert_eq!(c.segment_size, 1 << 16);
        assert_eq!(c.net.latency_ns, 10);
        assert_eq!(c.net.jitter_ns, 5);
    }
}
