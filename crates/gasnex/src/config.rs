//! Configuration for a `gasnex` world: conduit selection, process layout,
//! segment sizing, and simulated-network parameters.

/// Which conduit flavor the world runs over.
///
/// In the real GASNet-EX these select genuinely different transports. Here
/// the kind controls what the layered runtime may *assume* about locality
/// (the wire itself is chosen separately by [`Transport`]):
///
/// * [`ConduitKind::Smp`] supports only a single (simulated) node, which
///   lets the runtime treat every global pointer as directly addressable
///   (the "constexpr `is_local`" optimization the paper describes for
///   2021.3.6).
/// * [`ConduitKind::Udp`] and [`ConduitKind::Mpi`] permit multiple
///   simulated nodes; co-located ranks communicate through process-shared
///   memory while ranks on different simulated nodes go through the
///   [`Conduit`] transport.
///
/// [`Conduit`]: crate::conduit::Conduit
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConduitKind {
    /// Shared-memory conduit: exactly one node.
    Smp,
    /// UDP conduit stand-in: multi-node capable, process-shared memory
    /// within a node.
    Udp,
    /// MPI conduit stand-in: as `Udp`, plus the collective bootstrap the
    /// graph-matching application relies on.
    Mpi,
}

impl ConduitKind {
    /// Whether this conduit guarantees that every rank is on the same node,
    /// making every global pointer directly addressable.
    pub fn single_node_only(self) -> bool {
        matches!(self, ConduitKind::Smp)
    }
}

/// Which wire carries cross-node delivery actions — the [`Conduit`]
/// implementation a [`World`] constructs.
///
/// [`Conduit`]: crate::conduit::Conduit
/// [`World`]: crate::world::World
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Transport {
    /// The simulated delay queue ([`SimNetwork`]): deterministic latency
    /// and jitter, the full chaos adversary, and virtual-clock replay.
    ///
    /// [`SimNetwork`]: crate::net::SimNetwork
    #[default]
    Sim,
    /// Real loopback UDP sockets ([`UdpConduit`]): one kernel socket per
    /// simulated node, datagram framing, sender retransmission and
    /// receiver dedup. Wall-clock only; fault plans limited to drop/dup.
    ///
    /// [`UdpConduit`]: crate::conduit::udp::UdpConduit
    UdpSocket,
}

/// How the simulated network measures time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ClockMode {
    /// Wall-clock nanoseconds from a process-local `Instant` epoch. Delivery
    /// times depend on host scheduling, so schedules are not replayable.
    #[default]
    Wall,
    /// Deterministic virtual clock: logical nanoseconds that advance only
    /// when a poll finds nothing due and time-warps to the earliest due
    /// delivery. With a virtual clock the whole delivery schedule is a pure
    /// function of the injection order and the fault-plan seed.
    Virtual,
}

/// A seeded, deterministic fault-injection plan for the simulated network.
///
/// Every per-message decision (drop, duplicate, reorder delay) is a pure
/// function of `(seed, message id, attempt)`, so a fixed seed replays the
/// identical adversarial schedule. Probabilities are expressed in parts per
/// million of deliveries. Dropped messages are retransmitted by the
/// network's ack/retry layer with bounded exponential backoff
/// (`rto_ns * 2^attempt`, capped at `max_backoff_ns`); the attempt before
/// `max_attempts` is never dropped, so every faulted run terminates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed for all fault decisions and (when present) jitter mixing.
    pub seed: u64,
    /// Probability (ppm) that a transmission attempt is dropped.
    pub drop_ppm: u32,
    /// Probability (ppm) that a delivered message is also duplicated; the
    /// receiver suppresses the extra copy by sequence-number dedup.
    pub dup_ppm: u32,
    /// Probability (ppm) that a delivery is delayed by up to
    /// `reorder_span_ns` extra nanoseconds, overtaking later messages.
    pub reorder_ppm: u32,
    /// Maximum extra delay applied to reordered deliveries.
    pub reorder_span_ns: u64,
    /// Burst-delay window period; 0 disables bursts.
    pub burst_period_ns: u64,
    /// Length of the delayed window at the start of each burst period.
    pub burst_len_ns: u64,
    /// Extra delay applied to deliveries falling inside a burst window.
    pub burst_extra_ns: u64,
    /// Start of a one-shot network partition: deliveries due inside
    /// `[partition_at_ns, partition_until_ns)` stall until the partition
    /// heals. Equal bounds disable the partition.
    pub partition_at_ns: u64,
    /// End of the partition window (exclusive).
    pub partition_until_ns: u64,
    /// Base retransmission timeout for the first retry of a dropped message.
    pub rto_ns: u64,
    /// Cap on the exponential retransmission backoff.
    pub max_backoff_ns: u64,
    /// Maximum transmission attempts per message; the final attempt is
    /// exempt from drops, bounding retries and guaranteeing termination.
    pub max_attempts: u32,
}

impl FaultPlan {
    /// A plan with the given seed, no faults enabled, and default retry
    /// parameters — the base the `with_*` builders toggle faults onto.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_ppm: 0,
            dup_ppm: 0,
            reorder_ppm: 0,
            reorder_span_ns: 0,
            burst_period_ns: 0,
            burst_len_ns: 0,
            burst_extra_ns: 0,
            partition_at_ns: 0,
            partition_until_ns: 0,
            rto_ns: 20_000,
            max_backoff_ns: 320_000,
            max_attempts: 6,
        }
    }

    /// Drop `ppm` parts-per-million of transmission attempts.
    pub fn with_drops(mut self, ppm: u32) -> Self {
        self.drop_ppm = ppm;
        self
    }

    /// Duplicate `ppm` parts-per-million of deliveries.
    pub fn with_dups(mut self, ppm: u32) -> Self {
        self.dup_ppm = ppm;
        self
    }

    /// Delay `ppm` parts-per-million of deliveries by up to `span_ns`.
    pub fn with_reorder(mut self, ppm: u32, span_ns: u64) -> Self {
        self.reorder_ppm = ppm;
        self.reorder_span_ns = span_ns;
        self
    }

    /// Delay deliveries due in the first `len_ns` of every `period_ns`
    /// window by `extra_ns`.
    pub fn with_burst(mut self, period_ns: u64, len_ns: u64, extra_ns: u64) -> Self {
        self.burst_period_ns = period_ns;
        self.burst_len_ns = len_ns;
        self.burst_extra_ns = extra_ns;
        self
    }

    /// Stall deliveries due inside `[at_ns, until_ns)` until the partition
    /// heals at `until_ns`.
    pub fn with_partition(mut self, at_ns: u64, until_ns: u64) -> Self {
        self.partition_at_ns = at_ns;
        self.partition_until_ns = until_ns;
        self
    }

    /// Override the retransmission parameters.
    pub fn with_retry(mut self, rto_ns: u64, max_backoff_ns: u64, max_attempts: u32) -> Self {
        self.rto_ns = rto_ns;
        self.max_backoff_ns = max_backoff_ns;
        self.max_attempts = max_attempts;
        self
    }

    /// Validate the plan, panicking with a descriptive message on
    /// nonsensical parameters.
    pub fn validate(&self) {
        for (name, ppm) in [
            ("drop_ppm", self.drop_ppm),
            ("dup_ppm", self.dup_ppm),
            ("reorder_ppm", self.reorder_ppm),
        ] {
            assert!(
                ppm <= 1_000_000,
                "gasnex: FaultPlan.{name} is a parts-per-million probability, got {ppm}"
            );
        }
        assert!(
            self.max_attempts >= 1,
            "gasnex: FaultPlan.max_attempts must be at least 1"
        );
        if self.drop_ppm > 0 {
            assert!(
                self.rto_ns > 0 && self.max_backoff_ns >= self.rto_ns,
                "gasnex: drops require rto_ns > 0 and max_backoff_ns >= rto_ns"
            );
        }
        assert!(
            self.partition_at_ns <= self.partition_until_ns,
            "gasnex: partition window must have at_ns <= until_ns"
        );
        if self.burst_period_ns > 0 {
            assert!(
                self.burst_len_ns <= self.burst_period_ns,
                "gasnex: burst_len_ns must not exceed burst_period_ns"
            );
        }
    }
}

/// Parameters of the simulated inter-node network.
///
/// Operations between ranks on different simulated nodes are injected into a
/// delay queue and delivered no earlier than `latency_ns` (± up to
/// `jitter_ns`, deterministic per message) after injection. A latency of zero
/// still forces asynchronous completion: delivery happens at a later progress
/// poll, never synchronously during initiation — exactly the property the
/// paper's off-node operations have.
///
/// With [`ClockMode::Virtual`] and a [`FaultPlan`], the network becomes a
/// deterministic adversary: drops, duplicates, reordering, burst delays and
/// partition windows all replay identically for the same seed.
#[derive(Clone, Copy, Debug)]
pub struct NetConfig {
    /// Base one-way latency in nanoseconds.
    pub latency_ns: u64,
    /// Maximum additional deterministic jitter in nanoseconds.
    pub jitter_ns: u64,
    /// Time source for due-time computation and delivery.
    pub clock: ClockMode,
    /// Optional seeded fault-injection plan (chaos mode).
    pub faults: Option<FaultPlan>,
}

impl Default for NetConfig {
    fn default() -> Self {
        // Roughly EDR InfiniBand-scale small-message latency.
        NetConfig {
            latency_ns: 1_500,
            jitter_ns: 0,
            clock: ClockMode::Wall,
            faults: None,
        }
    }
}

impl NetConfig {
    /// Switch to the deterministic virtual clock.
    pub fn with_virtual_clock(mut self) -> Self {
        self.clock = ClockMode::Virtual;
        self
    }

    /// Attach a fault plan (validating it first).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        plan.validate();
        self.faults = Some(plan);
        self
    }

    /// A chaos configuration: virtual clock plus the given fault plan, with
    /// default latency and enough jitter to exercise tie-breaking.
    pub fn chaos(plan: FaultPlan) -> Self {
        NetConfig {
            jitter_ns: 700,
            ..NetConfig::default()
        }
        .with_virtual_clock()
        .with_faults(plan)
    }
}

/// Default notification words per rank — plenty for a badge-per-peer
/// scheme on small worlds while keeping the table allocation trivial.
pub const DEFAULT_NOTIFY_WORDS: usize = 16;

/// Configuration of a `gasnex` world.
#[derive(Clone, Debug)]
pub struct GasnexConfig {
    /// Total number of ranks (SPMD "processes", realized as threads).
    pub ranks: usize,
    /// Number of ranks per simulated node. Ranks `[k*n, (k+1)*n)` form node
    /// `k`. Must evenly divide or exceed `ranks` shape constraints are not
    /// required; the last node may be ragged.
    pub ranks_per_node: usize,
    /// Size in bytes of each rank's shared segment.
    pub segment_size: usize,
    /// Conduit flavor (locality assumptions).
    pub conduit: ConduitKind,
    /// Wire implementation carrying cross-node deliveries.
    pub transport: Transport,
    /// Network parameters (only used when more than one node).
    pub net: NetConfig,
    /// Sender-side aggregation knob for fine-grained cross-node ops.
    pub agg: crate::aggregate::AggConfig,
    /// Notification words per rank for put-with-signal badge coalescing.
    pub notify_words: usize,
}

impl GasnexConfig {
    /// Single-node SMP configuration with `ranks` ranks and a default
    /// 8 MiB-per-rank segment.
    pub fn smp(ranks: usize) -> Self {
        GasnexConfig {
            ranks,
            ranks_per_node: ranks.max(1),
            segment_size: 8 << 20,
            conduit: ConduitKind::Smp,
            transport: Transport::Sim,
            net: NetConfig::default(),
            agg: crate::aggregate::AggConfig::default(),
            notify_words: DEFAULT_NOTIFY_WORDS,
        }
    }

    /// Multi-node configuration over the UDP conduit stand-in.
    pub fn udp(ranks: usize, ranks_per_node: usize) -> Self {
        GasnexConfig {
            ranks,
            ranks_per_node: ranks_per_node.max(1),
            segment_size: 8 << 20,
            conduit: ConduitKind::Udp,
            transport: Transport::Sim,
            net: NetConfig::default(),
            agg: crate::aggregate::AggConfig::default(),
            notify_words: DEFAULT_NOTIFY_WORDS,
        }
    }

    /// Multi-node configuration over the MPI conduit stand-in.
    pub fn mpi(ranks: usize, ranks_per_node: usize) -> Self {
        GasnexConfig {
            conduit: ConduitKind::Mpi,
            ..Self::udp(ranks, ranks_per_node)
        }
    }

    /// Select the wire implementation ([`Transport::Sim`] by default).
    pub fn with_transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Override the per-rank segment size in bytes.
    pub fn with_segment_size(mut self, bytes: usize) -> Self {
        self.segment_size = bytes;
        self
    }

    /// Override the simulated network parameters.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Override the sender-side aggregation knob (validating it first).
    pub fn with_agg(mut self, agg: crate::aggregate::AggConfig) -> Self {
        agg.validate();
        self.agg = agg;
        self
    }

    /// Override the number of notification words per rank.
    pub fn with_notify_words(mut self, words: usize) -> Self {
        self.notify_words = words;
        self
    }

    /// Number of simulated nodes implied by this configuration.
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// Validate the configuration, panicking with a descriptive message on
    /// nonsensical parameters.
    pub fn validate(&self) {
        assert!(self.ranks > 0, "gasnex: world must have at least one rank");
        self.agg.validate();
        assert!(
            self.ranks_per_node > 0,
            "gasnex: ranks_per_node must be positive"
        );
        assert!(
            self.segment_size >= 64,
            "gasnex: segment must be at least 64 bytes, got {}",
            self.segment_size
        );
        assert!(
            self.notify_words >= 1,
            "gasnex: notify_words must be at least 1 (wait_signal needs a word)"
        );
        if self.conduit.single_node_only() {
            assert!(
                self.nodes() == 1,
                "gasnex: SMP conduit supports a single node, but {} ranks with \
                 {} ranks/node gives {} nodes",
                self.ranks,
                self.ranks_per_node,
                self.nodes()
            );
        }
        if self.transport == Transport::UdpSocket {
            // Real sockets cannot be time-warped: the virtual clock only
            // advances by time-warping to the earliest *simulated* due
            // time, which a kernel wire does not expose. Byte-replayable
            // chaos runs stay on the simulated transport.
            assert!(
                self.net.clock == ClockMode::Wall,
                "gasnex: Transport::UdpSocket cannot run under ClockMode::Virtual — \
                 real sockets cannot be time-warped; use Transport::Sim for \
                 virtual-clock chaos replay"
            );
            if let Some(plan) = &self.net.faults {
                assert!(
                    plan.reorder_ppm == 0
                        && plan.burst_period_ns == 0
                        && plan.partition_until_ns == 0,
                    "gasnex: Transport::UdpSocket supports only drop/dup fault fates \
                     (deliberate packet loss and duplication); reorder/burst/partition \
                     schedules require Transport::Sim"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smp_is_one_node() {
        let c = GasnexConfig::smp(16);
        c.validate();
        assert_eq!(c.nodes(), 1);
        assert!(c.conduit.single_node_only());
    }

    #[test]
    fn udp_node_count_rounds_up() {
        let c = GasnexConfig::udp(10, 4);
        c.validate();
        assert_eq!(c.nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "SMP conduit supports a single node")]
    fn smp_multinode_rejected() {
        let mut c = GasnexConfig::smp(8);
        c.ranks_per_node = 2;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        GasnexConfig::smp(0).validate();
    }

    #[test]
    fn builders_apply() {
        let c = GasnexConfig::udp(4, 2)
            .with_segment_size(1 << 16)
            .with_net(NetConfig {
                latency_ns: 10,
                jitter_ns: 5,
                ..NetConfig::default()
            });
        assert_eq!(c.segment_size, 1 << 16);
        assert_eq!(c.net.latency_ns, 10);
        assert_eq!(c.net.jitter_ns, 5);
        assert_eq!(c.net.clock, ClockMode::Wall);
        assert!(c.net.faults.is_none());
    }

    #[test]
    fn fault_plan_builders_compose() {
        let p = FaultPlan::seeded(42)
            .with_drops(100_000)
            .with_dups(50_000)
            .with_reorder(80_000, 4_000)
            .with_burst(10_000, 2_000, 5_000)
            .with_partition(20_000, 60_000)
            .with_retry(1_000, 8_000, 5);
        p.validate();
        assert_eq!(p.seed, 42);
        assert_eq!(p.drop_ppm, 100_000);
        assert_eq!(p.max_attempts, 5);
        let c = NetConfig::chaos(p);
        assert_eq!(c.clock, ClockMode::Virtual);
        assert_eq!(c.faults, Some(p));
    }

    #[test]
    #[should_panic(expected = "parts-per-million")]
    fn fault_plan_rejects_over_unit_probability() {
        FaultPlan::seeded(1).with_drops(1_500_000).validate();
    }

    #[test]
    #[should_panic(expected = "rto_ns > 0")]
    fn fault_plan_drops_require_retry_timer() {
        FaultPlan::seeded(1)
            .with_drops(10_000)
            .with_retry(0, 0, 4)
            .validate();
    }

    #[test]
    fn notify_words_default_and_override() {
        let c = GasnexConfig::udp(4, 2);
        c.validate();
        assert_eq!(c.notify_words, DEFAULT_NOTIFY_WORDS);
        let c = c.with_notify_words(3);
        c.validate();
        assert_eq!(c.notify_words, 3);
    }

    #[test]
    #[should_panic(expected = "notify_words must be at least 1")]
    fn zero_notify_words_rejected() {
        GasnexConfig::smp(1).with_notify_words(0).validate();
    }

    #[test]
    fn udp_socket_transport_with_wall_clock_is_valid() {
        let c = GasnexConfig::udp(4, 2)
            .with_transport(Transport::UdpSocket)
            .with_net(NetConfig::default().with_faults(FaultPlan::seeded(1).with_drops(10_000)));
        c.validate();
        assert_eq!(c.transport, Transport::UdpSocket);
    }

    #[test]
    #[should_panic(expected = "cannot be time-warped")]
    fn udp_socket_transport_rejects_virtual_clock() {
        GasnexConfig::udp(4, 2)
            .with_transport(Transport::UdpSocket)
            .with_net(NetConfig::default().with_virtual_clock())
            .validate();
    }

    #[test]
    #[should_panic(expected = "only drop/dup fault fates")]
    fn udp_socket_transport_rejects_reorder_fates() {
        GasnexConfig::udp(4, 2)
            .with_transport(Transport::UdpSocket)
            .with_net(
                NetConfig::default().with_faults(FaultPlan::seeded(1).with_reorder(10_000, 1_000)),
            )
            .validate();
    }
}
