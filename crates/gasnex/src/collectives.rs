//! Team collectives: barrier, broadcast, reductions.
//!
//! These serve the roles the paper's applications delegate to MPI
//! collectives (data initialization, timing fences, result verification).
//! All collectives poll a caller-supplied progress closure while waiting, so
//! outstanding AMs and network deliveries continue to drain — required to
//! avoid deadlock when a rank enters a barrier while peers still depend on
//! its progress engine.

use std::any::Any;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use std::sync::Mutex;

/// Collective state for one team.
pub struct TeamColl {
    /// Generation-counting sense barrier.
    bar_gen: AtomicU64,
    bar_count: AtomicUsize,
    /// Broadcast slot (valid between the two barriers of a broadcast).
    bcast: Mutex<Option<Box<dyn Any + Send>>>,
    /// Per-member reduction contributions (u64 bit patterns).
    contrib: Box<[AtomicU64]>,
    /// Number of completed splits of this team (see `World::split_team`).
    split_epoch: AtomicU64,
    /// Per-member asynchronous-barrier arrival counts (monotonic epochs).
    async_arrivals: Box<[AtomicU64]>,
}

impl TeamColl {
    pub fn new(size: usize) -> Self {
        TeamColl {
            bar_gen: AtomicU64::new(0),
            bar_count: AtomicUsize::new(0),
            bcast: Mutex::new(None),
            contrib: (0..size).map(|_| AtomicU64::new(0)).collect(),
            split_epoch: AtomicU64::new(0),
            async_arrivals: (0..size).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Record one asynchronous-barrier arrival for member `me_idx`,
    /// returning the epoch this arrival belongs to (1-based).
    pub fn async_arrive(&self, me_idx: usize) -> u64 {
        self.async_arrivals[me_idx].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Whether every member has arrived at async-barrier epoch `epoch`.
    pub fn async_epoch_complete(&self, size: usize, epoch: u64) -> bool {
        self.async_arrivals[..size]
            .iter()
            .all(|a| a.load(Ordering::Acquire) >= epoch)
    }

    /// Current split epoch (advanced once per completed collective split).
    pub fn split_epoch(&self) -> u64 {
        self.split_epoch.load(Ordering::Acquire)
    }

    /// Advance the split epoch (exactly one member, barrier-protected).
    pub fn advance_split_epoch(&self) {
        self.split_epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// All-gather of u64 bit patterns: returns every member's contribution
    /// indexed by team rank. `me_idx` is the caller's index in the team.
    pub fn exchange(
        &self,
        size: usize,
        me_idx: usize,
        bits: u64,
        poll: &mut dyn FnMut(),
    ) -> Vec<u64> {
        self.contrib[me_idx].store(bits, Ordering::Release);
        self.barrier(size, poll);
        let out: Vec<u64> = self.contrib[..size]
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .collect();
        self.barrier(size, poll);
        out
    }

    /// Barrier across `size` participants. `poll` is invoked while waiting.
    pub fn barrier(&self, size: usize, poll: &mut dyn FnMut()) {
        let gen = self.bar_gen.load(Ordering::Acquire);
        if self.bar_count.fetch_add(1, Ordering::AcqRel) + 1 == size {
            // Last arriver releases everyone and resets for the next round.
            self.bar_count.store(0, Ordering::Relaxed);
            self.bar_gen.store(gen.wrapping_add(1), Ordering::Release);
        } else {
            while self.bar_gen.load(Ordering::Acquire) == gen {
                poll();
                // Yield between polls: with ranks oversubscribed on few
                // cores (the common CI case), pure spinning starves the
                // ranks that could release the barrier.
                std::thread::yield_now();
            }
        }
    }

    /// Broadcast `val` from the team member with `is_root` set. Every member
    /// must call with the same `size`; exactly one may pass `Some(val)`.
    pub fn broadcast<T: Clone + Send + 'static>(
        &self,
        size: usize,
        root_val: Option<T>,
        poll: &mut dyn FnMut(),
    ) -> T {
        if let Some(v) = root_val {
            *self.bcast.lock().unwrap() = Some(Box::new(v));
        }
        self.barrier(size, poll);
        let out = {
            let slot = self.bcast.lock().unwrap();
            let any = slot.as_ref().expect("broadcast: no root provided a value");
            any.downcast_ref::<T>()
                .expect("broadcast type mismatch")
                .clone()
        };
        // Second barrier: nobody may start the next broadcast (overwriting
        // the slot) until everyone has copied out.
        self.barrier(size, poll);
        out
    }

    /// All-reduce over u64 bit patterns with a caller-supplied fold.
    /// `me_idx` is the caller's index within the team.
    pub fn allreduce(
        &self,
        size: usize,
        me_idx: usize,
        bits: u64,
        f: &dyn Fn(u64, u64) -> u64,
        poll: &mut dyn FnMut(),
    ) -> u64 {
        self.contrib[me_idx].store(bits, Ordering::Release);
        self.barrier(size, poll);
        let mut acc = self.contrib[0].load(Ordering::Acquire);
        for c in &self.contrib[1..size] {
            acc = f(acc, c.load(Ordering::Acquire));
        }
        // Keep contributions stable until everyone has folded.
        self.barrier(size, poll);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn barrier_synchronizes_threads() {
        let coll = Arc::new(TeamColl::new(4));
        let flag = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let coll = Arc::clone(&coll);
            let flag = Arc::clone(&flag);
            handles.push(std::thread::spawn(move || {
                for round in 0..100 {
                    flag.fetch_add(1, Ordering::SeqCst);
                    coll.barrier(4, &mut || std::thread::yield_now());
                    // After the barrier, all four increments of this round
                    // must be visible.
                    assert!(flag.load(Ordering::SeqCst) >= 4 * (round + 1));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(flag.load(Ordering::SeqCst), 400);
    }

    #[test]
    fn broadcast_delivers_to_all() {
        let coll = Arc::new(TeamColl::new(3));
        let mut handles = Vec::new();
        for t in 0..3usize {
            let coll = Arc::clone(&coll);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for round in 0..10u64 {
                    let root_val = (t == (round % 3) as usize).then(|| round * 100);
                    got.push(coll.broadcast(3, root_val, &mut || std::thread::yield_now()));
                }
                got
            }));
        }
        let results: Vec<Vec<u64>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            assert_eq!(*r, (0..10u64).map(|x| x * 100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn allreduce_sum_and_max() {
        let coll = Arc::new(TeamColl::new(4));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let coll = Arc::clone(&coll);
            handles.push(std::thread::spawn(move || {
                let sum = coll.allreduce(4, t as usize, t + 1, &|a, b| a + b, &mut || {});
                let max = coll.allreduce(4, t as usize, t * 7, &|a, b| a.max(b), &mut || {});
                (sum, max)
            }));
        }
        for h in handles {
            let (sum, max) = h.join().unwrap();
            assert_eq!(sum, 10);
            assert_eq!(max, 21);
        }
    }
}
