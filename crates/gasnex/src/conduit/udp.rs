//! Real-socket conduit: loopback UDP datagrams between per-node sockets.
//!
//! One nonblocking `std::net::UdpSocket` is bound per simulated node
//! (127.0.0.1, ephemeral port); ranks stay threads, but every cross-node
//! delivery is carried by an actual datagram through the kernel's loopback
//! path. The reliability machinery is the same design the simulator
//! models — sender-side retransmission with bounded exponential backoff,
//! receiver-side dedup — run over a wire that can genuinely drop (socket
//! buffer overflow) and reorder, so delivering the same digests as the
//! simulator is evidence the runtime above is transport-independent.
//!
//! # Wire protocol
//!
//! A 26-byte frame, little-endian fields:
//!
//! ```text
//! [0]      magic      0xC7
//! [1]      kind       1 = DATA, 2 = ACK, 3 = SIGNAL
//! [2..10]  msg  u64   logical message id (Conduit::inject_to return)
//! [10..14] attempt u32 transmission attempt, 0-based
//! [14..18] src_node u32 sender's node index (ACK destination)
//! [18..26] lclock u64 sender's Lamport stamp (causal tracing; 0 untraced)
//! ```
//!
//! The `lclock` field (the PR-9 frame-format bump from 18 to 26 bytes) is
//! the sender's logical clock at injection, constant across
//! retransmissions — the resend is the same logical send. The receiver
//! merges it into the destination rank's clock (`max(local, remote) + 1`)
//! before executing the parked action, so causal stamps cross the real
//! wire the same way they cross the simulator.
//!
//! A SIGNAL frame is a DATA frame whose parked action carries a
//! notification badge (put/amo-with-signal): it rides the identical
//! ack/retransmit/dedup flights, so badge coalescing at the target happens
//! exactly once per signal op no matter what the wire did to the frame.
//!
//! A DATA frame carries no payload bytes: delivery actions are closures and
//! cannot cross the wire, so the action is parked in a shared table keyed by
//! `msg` before the datagram is sent, and the frame's arrival is what
//! triggers its execution. What the wire proves is therefore the *control*
//! path — which messages complete, when, in what order, after how many
//! retries — which is exactly the part the eager-vs-deferred comparison is
//! about. (The multi-process runner in `simtest` complements this with a
//! protocol whose payloads really do cross process boundaries.)
//!
//! # Reliability
//!
//! * The sender records every transmission in `unacked` with a
//!   retransmission deadline. Deadline passes without an ACK → resend with
//!   `attempt + 1` and a backoff doubled up to the plan's cap (counted in
//!   `retries`).
//! * The receiver executes a DATA frame's action iff `msg` is still in the
//!   payload table; taking the entry out *is* the dedup — a retransmitted
//!   or duplicated frame finds the table empty, is counted as
//!   `dup_suppressed`, and is re-ACKed (the original ACK may have been the
//!   lost packet). No unbounded seen-set is needed.
//! * An ACK removes the `unacked` entry. ACKs are not themselves acked;
//!   a lost ACK surfaces as a retransmission plus a suppressed dup.
//!
//! # Fault injection on a real wire
//!
//! Only the fates that real packet handling can express are supported:
//! deliberate **drops** (skip the `send_to`; the retransmission path
//! recovers, same as the simulator's timer) and **duplicates** (send the
//! frame twice; receiver dedup suppresses one). Both use the same seeded
//! `mix(msg, attempt, salt)` fates as `SimNetwork`. Reorder/burst/partition
//! schedules and the virtual clock require owning time, which a kernel
//! socket does not allow — [`crate::config::GasnexConfig::validate`]
//! rejects those knobs for this transport, and the constructor enforces the
//! same contract for direct users.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::Ordering;
use std::sync::Mutex;
use std::time::Instant;

use crate::clock::LamportClocks;
use crate::conduit::{Conduit, ConduitCounters, InFlight};
use crate::config::{ClockMode, FaultPlan, NetConfig};
use crate::net::{ppm, splitmix64, NetAction, NetEventKind, NetStats, NetTraceEvent};
use crate::rank::Rank;
use crate::world::World;

const MAGIC: u8 = 0xC7;
const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
const KIND_SIGNAL: u8 = 3;
const FRAME_LEN: usize = 26;

/// Retransmission timer when no fault plan supplies one: loopback RTT is
/// tens of microseconds, so 2 ms only fires on genuine kernel-level loss.
const DEFAULT_RTO_NS: u64 = 2_000_000;
const DEFAULT_MAX_BACKOFF_NS: u64 = 64_000_000;

#[derive(Clone, Copy)]
struct Frame {
    kind: u8,
    msg: u64,
    attempt: u32,
    src_node: u32,
    /// Sender's Lamport stamp, piggybacked on every frame (0 untraced).
    lclock: u64,
}

impl Frame {
    fn encode(&self) -> [u8; FRAME_LEN] {
        let mut b = [0u8; FRAME_LEN];
        b[0] = MAGIC;
        b[1] = self.kind;
        b[2..10].copy_from_slice(&self.msg.to_le_bytes());
        b[10..14].copy_from_slice(&self.attempt.to_le_bytes());
        b[14..18].copy_from_slice(&self.src_node.to_le_bytes());
        b[18..26].copy_from_slice(&self.lclock.to_le_bytes());
        b
    }

    fn decode(b: &[u8]) -> Option<Frame> {
        if b.len() != FRAME_LEN || b[0] != MAGIC {
            return None;
        }
        let kind = b[1];
        if kind != KIND_DATA && kind != KIND_ACK && kind != KIND_SIGNAL {
            return None;
        }
        Some(Frame {
            kind,
            msg: u64::from_le_bytes(b[2..10].try_into().ok()?),
            attempt: u32::from_le_bytes(b[10..14].try_into().ok()?),
            src_node: u32::from_le_bytes(b[14..18].try_into().ok()?),
            lclock: u64::from_le_bytes(b[18..26].try_into().ok()?),
        })
    }
}

/// A sent-but-unacked transmission awaiting its retransmission deadline.
/// `kind` is preserved across retransmissions so a resent SIGNAL frame
/// stays a SIGNAL frame.
#[derive(Clone, Copy)]
struct Flight {
    from_node: usize,
    to_node: usize,
    attempt: u32,
    due_ns: u64,
    kind: u8,
    /// Rank route recorded at injection (when the initiator supplied one),
    /// surfaced by `inflight()` for stall diagnosis.
    route: Option<(u32, u32)>,
    /// Lamport stamp from injection, resent unchanged on every attempt.
    lclock: u64,
}

/// A delivery action parked until its DATA frame arrives, together with
/// the destination rank the receiver-side Lamport merge targets.
struct Parked {
    dst_rank: Option<u32>,
    action: NetAction,
}

/// The loopback-UDP [`Conduit`].
pub struct UdpConduit {
    cfg: NetConfig,
    epoch: Instant,
    ranks_per_node: u32,
    /// One socket per simulated node, all nonblocking, plus each socket's
    /// bound address (ACK and DATA destinations).
    sockets: Vec<UdpSocket>,
    addrs: Vec<SocketAddr>,
    /// Delivery actions parked before their DATA frame is sent; removal on
    /// arrival doubles as receiver-side dedup.
    payloads: Mutex<HashMap<u64, Parked>>,
    /// Transmissions awaiting an ACK, keyed by message id.
    unacked: Mutex<HashMap<u64, Flight>>,
    /// One rank drains sockets at a time; losers take the busy-hint path.
    poll_gate: Mutex<()>,
    ctr: ConduitCounters,
    /// Shared per-rank Lamport clocks: ticked at injection, merged at
    /// delivery — only while tracing is on.
    clocks: std::sync::Arc<LamportClocks>,
}

impl UdpConduit {
    /// Bind one loopback socket per simulated node.
    ///
    /// # Panics
    ///
    /// Panics if the config asks for [`ClockMode::Virtual`] or for fault
    /// fates a real socket cannot express (reorder, burst, partition) —
    /// the same contract `GasnexConfig::validate` enforces — or if binding
    /// a loopback socket fails.
    pub fn new(
        cfg: NetConfig,
        ranks: u32,
        ranks_per_node: u32,
        clocks: std::sync::Arc<LamportClocks>,
    ) -> Self {
        assert!(
            cfg.clock == ClockMode::Wall,
            "UDP conduit: real sockets cannot be time-warped; use ClockMode::Wall \
             (virtual-clock chaos replay is simulator-only)"
        );
        if let Some(plan) = &cfg.faults {
            plan.validate();
            assert!(
                plan.reorder_ppm == 0 && plan.burst_period_ns == 0 && plan.partition_until_ns == 0,
                "UDP conduit: only drop/dup fault fates are expressible on a real wire; \
                 reorder/burst/partition schedules require the simulated transport"
            );
        }
        let nodes = ranks.div_ceil(ranks_per_node).max(1) as usize;
        let mut sockets = Vec::with_capacity(nodes);
        let mut addrs = Vec::with_capacity(nodes);
        for node in 0..nodes {
            let s = UdpSocket::bind("127.0.0.1:0")
                .unwrap_or_else(|e| panic!("UDP conduit: bind node {node} socket: {e}"));
            s.set_nonblocking(true)
                .expect("UDP conduit: set_nonblocking");
            addrs.push(s.local_addr().expect("UDP conduit: local_addr"));
            sockets.push(s);
        }
        UdpConduit {
            cfg,
            epoch: Instant::now(),
            ranks_per_node,
            sockets,
            addrs,
            payloads: Mutex::new(HashMap::new()),
            unacked: Mutex::new(HashMap::new()),
            poll_gate: Mutex::new(()),
            ctr: ConduitCounters::new(std::sync::Arc::clone(&clocks)),
            clocks,
        }
    }

    /// The bound address of each node's socket (multi-process tooling hook).
    pub fn node_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    fn node_of(&self, r: Rank) -> usize {
        (r.0 / self.ranks_per_node) as usize % self.sockets.len()
    }

    /// Same deterministic fate hash as the simulator.
    fn mix(&self, msg: u64, attempt: u32, salt: u64) -> u64 {
        let seed = self.cfg.faults.map_or(0, |f| f.seed);
        splitmix64(splitmix64(splitmix64(seed ^ msg) ^ u64::from(attempt)) ^ salt)
    }

    fn rto_ns(&self, attempt: u32) -> u64 {
        let (rto, cap) = self
            .cfg
            .faults
            .map_or((DEFAULT_RTO_NS, DEFAULT_MAX_BACKOFF_NS), |p| {
                (p.rto_ns, p.max_backoff_ns)
            });
        rto.saturating_mul(1u64 << attempt.min(32)).min(cap).max(1)
    }

    /// Transmit attempt `attempt` of `msg` from `from_node` to `to_node`,
    /// applying the deliberate drop/dup fates, and arm (or re-arm) its
    /// retransmission deadline.
    #[allow(clippy::too_many_arguments)]
    fn send_attempt(
        &self,
        msg: u64,
        attempt: u32,
        from_node: usize,
        to_node: usize,
        kind: u8,
        route: Option<(u32, u32)>,
        lclock: u64,
    ) {
        let plan: Option<&FaultPlan> = self.cfg.faults.as_ref();
        let drop_this = plan.is_some_and(|p| {
            attempt + 1 < p.max_attempts && ppm(self.mix(msg, attempt, 1)) < p.drop_ppm
        });
        let backoff = self.rto_ns(attempt);
        if drop_this {
            // Deliberate loss: never hand the frame to the kernel; the
            // retransmission deadline recovers it, just like the
            // simulator's drop-to-timer conversion.
            self.ctr.note_drop(backoff);
            self.trace_event(
                msg,
                attempt,
                NetEventKind::Drop {
                    backoff_ns: backoff,
                },
                lclock,
            );
        } else {
            let frame = Frame {
                kind,
                msg,
                attempt,
                src_node: from_node as u32,
                lclock,
            }
            .encode();
            let copies = if plan.is_some_and(|p| ppm(self.mix(msg, attempt, 4)) < p.dup_ppm) {
                2
            } else {
                1
            };
            for _ in 0..copies {
                // WouldBlock = the destination's socket buffer is full;
                // treat it as wire loss and let retransmission recover.
                let _ = self.sockets[from_node].send_to(&frame, self.addrs[to_node]);
            }
        }
        self.unacked.lock().unwrap().insert(
            msg,
            Flight {
                from_node,
                to_node,
                attempt,
                due_ns: self.now_wall_ns() + backoff,
                kind,
                route,
                lclock,
            },
        );
    }

    fn now_wall_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Drain one node socket, executing DATA deliveries and retiring ACKs.
    fn drain_socket(&self, node: usize, world: &World) -> usize {
        let mut work = 0;
        let mut buf = [0u8; 64];
        loop {
            let (len, _peer) = match self.sockets[node].recv_from(&mut buf) {
                Ok(r) => r,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            };
            let Some(frame) = Frame::decode(&buf[..len]) else {
                continue;
            };
            match frame.kind {
                // A SIGNAL frame is handled exactly like DATA — the badge
                // post lives inside the parked action, and the
                // take-from-table dedup is what makes it coalesce once.
                KIND_DATA | KIND_SIGNAL => {
                    work += 1;
                    let parked = self.payloads.lock().unwrap().remove(&frame.msg);
                    // ACK first (either way): if our earlier ACK was lost
                    // the sender is still retransmitting and needs another.
                    let ack = Frame {
                        kind: KIND_ACK,
                        msg: frame.msg,
                        attempt: frame.attempt,
                        src_node: node as u32,
                        lclock: 0,
                    }
                    .encode();
                    let _ = self.sockets[node]
                        .send_to(&ack, self.addrs[frame.src_node as usize % self.addrs.len()]);
                    match parked {
                        Some(parked) => {
                            // Lamport receive: merge the stamp the frame
                            // actually carried across the kernel into the
                            // destination rank's clock before the action
                            // runs.
                            let merged = if self.ctr.tracing() {
                                self.clocks
                                    .merge(self.clocks.slot_for(parked.dst_rank), frame.lclock)
                            } else {
                                0
                            };
                            self.trace_event(
                                frame.msg,
                                frame.attempt,
                                NetEventKind::Deliver,
                                merged,
                            );
                            (parked.action)(world);
                            self.ctr.note_delivered();
                            self.ctr.pending_len.fetch_sub(1, Ordering::SeqCst);
                        }
                        None => {
                            // Absent from the table = already executed: a
                            // duplicated frame or a retransmission whose
                            // original got through.
                            self.trace_event(
                                frame.msg,
                                frame.attempt,
                                NetEventKind::DupDiscard,
                                frame.lclock,
                            );
                            self.ctr.note_dup_suppressed();
                        }
                    }
                }
                KIND_ACK => {
                    self.unacked.lock().unwrap().remove(&frame.msg);
                }
                _ => {}
            }
        }
        work
    }

    /// Resend every flight whose retransmission deadline has passed.
    fn retransmit_due(&self) -> usize {
        let now = self.now_wall_ns();
        let due: Vec<(u64, Flight)> = {
            let unacked = self.unacked.lock().unwrap();
            unacked
                .iter()
                .filter(|(_, f)| f.due_ns <= now)
                .map(|(&msg, f)| (msg, *f))
                .collect()
        };
        let n = due.len();
        for (msg, f) in due {
            self.ctr.note_retry();
            self.trace_event(msg, f.attempt + 1, NetEventKind::Retry, f.lclock);
            self.send_attempt(
                msg,
                f.attempt + 1,
                f.from_node,
                f.to_node,
                f.kind,
                f.route,
                f.lclock,
            );
        }
        n
    }

    /// Shared injection path: park the payload, then put attempt 0 of a
    /// `kind` frame on the wire.
    fn inject_kind(&self, route: Option<(Rank, Rank)>, action: NetAction, kind: u8) -> u64 {
        let msg = self.ctr.next_msg();
        self.ctr.pending_len.fetch_add(1, Ordering::SeqCst);
        let route = route.map(|(s, t)| (s.0, t.0));
        // Lamport send event: tick the injecting rank's clock; the stamp
        // rides every frame of this message (tracing-gated).
        let lclock = if self.ctr.tracing() {
            self.clocks
                .tick(self.clocks.slot_for(route.map(|(s, _)| s)))
        } else {
            0
        };
        self.trace_event(msg, 0, NetEventKind::Inject, lclock);
        let nodes = self.sockets.len() as u64;
        let (from_node, to_node) = match route {
            Some((from, to)) => (self.node_of(Rank(from)), self.node_of(Rank(to))),
            // No hint: spread deterministically so unrouted traffic still
            // exercises the wire between distinct sockets.
            None => ((msg % nodes) as usize, ((msg + 1) % nodes) as usize),
        };
        // Park the payload (and the merge target) before the frame can
        // possibly arrive.
        self.payloads.lock().unwrap().insert(
            msg,
            Parked {
                dst_rank: route.map(|(_, t)| t),
                action,
            },
        );
        self.send_attempt(msg, 0, from_node, to_node, kind, route, lclock);
        // New traffic: prod a parked progress thread (no-op when unarmed).
        self.ctr.wake();
        msg
    }
}

impl Conduit for UdpConduit {
    fn inject_to(&self, route: Option<(Rank, Rank)>, action: NetAction) -> u64 {
        self.inject_kind(route, action, KIND_DATA)
    }

    /// Signal-carrying injection: a SIGNAL frame on the same
    /// ack/retransmit/dedup flights as DATA, plus the signal counter.
    fn inject_signal_to(&self, route: Option<(Rank, Rank)>, action: NetAction) -> u64 {
        self.ctr.note_signal();
        self.inject_kind(route, action, KIND_SIGNAL)
    }

    fn poll(&self, world: &World) -> usize {
        let _gate = match self.poll_gate.try_lock() {
            Ok(g) => g,
            Err(_) => {
                std::thread::yield_now();
                match self.poll_gate.try_lock() {
                    Ok(g) => g,
                    Err(_) => {
                        self.ctr.note_contended_poll();
                        return usize::from(self.ctr.pending() > 0);
                    }
                }
            }
        };
        let mut work = 0;
        for node in 0..self.sockets.len() {
            work += self.drain_socket(node, world);
        }
        work += self.retransmit_due();
        work
    }

    /// Wall clock only: a kernel socket cannot be time-warped.
    fn now_ns(&self) -> u64 {
        self.now_wall_ns()
    }

    fn injected(&self) -> u64 {
        self.ctr.injected()
    }

    fn delivered(&self) -> u64 {
        self.ctr.delivered()
    }

    fn pending(&self) -> usize {
        self.ctr.pending()
    }

    fn stats(&self) -> NetStats {
        self.ctr.stats()
    }

    fn reset_stats(&self) {
        self.ctr.reset_stats();
    }

    fn set_tracing(&self, on: bool) {
        self.ctr.set_tracing(on);
    }

    fn tracing(&self) -> bool {
        self.ctr.tracing()
    }

    fn take_trace(&self) -> Vec<NetTraceEvent> {
        self.ctr.take_trace()
    }

    fn peek_trace(&self) -> Vec<NetTraceEvent> {
        self.ctr.peek_trace()
    }

    /// Every sent-but-unacked flight, in ascending `msg` order. An entry's
    /// `retransmit` flag is true once at least one resend happened.
    fn inflight(&self) -> Vec<InFlight> {
        let unacked = self.unacked.lock().unwrap();
        let mut out: Vec<InFlight> = unacked
            .iter()
            .map(|(&msg, f)| InFlight {
                msg,
                attempt: f.attempt,
                retransmit: f.attempt > 0,
                due_ns: f.due_ns,
                route: f.route,
            })
            .collect();
        out.sort_by_key(|f| (f.msg, f.due_ns));
        out
    }

    fn trace_event(&self, msg: u64, attempt: u32, kind: NetEventKind, lclock: u64) {
        if self.ctr.tracing() {
            self.ctr
                .trace_event(self.now_wall_ns(), msg, attempt, kind, lclock);
        }
    }

    fn clocks(&self) -> &std::sync::Arc<LamportClocks> {
        &self.clocks
    }

    fn note_batch(&self, ops: u64, reason: crate::aggregate::FlushReason) {
        self.ctr.note_batch(ops, reason);
    }

    fn note_agg_occupancy(&self, depth: usize) {
        self.ctr.note_agg_occupancy(depth);
    }

    fn set_progress_waker(&self, waker: Option<std::sync::Arc<dyn Fn() + Send + Sync>>) {
        self.ctr.set_waker(waker);
    }

    fn wake_progress(&self) {
        self.ctr.wake();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{GasnexConfig, Transport};
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    fn udp_world(faults: Option<FaultPlan>) -> Arc<World> {
        let net = NetConfig {
            faults,
            ..NetConfig::default()
        };
        World::new(
            GasnexConfig::udp(4, 2)
                .with_segment_size(1 << 12)
                .with_net(net)
                .with_transport(Transport::UdpSocket),
        )
    }

    fn drain(w: &World, n: u64) {
        let start = Instant::now();
        while w.net().delivered() < n || w.net().pending() > 0 {
            w.net().poll(w);
            assert!(
                start.elapsed().as_secs() < 10,
                "UDP conduit failed to drain: delivered {}/{n}, pending {}",
                w.net().delivered(),
                w.net().pending()
            );
        }
    }

    #[test]
    fn datagrams_deliver_actions_exactly_once() {
        let w = udp_world(None);
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..64u64 {
            let h = Arc::clone(&hits);
            w.net().inject_to(
                Some((Rank(i as u32 % 4), Rank((i as u32 + 1) % 4))),
                Box::new(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        assert_eq!(
            hits.load(Ordering::Relaxed),
            0,
            "injection must never deliver synchronously"
        );
        drain(&w, 64);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(w.net().delivered(), 64);
        assert_eq!(w.net().pending(), 0);
    }

    #[test]
    fn deliberate_drops_recover_via_retransmission() {
        let plan = FaultPlan::seeded(9)
            .with_drops(300_000)
            .with_retry(50_000, 400_000, 6);
        let w = udp_world(Some(plan));
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..128u64 {
            let h = Arc::clone(&hits);
            w.net().inject(Box::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drain(&w, 128);
        assert_eq!(hits.load(Ordering::Relaxed), 128);
        let s = w.net().stats();
        assert!(s.drops_injected > 0, "plan should have dropped frames");
        assert!(
            s.retries >= s.drops_injected,
            "every deliberate drop needs at least one retransmission"
        );
        assert!(s.max_backoff_ns >= 50_000 && s.max_backoff_ns <= 400_000);
    }

    #[test]
    fn duplicated_frames_are_suppressed() {
        let plan = FaultPlan::seeded(13).with_dups(400_000);
        let w = udp_world(Some(plan));
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..128u64 {
            let h = Arc::clone(&hits);
            w.net().inject(Box::new(move |_| {
                h.fetch_add(1, Ordering::Relaxed);
            }));
        }
        drain(&w, 128);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            128,
            "dedup must keep exactly-once execution"
        );
        assert!(
            w.net().stats().dup_suppressed > 0,
            "plan should have duplicated frames"
        );
    }

    #[test]
    fn virtual_clock_is_rejected() {
        let r = std::panic::catch_unwind(|| {
            UdpConduit::new(
                NetConfig::default().with_virtual_clock(),
                2,
                1,
                LamportClocks::new(2),
            )
        });
        assert!(r.is_err(), "virtual clock must be rejected");
    }

    #[test]
    fn unexpressible_fault_fates_are_rejected() {
        let plan = FaultPlan::seeded(1).with_reorder(100_000, 5_000);
        let r = std::panic::catch_unwind(|| {
            UdpConduit::new(
                NetConfig::default().with_faults(plan),
                2,
                1,
                LamportClocks::new(2),
            )
        });
        assert!(r.is_err(), "reorder fate must be rejected on a real wire");
    }

    #[test]
    fn signal_frames_survive_wire_faults_exactly_once() {
        // SIGNAL frames ride the same ack/retransmit/dedup flights as
        // DATA: under drops + dups every signal action still runs exactly
        // once, and the signal counter sees every injection.
        let plan = FaultPlan::seeded(29)
            .with_drops(250_000)
            .with_dups(300_000)
            .with_retry(50_000, 400_000, 6);
        let w = udp_world(Some(plan));
        let hits = Arc::new(AtomicU64::new(0));
        for i in 0..96u64 {
            let h = Arc::clone(&hits);
            w.net().inject_signal_to(
                Some((Rank(i as u32 % 4), Rank((i as u32 + 1) % 4))),
                Box::new(move |_| {
                    h.fetch_add(1, Ordering::Relaxed);
                }),
            );
        }
        drain(&w, 96);
        assert_eq!(
            hits.load(Ordering::Relaxed),
            96,
            "signal delivery must stay exactly-once under wire faults"
        );
        let s = w.net().stats();
        assert_eq!(s.signals, 96);
        assert!(s.drops_injected > 0, "plan should have dropped frames");
    }

    #[test]
    fn frame_roundtrip() {
        let f = Frame {
            kind: KIND_DATA,
            msg: 0xDEAD_BEEF_0123,
            attempt: 7,
            src_node: 3,
            lclock: 0x0123_4567_89AB_CDEF,
        };
        let d = Frame::decode(&f.encode()).expect("roundtrip");
        assert_eq!(d.kind, KIND_DATA);
        assert_eq!(d.msg, 0xDEAD_BEEF_0123);
        assert_eq!(d.attempt, 7);
        assert_eq!(d.src_node, 3);
        assert_eq!(d.lclock, 0x0123_4567_89AB_CDEF);
        let sig = Frame {
            kind: KIND_SIGNAL,
            ..f
        };
        let d = Frame::decode(&sig.encode()).expect("signal roundtrip");
        assert_eq!(d.kind, KIND_SIGNAL);
        assert!(Frame::decode(&[0u8; FRAME_LEN]).is_none(), "bad magic");
        assert!(Frame::decode(&[MAGIC; 4]).is_none(), "short frame");
    }
}
