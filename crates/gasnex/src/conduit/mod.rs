//! The conduit abstraction: a transport the runtime injects delivery
//! actions into and polls for progress.
//!
//! Everything above this layer (the `World`, the aggregation coalescer,
//! the `upcr` runtime, the harnesses) speaks to the wire exclusively
//! through the [`Conduit`] trait. Two implementations exist:
//!
//! * [`SimNetwork`](crate::net::SimNetwork) — the simulated delay queue
//!   with the seeded chaos adversary and the deterministic virtual clock.
//! * [`UdpConduit`](crate::conduit::udp::UdpConduit) — real loopback
//!   `std::net::UdpSocket`s, one per simulated node, carrying a small
//!   data/ack frame protocol with retransmission and receiver-side dedup
//!   (the same reliability machinery the simulator models, run over an
//!   actually lossy wire).
//!
//! The trait contract mirrors what the quiescence protocol and the
//! observability stack already relied on:
//!
//! * [`Conduit::inject_to`] never executes the action synchronously —
//!   delivery always happens at a later [`Conduit::poll`], so off-node
//!   operations always take the deferred-notification path.
//! * `injected() == delivered() && pending() == 0` means no delivery
//!   action is buffered or mid-flight anywhere in the transport.
//! * Counters are monotonic and lock-free to read; [`Conduit::stats`]
//!   and [`Conduit::now_ns`] never contend with a delivery in progress.

pub mod udp;

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::aggregate::FlushReason;
use crate::clock::LamportClocks;
use crate::net::{NetAction, NetEventKind, NetStats, NetTraceEvent};
use crate::rank::Rank;
use crate::world::World;

/// A point-in-time view of one message the transport still owes a
/// delivery for: queued, mid-retransmission, or a duplicate copy.
///
/// Produced by [`Conduit::inflight`] for the live-snapshot API. The
/// fields describe the *reliability* state — how many transmission
/// attempts have happened and when the transport will next act on the
/// message — not the payload, which is an opaque delivery action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InFlight {
    /// Logical message id (allocation order).
    pub msg: u64,
    /// Transmission attempts so far (0 = first attempt still pending).
    pub attempt: u32,
    /// Whether this entry is a retransmission timer for a dropped
    /// attempt (true) or a copy awaiting delivery (false).
    pub retransmit: bool,
    /// When the transport next acts on this entry, on the conduit clock:
    /// the delivery due time, or the retransmission backoff deadline.
    pub due_ns: u64,
    /// Routing hint recorded at injection, when the initiator supplied
    /// one: `(source rank, target rank)`.
    pub route: Option<(u32, u32)>,
}

/// A transport for cross-node delivery actions.
///
/// Implementations must be shareable across rank threads (`Send + Sync`);
/// every method takes `&self`.
pub trait Conduit: Send + Sync {
    /// Inject `action` for asynchronous delivery, optionally routed from an
    /// initiating rank to a target rank. Returns the logical message id.
    ///
    /// Routing is a hint: the simulated network keeps one global delay
    /// queue and ignores it, while the UDP conduit uses it to pick the
    /// source and destination node sockets. Injection must never run the
    /// action synchronously.
    fn inject_to(&self, route: Option<(Rank, Rank)>, action: NetAction) -> u64;

    /// [`Conduit::inject_to`] without a routing hint.
    fn inject(&self, action: NetAction) -> u64 {
        self.inject_to(None, action)
    }

    /// Inject a *signal-bearing* delivery action (a put-with-signal or
    /// amo-with-signal). Semantically identical to [`Conduit::inject_to`]
    /// — same reliability machinery, same exactly-once delivery — but the
    /// transport may mark the traffic on the wire (the UDP conduit stamps
    /// a SIGNAL frame kind) and counts it in `NetStats::signals`. The
    /// default forwards to `inject_to` uncounted, for transports that do
    /// not distinguish signal traffic.
    fn inject_signal_to(&self, route: Option<(Rank, Rank)>, action: NetAction) -> u64 {
        self.inject_to(route, action)
    }

    /// Execute due deliveries. Returns the number of work items observed
    /// (deliveries, suppressed duplicates, retransmissions), or a busy hint
    /// of 1 when another rank is mid-drain while work is outstanding.
    fn poll(&self, world: &World) -> usize;

    /// The conduit's notion of "now", in nanoseconds. Lock-free: never
    /// contends with a delivery in progress.
    fn now_ns(&self) -> u64;

    /// Logical messages injected since creation (raw, ignoring any
    /// `reset_stats` baseline — quiescence detection depends on this).
    fn injected(&self) -> u64;

    /// Logical messages delivered since creation (raw).
    fn delivered(&self) -> u64;

    /// Messages injected but not yet delivered (including retransmission
    /// timers and duplicate copies still in flight). Lock-free.
    fn pending(&self) -> usize;

    /// Snapshot every counter relative to the last [`Conduit::reset_stats`]
    /// (or creation). Lock-free: reads only atomics, so it never contends
    /// with delivery.
    fn stats(&self) -> NetStats;

    /// Re-baseline the observable counters; gauges re-prime rather than
    /// zero. Raw `injected`/`delivered` are untouched.
    fn reset_stats(&self);

    /// Enable or disable the wire-event sink.
    fn set_tracing(&self, on: bool);

    /// Whether the wire-event sink is recording.
    fn tracing(&self) -> bool;

    /// Drain the recorded wire-level trace.
    fn take_trace(&self) -> Vec<NetTraceEvent>;

    /// Copy the recorded wire-level trace *without* draining it — the
    /// flight recorder reads the ring in place so a snapshot or watchdog
    /// diagnosis never perturbs a later `take_trace`. Default: empty, for
    /// transports without a trace sink.
    fn peek_trace(&self) -> Vec<NetTraceEvent> {
        Vec::new()
    }

    /// Snapshot every message the transport still owes a delivery for, in
    /// deterministic `(msg, due_ns)` order. Default: empty, for transports
    /// that cannot enumerate their queues.
    fn inflight(&self) -> Vec<InFlight> {
        Vec::new()
    }

    /// Record one wire event with its Lamport stamp (no-op unless tracing
    /// is on).
    fn trace_event(&self, msg: u64, attempt: u32, kind: NetEventKind, lclock: u64);

    /// The shared per-rank Lamport clock bank stamping this conduit's
    /// traffic.
    fn clocks(&self) -> &std::sync::Arc<LamportClocks>;

    /// Record one aggregation batch flush of `ops` constituent operations.
    fn note_batch(&self, ops: u64, reason: FlushReason);

    /// Record a coalescer buffer depth for the occupancy high-water gauge.
    fn note_agg_occupancy(&self, depth: usize);

    /// Arm (or, with `None`, disarm) the progress-thread waker: injections
    /// into this conduit call it so a parked background progress thread
    /// notices new traffic promptly. At most one waker is armed at a time;
    /// unarmed conduits pay one relaxed load per injection.
    fn set_progress_waker(&self, waker: Option<std::sync::Arc<dyn Fn() + Send + Sync>>);

    /// Invoke the armed progress waker, if any (no-op otherwise). Exposed
    /// so layers above the conduit (callback enqueues, abort) can prod the
    /// progress thread through the same hook.
    fn wake_progress(&self);

    /// Downcast hook for tests and impl-specific tooling.
    fn as_any(&self) -> &dyn Any;
}

/// One monotonic counter per [`NetStats`] counter field.
#[derive(Default)]
struct Counters {
    injected: AtomicU64,
    delivered: AtomicU64,
    contended_polls: AtomicU64,
    retries: AtomicU64,
    drops_injected: AtomicU64,
    dup_suppressed: AtomicU64,
    dup_promoted: AtomicU64,
    batches_injected: AtomicU64,
    ops_coalesced: AtomicU64,
    flushes_size: AtomicU64,
    flushes_age: AtomicU64,
    flushes_explicit: AtomicU64,
    signals: AtomicU64,
    /// Baseline slot for the Lamport tick count: the live value is read
    /// from the shared clock bank, not from this bank, so only the
    /// baseline side of this atomic is ever written.
    lclock_ticks: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> NetStats {
        NetStats {
            injected: self.injected.load(Ordering::SeqCst),
            delivered: self.delivered.load(Ordering::SeqCst),
            pending: 0,
            contended_polls: self.contended_polls.load(Ordering::SeqCst),
            retries: self.retries.load(Ordering::SeqCst),
            drops_injected: self.drops_injected.load(Ordering::SeqCst),
            dup_suppressed: self.dup_suppressed.load(Ordering::SeqCst),
            max_backoff_ns: 0,
            dup_promoted: self.dup_promoted.load(Ordering::SeqCst),
            batches_injected: self.batches_injected.load(Ordering::SeqCst),
            ops_coalesced: self.ops_coalesced.load(Ordering::SeqCst),
            flushes_size: self.flushes_size.load(Ordering::SeqCst),
            flushes_age: self.flushes_age.load(Ordering::SeqCst),
            flushes_explicit: self.flushes_explicit.load(Ordering::SeqCst),
            agg_occupancy_highwater: 0,
            signals: self.signals.load(Ordering::SeqCst),
            lclock_ticks: self.lclock_ticks.load(Ordering::SeqCst),
        }
    }

    fn store(&self, s: &NetStats) {
        self.injected.store(s.injected, Ordering::SeqCst);
        self.delivered.store(s.delivered, Ordering::SeqCst);
        self.contended_polls
            .store(s.contended_polls, Ordering::SeqCst);
        self.retries.store(s.retries, Ordering::SeqCst);
        self.drops_injected
            .store(s.drops_injected, Ordering::SeqCst);
        self.dup_suppressed
            .store(s.dup_suppressed, Ordering::SeqCst);
        self.dup_promoted.store(s.dup_promoted, Ordering::SeqCst);
        self.batches_injected
            .store(s.batches_injected, Ordering::SeqCst);
        self.ops_coalesced.store(s.ops_coalesced, Ordering::SeqCst);
        self.flushes_size.store(s.flushes_size, Ordering::SeqCst);
        self.flushes_age.store(s.flushes_age, Ordering::SeqCst);
        self.flushes_explicit
            .store(s.flushes_explicit, Ordering::SeqCst);
        self.signals.store(s.signals, Ordering::SeqCst);
        self.lclock_ticks.store(s.lclock_ticks, Ordering::SeqCst);
    }
}

/// Counter, gauge, and trace state shared by every conduit implementation.
///
/// The stats baseline is a second bank of atomics rather than a mutex-held
/// [`NetStats`], so `stats()` and `reset_stats()` are lock-free and never
/// contend with the delivery path — the lock-granularity split: the clock
/// is atomic, the delivery queue has its own lock inside each impl, and
/// statistics touch neither.
pub(crate) struct ConduitCounters {
    live: Counters,
    /// Baseline captured by `reset_stats`; `stats()` reports live minus
    /// baseline. The live bank is never zeroed because quiescence relies on
    /// raw `injected == delivered`.
    baseline: Counters,
    /// Largest retransmission backoff applied (gauge; reset re-primes).
    pub max_backoff_ns: AtomicU64,
    /// Deepest coalescer bucket observed (gauge; reset re-primes).
    pub agg_occupancy_highwater: AtomicU64,
    /// Lock-free mirror of in-flight message count.
    pub pending_len: AtomicUsize,
    /// Wire-level trace gate: one relaxed load per recording site.
    trace_on: AtomicBool,
    /// Wire-level trace records, in recording order.
    trace: Mutex<Vec<NetTraceEvent>>,
    /// Shared Lamport clock bank: the live `lclock_ticks` value is read
    /// from here so both conduit implementations report it uniformly.
    clocks: std::sync::Arc<LamportClocks>,
    /// Whether a progress-thread waker is armed — one relaxed load gates
    /// the injection hot path when no progress thread exists.
    waker_armed: AtomicBool,
    /// The armed waker (the background progress thread's condvar prod).
    waker: Mutex<Option<std::sync::Arc<dyn Fn() + Send + Sync>>>,
}

impl ConduitCounters {
    pub fn new(clocks: std::sync::Arc<LamportClocks>) -> Self {
        ConduitCounters {
            live: Counters::default(),
            baseline: Counters::default(),
            max_backoff_ns: AtomicU64::new(0),
            agg_occupancy_highwater: AtomicU64::new(0),
            pending_len: AtomicUsize::new(0),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            clocks,
            waker_armed: AtomicBool::new(false),
            waker: Mutex::new(None),
        }
    }

    /// Arm or disarm the progress-thread waker.
    pub fn set_waker(&self, waker: Option<std::sync::Arc<dyn Fn() + Send + Sync>>) {
        let armed = waker.is_some();
        *self.waker.lock().unwrap() = waker;
        self.waker_armed.store(armed, Ordering::Release);
    }

    /// Prod the armed waker, if any. One relaxed load when unarmed.
    #[inline]
    pub fn wake(&self) {
        if self.waker_armed.load(Ordering::Relaxed) {
            let w = self.waker.lock().unwrap().clone();
            if let Some(w) = w {
                w();
            }
        }
    }

    /// Allocate the next logical message id (also the raw injected count).
    pub fn next_msg(&self) -> u64 {
        self.live.injected.fetch_add(1, Ordering::SeqCst)
    }

    pub fn injected(&self) -> u64 {
        self.live.injected.load(Ordering::SeqCst)
    }

    pub fn delivered(&self) -> u64 {
        self.live.delivered.load(Ordering::SeqCst)
    }

    pub fn pending(&self) -> usize {
        self.pending_len.load(Ordering::SeqCst)
    }

    pub fn note_delivered(&self) {
        self.live.delivered.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_contended_poll(&self) {
        self.live.contended_polls.fetch_add(1, Ordering::SeqCst);
    }

    pub fn contended_polls(&self) -> u64 {
        self.live.contended_polls.load(Ordering::SeqCst)
    }

    pub fn note_retry(&self) {
        self.live.retries.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_drop(&self, backoff_ns: u64) {
        self.live.drops_injected.fetch_add(1, Ordering::SeqCst);
        self.max_backoff_ns.fetch_max(backoff_ns, Ordering::SeqCst);
    }

    pub fn note_dup_suppressed(&self) {
        self.live.dup_suppressed.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_dup_promoted(&self) {
        self.live.dup_promoted.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_signal(&self) {
        self.live.signals.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_batch(&self, ops: u64, reason: FlushReason) {
        self.live.batches_injected.fetch_add(1, Ordering::SeqCst);
        self.live.ops_coalesced.fetch_add(ops, Ordering::SeqCst);
        let ctr = match reason {
            FlushReason::Size => &self.live.flushes_size,
            FlushReason::Age => &self.live.flushes_age,
            FlushReason::Explicit => &self.live.flushes_explicit,
        };
        ctr.fetch_add(1, Ordering::SeqCst);
    }

    pub fn note_agg_occupancy(&self, depth: usize) {
        self.agg_occupancy_highwater
            .fetch_max(depth as u64, Ordering::SeqCst);
    }

    /// All counters since creation, with live gauge levels.
    pub fn raw_stats(&self) -> NetStats {
        NetStats {
            pending: self.pending(),
            max_backoff_ns: self.max_backoff_ns.load(Ordering::SeqCst),
            agg_occupancy_highwater: self.agg_occupancy_highwater.load(Ordering::SeqCst),
            lclock_ticks: self.clocks.ticks(),
            ..self.live.snapshot()
        }
    }

    /// Counters relative to the baseline; gauges report the live level.
    pub fn stats(&self) -> NetStats {
        self.raw_stats().since(&self.baseline.snapshot())
    }

    /// Capture the current raw counters as the new baseline and re-prime
    /// the peak gauges.
    pub fn reset_stats(&self) {
        self.baseline.store(&NetStats {
            lclock_ticks: self.clocks.ticks(),
            ..self.live.snapshot()
        });
        self.max_backoff_ns.store(0, Ordering::SeqCst);
        self.agg_occupancy_highwater.store(0, Ordering::SeqCst);
    }

    pub fn set_tracing(&self, on: bool) {
        self.trace_on.store(on, Ordering::Relaxed);
    }

    pub fn tracing(&self) -> bool {
        self.trace_on.load(Ordering::Relaxed)
    }

    pub fn take_trace(&self) -> Vec<NetTraceEvent> {
        std::mem::take(&mut self.trace.lock().unwrap())
    }

    /// Clone the recorded wire events without draining the sink.
    pub fn peek_trace(&self) -> Vec<NetTraceEvent> {
        self.trace.lock().unwrap().clone()
    }

    /// Record one wire event at `ts_ns` (no-op unless tracing is on).
    #[inline]
    pub fn trace_event(&self, ts_ns: u64, msg: u64, attempt: u32, kind: NetEventKind, lclock: u64) {
        if self.trace_on.load(Ordering::Relaxed) {
            self.trace.lock().unwrap().push(NetTraceEvent {
                ts_ns,
                msg,
                attempt,
                kind,
                lclock,
            });
        }
    }
}
