//! Multi-producer queues for rank-directed traffic.
//!
//! Two users: the per-rank active-message mailboxes ([`MpQueue<AmMsg>`])
//! and the per-rank **ready-notification queues** ([`ReadyQueue`]) that the
//! signal-driven completion engine routes completion tokens through. Any
//! thread may push; only the owning rank's thread drains (during its
//! progress quantum), so push order — which for ready tokens is signal
//! order — is exactly the order the owner observes.
//!
//! A `Mutex<VecDeque>` is deliberately chosen over a lock-free list: the
//! critical sections are a handful of instructions, the queue must be
//! drainable in FIFO order with an exact length (quiescence accounting),
//! and the workspace builds offline with `std` only.

use std::collections::VecDeque;
use std::sync::Mutex;

/// An unbounded multi-producer FIFO queue drained by a single owner.
#[derive(Debug, Default)]
pub struct MpQueue<T> {
    q: Mutex<VecDeque<T>>,
}

impl<T> MpQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        MpQueue {
            q: Mutex::new(VecDeque::new()),
        }
    }

    /// Append `v` (any thread).
    pub fn push(&self, v: T) {
        self.q.lock().unwrap().push_back(v);
    }

    /// Remove and return the oldest entry.
    pub fn pop(&self) -> Option<T> {
        self.q.lock().unwrap().pop_front()
    }

    /// Move every entry present *now* into `out`, preserving FIFO order.
    /// Entries pushed while the drained batch is being processed are left
    /// for the next drain — the property that bounds one progress quantum.
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let mut q = self.q.lock().unwrap();
        let n = q.len();
        out.extend(q.drain(..));
        n
    }

    /// Number of queued entries (exact at quiescence, approximate under
    /// concurrent pushes).
    pub fn len(&self) -> usize {
        self.q.lock().unwrap().len()
    }

    /// Whether the queue is empty (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A per-rank ready-notification queue: completion tokens deposited by
/// whichever thread signals an event, drained FIFO by the owning rank.
///
/// The token is an opaque `u64` minted by the initiating rank when it
/// registers an event waiter; the rank maps it back to the registered
/// notification callback when the token surfaces here.
pub type ReadyQueue = MpQueue<u64>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_preserved() {
        let q = MpQueue::new();
        for i in 0..10u64 {
            q.push(i);
        }
        let mut out = Vec::new();
        assert_eq!(q.drain_into(&mut out), 10);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(q.is_empty());
    }

    #[test]
    fn drain_is_bounded_to_present_entries() {
        let q = MpQueue::new();
        q.push(1u64);
        q.push(2);
        let mut out = Vec::new();
        q.drain_into(&mut out);
        q.push(3); // arrives "during processing"
        assert_eq!(out, vec![1, 2]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn concurrent_pushes_all_arrive() {
        let q = Arc::new(MpQueue::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000 {
                    q.push(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let mut out = Vec::new();
        q.drain_into(&mut out);
        out.sort_unstable();
        assert_eq!(out, (0..4000).collect::<Vec<_>>());
    }
}
