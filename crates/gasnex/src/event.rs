//! Completion events, modelled on `gex_Event_t`.
//!
//! An operation that completes synchronously during initiation returns
//! [`Event::Complete`] (the analogue of `GEX_EVENT_INVALID` /
//! `GASNET_INVALID_HANDLE` — "already done"). An asynchronous operation
//! returns [`Event::Pending`] holding a shared [`EventCore`] that the
//! network (or the target rank) signals when the operation finishes.
//!
//! Detecting the `Complete` case cheaply at initiation is the substrate
//! hook the paper's eager-notification work builds on. For the pending
//! case, the core supports **signal-driven completion**: the initiator may
//! register a one-shot waiter with [`EventCore::on_signal`], and whichever
//! thread signals the event runs the waiter — typically routing a
//! completion token into the initiating rank's ready queue — so nobody has
//! to rediscover the flag by polling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A one-shot callback run by the signalling thread.
type Waiter = Box<dyn FnOnce() + Send>;

/// Shared completion flag for an in-flight operation.
///
/// Signalled (with release ordering) by whichever thread finishes the
/// operation; observed (with acquire ordering) by the initiator, so any data
/// written before the signal — e.g. an `rget` result landing in its slot —
/// is visible after a successful test. An optional registered waiter is run
/// exactly once, after the flag is set: either by the signalling thread, or
/// immediately at registration when the signal already happened.
#[derive(Default)]
pub struct EventCore {
    done: AtomicBool,
    waiter: Mutex<Option<Waiter>>,
}

impl std::fmt::Debug for EventCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventCore")
            .field("done", &self.is_done())
            .field("has_waiter", &self.has_waiter())
            .finish()
    }
}

impl EventCore {
    /// A fresh, unsignalled event.
    pub fn new() -> Arc<Self> {
        Arc::new(EventCore {
            done: AtomicBool::new(false),
            waiter: Mutex::new(None),
        })
    }

    /// Mark the operation complete and run the registered waiter, if any.
    /// May be called from any thread; calling it more than once is
    /// idempotent (the waiter runs only on the first call that takes it).
    pub fn signal(&self) {
        self.done.store(true, Ordering::Release);
        // The flag is published before the waiter is taken; on_signal
        // checks the flag under the same lock, so a waiter is never lost:
        // it is either taken here or run by the registering thread.
        let w = self.waiter.lock().unwrap().take();
        if let Some(w) = w {
            w();
        }
    }

    /// Whether the operation has completed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Register a one-shot completion waiter.
    ///
    /// If the event has already been signalled, `w` runs immediately on the
    /// calling thread; otherwise it runs on whichever thread signals. At
    /// most one waiter may be registered per event — the engine registers
    /// exactly one token route per operation.
    pub fn on_signal(&self, w: impl FnOnce() + Send + 'static) {
        let mut slot = self.waiter.lock().unwrap();
        if self.done.load(Ordering::Acquire) {
            drop(slot);
            w();
            return;
        }
        assert!(
            slot.is_none(),
            "EventCore supports a single registered waiter"
        );
        *slot = Some(Box::new(w));
    }

    /// Whether a waiter is currently registered and unsignalled (test and
    /// quiescence diagnostics).
    pub fn has_waiter(&self) -> bool {
        self.waiter.lock().unwrap().is_some()
    }

    /// Block the calling thread — zero CPU — until the event is signalled,
    /// or until `timeout` elapses. Returns `true` when the event fired.
    ///
    /// This extends the signal-driven wakeup engine from intra-rank token
    /// routing to cross-rank blocking: the condvar bridge is registered
    /// through [`EventCore::on_signal`], so whichever thread signals the
    /// event (typically a peer rank delivering a notification badge) wakes
    /// the parked thread directly. The caller is responsible for ensuring
    /// some other thread still drives conduit progress while this one is
    /// parked — see `NotifyTable::try_reserve_park`.
    pub fn park(&self, timeout: std::time::Duration) -> bool {
        let gate = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let g2 = Arc::clone(&gate);
        self.on_signal(move || {
            let (lock, cv) = &*g2;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*gate;
        let deadline = std::time::Instant::now() + timeout;
        let mut fired = lock.lock().unwrap();
        while !*fired {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (g, _) = cv.wait_timeout(fired, left).unwrap();
            fired = g;
        }
        true
    }
}

/// A completion handle for one communication operation.
#[derive(Clone, Debug)]
pub enum Event {
    /// The operation completed synchronously during initiation.
    Complete,
    /// The operation is in flight; the core will be signalled on completion.
    Pending(Arc<EventCore>),
}

impl Event {
    /// Create a pending event, returning the handle and the core to signal.
    pub fn pending() -> (Event, Arc<EventCore>) {
        let core = EventCore::new();
        (Event::Pending(Arc::clone(&core)), core)
    }

    /// Non-blocking completion test (like `gex_Event_Test`).
    #[inline]
    pub fn test(&self) -> bool {
        match self {
            Event::Complete => true,
            Event::Pending(core) => core.is_done(),
        }
    }

    /// Whether this event was complete at initiation — the property that
    /// makes eager notification possible.
    #[inline]
    pub fn completed_synchronously(&self) -> bool {
        matches!(self, Event::Complete)
    }

    /// Spin until complete, invoking `poll` between tests (like
    /// `gex_Event_Wait` with progress).
    pub fn wait(&self, mut poll: impl FnMut()) {
        let mut spins = 0u32;
        while !self.test() {
            poll();
            spins += 1;
            if spins > 4 {
                // Oversubscribed ranks must let the signaller run.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn complete_event_tests_true() {
        let e = Event::Complete;
        assert!(e.test());
        assert!(e.completed_synchronously());
        let mut polls = 0;
        e.wait(|| polls += 1);
        assert_eq!(polls, 0);
    }

    #[test]
    fn pending_event_lifecycle() {
        let (e, core) = Event::pending();
        assert!(!e.test());
        assert!(!e.completed_synchronously());
        core.signal();
        assert!(e.test());
        // Idempotent.
        core.signal();
        assert!(e.test());
    }

    #[test]
    fn wait_polls_until_signalled() {
        let (e, core) = Event::pending();
        let mut polls = 0;
        e.wait(|| {
            polls += 1;
            if polls == 3 {
                core.signal();
            }
        });
        assert_eq!(polls, 3);
    }

    #[test]
    fn signal_is_visible_across_threads() {
        let (e, core) = Event::pending();
        let t = std::thread::spawn(move || core.signal());
        e.wait(std::thread::yield_now);
        t.join().unwrap();
        assert!(e.test());
    }

    #[test]
    fn waiter_runs_on_signal() {
        let core = EventCore::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        core.on_signal(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(core.has_waiter());
        assert_eq!(
            hits.load(Ordering::SeqCst),
            0,
            "waiter must not run before the signal"
        );
        core.signal();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(!core.has_waiter());
        // A second signal must not re-run the one-shot waiter.
        core.signal();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn waiter_registered_after_signal_runs_immediately() {
        let core = EventCore::new();
        core.signal();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        core.on_signal(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(!core.has_waiter());
    }

    #[test]
    fn park_blocks_until_cross_thread_signal() {
        let core = EventCore::new();
        let c2 = Arc::clone(&core);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            c2.signal();
        });
        assert!(core.park(std::time::Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn park_after_signal_returns_immediately() {
        let core = EventCore::new();
        core.signal();
        assert!(core.park(std::time::Duration::from_secs(5)));
    }

    #[test]
    fn park_times_out_without_signal() {
        let core = EventCore::new();
        assert!(!core.park(std::time::Duration::from_millis(5)));
    }

    #[test]
    fn waiter_never_lost_under_races() {
        // Registration and signalling race from two threads; the waiter
        // must run exactly once whichever side wins.
        for _ in 0..200 {
            let core = EventCore::new();
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            let c2 = Arc::clone(&core);
            let t = std::thread::spawn(move || c2.signal());
            core.on_signal(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            t.join().unwrap();
            // The signalling thread may still be inside signal(); joining
            // above guarantees it finished, so the waiter has run.
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }
    }
}
