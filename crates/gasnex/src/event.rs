//! Completion events, modelled on `gex_Event_t`.
//!
//! An operation that completes synchronously during initiation returns
//! [`Event::Complete`] (the analogue of `GEX_EVENT_INVALID` /
//! `GASNET_INVALID_HANDLE` — "already done"). An asynchronous operation
//! returns [`Event::Pending`] holding a shared [`EventCore`] that the
//! network (or the target rank) signals when the operation finishes.
//!
//! Detecting the `Complete` case cheaply at initiation is the substrate
//! hook the paper's eager-notification work builds on.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared completion flag for an in-flight operation.
///
/// Signalled (with release ordering) by whichever thread finishes the
/// operation; observed (with acquire ordering) by the initiator, so any data
/// written before the signal — e.g. an `rget` result landing in its slot —
/// is visible after a successful test.
#[derive(Debug, Default)]
pub struct EventCore {
    done: AtomicBool,
}

impl EventCore {
    /// A fresh, unsignalled event.
    pub fn new() -> Arc<Self> {
        Arc::new(EventCore { done: AtomicBool::new(false) })
    }

    /// Mark the operation complete. May be called from any thread; calling
    /// it more than once is idempotent.
    #[inline]
    pub fn signal(&self) {
        self.done.store(true, Ordering::Release);
    }

    /// Whether the operation has completed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

/// A completion handle for one communication operation.
#[derive(Clone, Debug)]
pub enum Event {
    /// The operation completed synchronously during initiation.
    Complete,
    /// The operation is in flight; the core will be signalled on completion.
    Pending(Arc<EventCore>),
}

impl Event {
    /// Create a pending event, returning the handle and the core to signal.
    pub fn pending() -> (Event, Arc<EventCore>) {
        let core = EventCore::new();
        (Event::Pending(Arc::clone(&core)), core)
    }

    /// Non-blocking completion test (like `gex_Event_Test`).
    #[inline]
    pub fn test(&self) -> bool {
        match self {
            Event::Complete => true,
            Event::Pending(core) => core.is_done(),
        }
    }

    /// Whether this event was complete at initiation — the property that
    /// makes eager notification possible.
    #[inline]
    pub fn completed_synchronously(&self) -> bool {
        matches!(self, Event::Complete)
    }

    /// Spin until complete, invoking `poll` between tests (like
    /// `gex_Event_Wait` with progress).
    pub fn wait(&self, mut poll: impl FnMut()) {
        let mut spins = 0u32;
        while !self.test() {
            poll();
            spins += 1;
            if spins > 4 {
                // Oversubscribed ranks must let the signaller run.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_event_tests_true() {
        let e = Event::Complete;
        assert!(e.test());
        assert!(e.completed_synchronously());
        let mut polls = 0;
        e.wait(|| polls += 1);
        assert_eq!(polls, 0);
    }

    #[test]
    fn pending_event_lifecycle() {
        let (e, core) = Event::pending();
        assert!(!e.test());
        assert!(!e.completed_synchronously());
        core.signal();
        assert!(e.test());
        // Idempotent.
        core.signal();
        assert!(e.test());
    }

    #[test]
    fn wait_polls_until_signalled() {
        let (e, core) = Event::pending();
        let mut polls = 0;
        e.wait(|| {
            polls += 1;
            if polls == 3 {
                core.signal();
            }
        });
        assert_eq!(polls, 3);
    }

    #[test]
    fn signal_is_visible_across_threads() {
        let (e, core) = Event::pending();
        let t = std::thread::spawn(move || core.signal());
        e.wait(std::thread::yield_now);
        t.join().unwrap();
        assert!(e.test());
    }
}
