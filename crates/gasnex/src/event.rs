//! Completion events, modelled on `gex_Event_t`.
//!
//! An operation that completes synchronously during initiation returns
//! [`Event::Complete`] (the analogue of `GEX_EVENT_INVALID` /
//! `GASNET_INVALID_HANDLE` — "already done"). An asynchronous operation
//! returns [`Event::Pending`] holding a shared [`EventCore`] that the
//! network (or the target rank) signals when the operation finishes.
//!
//! Detecting the `Complete` case cheaply at initiation is the substrate
//! hook the paper's eager-notification work builds on. For the pending
//! case, the core supports **signal-driven completion**: the initiator may
//! register a one-shot waiter with [`EventCore::on_signal`], and whichever
//! thread signals the event runs the waiter — typically routing a
//! completion token into the initiating rank's ready queue — so nobody has
//! to rediscover the flag by polling.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// A one-shot callback run by the signalling thread.
type Waiter = Box<dyn FnOnce() + Send>;

/// Shared completion flag for an in-flight operation.
///
/// Signalled (with release ordering) by whichever thread finishes the
/// operation; observed (with acquire ordering) by the initiator, so any data
/// written before the signal — e.g. an `rget` result landing in its slot —
/// is visible after a successful test. Registered waiters run exactly once
/// each, after the flag is set: either by the signalling thread (in
/// registration order), or immediately at registration when the signal
/// already happened. Multiple waiters may be registered on one event — an
/// operation can route a completion token *and* carry a continuation
/// callback (`operation_cx::as_future | as_callback`).
#[derive(Default)]
pub struct EventCore {
    done: AtomicBool,
    waiters: Mutex<Vec<Waiter>>,
}

impl std::fmt::Debug for EventCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventCore")
            .field("done", &self.is_done())
            .field("has_waiter", &self.has_waiter())
            .finish()
    }
}

impl EventCore {
    /// A fresh, unsignalled event.
    pub fn new() -> Arc<Self> {
        Arc::new(EventCore {
            done: AtomicBool::new(false),
            waiters: Mutex::new(Vec::new()),
        })
    }

    /// Mark the operation complete and run the registered waiters, if any,
    /// in registration order. May be called from any thread; calling it
    /// more than once is idempotent (waiters run only on the first call
    /// that takes them).
    pub fn signal(&self) {
        // The flag is published while the lock is held; on_signal checks
        // it under the same lock, so a waiter is never lost: every waiter
        // is either taken here or run by the registering thread.
        let taken = {
            let mut slot = self.waiters.lock().unwrap();
            self.done.store(true, Ordering::Release);
            std::mem::take(&mut *slot)
        };
        for w in taken {
            w();
        }
    }

    /// Whether the operation has completed.
    #[inline]
    pub fn is_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Register a one-shot completion waiter.
    ///
    /// If the event has already been signalled, `w` runs immediately on the
    /// calling thread; otherwise it runs on whichever thread signals, in
    /// registration order after any earlier waiters. Any number of waiters
    /// may be registered — the engine registers a token route, and a
    /// continuation callback may ride the same event.
    pub fn on_signal(&self, w: impl FnOnce() + Send + 'static) {
        {
            let mut slot = self.waiters.lock().unwrap();
            // Checked under the same lock signal() publishes under, so a
            // waiter registered after the signal fired always runs (below,
            // immediately) and one registered before is always taken by
            // signal() — no interleaving loses it.
            if !self.done.load(Ordering::Acquire) {
                slot.push(Box::new(w));
                return;
            }
        }
        w();
    }

    /// Whether any waiter is currently registered and unsignalled (test
    /// and quiescence diagnostics).
    pub fn has_waiter(&self) -> bool {
        !self.waiters.lock().unwrap().is_empty()
    }

    /// Block the calling thread — zero CPU — until the event is signalled,
    /// or until `timeout` elapses. Returns `true` when the event fired.
    ///
    /// This extends the signal-driven wakeup engine from intra-rank token
    /// routing to cross-rank blocking: the condvar bridge is registered
    /// through [`EventCore::on_signal`], so whichever thread signals the
    /// event (typically a peer rank delivering a notification badge) wakes
    /// the parked thread directly. The caller is responsible for ensuring
    /// some other thread still drives conduit progress while this one is
    /// parked — see `NotifyTable::try_reserve_park`.
    pub fn park(&self, timeout: std::time::Duration) -> bool {
        let gate = Arc::new((Mutex::new(false), std::sync::Condvar::new()));
        let g2 = Arc::clone(&gate);
        self.on_signal(move || {
            let (lock, cv) = &*g2;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        });
        let (lock, cv) = &*gate;
        let deadline = std::time::Instant::now() + timeout;
        let mut fired = lock.lock().unwrap();
        while !*fired {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            if left.is_zero() {
                return false;
            }
            let (g, _) = cv.wait_timeout(fired, left).unwrap();
            fired = g;
        }
        true
    }
}

/// A completion handle for one communication operation.
#[derive(Clone, Debug)]
pub enum Event {
    /// The operation completed synchronously during initiation.
    Complete,
    /// The operation is in flight; the core will be signalled on completion.
    Pending(Arc<EventCore>),
}

impl Event {
    /// Create a pending event, returning the handle and the core to signal.
    pub fn pending() -> (Event, Arc<EventCore>) {
        let core = EventCore::new();
        (Event::Pending(Arc::clone(&core)), core)
    }

    /// Non-blocking completion test (like `gex_Event_Test`).
    #[inline]
    pub fn test(&self) -> bool {
        match self {
            Event::Complete => true,
            Event::Pending(core) => core.is_done(),
        }
    }

    /// Whether this event was complete at initiation — the property that
    /// makes eager notification possible.
    #[inline]
    pub fn completed_synchronously(&self) -> bool {
        matches!(self, Event::Complete)
    }

    /// Spin until complete, invoking `poll` between tests (like
    /// `gex_Event_Wait` with progress).
    pub fn wait(&self, mut poll: impl FnMut()) {
        let mut spins = 0u32;
        while !self.test() {
            poll();
            spins += 1;
            if spins > 4 {
                // Oversubscribed ranks must let the signaller run.
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn complete_event_tests_true() {
        let e = Event::Complete;
        assert!(e.test());
        assert!(e.completed_synchronously());
        let mut polls = 0;
        e.wait(|| polls += 1);
        assert_eq!(polls, 0);
    }

    #[test]
    fn pending_event_lifecycle() {
        let (e, core) = Event::pending();
        assert!(!e.test());
        assert!(!e.completed_synchronously());
        core.signal();
        assert!(e.test());
        // Idempotent.
        core.signal();
        assert!(e.test());
    }

    #[test]
    fn wait_polls_until_signalled() {
        let (e, core) = Event::pending();
        let mut polls = 0;
        e.wait(|| {
            polls += 1;
            if polls == 3 {
                core.signal();
            }
        });
        assert_eq!(polls, 3);
    }

    #[test]
    fn signal_is_visible_across_threads() {
        let (e, core) = Event::pending();
        let t = std::thread::spawn(move || core.signal());
        e.wait(std::thread::yield_now);
        t.join().unwrap();
        assert!(e.test());
    }

    #[test]
    fn waiter_runs_on_signal() {
        let core = EventCore::new();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        core.on_signal(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert!(core.has_waiter());
        assert_eq!(
            hits.load(Ordering::SeqCst),
            0,
            "waiter must not run before the signal"
        );
        core.signal();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(!core.has_waiter());
        // A second signal must not re-run the one-shot waiter.
        core.signal();
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn waiter_registered_after_signal_runs_immediately() {
        let core = EventCore::new();
        core.signal();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        core.on_signal(move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        assert!(!core.has_waiter());
    }

    #[test]
    fn park_blocks_until_cross_thread_signal() {
        let core = EventCore::new();
        let c2 = Arc::clone(&core);
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            c2.signal();
        });
        assert!(core.park(std::time::Duration::from_secs(5)));
        t.join().unwrap();
    }

    #[test]
    fn park_after_signal_returns_immediately() {
        let core = EventCore::new();
        core.signal();
        assert!(core.park(std::time::Duration::from_secs(5)));
    }

    #[test]
    fn park_times_out_without_signal() {
        let core = EventCore::new();
        assert!(!core.park(std::time::Duration::from_millis(5)));
    }

    #[test]
    fn waiter_never_lost_under_races() {
        // Registration and signalling race from two threads; the waiter
        // must run exactly once whichever side wins.
        for _ in 0..200 {
            let core = EventCore::new();
            let hits = Arc::new(AtomicUsize::new(0));
            let h = Arc::clone(&hits);
            let c2 = Arc::clone(&core);
            let t = std::thread::spawn(move || c2.signal());
            core.on_signal(move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            t.join().unwrap();
            // The signalling thread may still be inside signal(); joining
            // above guarantees it finished, so the waiter has run.
            assert_eq!(hits.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn multiple_waiters_run_in_registration_order() {
        let core = EventCore::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let l = Arc::clone(&log);
            core.on_signal(move || l.lock().unwrap().push(i));
        }
        assert!(core.has_waiter());
        core.signal();
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
        assert!(!core.has_waiter());
        // A waiter registered after the signal still runs immediately —
        // alongside, not instead of, the earlier ones.
        let l = Arc::clone(&log);
        core.on_signal(move || l.lock().unwrap().push(99));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 99]);
    }

    #[test]
    fn no_lost_wakeup_across_register_post_interleavings() {
        // Property test for the registration/signal race: k waiters are
        // registered from one thread while another signals at every
        // possible point of the sequence (before, interleaved, after). In
        // every interleaving each waiter must run exactly once — none lost
        // (registered-after-signal must run immediately), none doubled.
        const K: usize = 4;
        for signal_at in 0..=K {
            for _ in 0..100 {
                let core = EventCore::new();
                let hits: Arc<Vec<AtomicUsize>> =
                    Arc::new((0..K).map(|_| AtomicUsize::new(0)).collect());
                let c2 = Arc::clone(&core);
                let gate = Arc::new(AtomicBool::new(false));
                let g2 = Arc::clone(&gate);
                let t = std::thread::spawn(move || {
                    // Wait for the registering thread to reach signal_at.
                    while !g2.load(Ordering::Acquire) {
                        std::hint::spin_loop();
                    }
                    c2.signal();
                });
                for i in 0..K {
                    if i == signal_at {
                        gate.store(true, Ordering::Release);
                    }
                    let h = Arc::clone(&hits);
                    core.on_signal(move || {
                        h[i].fetch_add(1, Ordering::SeqCst);
                    });
                }
                if signal_at == K {
                    gate.store(true, Ordering::Release);
                }
                t.join().unwrap();
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::SeqCst),
                        1,
                        "waiter {i} (signal raced at registration {signal_at}) \
                         must run exactly once"
                    );
                }
            }
        }
    }
}
