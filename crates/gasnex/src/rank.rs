//! Ranks, node topology, and teams.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

/// The identity of an SPMD process ("rank") in the world.
///
/// A compact `u32` index, cheap to copy and embed in global pointers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub u32);

impl Rank {
    /// The rank as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }

    /// Construct from a `usize` index.
    #[inline]
    pub fn from_idx(i: usize) -> Self {
        Rank(u32::try_from(i).expect("rank index exceeds u32"))
    }
}

impl fmt::Debug for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rank({})", self.0)
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The mapping from ranks to simulated nodes.
///
/// Ranks are laid out block-wise: with `ranks_per_node = n`, node `k` owns
/// ranks `[k*n, min((k+1)*n, ranks))`. Two ranks on the same node can address
/// each other's segments directly (the process-shared-memory case from the
/// paper); ranks on different nodes communicate through the simulated
/// network.
#[derive(Clone, Copy, Debug)]
pub struct Topology {
    ranks: u32,
    ranks_per_node: u32,
}

impl Topology {
    /// Build a topology for `ranks` total ranks, `ranks_per_node` per node.
    pub fn new(ranks: usize, ranks_per_node: usize) -> Self {
        assert!(ranks > 0 && ranks_per_node > 0);
        Topology {
            ranks: ranks as u32,
            ranks_per_node: ranks_per_node as u32,
        }
    }

    /// Total number of ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.ranks as usize
    }

    /// Number of nodes.
    #[inline]
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node) as usize
    }

    /// The node a rank lives on.
    #[inline]
    pub fn node_of(&self, r: Rank) -> usize {
        debug_assert!(r.0 < self.ranks, "rank {r} out of range");
        (r.0 / self.ranks_per_node) as usize
    }

    /// Whether two ranks share a node (and thus physical memory).
    #[inline]
    pub fn same_node(&self, a: Rank, b: Rank) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The contiguous range of ranks on `node`.
    pub fn node_ranks(&self, node: usize) -> Range<u32> {
        let lo = node as u32 * self.ranks_per_node;
        let hi = (lo + self.ranks_per_node).min(self.ranks);
        lo..hi
    }

    /// Whether the whole world is a single node.
    #[inline]
    pub fn single_node(&self) -> bool {
        self.ranks_per_node >= self.ranks
    }
}

/// An ordered set of ranks participating in collectives together.
///
/// A team carries its own collective state (barrier generation, exchange
/// buffers), so any number of teams — the world team, per-node local teams,
/// and arbitrary [`split`](crate::world::World::split_team) products — can
/// synchronize independently. Handles are cheap to clone (two `Arc`s).
#[derive(Clone)]
pub struct Team {
    /// Member world ranks, in team order.
    members: Arc<Vec<Rank>>,
    /// This team's collective state.
    pub(crate) coll: Arc<crate::collectives::TeamColl>,
    /// Stable identifier (unique per distinct team in a world).
    uid: u64,
}

impl Team {
    pub(crate) fn from_members(members: Vec<Rank>, uid: u64) -> Self {
        assert!(!members.is_empty(), "team must be non-empty");
        let coll = Arc::new(crate::collectives::TeamColl::new(members.len()));
        Team {
            members: Arc::new(members),
            coll,
            uid,
        }
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Stable identifier of this team within its world.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// The world rank of team member `i`.
    pub fn member(&self, i: usize) -> Rank {
        assert!(i < self.size(), "team member index {i} out of range");
        self.members[i]
    }

    /// This world rank's index within the team, if it is a member.
    pub fn rank_of(&self, r: Rank) -> Option<usize> {
        // Member lists are small and usually sorted; linear scan keeps
        // arbitrary orderings (split by key) correct.
        self.members.iter().position(|&m| m == r)
    }

    /// Whether `r` is a member.
    pub fn contains(&self, r: Rank) -> bool {
        self.members.contains(&r)
    }

    /// Iterate over member world ranks.
    pub fn iter(&self) -> impl Iterator<Item = Rank> + '_ {
        self.members.iter().copied()
    }

    /// Record one asynchronous-barrier arrival for team-member `me_idx`,
    /// returning the 1-based epoch the arrival belongs to.
    pub fn async_arrive(&self, me_idx: usize) -> u64 {
        assert!(me_idx < self.size());
        self.coll.async_arrive(me_idx)
    }

    /// Whether every member has arrived at async-barrier `epoch`.
    pub fn async_epoch_complete(&self, epoch: u64) -> bool {
        self.coll.async_epoch_complete(self.size(), epoch)
    }
}

impl fmt::Debug for Team {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Team(uid={}, members={:?})", self.uid, self.members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_block_layout() {
        let t = Topology::new(10, 4);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.node_of(Rank(0)), 0);
        assert_eq!(t.node_of(Rank(3)), 0);
        assert_eq!(t.node_of(Rank(4)), 1);
        assert_eq!(t.node_of(Rank(9)), 2);
        assert!(t.same_node(Rank(4), Rank(7)));
        assert!(!t.same_node(Rank(3), Rank(4)));
    }

    #[test]
    fn ragged_last_node() {
        let t = Topology::new(10, 4);
        assert_eq!(t.node_ranks(0), 0..4);
        assert_eq!(t.node_ranks(2), 8..10);
    }

    #[test]
    fn single_node_detection() {
        assert!(Topology::new(8, 8).single_node());
        assert!(Topology::new(8, 16).single_node());
        assert!(!Topology::new(8, 4).single_node());
    }

    #[test]
    fn team_membership() {
        let team = Team::from_members(vec![Rank(4), Rank(5), Rank(6), Rank(7)], 1);
        assert_eq!(team.size(), 4);
        assert_eq!(team.member(0), Rank(4));
        assert_eq!(team.member(3), Rank(7));
        assert_eq!(team.rank_of(Rank(5)), Some(1));
        assert_eq!(team.rank_of(Rank(8)), None);
        assert!(team.contains(Rank(4)));
        assert!(!team.contains(Rank(3)));
        assert_eq!(team.uid(), 1);
        let members: Vec<_> = team.iter().collect();
        assert_eq!(members, vec![Rank(4), Rank(5), Rank(6), Rank(7)]);
    }

    #[test]
    fn non_contiguous_team_in_key_order() {
        let team = Team::from_members(vec![Rank(9), Rank(2), Rank(5)], 7);
        assert_eq!(team.member(0), Rank(9));
        assert_eq!(team.rank_of(Rank(5)), Some(2));
        assert!(!team.contains(Rank(3)));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_team_rejected() {
        Team::from_members(vec![], 0);
    }

    #[test]
    fn rank_display_and_conversion() {
        let r = Rank::from_idx(7);
        assert_eq!(r.idx(), 7);
        assert_eq!(format!("{r}"), "7");
        assert_eq!(format!("{r:?}"), "Rank(7)");
    }
}
