//! The `World`: all shared state of a `gasnex` job, plus per-rank progress.

use std::sync::Arc;

use crate::alloc::SegAlloc;
use crate::am::{AmCtx, AmMsg, AmQueues};
use crate::clock::LamportClocks;
use crate::conduit::udp::UdpConduit;
use crate::conduit::Conduit;
use crate::config::{GasnexConfig, Transport};
use crate::event::EventCore;
use crate::mailbox::ReadyQueue;
use crate::net::{NetAction, SimNetwork};
use crate::notify::NotifyTable;
use crate::rank::{Rank, Team, Topology};
use crate::segment::Segment;

/// All state shared by the ranks of one job: segments, allocators, AM
/// mailboxes, the conduit, and collective state.
///
/// Created once and shared via `Arc` by every rank thread.
pub struct World {
    cfg: GasnexConfig,
    topo: Topology,
    segments: Box<[Segment]>,
    allocs: Box<[SegAlloc]>,
    am: AmQueues,
    net: Box<dyn Conduit>,
    /// Per-rank ready-notification queues: completion tokens deposited by
    /// whichever thread signals an event a rank registered a waiter on,
    /// drained FIFO by the owning rank during its progress quantum.
    ready: Box<[ReadyQueue]>,
    /// The team of all ranks.
    world_team: Team,
    /// Per-node local teams.
    local_teams: Box<[Team]>,
    /// Registry of split-created teams, keyed by (parent uid, split epoch,
    /// color) so every member resolves the same Team instance.
    splits: std::sync::Mutex<std::collections::HashMap<(u64, u64, u64), Team>>,
    /// Uid source for split-created teams.
    next_team_uid: std::sync::atomic::AtomicU64,
    /// Per-rank notification words for put-with-signal badges and their
    /// parked waiters.
    notify: NotifyTable,
    /// Shared per-rank Lamport clocks for causal tracing: one slot per
    /// rank plus the unrouted/wire slot, ticked only while tracing is on.
    clocks: Arc<LamportClocks>,
    /// Opaque per-rank deposits for cross-layer collection: the runtime's
    /// causal assembler parks each rank's drained trace here (as a boxed
    /// `Any`, since this crate cannot name the runtime's trace types) and
    /// one rank drains them all after a barrier.
    deposits: std::sync::Mutex<Vec<(u32, Box<dyn std::any::Any + Send>)>>,
    /// Set when a rank dies abnormally, so peers spinning in barriers or
    /// waits bail out instead of deadlocking.
    aborted: std::sync::atomic::AtomicBool,
}

impl World {
    /// Build a world from a validated configuration.
    pub fn new(cfg: GasnexConfig) -> Arc<World> {
        cfg.validate();
        let topo = Topology::new(cfg.ranks, cfg.ranks_per_node);
        let segments: Box<[Segment]> = (0..cfg.ranks)
            .map(|_| Segment::new(cfg.segment_size))
            .collect();
        let allocs: Box<[SegAlloc]> = (0..cfg.ranks)
            .map(|_| SegAlloc::new(cfg.segment_size))
            .collect();
        let world_team = Team::from_members((0..cfg.ranks as u32).map(Rank).collect(), 0);
        let local_teams: Box<[Team]> = (0..topo.nodes())
            .map(|node| {
                Team::from_members(topo.node_ranks(node).map(Rank).collect(), 1 + node as u64)
            })
            .collect();
        let clocks = LamportClocks::new(cfg.ranks);
        let net: Box<dyn Conduit> = match cfg.transport {
            Transport::Sim => Box::new(SimNetwork::new(cfg.net, Arc::clone(&clocks))),
            Transport::UdpSocket => Box::new(UdpConduit::new(
                cfg.net,
                cfg.ranks as u32,
                cfg.ranks_per_node as u32,
                Arc::clone(&clocks),
            )),
        };
        Arc::new(World {
            am: AmQueues::new(cfg.ranks),
            net,
            ready: (0..cfg.ranks).map(|_| ReadyQueue::new()).collect(),
            segments,
            allocs,
            world_team,
            local_teams,
            splits: std::sync::Mutex::new(std::collections::HashMap::new()),
            next_team_uid: std::sync::atomic::AtomicU64::new(1_000),
            notify: NotifyTable::new(cfg.ranks, cfg.notify_words),
            clocks,
            deposits: std::sync::Mutex::new(Vec::new()),
            topo,
            cfg,
            aborted: std::sync::atomic::AtomicBool::new(false),
        })
    }

    /// Mark the job as dying abnormally (a rank panicked). Peers observe
    /// this via [`is_aborted`](Self::is_aborted) from their progress loops.
    pub fn abort(&self) {
        self.aborted
            .store(true, std::sync::atomic::Ordering::SeqCst);
        // Parked waiters cannot poll the abort flag; wake them so they
        // observe it and unwind instead of hanging on their condvar.
        self.notify.wake_all();
        // Same for a parked background progress thread.
        self.net.wake_progress();
    }

    /// Whether a rank has died abnormally.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &GasnexConfig {
        &self.cfg
    }

    /// The rank-to-node topology.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// Number of ranks.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.cfg.ranks
    }

    /// The shared segment owned by `r`.
    #[inline]
    pub fn segment(&self, r: Rank) -> &Segment {
        &self.segments[r.idx()]
    }

    /// The segment allocator for `r`'s segment.
    #[inline]
    pub fn seg_alloc(&self, r: Rank) -> &SegAlloc {
        &self.allocs[r.idx()]
    }

    /// The conduit carrying cross-node deliveries.
    #[inline]
    pub fn net(&self) -> &dyn Conduit {
        &*self.net
    }

    /// Whether `from` can directly address `to`'s segment (same simulated
    /// node — the process-shared-memory case).
    #[inline]
    pub fn directly_addressable(&self, from: Rank, to: Rank) -> bool {
        self.topo.same_node(from, to)
    }

    /// The team containing every rank.
    pub fn world_team(&self) -> Team {
        self.world_team.clone()
    }

    /// The team of ranks sharing `me`'s node.
    pub fn local_team(&self, me: Rank) -> Team {
        self.local_teams[self.topo.node_of(me)].clone()
    }

    /// Enqueue an active message for `target`, recorded as sent by `src`.
    pub fn send_am(
        &self,
        target: Rank,
        src: Rank,
        handler: impl FnOnce(&AmCtx<'_>) + Send + 'static,
    ) {
        self.am.push(
            target,
            AmMsg {
                src,
                handler: Box::new(handler),
            },
        );
    }

    /// Inject an operation into the conduit with no routing hint.
    pub fn net_inject(&self, action: NetAction) -> u64 {
        self.net.inject(action)
    }

    /// Inject an operation into the conduit, routed from the initiating
    /// rank to the target rank (socket transports use the hint to pick
    /// source and destination node sockets; the simulator ignores it).
    pub fn net_inject_routed(&self, from: Rank, to: Rank, action: NetAction) -> u64 {
        self.net.inject_to(Some((from, to)), action)
    }

    /// Inject a *signal-bearing* operation (a put-with-signal delivery),
    /// routed like [`net_inject_routed`](Self::net_inject_routed) but
    /// carried as signal traffic: the UDP conduit stamps a SIGNAL frame
    /// kind on the wire and both conduits count it in `NetStats::signals`.
    pub fn net_inject_signal(&self, from: Rank, to: Rank, action: NetAction) -> u64 {
        self.net.inject_signal_to(Some((from, to)), action)
    }

    /// Prod the background progress thread's waker, if one is armed (a
    /// no-op otherwise). Called on completion-callback enqueues so a
    /// parked thread notices new runnable work.
    #[inline]
    pub fn wake_progress(&self) {
        self.net.wake_progress();
    }

    /// The notification-word table (badge coalescing + parked waiters).
    #[inline]
    pub fn notify(&self) -> &NotifyTable {
        &self.notify
    }

    /// The shared per-rank Lamport clock bank for causal tracing.
    #[inline]
    pub fn clocks(&self) -> &Arc<LamportClocks> {
        &self.clocks
    }

    /// Park an opaque per-rank item for later collection by one rank (see
    /// [`drain_deposits`](Self::drain_deposits)). The causal assembler
    /// uses this to ship every rank's trace to rank 0 without the
    /// substrate knowing the runtime's trace types.
    pub fn deposit(&self, rank: u32, item: Box<dyn std::any::Any + Send>) {
        self.deposits.lock().unwrap().push((rank, item));
    }

    /// Drain every parked deposit, sorted by depositing rank (stable for
    /// multiple deposits from one rank).
    pub fn drain_deposits(&self) -> Vec<(u32, Box<dyn std::any::Any + Send>)> {
        let mut out = std::mem::take(&mut *self.deposits.lock().unwrap());
        out.sort_by_key(|(r, _)| *r);
        out
    }

    /// Route `ev`'s completion signal to `initiator`'s ready queue as
    /// `token`. Registers a one-shot waiter on the event: whichever thread
    /// signals it (network delivery, AM executor, remote AMO) deposits the
    /// token, and the initiator's next ready-queue drain surfaces it —
    /// tokens arrive in signal order, and an already-signalled event
    /// deposits immediately on the calling thread.
    pub fn route_signal(self: &Arc<Self>, ev: &EventCore, initiator: Rank, token: u64) {
        let world = Arc::clone(self);
        ev.on_signal(move || {
            // Lamport stamp for the signal routing: a local event on the
            // initiator's clock (the rank whose ready queue receives the
            // token), ordered before the Wakeup the drain will record.
            let lclock = if world.net.tracing() {
                world.clocks.tick(world.clocks.slot_for(Some(initiator.0)))
            } else {
                0
            };
            world.net.trace_event(
                u64::MAX,
                0,
                crate::net::NetEventKind::Signal {
                    rank: initiator.0,
                    token,
                },
                lclock,
            );
            world.ready[initiator.idx()].push(token)
        });
    }

    /// Drain `me`'s ready queue into `out` (FIFO, bounded to the tokens
    /// present at the start of the drain). Returns the number drained.
    pub fn drain_ready(&self, me: Rank, out: &mut Vec<u64>) -> usize {
        self.ready[me.idx()].drain_into(out)
    }

    /// Number of completion tokens queued for `me` (approximate under
    /// concurrency; exact when quiescent).
    pub fn ready_queued(&self, me: Rank) -> usize {
        self.ready[me.idx()].len()
    }

    /// Run one progress quantum for rank `me`: execute up to `max_ams`
    /// queued active messages, then poll the network. Returns the number of
    /// work items processed (0 means fully idle).
    pub fn poll_rank(&self, me: Rank, max_ams: usize) -> usize {
        let mut n = 0;
        while n < max_ams {
            let Some(msg) = self.am.pop(me) else { break };
            let ctx = AmCtx {
                world: self,
                src: msg.src,
                me,
            };
            (msg.handler)(&ctx);
            self.am.note_executed();
            n += 1;
        }
        n + self.net.poll(self)
    }

    /// Whether the substrate is globally quiescent: every sent AM has been
    /// executed and every injected network operation delivered. Counter
    /// samples race with ongoing activity; callers combine this with
    /// repeated checks (see `upcr`'s quiesce).
    pub fn substrate_quiet(&self) -> bool {
        let (sent, executed) = self.am.counters();
        sent == executed
            && self.net.injected() == self.net.delivered()
            && self.net.pending() == 0
            && self.ready.iter().all(|q| q.is_empty())
    }

    /// Number of AMs queued for `me` (approximate).
    pub fn ams_queued(&self, me: Rank) -> usize {
        self.am.queued(me)
    }

    /// Barrier over `team`; `poll` runs while waiting (callers pass their
    /// full progress function so dependent work keeps draining).
    pub fn barrier(&self, team: &Team, poll: &mut dyn FnMut()) {
        team.coll.barrier(team.size(), poll);
    }

    /// Broadcast from the member that passes `Some`.
    pub fn broadcast<T: Clone + Send + 'static>(
        &self,
        team: &Team,
        root_val: Option<T>,
        poll: &mut dyn FnMut(),
    ) -> T {
        team.coll.broadcast(team.size(), root_val, poll)
    }

    /// All-reduce of 64-bit patterns over `team` with fold `f`.
    pub fn allreduce(
        &self,
        team: &Team,
        me: Rank,
        bits: u64,
        f: &dyn Fn(u64, u64) -> u64,
        poll: &mut dyn FnMut(),
    ) -> u64 {
        let idx = team
            .rank_of(me)
            .expect("allreduce caller must be a team member");
        team.coll.allreduce(team.size(), idx, bits, f, poll)
    }

    /// Gather every member's 64-bit contribution, indexed by team rank.
    pub fn gather_all(&self, team: &Team, me: Rank, bits: u64, poll: &mut dyn FnMut()) -> Vec<u64> {
        let idx = team
            .rank_of(me)
            .expect("gather caller must be a team member");
        team.coll.exchange(team.size(), idx, bits, poll)
    }

    /// Collectively split `team` by `color`: members sharing a color form a
    /// new team, ordered by `(key, world rank)` — the `upcxx::team::split`
    /// semantics. Every member of `team` must call this the same number of
    /// times (with whatever color/key it chooses).
    pub fn split_team(
        &self,
        team: &Team,
        me: Rank,
        color: u64,
        key: u64,
        poll: &mut dyn FnMut(),
    ) -> Team {
        let idx = team
            .rank_of(me)
            .expect("split caller must be a team member");
        // The epoch is read by every member before anyone advances it, and
        // advanced exactly once (by team rank 0) after the exchange below —
        // barrier-separated on both sides.
        let epoch = team.coll.split_epoch();
        let colors = team.coll.exchange(team.size(), idx, color, poll);
        let keys = team.coll.exchange(team.size(), idx, key, poll);
        // Build my color group deterministically.
        let mut group: Vec<(u64, u32)> = (0..team.size())
            .filter(|&i| colors[i] == color)
            .map(|i| (keys[i], team.member(i).0))
            .collect();
        group.sort_unstable();
        let members: Vec<Rank> = group.into_iter().map(|(_, r)| Rank(r)).collect();
        // Resolve or create the shared Team object for this (team, epoch,
        // color) triple.
        let registry_key = (team.uid(), epoch, color);
        let new_team = {
            let mut reg = self.splits.lock().unwrap();
            reg.entry(registry_key)
                .or_insert_with(|| {
                    let uid = self
                        .next_team_uid
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    Team::from_members(members, uid)
                })
                .clone()
        };
        // One member advances the epoch once all members have resolved
        // their new team; the trailing barrier orders it.
        self.barrier(team, poll);
        if idx == 0 {
            team.coll.advance_split_epoch();
        }
        self.barrier(team, poll);
        new_team
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn construction_and_accessors() {
        let w = World::new(GasnexConfig::udp(6, 2).with_segment_size(1 << 12));
        assert_eq!(w.ranks(), 6);
        assert_eq!(w.topology().nodes(), 3);
        assert!(w.directly_addressable(Rank(0), Rank(1)));
        assert!(!w.directly_addressable(Rank(1), Rank(2)));
        assert_eq!(w.world_team().size(), 6);
        assert_eq!(w.local_team(Rank(3)).size(), 2);
        assert_eq!(w.local_team(Rank(3)).member(0), Rank(2));
        assert!(w.segment(Rank(5)).len() >= 1 << 12);
    }

    #[test]
    fn am_roundtrip_request_reply() {
        let w = World::new(GasnexConfig::smp(2).with_segment_size(1 << 12));
        static HITS: AtomicUsize = AtomicUsize::new(0);
        // Rank 0 sends a request to rank 1; rank 1's handler replies; rank 0
        // executes the reply.
        w.send_am(Rank(1), Rank(0), |ctx| {
            assert_eq!(ctx.src, Rank(0));
            assert_eq!(ctx.me, Rank(1));
            HITS.fetch_add(1, Ordering::SeqCst);
            ctx.reply(|ctx2| {
                assert_eq!(ctx2.src, Rank(1));
                assert_eq!(ctx2.me, Rank(0));
                HITS.fetch_add(10, Ordering::SeqCst);
            });
        });
        assert_eq!(w.poll_rank(Rank(1), 64), 1);
        assert_eq!(w.poll_rank(Rank(0), 64), 1);
        assert_eq!(HITS.load(Ordering::SeqCst), 11);
    }

    #[test]
    fn poll_rank_bounds_am_drain() {
        let w = World::new(GasnexConfig::smp(1).with_segment_size(1 << 12));
        for _ in 0..10 {
            w.send_am(Rank(0), Rank(0), |_| {});
        }
        assert_eq!(w.poll_rank(Rank(0), 3), 3);
        assert_eq!(w.ams_queued(Rank(0)), 7);
        while w.poll_rank(Rank(0), 64) > 0 {}
        assert_eq!(w.ams_queued(Rank(0)), 0);
    }

    #[test]
    fn net_inject_delivers_via_poll() {
        let w = World::new(GasnexConfig::udp(2, 1).with_segment_size(1 << 12).with_net(
            NetConfig {
                latency_ns: 0,
                jitter_ns: 0,
                ..NetConfig::default()
            },
        ));
        w.net_inject(Box::new(|world| {
            world.segment(Rank(1)).write_u64(0, 123);
        }));
        w.poll_rank(Rank(0), 0);
        assert_eq!(w.segment(Rank(1)).read_u64(0), 123);
    }

    #[test]
    fn route_signal_delivers_tokens_in_signal_order() {
        let w = World::new(GasnexConfig::smp(2).with_segment_size(1 << 12));
        let evs: Vec<_> = (0..4).map(|_| crate::event::EventCore::new()).collect();
        for (i, ev) in evs.iter().enumerate() {
            w.route_signal(ev, Rank(0), i as u64);
        }
        assert_eq!(w.ready_queued(Rank(0)), 0);
        // Signal out of registration order; tokens must surface in signal order.
        evs[2].signal();
        evs[0].signal();
        evs[3].signal();
        let mut out = Vec::new();
        assert_eq!(w.drain_ready(Rank(0), &mut out), 3);
        assert_eq!(out, vec![2, 0, 3]);
        // Routing on an already-signalled event deposits immediately.
        evs[1].signal();
        assert_eq!(w.ready_queued(Rank(0)), 1);
        let late = crate::event::EventCore::new();
        late.signal();
        w.route_signal(&late, Rank(1), 99);
        assert_eq!(w.ready_queued(Rank(1)), 1);
    }

    #[test]
    fn multithreaded_world_barrier_and_reduce() {
        let w = World::new(GasnexConfig::smp(4).with_segment_size(1 << 12));
        let mut handles = Vec::new();
        for r in 0..4u32 {
            let w = Arc::clone(&w);
            handles.push(std::thread::spawn(move || {
                let me = Rank(r);
                let team = w.world_team();

                w.allreduce(&team, me, r as u64, &|a, b| a + b, &mut || {
                    w.poll_rank(me, 8);
                })
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 6);
        }
    }
}
