//! # gasnex — a GASNet-EX-like communication substrate
//!
//! This crate is the from-scratch stand-in for GASNet-EX in the
//! reproduction of *"Optimization of Asynchronous Communication Operations
//! through Eager Notifications"* (Kamil & Bonachea, SC 2021). It provides
//! the substrate layers the UPC++-like runtime (`upcr`) is built on:
//!
//! * **Shared segments** ([`segment::Segment`]) — one per rank, addressable
//!   by every rank, with race-tolerant word-atomic storage and a free-list
//!   offset allocator ([`alloc::SegAlloc`]).
//! * **Conduits & topology** ([`config`], [`rank`]) — SMP / UDP / MPI
//!   conduit flavors; ranks grouped into simulated nodes, where same-node
//!   access is direct (process-shared memory) and cross-node operations go
//!   through the network.
//! * **Events** ([`event::Event`]) — per-operation completion handles that
//!   distinguish *synchronous* completion at initiation from asynchronous
//!   completion, the hook eager notification builds on.
//! * **Active messages** ([`am`]) — handlers executed on the target rank
//!   during its progress calls, used for RPC and remote completions.
//! * **Ready queues** ([`mailbox`]) — per-rank multi-producer queues; the
//!   signal-driven completion engine routes completion tokens through them
//!   so an initiator discovers finished operations in O(ready) instead of
//!   re-polling every pending event.
//! * **Notification objects** ([`notify::NotifyTable`]) — seL4-style
//!   badge-coalescing notification words with parked waiters, the
//!   target-side half of put-with-signal RMA.
//! * **Conduit transports** ([`conduit::Conduit`]) — the wire abstraction
//!   cross-node operations travel through; injected operations never
//!   complete synchronously. Two impls: the simulated delay queue
//!   ([`net::SimNetwork`], with the chaos adversary and virtual-clock
//!   replay) and real loopback UDP sockets
//!   ([`conduit::udp::UdpConduit`]).
//! * **Remote atomics** ([`amo`]) — the `gex_AD`-style atomic operation set
//!   over 64-bit words, including the fetching/non-fetching split the paper
//!   exploits.
//! * **Collectives** ([`collectives`], surfaced via [`world::World`]) —
//!   progress-polling barrier, broadcast, and reductions.
//!
//! Everything is deliberately single-process: SPMD ranks are threads, which
//! reproduces the addressability and synchronization structure of the
//! paper's single-node runs (GASNet process-shared memory) while remaining
//! runnable anywhere. See `DESIGN.md` at the repository root for the full
//! substitution argument.

pub mod aggregate;
pub mod alloc;
pub mod am;
pub mod amo;
pub mod clock;
pub mod collectives;
pub mod conduit;
pub mod config;
pub mod event;
pub mod mailbox;
pub mod net;
pub mod notify;
pub mod rank;
pub mod segment;
pub mod world;

pub use aggregate::{AggConfig, Batch, BucketSnapshot, Coalescer, FlushReason, Push};
pub use alloc::{OutOfSegmentMemory, SegAlloc};
pub use am::AmCtx;
pub use amo::AmoOp;
pub use clock::LamportClocks;
pub use conduit::{udp::UdpConduit, Conduit, InFlight};
pub use config::{ClockMode, ConduitKind, FaultPlan, GasnexConfig, NetConfig, Transport};
pub use event::{Event, EventCore};
pub use mailbox::{MpQueue, ReadyQueue};
pub use net::{FieldClass, NetEventKind, NetStats, NetTraceEvent, SimNetwork};
pub use notify::{NotifyTable, NotifyWordSnapshot};
pub use rank::{Rank, Team, Topology};
pub use segment::Segment;
pub use world::World;
