//! Active messages.
//!
//! The analogue of GASNet AM requests: a handler enqueued to a target rank,
//! executed by that rank the next time it enters the progress engine. The
//! real system ships a handler index plus serialized arguments; because all
//! ranks here share one address space, a handler is a boxed `FnOnce` —
//! semantically identical (runs on the target, sees the target's context)
//! with a simpler transport. Replies are just AMs sent back to the source.

use crate::mailbox::MpQueue;
use crate::rank::Rank;
use crate::world::World;

/// Context passed to an executing AM handler.
pub struct AmCtx<'a> {
    /// The world the handler runs in.
    pub world: &'a World,
    /// The rank that sent this message.
    pub src: Rank,
    /// The rank executing the handler (the message target).
    pub me: Rank,
}

impl AmCtx<'_> {
    /// Send a reply AM back to the source of the current message.
    pub fn reply(&self, handler: impl FnOnce(&AmCtx<'_>) + Send + 'static) {
        self.world.send_am(self.src, self.me, handler);
    }
}

/// A queued active message.
pub(crate) struct AmMsg {
    pub src: Rank,
    pub handler: Box<dyn FnOnce(&AmCtx<'_>) + Send>,
}

/// Per-rank AM mailboxes. Any rank may push to any mailbox; only the owner
/// pops (during progress), so FIFO order per sender is preserved by the
/// underlying multi-producer queue.
///
/// Global sent/executed counters support quiescence detection: `sent` is
/// incremented *before* a message is enqueued and `executed` *after* its
/// handler returns, so `sent == executed` implies no message is queued or
/// mid-execution anywhere.
pub(crate) struct AmQueues {
    queues: Box<[MpQueue<AmMsg>]>,
    sent: std::sync::atomic::AtomicU64,
    executed: std::sync::atomic::AtomicU64,
}

impl AmQueues {
    pub fn new(ranks: usize) -> Self {
        AmQueues {
            queues: (0..ranks).map(|_| MpQueue::new()).collect(),
            sent: std::sync::atomic::AtomicU64::new(0),
            executed: std::sync::atomic::AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn push(&self, target: Rank, msg: AmMsg) {
        self.sent.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.queues[target.idx()].push(msg);
    }

    #[inline]
    pub fn pop(&self, me: Rank) -> Option<AmMsg> {
        self.queues[me.idx()].pop()
    }

    /// Record that a popped message's handler has finished.
    #[inline]
    pub fn note_executed(&self) {
        self.executed
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }

    /// `(sent, executed)` counter sample.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.sent.load(std::sync::atomic::Ordering::SeqCst),
            self.executed.load(std::sync::atomic::Ordering::SeqCst),
        )
    }

    /// Number of messages currently queued for `r` (approximate under
    /// concurrency; exact when quiescent).
    pub fn queued(&self, r: Rank) -> usize {
        self.queues[r.idx()].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_are_fifo_per_rank() {
        let q = AmQueues::new(2);
        for i in 0..10u32 {
            q.push(
                Rank(1),
                AmMsg {
                    src: Rank(0),
                    handler: Box::new(move |_| {
                        let _ = i;
                    }),
                },
            );
        }
        assert_eq!(q.queued(Rank(1)), 10);
        assert_eq!(q.queued(Rank(0)), 0);
        let mut n = 0;
        while q.pop(Rank(1)).is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
    }
}
