//! Offset allocator for shared segments.
//!
//! A first-fit free-list allocator over byte offsets, with coalescing on
//! free. Metadata lives outside the segment (in a [`std::sync::Mutex`]),
//! so allocator state can never be corrupted by application RMA traffic —
//! convenient for a simulator that deliberately runs racy workloads.
//!
//! All blocks are aligned to at least [`MIN_ALIGN`] (8 bytes) so that every
//! allocation can serve as a target for 64-bit remote atomics.

use std::collections::BTreeMap;

use std::sync::Mutex;

/// Minimum alignment (and granularity) of all allocations, in bytes.
pub const MIN_ALIGN: usize = 8;

/// Error returned when a segment cannot satisfy an allocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfSegmentMemory {
    /// Bytes requested (after rounding).
    pub requested: usize,
    /// Size of the largest free block at the time of the request.
    pub largest_free: usize,
}

impl std::fmt::Display for OutOfSegmentMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shared segment exhausted: requested {} bytes, largest free block {} bytes",
            self.requested, self.largest_free
        )
    }
}

impl std::error::Error for OutOfSegmentMemory {}

struct AllocState {
    /// Free blocks: offset -> size. Invariant: no two entries are adjacent
    /// (they would have been coalesced) and none overlap.
    free: BTreeMap<usize, usize>,
    /// Live blocks: offset -> size, for dealloc validation and leak checks.
    live: BTreeMap<usize, usize>,
    capacity: usize,
}

/// Thread-safe allocator handing out byte offsets within a segment.
pub struct SegAlloc {
    state: Mutex<AllocState>,
}

impl SegAlloc {
    /// Create an allocator over `capacity` bytes.
    pub fn new(capacity: usize) -> Self {
        let cap = capacity - capacity % MIN_ALIGN;
        let mut free = BTreeMap::new();
        if cap > 0 {
            free.insert(0, cap);
        }
        SegAlloc {
            state: Mutex::new(AllocState {
                free,
                live: BTreeMap::new(),
                capacity: cap,
            }),
        }
    }

    /// Allocate `size` bytes aligned to `align` (a power of two, at most
    /// forced up to [`MIN_ALIGN`]). Zero-size requests are rounded up to one
    /// granule so every allocation has a distinct offset.
    pub fn alloc(&self, size: usize, align: usize) -> Result<usize, OutOfSegmentMemory> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let align = align.max(MIN_ALIGN);
        let size = round_up(size.max(1), MIN_ALIGN);
        let mut st = self.state.lock().unwrap();
        // First fit: smallest offset whose block can hold an aligned range.
        let mut found = None;
        for (&off, &blk) in st.free.iter() {
            let aligned = round_up(off, align);
            let pad = aligned - off;
            if blk >= pad + size {
                found = Some((off, blk, aligned, pad));
                break;
            }
        }
        let Some((off, blk, aligned, pad)) = found else {
            let largest = st.free.values().copied().max().unwrap_or(0);
            return Err(OutOfSegmentMemory {
                requested: size,
                largest_free: largest,
            });
        };
        st.free.remove(&off);
        if pad > 0 {
            st.free.insert(off, pad);
        }
        let rest = blk - pad - size;
        if rest > 0 {
            st.free.insert(aligned + size, rest);
        }
        st.live.insert(aligned, size);
        Ok(aligned)
    }

    /// Free the block previously returned by [`alloc`](Self::alloc) at
    /// `offset`. Panics on a double free or a bogus offset.
    pub fn dealloc(&self, offset: usize) {
        let mut st = self.state.lock().unwrap();
        let size = st
            .live
            .remove(&offset)
            .unwrap_or_else(|| panic!("dealloc of unallocated offset {offset}"));
        // Coalesce with the previous free block if adjacent.
        let mut off = offset;
        let mut sz = size;
        if let Some((&poff, &psz)) = st.free.range(..offset).next_back() {
            if poff + psz == offset {
                st.free.remove(&poff);
                off = poff;
                sz += psz;
            }
        }
        // Coalesce with the next free block if adjacent.
        if let Some(&nsz) = st.free.get(&(offset + size)) {
            st.free.remove(&(offset + size));
            sz += nsz;
        }
        st.free.insert(off, sz);
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> usize {
        self.state.lock().unwrap().live.values().sum()
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.state.lock().unwrap().live.len()
    }

    /// Total free bytes (may be fragmented).
    pub fn free_bytes(&self) -> usize {
        self.state.lock().unwrap().free.values().sum()
    }

    /// Capacity managed by this allocator.
    pub fn capacity(&self) -> usize {
        self.state.lock().unwrap().capacity
    }
}

#[inline]
fn round_up(v: usize, align: usize) -> usize {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_aligned_disjoint_offsets() {
        let a = SegAlloc::new(1024);
        let x = a.alloc(16, 8).unwrap();
        let y = a.alloc(16, 8).unwrap();
        assert_ne!(x, y);
        assert!(x.is_multiple_of(8) && y.is_multiple_of(8));
        assert_eq!(a.live_blocks(), 2);
        assert_eq!(a.live_bytes(), 32);
    }

    #[test]
    fn zero_size_allocs_get_distinct_offsets() {
        let a = SegAlloc::new(256);
        let x = a.alloc(0, 1).unwrap();
        let y = a.alloc(0, 1).unwrap();
        assert_ne!(x, y);
    }

    #[test]
    fn large_alignment_respected() {
        let a = SegAlloc::new(4096);
        let _ = a.alloc(8, 8).unwrap();
        let x = a.alloc(64, 64).unwrap();
        assert_eq!(x % 64, 0);
    }

    #[test]
    fn exhaustion_reports_largest_free() {
        let a = SegAlloc::new(128);
        a.alloc(64, 8).unwrap();
        let err = a.alloc(128, 8).unwrap_err();
        assert_eq!(err.requested, 128);
        assert_eq!(err.largest_free, 64);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn free_coalesces_and_allows_reuse() {
        let a = SegAlloc::new(96);
        let x = a.alloc(32, 8).unwrap();
        let y = a.alloc(32, 8).unwrap();
        let z = a.alloc(32, 8).unwrap();
        // Full.
        assert!(a.alloc(8, 8).is_err());
        a.dealloc(x);
        a.dealloc(z);
        a.dealloc(y); // coalesces with both neighbours
        let big = a.alloc(96, 8).unwrap();
        assert_eq!(big, 0);
    }

    #[test]
    #[should_panic(expected = "dealloc of unallocated offset")]
    fn double_free_panics() {
        let a = SegAlloc::new(128);
        let x = a.alloc(8, 8).unwrap();
        a.dealloc(x);
        a.dealloc(x);
    }

    #[test]
    fn accounting_is_consistent() {
        let a = SegAlloc::new(1 << 12);
        let cap = a.capacity();
        let offs: Vec<_> = (0..10).map(|_| a.alloc(40, 8).unwrap()).collect();
        assert_eq!(a.live_bytes() + a.free_bytes(), cap);
        for o in offs {
            a.dealloc(o);
        }
        assert_eq!(a.live_blocks(), 0);
        assert_eq!(a.free_bytes(), cap);
    }
}
