//! Substrate stress tests: concurrent AM storms, mixed atomics and copies,
//! collectives under oversubscription, and network saturation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use gasnex::{AmoOp, GasnexConfig, NetConfig, Rank, World};

fn run_ranks(world: &Arc<World>, f: impl Fn(&World, Rank) + Sync) {
    std::thread::scope(|s| {
        for r in 0..world.ranks() {
            let world = Arc::clone(world);
            let f = &f;
            s.spawn(move || f(&world, Rank::from_idx(r)));
        }
    });
}

#[test]
fn am_storm_all_to_all() {
    let w = World::new(GasnexConfig::smp(8).with_segment_size(1 << 12));
    static HITS: AtomicU64 = AtomicU64::new(0);
    const PER_PAIR: u64 = 500;
    run_ranks(&w, |w, me| {
        for _ in 0..PER_PAIR {
            for t in 0..8u32 {
                w.send_am(Rank(t), me, |_| {
                    HITS.fetch_add(1, Ordering::Relaxed);
                });
            }
            w.poll_rank(me, 16);
        }
        // Drain until globally quiet.
        let team = w.world_team();
        w.barrier(&team, &mut || {
            w.poll_rank(me, 64);
        });
        while w.poll_rank(me, 64) > 0 {}
        w.barrier(&team, &mut || {
            w.poll_rank(me, 64);
        });
        while w.poll_rank(me, 64) > 0 {}
        w.barrier(&team, &mut || {
            w.poll_rank(me, 64);
        });
    });
    assert_eq!(HITS.load(Ordering::Relaxed), 8 * 8 * PER_PAIR);
    assert!(w.substrate_quiet());
}

#[test]
fn reply_chains_terminate() {
    // Each request triggers a reply which triggers a counter bump; chains
    // of depth 3.
    let w = World::new(GasnexConfig::smp(4).with_segment_size(1 << 12));
    static DEPTH3: AtomicU64 = AtomicU64::new(0);
    run_ranks(&w, |w, me| {
        for t in 0..4u32 {
            w.send_am(Rank(t), me, move |ctx| {
                ctx.reply(move |ctx2| {
                    ctx2.reply(move |_| {
                        DEPTH3.fetch_add(1, Ordering::Relaxed);
                    });
                });
            });
        }
        let team = w.world_team();
        for _ in 0..3 {
            w.barrier(&team, &mut || {
                w.poll_rank(me, 64);
            });
            while w.poll_rank(me, 64) > 0 {}
        }
    });
    assert_eq!(DEPTH3.load(Ordering::Relaxed), 16);
}

#[test]
fn mixed_amo_and_raw_access_remain_coherent() {
    // Hardware atomics through the AMO engine and direct word access from
    // other threads target the same segment words.
    let w = World::new(GasnexConfig::smp(4).with_segment_size(1 << 12));
    run_ranks(&w, |w, me| {
        let seg = w.segment(Rank(0));
        for i in 0..10_000u64 {
            gasnex::amo::execute(seg, 0, AmoOp::Add, 1, 0, false);
            if i % 1000 == 0 {
                // Concurrent raw read must observe a value within range.
                let v = seg.read_u64(0);
                assert!(v <= 40_000);
            }
        }
        let team = w.world_team();
        w.barrier(&team, &mut || {
            w.poll_rank(me, 8);
        });
        assert_eq!(seg.read_u64(0), 40_000);
    });
}

#[test]
fn network_saturation_delivers_everything() {
    let w = World::new(
        GasnexConfig::udp(4, 2)
            .with_segment_size(1 << 16)
            .with_net(NetConfig {
                latency_ns: 500,
                jitter_ns: 1500,
                ..NetConfig::default()
            }),
    );
    const N: u64 = 2_000;
    static DELIVERED: AtomicU64 = AtomicU64::new(0);
    run_ranks(&w, |w, me| {
        if me == Rank(0) {
            for _ in 0..N {
                w.net_inject(Box::new(|_| {
                    DELIVERED.fetch_add(1, Ordering::Relaxed);
                }));
            }
        }
        let team = w.world_team();
        w.barrier(&team, &mut || {
            w.poll_rank(me, 64);
        });
        while w.net().pending() > 0 {
            w.poll_rank(me, 64);
            std::thread::yield_now();
        }
        w.barrier(&team, &mut || {
            w.poll_rank(me, 64);
        });
    });
    assert_eq!(DELIVERED.load(Ordering::Relaxed), N);
    assert_eq!(w.net().delivered(), N);
    assert_eq!(w.net().injected(), N);
}

#[test]
fn collectives_oversubscribed_stress() {
    // 16 ranks on (likely) far fewer cores: the yield-based waits must keep
    // hundreds of collectives cheap and correct.
    let w = World::new(GasnexConfig::smp(16).with_segment_size(1 << 12));
    run_ranks(&w, |w, me| {
        let team = w.world_team();
        for round in 0..100u64 {
            let sum = w.allreduce(
                &team,
                me,
                me.idx() as u64 + round,
                &|a, b| a + b,
                &mut || {
                    w.poll_rank(me, 8);
                },
            );
            assert_eq!(sum, (0..16).sum::<u64>() + 16 * round);
        }
        let local = w.local_team(me);
        for _ in 0..50 {
            w.barrier(&local, &mut || {
                w.poll_rank(me, 8);
            });
        }
    });
}

#[test]
fn ready_queue_interleaved_producers_never_lose_or_duplicate_tokens() {
    // K producer threads race signal-driven token deposits into the
    // per-rank ReadyQueues under seeded yield schedules, mixing all three
    // registration/signal interleavings (route-then-signal,
    // signal-then-route, and route/yield/signal). Concurrent per-rank
    // drainers must observe every token exactly once, at its designated
    // rank, with each producer's per-rank subsequence in signal order —
    // and the number of wakeup tokens delivered must equal the number of
    // signals fired.
    use graphgen::SeededRng;
    use std::sync::Mutex;

    const PRODUCERS: u64 = 8;
    const PER: u64 = 400;
    const RANKS: usize = 4;
    let w = World::new(GasnexConfig::smp(RANKS).with_segment_size(1 << 12));
    let producers_done = AtomicU64::new(0);
    let signals_fired = AtomicU64::new(0);
    let drained: Vec<Mutex<Vec<u64>>> = (0..RANKS).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let w = Arc::clone(&w);
            let producers_done = &producers_done;
            let signals_fired = &signals_fired;
            s.spawn(move || {
                let mut r = SeededRng::seed_from_u64(0xC4A05 ^ p);
                for i in 0..PER {
                    let token = p * PER + i;
                    let target = Rank((token % RANKS as u64) as u32);
                    let ev = gasnex::EventCore::new();
                    match r.below(3) {
                        0 => {
                            w.route_signal(&ev, target, token);
                            ev.signal();
                        }
                        1 => {
                            // Already-signalled events deposit at routing.
                            ev.signal();
                            w.route_signal(&ev, target, token);
                        }
                        _ => {
                            w.route_signal(&ev, target, token);
                            std::thread::yield_now();
                            ev.signal();
                        }
                    }
                    signals_fired.fetch_add(1, Ordering::SeqCst);
                    if r.below(4) == 0 {
                        std::thread::yield_now();
                    }
                }
                producers_done.fetch_add(1, Ordering::SeqCst);
            });
        }
        for rk in 0..RANKS {
            let w = Arc::clone(&w);
            let producers_done = &producers_done;
            let drained = &drained;
            s.spawn(move || {
                let me = Rank(rk as u32);
                let mut got = Vec::new();
                let mut buf = Vec::new();
                loop {
                    w.drain_ready(me, &mut buf);
                    got.append(&mut buf);
                    // All deposits happen-before the producer-done bump, so
                    // once every producer is done an empty queue is final.
                    if producers_done.load(Ordering::SeqCst) == PRODUCERS && w.ready_queued(me) == 0
                    {
                        break;
                    }
                    std::thread::yield_now();
                }
                *drained[rk].lock().unwrap() = got;
            });
        }
    });

    let mut seen = std::collections::HashSet::new();
    let mut total = 0u64;
    for (rk, per_rank) in drained.iter().enumerate() {
        let got = per_rank.lock().unwrap();
        total += got.len() as u64;
        let mut last_per_producer = vec![None::<u64>; PRODUCERS as usize];
        for &token in got.iter() {
            assert_eq!(
                (token % RANKS as u64) as usize,
                rk,
                "token {token} surfaced at the wrong rank"
            );
            assert!(seen.insert(token), "token {token} delivered twice");
            let p = (token / PER) as usize;
            assert!(
                last_per_producer[p].is_none_or(|prev| prev < token),
                "producer {p}'s tokens out of signal order at rank {rk}"
            );
            last_per_producer[p] = Some(token);
        }
    }
    assert_eq!(
        total,
        signals_fired.load(Ordering::SeqCst),
        "wakeup tokens delivered must equal signals fired"
    );
    assert_eq!(total, PRODUCERS * PER, "no token may be lost");
    for rk in 0..RANKS {
        assert_eq!(w.ready_queued(Rank(rk as u32)), 0);
    }
}

#[test]
fn per_rank_allocators_are_independent() {
    let w = World::new(GasnexConfig::smp(4).with_segment_size(1 << 14));
    run_ranks(&w, |w, me| {
        let alloc = w.seg_alloc(me);
        let mut offs = Vec::new();
        for _ in 0..100 {
            offs.push(alloc.alloc(64, 8).unwrap());
        }
        for o in offs {
            alloc.dealloc(o);
        }
        assert_eq!(alloc.live_blocks(), 0);
    });
    for r in 0..4 {
        assert_eq!(
            w.seg_alloc(Rank(r)).free_bytes(),
            w.seg_alloc(Rank(r)).capacity()
        );
    }
}
