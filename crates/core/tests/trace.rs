//! Operation-lifecycle trace tests: byte-replayability of chaos traces
//! under the virtual clock, and the eager-vs-deferred differential — the
//! two runs must agree on every data-movement event and disagree only in
//! how notifications were delivered.

use gasnex::World;
use upcr::trace::{
    chrome_trace_json, count_notifications, parse_json, EventKind, OpKind, TraceBundle,
};
use upcr::{
    conjoin, launch, CompletionPath, FaultPlan, GasnexConfig, LibVersion, NetConfig, RuntimeConfig,
};

/// Drive a 2-node world to completion on one thread with network tracing
/// on, and export the wire-level trace as Chrome JSON. Single-threaded so
/// the virtual clock's advance order is a pure function of the seed.
fn chaos_trace_json(seed: u64, msgs: u64) -> String {
    let plan = FaultPlan::seeded(seed)
        .with_drops(150_000)
        .with_dups(80_000)
        .with_reorder(250_000, 9_000);
    let net = NetConfig {
        latency_ns: 1_000,
        jitter_ns: 700,
        ..NetConfig::default()
    }
    .with_virtual_clock()
    .with_faults(plan);
    let w = World::new(
        GasnexConfig::udp(2, 1)
            .with_segment_size(1 << 12)
            .with_net(net),
    );
    w.net().set_tracing(true);
    for _ in 0..msgs {
        w.net().inject(Box::new(|_| {}));
    }
    let mut spins = 0u64;
    while w.net().delivered() < msgs || w.net().pending() > 0 {
        w.net().poll(&w);
        spins += 1;
        assert!(spins < 1_000_000, "chaos run failed to terminate");
    }
    let bundle = TraceBundle {
        ranks: vec![],
        net: w.net().take_trace(),
    };
    chrome_trace_json(&bundle)
}

#[test]
fn chaos_trace_is_byte_replayable() {
    let a = chaos_trace_json(7, 48);
    let b = chaos_trace_json(7, 48);
    assert_eq!(a, b, "same seed must export byte-identical trace JSON");
    let c = chaos_trace_json(8, 48);
    assert_ne!(a, c, "a different seed should produce a different trace");
    // The chaos plan must actually have exercised the fault paths, or the
    // byte-identity above proves nothing interesting.
    parse_json(&a).expect("chaos trace must be valid JSON");
    assert!(a.contains("net:retry") || a.contains("net:dup") || a.contains("net:drop"));
}

/// Run the GUPS accumulation idiom (`f = conjoin(f, rput(..))`) on one SMP
/// rank with tracing on, returning the recorded events.
fn traced_smp_run(version: LibVersion) -> upcr::RankTrace {
    let cfg = RuntimeConfig::smp(1)
        .with_segment_size(1 << 16)
        .with_version(version);
    let mut out = launch(cfg, |u| {
        u.trace_enabled(true);
        let arr = u.new_array::<u64>(16);
        let mut f = u.make_future();
        for i in 0..16 {
            f = conjoin(f, u.rput(i as u64, arr.add(i as usize)));
        }
        f.wait();
        // Deferred-mode notifications resolve during progress; drain before
        // snapshotting so both versions capture the full lifecycle.
        u.barrier();
        u.take_trace()
    });
    out.pop().unwrap()
}

/// Data-movement projection: everything that is not a notification or a
/// progress-engine event. These must be identical across library versions.
fn data_movement(t: &upcr::RankTrace) -> Vec<(u64, OpKind, Option<u64>)> {
    t.events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Init => Some((e.op.id, e.op.kind, None)),
            EventKind::NetInject { msg } => Some((e.op.id, e.op.kind, Some(msg))),
            _ => None,
        })
        .collect()
}

/// Notification projection: (op id, path) per completion notification.
fn notifications(t: &upcr::RankTrace) -> Vec<(u64, CompletionPath)> {
    t.events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::Notify { path, .. } => Some((e.op.id, path)),
            _ => None,
        })
        .collect()
}

#[test]
fn eager_vs_defer_differ_only_in_notifications() {
    let eager = traced_smp_run(LibVersion::V2021_3_6Eager);
    let defer = traced_smp_run(LibVersion::V2021_3_0);

    // Identical operation structure: same op ids, same kinds, same wire
    // messages (none here — all local), in the same initiation order.
    assert_eq!(
        data_movement(&eager),
        data_movement(&defer),
        "library version must not change data-movement events"
    );

    // Same set of completed operations...
    let mut e_ops: Vec<u64> = notifications(&eager).iter().map(|&(id, _)| id).collect();
    let mut d_ops: Vec<u64> = notifications(&defer).iter().map(|&(id, _)| id).collect();
    e_ops.sort_unstable();
    d_ops.sort_unstable();
    assert_eq!(e_ops, d_ops, "both versions must complete the same ops");

    // ...but via opposite paths: the eager build notifies local puts (and
    // ready-elided conjoins) synchronously, 2021.3.0 defers every one.
    assert!(
        notifications(&eager)
            .iter()
            .all(|&(_, p)| p == CompletionPath::Eager),
        "eager build must notify local operations eagerly"
    );
    assert!(
        notifications(&defer)
            .iter()
            .all(|&(_, p)| p == CompletionPath::Deferred),
        "2021.3.0 build must defer every notification"
    );
    assert!(!notifications(&eager).is_empty());
}

#[test]
fn traced_multinode_run_exports_both_paths() {
    // 4 ranks over 2 nodes: same-node operations notify eagerly, cross-node
    // ones defer through the signal-driven engine. The merged export must
    // show both paths and parse as Chrome trace JSON.
    let cfg = RuntimeConfig::udp(4, 2).with_segment_size(1 << 16);
    let results = launch(cfg, |u| {
        u.trace_enabled(true);
        let arr = u.new_array::<u64>(8);
        let all: Vec<_> = (0..u.rank_n()).map(|r| u.broadcast(arr, r)).collect();
        let mut futs = Vec::new();
        for (r, a) in all.iter().enumerate() {
            futs.push(u.rput((r * 10 + u.rank_me()) as u64, a.add(u.rank_me())));
        }
        for f in futs {
            f.wait();
        }
        u.barrier();
        let net = if u.rank_me() == 0 {
            u.take_net_trace()
        } else {
            Vec::new()
        };
        (u.take_trace(), u.latency_report(), net)
    });

    let mut bundle = TraceBundle {
        ranks: Vec::new(),
        net: Vec::new(),
    };
    let mut merged = upcr::Histograms::new();
    for (trace, hist, net) in results {
        bundle.ranks.push(trace);
        merged.merge(&hist);
        if !net.is_empty() {
            bundle.net = net;
        }
    }

    let json = chrome_trace_json(&bundle);
    parse_json(&json).expect("export must be valid JSON");
    let (eager, deferred) = count_notifications(&json).unwrap();
    assert!(eager >= 1, "same-node puts should notify eagerly");
    assert!(deferred >= 1, "cross-node puts should defer");
    assert!(
        !bundle.net.is_empty(),
        "cross-node traffic must hit the wire"
    );

    // The histograms agree with the events: samples exist on both paths.
    let rows = merged.rows();
    assert!(rows
        .iter()
        .any(|r| r.path == CompletionPath::Eager && r.count > 0));
    assert!(rows
        .iter()
        .any(|r| r.path == CompletionPath::Deferred && r.count > 0));
}

#[test]
fn tracing_disabled_records_nothing() {
    let mut out = launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
        let arr = u.new_array::<u64>(4);
        u.rput(9u64, arr).wait();
        assert!(!u.is_tracing());
        u.take_trace()
    });
    let t = out.pop().unwrap();
    assert!(t.events.is_empty(), "disabled tracing must record nothing");
    assert_eq!(t.dropped, 0);
}
