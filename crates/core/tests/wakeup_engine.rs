//! End-to-end regression tests for the signal-driven completion engine.
//!
//! The structural claims, proven with counters rather than timing:
//!
//! * an off-node operation's completion arrives as a ready-queue wakeup —
//!   `event_wakeups` fires exactly once per operation;
//! * a progress quantum with K pending operations and one completed
//!   delivers that one notification without re-testing the other K
//!   (`polls_elided` accounts for every skipped re-test);
//! * legacy `V2021_3_0` deferral semantics are unchanged: notifications
//!   still fire only at a progress call, never eagerly at initiation.

use upcr::{launch, LibVersion, NetConfig, RuntimeConfig};

const K: u64 = 32;

#[test]
fn off_node_completions_arrive_as_wakeups() {
    let rt = RuntimeConfig::udp(2, 1)
        .with_version(LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16)
        .with_net(NetConfig {
            latency_ns: 200_000,
            jitter_ns: 0,
            ..NetConfig::default()
        });
    launch(rt, |u| {
        let mine = u.new_::<u64>(0);
        let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let target = targets[1 - u.rank_me()];
        u.barrier();
        if u.rank_me() == 0 {
            u.reset_stats();
            let mut f = upcr::make_future();
            for i in 0..K {
                f = upcr::conjoin(f, u.rput(i, target));
            }
            let s = u.stats();
            assert_eq!(
                s.deferred_enqueued, K,
                "every off-node op registers one waiter"
            );
            assert_eq!(
                s.event_wakeups, 0,
                "nothing delivered before its latency elapsed"
            );
            assert_eq!(s.pending_highwater, K);
            f.wait();
            let s = u.stats();
            assert_eq!(
                s.event_wakeups, K,
                "each op woke exactly once, via its token"
            );
            assert_eq!(s.rputs, K);
            assert_eq!(s.eager_notifications, 0, "off-node is never eager");
        }
        u.barrier();
    });
}

#[test]
fn one_completion_among_many_pending_wakes_exactly_one() {
    // Issue one rput, let its latency elapse, then issue K more whose
    // latency has not: a single progress quantum must deliver exactly the
    // one due notification and skip re-testing the K pending ones.
    let rt = RuntimeConfig::udp(2, 1)
        .with_version(LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16)
        .with_net(NetConfig {
            latency_ns: 3_000_000,
            jitter_ns: 0,
            ..NetConfig::default()
        });
    launch(rt, |u| {
        let mine = u.new_::<u64>(0);
        let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let target = targets[1 - u.rank_me()];
        u.barrier();
        if u.rank_me() == 0 {
            u.reset_stats();
            let first = u.rput(1u64, target);
            std::thread::sleep(std::time::Duration::from_millis(9));
            let rest: Vec<_> = (0..K).map(|i| u.rput(i, target)).collect();
            let before = u.stats();
            u.progress();
            let d = u.stats().since(&before);
            assert!(first.is_ready(), "the due operation completed");
            assert!(
                rest.iter().all(|f| !f.is_ready()),
                "the K pending ops did not"
            );
            assert_eq!(
                d.event_wakeups, 1,
                "exactly one wakeup for the one signalled event"
            );
            assert_eq!(d.polls_elided, K, "the K pending events were not re-tested");
            for f in rest {
                f.wait();
            }
            assert_eq!(u.stats().event_wakeups, K + 1);
        }
        u.barrier();
    });
}

#[test]
fn chaos_plan_preserves_version_notification_timing() {
    // An adversarial fault plan (drops + duplicates + reordering on the
    // virtual clock) must not change *when* each version is allowed to
    // notify: 2021.3.0 still never completes before a progress call, and
    // 2021.3.6-eager still observes on-node completions at initiation.
    let plan = upcr::FaultPlan::seeded(0xC8A05)
        .with_drops(200_000)
        .with_dups(120_000)
        .with_reorder(250_000, 4_000)
        .with_retry(2_000, 32_000, 6);
    let net = NetConfig {
        latency_ns: 800,
        jitter_ns: 300,
        ..NetConfig::default()
    }
    .with_virtual_clock()
    .with_faults(plan);

    for version in [LibVersion::V2021_3_0, LibVersion::V2021_3_6Eager] {
        let rt = RuntimeConfig::udp(4, 2)
            .with_version(version)
            .with_segment_size(1 << 16)
            .with_net(net);
        launch(rt, move |u| {
            let mine = u.new_::<u64>(0);
            let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
            u.barrier();
            if u.rank_me() == 0 {
                u.reset_stats();
                // On-node neighbour: the operation completes synchronously
                // in every version; only eager may *notify* at initiation.
                let f = u.rput(7u64, ptrs[1]);
                if version == LibVersion::V2021_3_0 {
                    assert!(!f.is_ready(), "2021.3.0 must not complete before progress");
                    assert_eq!(u.stats().eager_notifications, 0);
                    u.progress();
                } else {
                    assert!(
                        f.is_ready(),
                        "eager observes on-node completion at initiation"
                    );
                    assert_eq!(u.stats().eager_notifications, 1);
                }
                assert!(f.is_ready());

                // Off-node storm through drops, duplicates, and reordering:
                // every completion must still arrive as exactly one wakeup
                // token, in every version.
                let before = u.stats();
                let mut f = upcr::make_future();
                for i in 0..K {
                    f = upcr::conjoin(f, u.rput(i, ptrs[2]));
                }
                f.wait();
                let d = u.stats().since(&before);
                assert_eq!(d.rputs, K);
                assert_eq!(d.eager_notifications, 0, "off-node is never eager");
                assert_eq!(
                    d.event_wakeups, d.deferred_enqueued,
                    "wakeup tokens delivered must equal waiters registered"
                );
                assert_eq!(d.event_wakeups, K);
            }
            u.barrier();
            // Drain retransmissions and duplicate echoes so the substrate
            // quiesces before the world is torn down.
            while u.net_stats().pending > 0 {
                u.progress();
            }
            u.barrier();
            if u.rank_me() == 0 {
                let n = u.net_stats();
                assert!(n.drops_injected > 0, "the plan must actually drop");
                assert_eq!(n.retries, n.drops_injected);
                assert!(n.dup_suppressed > 0, "the plan must actually duplicate");
            }
        });
    }
}

#[test]
fn legacy_2021_3_0_deferral_semantics_unchanged() {
    // On-node operations complete synchronously; 2021.3.0 still defers the
    // *notification* to the next progress call. The signal-driven engine
    // changes how in-flight completions are discovered, never when a
    // notification is permitted to fire.
    let rt = RuntimeConfig::smp(2)
        .with_version(LibVersion::V2021_3_0)
        .with_segment_size(1 << 16);
    let out = launch(rt, |u| {
        u.barrier();
        let mut legacy_ok = true;
        if u.rank_me() == 0 {
            u.reset_stats();
            let p = u.new_::<u64>(7);
            let f = u.rput(42u64, p);
            legacy_ok &= !f.is_ready(); // deferred, despite synchronous completion
            let s = u.stats();
            legacy_ok &= s.deferred_enqueued == 1;
            legacy_ok &= s.eager_notifications == 0;
            u.progress();
            legacy_ok &= f.is_ready(); // delivered by the progress engine
                                       // A local synchronous op never touches the event machinery.
            legacy_ok &= u.stats().event_wakeups == 0;
            u.delete_(p);
        }
        u.barrier();
        legacy_ok
    });
    assert!(
        out[0],
        "2021.3.0 deferral semantics must be preserved bit-for-bit"
    );
}

#[test]
fn eager_2021_3_6_skips_both_queue_and_wakeup_machinery() {
    let rt = RuntimeConfig::smp(2)
        .with_version(LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16);
    let out = launch(rt, |u| {
        u.barrier();
        let mut eager_ok = true;
        if u.rank_me() == 0 {
            u.reset_stats();
            let p = u.new_::<u64>(7);
            let f = u.rput(42u64, p);
            eager_ok &= f.is_ready(); // eager: notified at initiation
            let s = u.stats();
            eager_ok &= s.eager_notifications == 1;
            eager_ok &= s.deferred_enqueued == 0;
            eager_ok &= s.event_wakeups == 0;
            u.delete_(p);
        }
        u.barrier();
        eager_ok
    });
    assert!(out[0]);
}
