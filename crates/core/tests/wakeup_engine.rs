//! End-to-end regression tests for the signal-driven completion engine.
//!
//! The structural claims, proven with counters rather than timing:
//!
//! * an off-node operation's completion arrives as a ready-queue wakeup —
//!   `event_wakeups` fires exactly once per operation;
//! * a progress quantum with K pending operations and one completed
//!   delivers that one notification without re-testing the other K
//!   (`polls_elided` accounts for every skipped re-test);
//! * legacy `V2021_3_0` deferral semantics are unchanged: notifications
//!   still fire only at a progress call, never eagerly at initiation.

use upcr::{launch, LibVersion, NetConfig, RuntimeConfig};

const K: u64 = 32;

#[test]
fn off_node_completions_arrive_as_wakeups() {
    let rt = RuntimeConfig::udp(2, 1)
        .with_version(LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16)
        .with_net(NetConfig {
            latency_ns: 200_000,
            jitter_ns: 0,
        });
    launch(rt, |u| {
        let mine = u.new_::<u64>(0);
        let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let target = targets[1 - u.rank_me()];
        u.barrier();
        if u.rank_me() == 0 {
            u.reset_stats();
            let mut f = upcr::make_future();
            for i in 0..K {
                f = upcr::conjoin(f, u.rput(i, target));
            }
            let s = u.stats();
            assert_eq!(
                s.deferred_enqueued, K,
                "every off-node op registers one waiter"
            );
            assert_eq!(
                s.event_wakeups, 0,
                "nothing delivered before its latency elapsed"
            );
            assert_eq!(s.pending_highwater, K);
            f.wait();
            let s = u.stats();
            assert_eq!(
                s.event_wakeups, K,
                "each op woke exactly once, via its token"
            );
            assert_eq!(s.rputs, K);
            assert_eq!(s.eager_notifications, 0, "off-node is never eager");
        }
        u.barrier();
    });
}

#[test]
fn one_completion_among_many_pending_wakes_exactly_one() {
    // Issue one rput, let its latency elapse, then issue K more whose
    // latency has not: a single progress quantum must deliver exactly the
    // one due notification and skip re-testing the K pending ones.
    let rt = RuntimeConfig::udp(2, 1)
        .with_version(LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16)
        .with_net(NetConfig {
            latency_ns: 3_000_000,
            jitter_ns: 0,
        });
    launch(rt, |u| {
        let mine = u.new_::<u64>(0);
        let targets: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let target = targets[1 - u.rank_me()];
        u.barrier();
        if u.rank_me() == 0 {
            u.reset_stats();
            let first = u.rput(1u64, target);
            std::thread::sleep(std::time::Duration::from_millis(9));
            let rest: Vec<_> = (0..K).map(|i| u.rput(i, target)).collect();
            let before = u.stats();
            u.progress();
            let d = u.stats().since(&before);
            assert!(first.is_ready(), "the due operation completed");
            assert!(
                rest.iter().all(|f| !f.is_ready()),
                "the K pending ops did not"
            );
            assert_eq!(
                d.event_wakeups, 1,
                "exactly one wakeup for the one signalled event"
            );
            assert_eq!(d.polls_elided, K, "the K pending events were not re-tested");
            for f in rest {
                f.wait();
            }
            assert_eq!(u.stats().event_wakeups, K + 1);
        }
        u.barrier();
    });
}

#[test]
fn legacy_2021_3_0_deferral_semantics_unchanged() {
    // On-node operations complete synchronously; 2021.3.0 still defers the
    // *notification* to the next progress call. The signal-driven engine
    // changes how in-flight completions are discovered, never when a
    // notification is permitted to fire.
    let rt = RuntimeConfig::smp(2)
        .with_version(LibVersion::V2021_3_0)
        .with_segment_size(1 << 16);
    let out = launch(rt, |u| {
        u.barrier();
        let mut legacy_ok = true;
        if u.rank_me() == 0 {
            u.reset_stats();
            let p = u.new_::<u64>(7);
            let f = u.rput(42u64, p);
            legacy_ok &= !f.is_ready(); // deferred, despite synchronous completion
            let s = u.stats();
            legacy_ok &= s.deferred_enqueued == 1;
            legacy_ok &= s.eager_notifications == 0;
            u.progress();
            legacy_ok &= f.is_ready(); // delivered by the progress engine
                                       // A local synchronous op never touches the event machinery.
            legacy_ok &= u.stats().event_wakeups == 0;
            u.delete_(p);
        }
        u.barrier();
        legacy_ok
    });
    assert!(
        out[0],
        "2021.3.0 deferral semantics must be preserved bit-for-bit"
    );
}

#[test]
fn eager_2021_3_6_skips_both_queue_and_wakeup_machinery() {
    let rt = RuntimeConfig::smp(2)
        .with_version(LibVersion::V2021_3_6Eager)
        .with_segment_size(1 << 16);
    let out = launch(rt, |u| {
        u.barrier();
        let mut eager_ok = true;
        if u.rank_me() == 0 {
            u.reset_stats();
            let p = u.new_::<u64>(7);
            let f = u.rput(42u64, p);
            eager_ok &= f.is_ready(); // eager: notified at initiation
            let s = u.stats();
            eager_ok &= s.eager_notifications == 1;
            eager_ok &= s.deferred_enqueued == 0;
            eager_ok &= s.event_wakeups == 0;
            u.delete_(p);
        }
        u.barrier();
        eager_ok
    });
    assert!(out[0]);
}
