//! SPMD integration tests for the `upcr` runtime: RMA, atomics, RPC,
//! completions, and version semantics, all through the public API.

use std::sync::atomic::{AtomicU64, Ordering};

use upcr::{
    conjoin, launch, make_future, operation_cx, remote_cx, source_cx, LibVersion, Promise, Rank,
    RuntimeConfig,
};

fn smp(ranks: usize) -> RuntimeConfig {
    RuntimeConfig::smp(ranks).with_segment_size(1 << 20)
}

fn two_nodes(ranks: usize) -> RuntimeConfig {
    RuntimeConfig::udp(ranks, ranks / 2)
        .with_segment_size(1 << 20)
        .with_net(upcr::NetConfig {
            latency_ns: 0,
            jitter_ns: 0,
            ..upcr::NetConfig::default()
        })
}

#[test]
fn rput_rget_roundtrip_all_pairs() {
    launch(smp(4), |u| {
        let mine = u.new_::<u64>(0);
        // Everyone learns everyone's pointer via broadcast.
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
        // Each rank writes its id+1 into the next rank's cell.
        let next = (u.rank_me() + 1) % 4;
        u.rput(u.rank_me() as u64 + 1, ptrs[next]).wait();
        u.barrier();
        let prev = (u.rank_me() + 3) % 4;
        assert_eq!(u.rget(mine).wait(), prev as u64 + 1);
        // And read someone else's cell too.
        assert_eq!(u.rget(ptrs[next]).wait(), u.rank_me() as u64 + 1);
    });
}

#[test]
fn eager_local_rput_is_immediately_ready_with_zero_allocs() {
    launch(smp(2), |u| {
        let p = u.new_::<u64>(0);
        u.barrier();
        u.reset_stats();
        let f = u.rput(7, p);
        assert!(f.is_ready(), "eager local rput must return a ready future");
        let s = u.stats();
        assert_eq!(
            s.cell_allocs, 0,
            "ready future<()> must reuse the shared cell"
        );
        assert_eq!(s.deferred_enqueued, 0);
        assert_eq!(s.eager_notifications, 1);
        assert_eq!(s.legacy_extra_allocs, 0);
        u.barrier();
    });
}

#[test]
fn defer_version_defers_until_progress() {
    let cfg = smp(2).with_version(LibVersion::V2021_3_6Defer);
    launch(cfg, |u| {
        let p = u.new_::<u64>(0);
        u.barrier();
        u.reset_stats();
        let f = u.rput(7, p);
        assert!(
            !f.is_ready(),
            "deferred completion must not be ready at initiation"
        );
        // The data itself has already moved (shared-memory bypass).
        assert_eq!(
            u.local(p).get(),
            7,
            "data moved despite deferred notification"
        );
        f.wait();
        let s = u.stats();
        assert_eq!(s.deferred_enqueued, 1);
        assert_eq!(s.eager_notifications, 0);
        assert_eq!(s.cell_allocs, 1);
        u.barrier();
    });
}

#[test]
fn legacy_2021_3_0_performs_extra_alloc() {
    let cfg = smp(1).with_version(LibVersion::V2021_3_0);
    launch(cfg, |u| {
        let p = u.new_::<u64>(0);
        u.reset_stats();
        let f = u.rput(1, p);
        assert!(!f.is_ready());
        f.wait();
        let s = u.stats();
        assert_eq!(s.legacy_extra_allocs, 1);
        assert_eq!(s.deferred_enqueued, 1);
        u.rget(p).wait();
        assert_eq!(u.stats().legacy_extra_allocs, 2);
    });
}

#[test]
fn explicit_eager_factory_works_under_defer_default() {
    let cfg = smp(1).with_version(LibVersion::V2021_3_6Defer);
    launch(cfg, |u| {
        let p = u.new_::<u64>(0);
        let f = u.rput_with(5, p, operation_cx::as_eager_future());
        assert!(
            f.is_ready(),
            "as_eager_future must be honored in the 2021.3.6 snapshot"
        );
        let g = u.rput_with(6, p, operation_cx::as_defer_future());
        assert!(!g.is_ready());
        g.wait();
    });
}

#[test]
fn explicit_defer_factory_works_under_eager_default() {
    launch(smp(1), |u| {
        let p = u.new_::<u64>(0);
        let f = u.rput_with(5, p, operation_cx::as_defer_future());
        assert!(
            !f.is_ready(),
            "as_defer_future must defer even under eager default"
        );
        f.wait();
        assert_eq!(u.rget(p).wait(), 5);
    });
}

#[test]
fn eager_factory_panics_under_2021_3_0() {
    let result = std::panic::catch_unwind(|| {
        let cfg = smp(1).with_version(LibVersion::V2021_3_0);
        launch(cfg, |u| {
            let p = u.new_::<u64>(0);
            let _ = u.rput_with(5, p, operation_cx::as_eager_future());
        });
    });
    assert!(
        result.is_err(),
        "as_eager_* must not exist under 2021.3.0 semantics"
    );
}

#[test]
fn remote_rput_never_completes_synchronously() {
    launch(two_nodes(2), |u| {
        let mine = u.new_::<u64>(0);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let other = ptrs[1 - u.rank_me()];
        u.reset_stats();
        if u.rank_me() == 0 {
            assert!(!u.is_local(other), "cross-node pointer must not be local");
            let f = u.rput(99, other);
            assert!(!f.is_ready(), "off-node rput must complete asynchronously");
            f.wait();
            assert_eq!(u.stats().net_injected, 1);
        }
        u.barrier();
        if u.rank_me() == 1 {
            assert_eq!(u.local(mine).get(), 99);
        }
    });
}

#[test]
fn remote_rget_reads_across_nodes() {
    launch(two_nodes(4), |u| {
        let mine = u.new_::<u64>(1000 + u.rank_me() as u64);
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();
        for (r, &p) in ptrs.iter().enumerate() {
            assert_eq!(u.rget(p).wait(), 1000 + r as u64);
        }
        u.barrier();
    });
}

#[test]
fn remote_cx_rpc_runs_on_target_after_data_arrival() {
    static HITS: AtomicU64 = AtomicU64::new(0);
    launch(smp(2), |u| {
        let mine = u.new_::<u64>(0);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        if u.rank_me() == 0 {
            u.rput_with(
                42,
                ptrs[1],
                operation_cx::as_future()
                    | remote_cx::as_rpc(|| {
                        // Runs on rank 1; by remote-completion semantics the
                        // data must already be visible.
                        HITS.fetch_add(1, Ordering::SeqCst);
                    }),
            )
            .0
            .wait();
        }
        // A barrier alone does not force the target to run its AM queue
        // (the last arriver releases without polling); drive progress until
        // the RPC lands.
        while HITS.load(Ordering::SeqCst) == 0 {
            u.progress();
        }
        assert_eq!(HITS.load(Ordering::SeqCst), 1);
        if u.rank_me() == 1 {
            assert_eq!(u.local(mine).get(), 42);
        }
        u.barrier();
    });
}

#[test]
fn source_and_operation_futures_compose() {
    launch(smp(1), |u| {
        let p = u.new_::<u64>(0);
        let (src, op) = u.rput_with(3, p, source_cx::as_future() | operation_cx::as_future());
        assert!(src.is_ready() && op.is_ready());
        // Deferred flavours of both.
        let (src, op) = u.rput_with(
            4,
            p,
            source_cx::as_defer_future() | operation_cx::as_defer_future(),
        );
        assert!(!src.is_ready() && !op.is_ready());
        op.wait();
        src.wait();
    });
}

#[test]
fn promise_tracks_many_rputs_eager_and_defer() {
    for version in [LibVersion::V2021_3_6Eager, LibVersion::V2021_3_6Defer] {
        let cfg = smp(2).with_version(version);
        launch(cfg, |u| {
            let arr = u.new_array::<u64>(10);
            let target = u.broadcast(arr, 0);
            u.barrier();
            if u.rank_me() == 1 {
                let pr = Promise::new();
                for i in 0..10u64 {
                    u.rput_with(i * i, target.add(i as usize), operation_cx::as_promise(&pr));
                }
                pr.finalize().wait();
            }
            u.barrier();
            if u.rank_me() == 0 {
                for i in 0..10u64 {
                    assert_eq!(u.local(arr.add(i as usize)).get(), i * i);
                }
            }
            u.barrier();
        });
    }
}

#[test]
fn eager_promise_elides_registration() {
    launch(smp(1), |u| {
        let p = u.new_::<u64>(0);
        let pr = Promise::new();
        u.reset_stats();
        for _ in 0..5 {
            u.rput_with(1, p, operation_cx::as_promise(&pr));
        }
        assert_eq!(
            pr.deps(),
            1,
            "eager completion must elide promise registration"
        );
        assert_eq!(u.stats().deferred_enqueued, 0);
        assert!(pr.finalize().is_ready());
    });
}

#[test]
fn valued_promise_from_rget() {
    launch(smp(2), |u| {
        let mine = u.new_::<u64>(7 * (1 + u.rank_me() as u64));
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let other = ptrs[1 - u.rank_me()];
        u.barrier();
        // The operation registers itself on the promise (or elides the
        // registration entirely under eager completion); the user only
        // finalizes.
        let pr = Promise::<u64>::with_value();
        u.rget_with(other, operation_cx::as_promise(&pr));
        let f = pr.finalize();
        assert_eq!(f.wait(), 7 * (1 + (1 - u.rank_me()) as u64));
        u.barrier();
    });
}

#[test]
fn lpc_completion_runs() {
    launch(smp(1), |u| {
        let p = u.new_::<u64>(0);
        let flag = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let fl = std::rc::Rc::clone(&flag);
        u.rput_with(9, p, operation_cx::as_lpc(move |_| fl.set(1)));
        assert_eq!(flag.get(), 1, "eager LPC runs inline");
        let fl = std::rc::Rc::clone(&flag);
        u.rput_with(
            10,
            p,
            operation_cx::as_lpc(move |_| fl.set(2)) | operation_cx::as_defer_future(),
        )
        .1
        .wait();
        assert_eq!(flag.get(), 2);
    });
}

#[test]
fn bulk_put_and_get() {
    launch(two_nodes(2), |u| {
        let arr = u.new_array::<u64>(64);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            let data: Vec<u64> = (0..64).map(|i| i * 3).collect();
            u.rput_slice(&data, ptrs[1]).wait();
        }
        u.barrier();
        let got = u.rget_vec(ptrs[1], 64).wait();
        assert_eq!(got, (0..64).map(|i| i * 3).collect::<Vec<u64>>());
        u.barrier();
    });
}

#[test]
fn conjoining_loop_matches_paper_idiom_across_versions() {
    for version in LibVersion::ALL {
        let cfg = smp(2).with_version(version);
        launch(cfg, |u| {
            let arr = u.new_array::<u64>(16);
            let target = u.broadcast(arr, 0);
            u.barrier();
            if u.rank_me() == 1 {
                u.reset_stats();
                let mut f = make_future();
                for i in 0..16u64 {
                    f = conjoin(f, u.rput(i + 1, target.add(i as usize)));
                }
                f.wait();
                let s = u.stats();
                match version {
                    LibVersion::V2021_3_6Eager => {
                        assert_eq!(s.when_all_nodes, 0, "eager conjoin must build no graph");
                        assert_eq!(s.when_all_fast, 16);
                        assert_eq!(s.cell_allocs, 0);
                    }
                    LibVersion::V2021_3_6Defer => {
                        // The optimization exists but only the first conjoin
                        // (against the ready make_future base) can fire; every
                        // deferred op future forces a graph node after that.
                        assert_eq!(s.when_all_fast, 1);
                        assert_eq!(s.when_all_nodes, 15);
                    }
                    LibVersion::V2021_3_0 => {
                        assert_eq!(s.when_all_fast, 0, "2021.3.0 has no when_all fast path");
                        assert_eq!(s.when_all_nodes, 16, "a graph node per conjoined op");
                    }
                }
            }
            u.barrier();
            if u.rank_me() == 0 {
                for i in 0..16u64 {
                    assert_eq!(u.local(arr.add(i as usize)).get(), i + 1);
                }
            }
            u.barrier();
        });
    }
}

#[test]
fn atomics_concurrent_fetch_add_exact() {
    launch(smp(8), |u| {
        let counter = u.new_::<u64>(0);
        let target = u.broadcast(counter, 0);
        let ad = u.atomic_domain::<u64>();
        u.barrier();
        let mut seen = Vec::new();
        for _ in 0..1000 {
            seen.push(ad.fetch_add(target, 1).wait());
        }
        u.barrier();
        if u.rank_me() == 0 {
            assert_eq!(u.local(target).get(), 8000);
        }
        // Fetched values are distinct per op (global uniqueness).
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), seen.len());
        u.barrier();
    });
}

#[test]
fn nonfetching_and_into_atomics() {
    launch(smp(2), |u| {
        let word = u.new_::<u64>(100);
        let result = u.new_::<u64>(0);
        let target = u.broadcast(word, 0);
        let ad = u.atomic_domain::<u64>();
        u.barrier();
        if u.rank_me() == 1 {
            u.reset_stats();
            // Non-fetching add: unit future, eager, zero allocs.
            let f = ad.add(target, 5);
            assert!(f.is_ready());
            assert_eq!(u.stats().cell_allocs, 0);
            // Fetch-into: prior value lands in local memory, future is unit.
            let g = ad.fetch_add_into(target, 10, result);
            assert!(g.is_ready());
            assert_eq!(u.local(result).get(), 105);
            assert_eq!(
                u.stats().cell_allocs,
                0,
                "fetch_*_into must not allocate cells"
            );
            // Classic fetching op must allocate the value cell.
            let prior = ad.fetch_add(target, 1).wait();
            assert_eq!(prior, 115);
            assert!(u.stats().cell_allocs >= 1);
        }
        u.barrier();
        if u.rank_me() == 0 {
            assert_eq!(u.local(word).get(), 116);
        }
        u.barrier();
    });
}

#[test]
fn fetch_into_unavailable_in_legacy() {
    let result = std::panic::catch_unwind(|| {
        let cfg = smp(1).with_version(LibVersion::V2021_3_0);
        launch(cfg, |u| {
            let a = u.new_::<u64>(0);
            let b = u.new_::<u64>(0);
            let ad = u.atomic_domain::<u64>();
            let _ = ad.fetch_add_into(a, 1, b);
        });
    });
    assert!(result.is_err());
}

#[test]
fn signed_atomics_and_min_max() {
    launch(smp(1), |u| {
        let w = u.new_::<i64>(5);
        let ad = u.atomic_domain::<i64>();
        ad.min(w, -3).wait();
        assert_eq!(ad.load(w).wait(), -3);
        ad.max(w, 10).wait();
        assert_eq!(ad.load(w).wait(), 10);
        assert_eq!(ad.exchange(w, 1).wait(), 10);
        assert_eq!(ad.compare_exchange(w, 1, 2).wait(), 1);
        assert_eq!(
            ad.compare_exchange(w, 1, 3).wait(),
            2,
            "failed CAS returns current"
        );
        assert_eq!(ad.fetch_sub(w, 7).wait(), 2);
        assert_eq!(ad.load(w).wait(), -5);
    });
}

#[test]
fn remote_atomics_cross_node() {
    launch(two_nodes(4), |u| {
        let counter = u.new_::<u64>(0);
        let target = u.broadcast(counter, 0);
        let ad = u.atomic_domain::<u64>();
        u.barrier();
        u.reset_stats();
        let f = ad.fetch_add(target, 1 << (8 * u.rank_me()));
        if !u.is_local(target) {
            assert!(
                !f.is_ready(),
                "cross-node AMO must not complete synchronously"
            );
        }
        f.wait();
        u.barrier();
        if u.rank_me() == 0 {
            assert_eq!(u.local(target).get(), 0x0101_0101);
        }
        u.barrier();
    });
}

#[test]
fn rpc_roundtrip_and_side_effects() {
    static SIDE: AtomicU64 = AtomicU64::new(0);
    launch(smp(4), |u| {
        let me = u.rank_me();
        let target = Rank(((me + 1) % 4) as u32);
        let v = u.rpc(target, move || (me * 10) as u64).wait();
        assert_eq!(v, (me * 10) as u64, "rpc returns the callable's result");
        u.rpc_ff(target, || {
            SIDE.fetch_add(1, Ordering::SeqCst);
        });
        // Drive progress until every rank's fire-and-forget RPC has landed.
        while SIDE.load(Ordering::SeqCst) < 4 {
            u.progress();
        }
        assert_eq!(SIDE.load(Ordering::SeqCst), 4);
        u.barrier();
    });
}

#[test]
fn rpc_to_self_is_asynchronous() {
    launch(smp(1), |u| {
        let f = u.rpc(Rank(0), || 5u64);
        assert!(!f.is_ready(), "self-RPC must still be queued, not inline");
        assert_eq!(f.wait(), 5);
    });
}

#[test]
fn rpc_across_nodes_with_latency() {
    let cfg = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 20)
        .with_net(upcr::NetConfig {
            latency_ns: 100_000,
            jitter_ns: 10_000,
            ..upcr::NetConfig::default()
        });
    launch(cfg, |u| {
        if u.rank_me() == 0 {
            assert_eq!(u.rpc(Rank(1), || 77u64).wait(), 77);
        }
        u.barrier();
    });
}

#[test]
fn then_chain_over_communication() {
    launch(smp(2), |u| {
        let mine = u.new_::<u64>(10 * (1 + u.rank_me() as u64));
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        let other = ptrs[1 - u.rank_me()];
        u.barrier();
        // rget -> increment -> rput back, as in the paper's §II example.
        let other2 = other;
        let done = u
            .rget(other)
            .then_fut(move |v| upcr::api::rput(v + 1, other2));
        done.wait();
        u.barrier();
        let expected = 10 * (1 + u.rank_me() as u64) + 1;
        assert_eq!(u.local(mine).get(), expected);
        u.barrier();
    });
}

#[test]
fn manual_localization_pattern() {
    launch(smp(4), |u| {
        let arr = u.new_array::<u64>(4);
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(arr, r)).collect();
        u.barrier();
        // Write slot[me] of every rank's array, downcasting when local.
        for (r, &p) in ptrs.iter().enumerate() {
            let dest = p.add(u.rank_me());
            if u.is_local(dest) {
                u.local(dest).set(u.rank_me() as u64 + 100);
            } else {
                u.rput(u.rank_me() as u64 + 100, dest).wait();
            }
            let _ = r;
        }
        u.barrier();
        for i in 0..4 {
            assert_eq!(u.local(arr.add(i)).get(), i as u64 + 100);
        }
        u.barrier();
    });
}

#[test]
fn allocation_reuse_after_delete() {
    launch(smp(1), |u| {
        let a = u.new_::<u64>(1);
        let a_off = a.offset();
        u.delete_(a);
        let b = u.new_::<u64>(2);
        assert_eq!(b.offset(), a_off, "allocator must reuse the freed block");
        // Fresh allocation must be zero-initialized then written: verify
        // new_ stored the value.
        assert_eq!(u.local(b).get(), 2);
        u.delete_(b);
    });
}

#[test]
fn collectives_suite() {
    launch(smp(5), |u| {
        let me = u.rank_me() as u64;
        assert_eq!(u.allreduce_sum_u64(me + 1), 15);
        assert_eq!(u.allreduce_max_u64(me), 4);
        assert_eq!(u.allreduce_min_u64(me + 10), 10);
        let s = u.allreduce_sum_f64(0.5);
        assert!((s - 2.5).abs() < 1e-12);
        for root in 0..5 {
            let v = u.broadcast(me * 2, root);
            assert_eq!(v, root as u64 * 2);
        }
    });
}

#[test]
fn local_team_reflects_topology() {
    launch(two_nodes(4), |u| {
        let lt = u.local_team();
        assert_eq!(lt.size(), 2);
        let node = u.rank_me() / 2;
        assert_eq!(lt.member(0), Rank((node * 2) as u32));
        // Co-located ranks are addressable, far ranks are not.
        let buddy = Rank((u.rank_me() ^ 1) as u32);
        let far = Rank(((u.rank_me() + 2) % 4) as u32);
        let mine = u.new_::<u64>(0);
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();
        assert!(u.is_local(ptrs[buddy.idx()]));
        assert!(!u.is_local(ptrs[far.idx()]));
        u.barrier();
    });
}

#[test]
fn quiesce_drains_fire_and_forget() {
    static HITS: AtomicU64 = AtomicU64::new(0);
    launch(smp(4), |u| {
        // Send rpc_ffs and return immediately without waiting: the runtime's
        // exit quiesce must still deliver all of them.
        for r in 0..4 {
            u.rpc_ff(Rank(r), || {
                HITS.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(HITS.load(Ordering::SeqCst), 16);
}

#[test]
fn launch_returns_per_rank_results() {
    let out = launch(smp(3), |u| u.rank_me() * u.rank_me());
    assert_eq!(out, vec![0, 1, 4]);
}

#[test]
fn smp_conduit_assumes_all_local_in_new_versions() {
    launch(smp(2), |u| {
        let mine = u.new_::<u64>(0);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(mine, r)).collect();
        assert!(u.is_local(ptrs[1 - u.rank_me()]));
        u.barrier();
    });
}
