//! Tests for the extended runtime API: distributed objects, team splitting,
//! asynchronous barriers, and vector-index-strided RMA.

use std::sync::atomic::{AtomicU64, Ordering};

use upcr::{launch, DistObject, LibVersion, Rank, RuntimeConfig, Strided};

fn smp(ranks: usize) -> RuntimeConfig {
    RuntimeConfig::smp(ranks).with_segment_size(1 << 20)
}

// ---------------------------------------------------------------------------
// dist_object
// ---------------------------------------------------------------------------

#[test]
fn dist_object_fetch_roundtrip() {
    launch(smp(4), |u| {
        let d = DistObject::new(u, 100 + u.rank_me() as u64);
        u.barrier(); // all constructed
        for r in 0..4 {
            let v = d.fetch(u, Rank(r)).wait();
            assert_eq!(v, 100 + r as u64);
        }
        assert_eq!(*d.local(), 100 + u.rank_me() as u64);
        u.barrier();
    });
}

#[test]
fn dist_object_fetch_is_asynchronous_even_locally() {
    launch(smp(2), |u| {
        let d = DistObject::new(u, 5u64);
        u.barrier();
        let f = d.fetch(u, u.me());
        assert!(!f.is_ready(), "fetch must be an RPC, never synchronous");
        assert_eq!(f.wait(), 5);
        u.barrier();
    });
}

#[test]
fn multiple_dist_objects_share_creation_order_ids() {
    launch(smp(3), |u| {
        let a = DistObject::new(u, u.rank_me() as u64);
        let b = DistObject::new(u, (u.rank_me() * 2) as u64);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        u.barrier();
        // Fetching through either handle hits the right directory entry.
        assert_eq!(a.fetch(u, Rank(2)).wait(), 2);
        assert_eq!(b.fetch(u, Rank(2)).wait(), 4);
        u.barrier();
    });
}

#[test]
fn dist_object_bootstraps_global_pointers() {
    // The canonical UPC++ idiom: exchange global pointers via dist_object
    // instead of broadcast.
    launch(smp(4), |u| {
        let mine = u.new_::<u64>(0);
        let dir = DistObject::new(u, mine.encode());
        u.barrier();
        let next = (u.rank_me() + 1) % 4;
        let theirs = upcr::GlobalPtr::<u64>::decode(dir.fetch(u, Rank(next as u32)).wait());
        u.rput(u.rank_me() as u64 + 1, theirs).wait();
        u.barrier();
        assert_eq!(u.local(mine).get(), ((u.rank_me() + 3) % 4) as u64 + 1);
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// team split
// ---------------------------------------------------------------------------

#[test]
fn split_by_parity_forms_two_teams() {
    launch(smp(6), |u| {
        let color = (u.rank_me() % 2) as u64;
        let team = u.split(color, u.rank_me() as u64);
        assert_eq!(team.size(), 3);
        let expected: Vec<Rank> = (0..6)
            .filter(|r| r % 2 == u.rank_me() % 2)
            .map(|r| Rank(r as u32))
            .collect();
        let members: Vec<Rank> = team.iter().collect();
        assert_eq!(members, expected);
        // Team-scoped collective works.
        let sum = u.allreduce_sum_u64_team(&team, u.rank_me() as u64);
        let expect: u64 = expected.iter().map(|r| r.idx() as u64).sum();
        assert_eq!(sum, expect);
        u.barrier();
    });
}

#[test]
fn split_key_controls_member_order() {
    launch(smp(4), |u| {
        // Reverse order: key = -rank.
        let key = (100 - u.rank_me()) as u64;
        let team = u.split(0, key);
        let members: Vec<Rank> = team.iter().collect();
        assert_eq!(members, vec![Rank(3), Rank(2), Rank(1), Rank(0)]);
        assert_eq!(team.rank_of(u.me()), Some(3 - u.rank_me()));
        u.barrier();
    });
}

#[test]
fn repeated_and_nested_splits() {
    launch(smp(8), |u| {
        let me = u.rank_me();
        // First split: quadrants.
        let quad = u.split((me / 4) as u64, me as u64);
        assert_eq!(quad.size(), 4);
        // Nested split of the quadrant by parity.
        let pair = u.split_team(&quad, (me % 2) as u64, me as u64);
        assert_eq!(pair.size(), 2);
        let sum = u.allreduce_sum_u64_team(&pair, 1);
        assert_eq!(sum, 2);
        // A second independent split of the world team must not collide
        // with the first (epoch advanced).
        let all = u.split(7, me as u64);
        assert_eq!(all.size(), 8);
        u.barrier();
    });
}

#[test]
fn team_broadcast_and_gather() {
    launch(smp(6), |u| {
        let team = u.split((u.rank_me() % 3) as u64, u.rank_me() as u64);
        assert_eq!(team.size(), 2);
        let v = u.broadcast_team(&team, u.rank_me() as u64 * 10, 0);
        assert_eq!(
            v,
            (u.rank_me() % 3) as u64 * 10,
            "root is the lowest rank of the color"
        );
        let gathered = u.gather_all_team(&team, u.rank_me() as u64);
        assert_eq!(gathered.len(), 2);
        assert_eq!(gathered[team.rank_of(u.me()).unwrap()], u.rank_me() as u64);
        u.barrier();
    });
}

#[test]
fn world_gather_all() {
    launch(smp(5), |u| {
        let g = u.gather_all(u.rank_me() as u64 * 3);
        assert_eq!(g, vec![0, 3, 6, 9, 12]);
    });
}

// ---------------------------------------------------------------------------
// barrier_async
// ---------------------------------------------------------------------------

#[test]
fn barrier_async_overlaps_work() {
    static ENTERED: AtomicU64 = AtomicU64::new(0);
    launch(smp(4), |u| {
        ENTERED.fetch_add(1, Ordering::SeqCst);
        let f = u.barrier_async();
        assert!(!f.is_ready(), "async barrier never completes synchronously");
        // Overlappable work while the barrier completes.
        let p = u.new_::<u64>(0);
        u.rput(9, p).wait();
        f.wait();
        // Once the future is ready, every rank must have entered.
        assert_eq!(ENTERED.load(Ordering::SeqCst), 4);
        u.barrier();
    });
}

#[test]
fn consecutive_async_barriers_use_distinct_epochs() {
    launch(smp(3), |u| {
        for _ in 0..10 {
            let f = u.barrier_async();
            f.wait();
        }
        u.barrier();
    });
}

#[test]
fn async_barrier_on_split_team() {
    launch(smp(4), |u| {
        let team = u.split((u.rank_me() % 2) as u64, u.rank_me() as u64);
        let f = u.barrier_async_team(&team);
        f.wait();
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// VIS: strided and fragmented RMA
// ---------------------------------------------------------------------------

#[test]
fn strided_put_get_roundtrip_local() {
    launch(smp(2), |u| {
        // A 4x8 "matrix" at rank 1; write a 4x3 sub-block starting at
        // column 2 (stride 8, block_len 3, blocks 4).
        let arr = u.new_array::<u64>(32);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            let shape = Strided {
                block_len: 3,
                stride: 8,
                blocks: 4,
            };
            let data: Vec<u64> = (1..=12).collect();
            let f = u.rput_strided(&data, ptrs[1].add(2), shape);
            assert!(f.is_ready(), "local strided put completes eagerly");
            let back = u.rget_strided(ptrs[1].add(2), shape).wait();
            assert_eq!(back, data);
        }
        u.barrier();
        if u.rank_me() == 1 {
            // Row r, columns 2..5 hold r*3+1 .. r*3+3; everything else 0.
            for row in 0..4 {
                for col in 0..8 {
                    let expect = if (2..5).contains(&col) {
                        (row * 3 + col - 1) as u64
                    } else {
                        0
                    };
                    assert_eq!(
                        u.local(arr.add(row * 8 + col)).get(),
                        expect,
                        "({row},{col})"
                    );
                }
            }
        }
        u.barrier();
    });
}

#[test]
fn strided_transfer_cross_node() {
    let cfg = RuntimeConfig::udp(2, 1).with_segment_size(1 << 20);
    launch(cfg, |u| {
        let arr = u.new_array::<u64>(64);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            let shape = Strided {
                block_len: 2,
                stride: 4,
                blocks: 8,
            };
            let data: Vec<u64> = (100..116).collect();
            let f = u.rput_strided(&data, ptrs[1], shape);
            assert!(!f.is_ready(), "cross-node strided put is asynchronous");
            f.wait();
            assert_eq!(u.rget_strided(ptrs[1], shape).wait(), data);
        }
        u.barrier();
    });
}

#[test]
fn fragmented_put_scatters_under_one_completion() {
    launch(smp(4), |u| {
        let mine = u.new_array::<u64>(4);
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            // One element into slot 0 of every rank's array.
            let dsts: Vec<_> = (0..4).map(|r| ptrs[r].add(0)).collect();
            let vals: Vec<u64> = (0..4).map(|r| 1000 + r as u64).collect();
            u.rput_fragmented(&dsts, &vals).wait();
        }
        u.barrier();
        assert_eq!(u.local(mine).get(), 1000 + u.rank_me() as u64);
        u.barrier();
    });
}

#[test]
fn fragmented_put_mixed_locality() {
    let cfg = RuntimeConfig::udp(4, 2).with_segment_size(1 << 20);
    launch(cfg, |u| {
        let mine = u.new_array::<u64>(4);
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            // Targets span both nodes: completion must be deferred and
            // still cover every fragment.
            let dsts: Vec<_> = (0..4).map(|r| ptrs[r].add(1)).collect();
            let vals: Vec<u64> = (0..4).map(|r| 2000 + r as u64).collect();
            let f = u.rput_fragmented(&dsts, &vals);
            assert!(
                !f.is_ready(),
                "remote fragments force asynchronous completion"
            );
            f.wait();
        }
        u.barrier();
        assert_eq!(u.local(mine.add(1)).get(), 2000 + u.rank_me() as u64);
        u.barrier();
    });
}

#[test]
fn strided_shape_validation() {
    let r = std::panic::catch_unwind(|| {
        launch(smp(1), |u| {
            let arr = u.new_array::<u64>(16);
            let bad = Strided {
                block_len: 4,
                stride: 2,
                blocks: 2,
            }; // overlapping
            let _ = u.rput_strided(&[0u64; 8], arr, bad);
        });
    });
    assert!(r.is_err());
}

#[test]
fn version_semantics_apply_to_vis_ops() {
    let cfg = smp(2).with_version(LibVersion::V2021_3_6Defer);
    launch(cfg, |u| {
        if u.rank_me() == 0 {
            let arr = u.new_array::<u64>(8);
            let shape = Strided {
                block_len: 2,
                stride: 4,
                blocks: 2,
            };
            let f = u.rput_strided(&[1, 2, 3, 4u64], arr, shape);
            assert!(
                !f.is_ready(),
                "deferred build defers local VIS completions too"
            );
            f.wait();
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// rpc_args: function + serialized arguments
// ---------------------------------------------------------------------------

#[test]
fn rpc_args_roundtrips_serialized_payloads() {
    fn work(args: (u64, Vec<u32>)) -> u64 {
        args.0 + args.1.iter().map(|&x| x as u64).sum::<u64>()
    }
    launch(smp(3), |u| {
        let target = Rank(((u.rank_me() + 1) % 3) as u32);
        let v = u.rpc_args(target, work, (100, vec![1, 2, 3])).wait();
        assert_eq!(v, 106);
        u.barrier();
    });
}

#[test]
fn rpc_args_crosses_simulated_network_as_bytes() {
    fn double(x: u64) -> u64 {
        2 * x
    }
    let cfg = RuntimeConfig::udp(2, 1).with_segment_size(1 << 20);
    launch(cfg, |u| {
        if u.rank_me() == 0 {
            let f = u.rpc_args(Rank(1), double, 21u64);
            assert!(!f.is_ready());
            assert_eq!(f.wait(), 42);
        }
        u.barrier();
    });
}

#[test]
fn rpc_args_with_global_ptr_argument() {
    fn write_there(args: (upcr::GlobalPtr<u64>, u64)) -> u64 {
        // Executes on the target rank: the pointer is local there.
        upcr::api::rput(args.1, args.0).wait();
        args.1 + 1
    }
    launch(smp(2), |u| {
        let mine = u.new_::<u64>(0);
        u.barrier();
        if u.rank_me() == 0 {
            // Ask rank 1 to write into rank 0's memory via a shipped pointer.
            let r = u.rpc_args(Rank(1), write_there, (mine, 55u64)).wait();
            assert_eq!(r, 56);
            assert_eq!(u.local(mine).get(), 55);
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// reductions
// ---------------------------------------------------------------------------

#[test]
fn scalar_reductions_all_ops() {
    use upcr::ReduceOp;
    launch(smp(4), |u| {
        let me = u.rank_me() as u64 + 1; // 1..=4
        assert_eq!(u.reduce_all(me, ReduceOp::Plus), 10);
        assert_eq!(u.reduce_all(me, ReduceOp::Mult), 24);
        assert_eq!(u.reduce_all(me, ReduceOp::Min), 1);
        assert_eq!(u.reduce_all(me, ReduceOp::Max), 4);
        assert_eq!(
            u.reduce_all(0b11u64 << u.rank_me(), ReduceOp::BitOr),
            0b11111
        );
        assert_eq!(u.reduce_all(me, ReduceOp::BitXor), 4);
        // Floats.
        let f = u.reduce_all(0.5f64 * me as f64, ReduceOp::Plus);
        assert!((f - 5.0).abs() < 1e-12);
        // Signed.
        let s = u.reduce_all(-(me as i64), ReduceOp::Min);
        assert_eq!(s, -4);
    });
}

#[test]
fn reduce_one_delivers_to_root_only() {
    use upcr::ReduceOp;
    launch(smp(3), |u| {
        let r = u.reduce_one(u.rank_me() as u64 + 1, ReduceOp::Plus, 1);
        if u.rank_me() == 1 {
            assert_eq!(r, 6);
        } else {
            assert_eq!(r, 0, "non-roots get the identity");
        }
    });
}

#[test]
fn vector_reduction_elementwise() {
    use upcr::ReduceOp;
    launch(smp(4), |u| {
        let me = u.rank_me() as u64;
        let vals: Vec<u64> = (0..100).map(|i| i + me).collect();
        let sum = u.reduce_all_vec(&vals, ReduceOp::Plus);
        for (i, &v) in sum.iter().enumerate() {
            assert_eq!(v, 4 * i as u64 + 6);
        }
        let max = u.reduce_all_vec(&vals, ReduceOp::Max);
        for (i, &v) in max.iter().enumerate() {
            assert_eq!(v, i as u64 + 3);
        }
        u.barrier();
    });
}

#[test]
fn vector_reduction_on_split_team() {
    use upcr::ReduceOp;
    launch(smp(4), |u| {
        let team = u.split((u.rank_me() % 2) as u64, u.rank_me() as u64);
        let vals = vec![u.rank_me() as u64; 8];
        let sum = u.reduce_all_vec_team(&team, &vals, ReduceOp::Plus);
        // Parity teams: {0,2} sums to 2, {1,3} sums to 4, element-wise.
        let expect = if u.rank_me() % 2 == 0 { 2 } else { 4 };
        assert!(sum.iter().all(|&v| v == expect));
        u.barrier();
    });
}

#[test]
fn empty_vector_reduction() {
    use upcr::ReduceOp;
    launch(smp(2), |u| {
        let out = u.reduce_all_vec::<u64>(&[], ReduceOp::Plus);
        assert!(out.is_empty());
        u.barrier();
    });
}

#[test]
fn mismatched_vector_lengths_panic() {
    use upcr::ReduceOp;
    let r = std::panic::catch_unwind(|| {
        launch(smp(2), |u| {
            let vals = vec![0u64; 4 + u.rank_me()];
            let _ = u.reduce_all_vec(&vals, ReduceOp::Plus);
        });
    });
    assert!(r.is_err());
}
