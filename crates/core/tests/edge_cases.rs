//! Edge cases and failure injection for the runtime: misuse panics,
//! boundary sizes, mixed-width values, network jitter, and the paper's
//! Listing 1 semantics.

use upcr::{launch, operation_cx, remote_cx, LibVersion, NetConfig, RuntimeConfig};

fn smp(ranks: usize) -> RuntimeConfig {
    RuntimeConfig::smp(ranks).with_segment_size(1 << 20)
}

// ---------------------------------------------------------------------------
// Paper §II-B, Listing 1: callback scheduling semantics.
// ---------------------------------------------------------------------------

#[test]
fn listing1_defer_callback_runs_in_wait_not_then() {
    // Under deferred completion, the then-callback must NOT run during
    // `then` even though the local transfer already completed; it runs
    // inside the later progress (here: the wait).
    launch(smp(2).with_version(LibVersion::V2021_3_6Defer), |u| {
        if u.rank_me() == 0 {
            let gptr = u.new_::<u64>(0);
            let ran = std::rc::Rc::new(std::cell::Cell::new(false));
            let r2 = std::rc::Rc::clone(&ran);
            let f = u.rput(42, gptr);
            let f2 = f.then(move |_| r2.set(true));
            assert!(!ran.get(), "deferred: callback must not run during then()");
            f2.wait();
            assert!(ran.get(), "callback must run during wait()");
        }
        u.barrier();
    });
}

#[test]
fn listing1_eager_callback_runs_synchronously() {
    // The documented semantic relaxation: with eager completion the future
    // is already ready, so `then` runs the callback immediately.
    launch(smp(2).with_version(LibVersion::V2021_3_6Eager), |u| {
        if u.rank_me() == 0 {
            let gptr = u.new_::<u64>(0);
            let ran = std::rc::Rc::new(std::cell::Cell::new(false));
            let r2 = std::rc::Rc::clone(&ran);
            u.rput(42, gptr).then(move |_| r2.set(true));
            assert!(ran.get(), "eager: callback runs during then()");
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// Misuse panics.
// ---------------------------------------------------------------------------

#[test]
fn rget_with_remote_cx_panics() {
    let r = std::panic::catch_unwind(|| {
        launch(smp(1), |u| {
            let p = u.new_::<u64>(0);
            let _ = u.rget_with(p, operation_cx::as_future() | remote_cx::as_rpc(|| {}));
        });
    });
    assert!(r.is_err());
}

#[test]
fn misaligned_atomic_panics() {
    let r = std::panic::catch_unwind(|| {
        launch(smp(1), |u| {
            let arr = u.new_array::<u32>(4);
            // A u32 element at offset +4 is not 8-byte aligned.
            let bad = upcr::GlobalPtr::<u64>::decode(arr.add(1).encode());
            let ad = u.atomic_domain::<u64>();
            ad.add(bad, 1).wait();
        });
    });
    assert!(r.is_err());
}

#[test]
fn segment_exhaustion_panics_with_message() {
    let r = std::panic::catch_unwind(|| {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 12), |u| {
            let _huge = u.new_array::<u64>(1 << 20);
        });
    });
    let err = r.unwrap_err();
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("shared allocation"), "got: {msg}");
}

#[test]
fn wait_inside_rpc_handler_is_prohibited_by_progress_guard() {
    // Progress is not re-entrant: an RPC body that initiates a *deferred*
    // operation and waits on it would spin forever (UPC++ prohibits this).
    // We verify the guard exists indirectly: a nested progress call inside
    // a handler is a no-op, so an eager op inside a handler still works.
    launch(smp(2), |u| {
        let me = u.rank_me();
        if me == 0 {
            let v = u
                .rpc(upcr::Rank(1), || {
                    // Inside the handler, eager local ops are fine.
                    upcr::api::rank_me() as u64 * 100
                })
                .wait();
            assert_eq!(v, 100);
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// Boundary sizes and mixed-width values.
// ---------------------------------------------------------------------------

#[test]
fn narrow_and_float_rma() {
    launch(smp(2), |u| {
        let a8 = u.new_::<u8>(0);
        let a16 = u.new_::<i16>(0);
        let a32 = u.new_::<u32>(0);
        let af = u.new_::<f64>(0.0);
        u.rput(0xAB_u8, a8).wait();
        u.rput(-1234_i16, a16).wait();
        u.rput(0xDEAD_BEEF_u32, a32).wait();
        u.rput(-2.5_f64, af).wait();
        assert_eq!(u.rget(a8).wait(), 0xAB);
        assert_eq!(u.rget(a16).wait(), -1234);
        assert_eq!(u.rget(a32).wait(), 0xDEAD_BEEF);
        assert_eq!(u.rget(af).wait(), -2.5);
        u.barrier();
    });
}

#[test]
fn adjacent_narrow_writes_do_not_clobber() {
    launch(smp(1), |u| {
        let arr = u.new_array::<u8>(16);
        for i in 0..16 {
            u.rput((i * 3) as u8, arr.add(i)).wait();
        }
        for i in 0..16 {
            assert_eq!(u.rget(arr.add(i)).wait(), (i * 3) as u8);
        }
    });
}

#[test]
fn empty_and_large_bulk_transfers() {
    launch(smp(2), |u| {
        let arr = u.new_array::<u64>(4096);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            // Empty transfer completes.
            u.rput_slice::<u64>(&[], ptrs[1]).wait();
            assert_eq!(u.rget_vec(ptrs[1], 0).wait(), Vec::<u64>::new());
            // Large transfer roundtrips.
            let data: Vec<u64> = (0..4096).map(|i| i * 7).collect();
            u.rput_slice(&data, ptrs[1]).wait();
            assert_eq!(u.rget_vec(ptrs[1], 4096).wait(), data);
        }
        u.barrier();
    });
}

#[test]
fn copy_between_two_remote_ranks() {
    // Third-party copy: rank 0 copies from rank 1's segment to rank 2's.
    launch(smp(4), |u| {
        let mine = u.new_::<u64>(500 + u.rank_me() as u64);
        let ptrs: Vec<_> = (0..4).map(|r| u.broadcast(mine, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            u.copy(ptrs[1], ptrs[2], 1).wait();
        }
        u.barrier();
        if u.rank_me() == 2 {
            assert_eq!(u.local(mine).get(), 501);
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// Network jitter: out-of-order delivery must not break completion tracking.
// ---------------------------------------------------------------------------

#[test]
fn jittered_network_still_completes_everything() {
    let cfg = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 20)
        .with_net(NetConfig {
            latency_ns: 2_000,
            jitter_ns: 2_000,
            ..NetConfig::default()
        });
    launch(cfg, |u| {
        let arr = u.new_array::<u64>(256);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        u.barrier();
        if u.rank_me() == 0 {
            let pr = upcr::Promise::new();
            for i in 0..256usize {
                u.rput_with(i as u64 + 1, ptrs[1].add(i), operation_cx::as_promise(&pr));
            }
            pr.finalize().wait();
        }
        u.barrier();
        if u.rank_me() == 1 {
            for i in 0..256usize {
                assert_eq!(u.local(arr.add(i)).get(), i as u64 + 1);
            }
        }
        u.barrier();
    });
}

#[test]
fn many_outstanding_remote_gets_resolve_in_any_order() {
    let cfg = RuntimeConfig::udp(2, 1)
        .with_segment_size(1 << 20)
        .with_net(NetConfig {
            latency_ns: 1_000,
            jitter_ns: 5_000,
            ..NetConfig::default()
        });
    launch(cfg, |u| {
        let arr = u.new_array::<u64>(64);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        if u.rank_me() == 1 {
            for i in 0..64usize {
                u.local(arr.add(i)).set(i as u64 * 11);
            }
        }
        u.barrier();
        if u.rank_me() == 0 {
            let futs: Vec<_> = (0..64usize).map(|i| u.rget(ptrs[1].add(i))).collect();
            // Wait in reverse order of issue.
            for (i, f) in futs.into_iter().enumerate().rev() {
                assert_eq!(f.wait(), i as u64 * 11);
            }
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// LPC with values; source completion composition on bulk ops.
// ---------------------------------------------------------------------------

#[test]
fn valued_lpc_from_rget() {
    launch(smp(1), |u| {
        let p = u.new_::<u64>(77);
        let got = std::rc::Rc::new(std::cell::Cell::new(0u64));
        let g2 = std::rc::Rc::clone(&got);
        u.rget_with(p, operation_cx::as_lpc(move |v: u64| g2.set(v)));
        // Eager default: LPC ran inline.
        assert_eq!(got.get(), 77);
    });
}

#[test]
fn bulk_put_with_source_and_remote_completions() {
    use std::sync::atomic::{AtomicU64, Ordering};
    static ARRIVED: AtomicU64 = AtomicU64::new(0);
    launch(smp(2), |u| {
        let arr = u.new_array::<u64>(32);
        let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
        if u.rank_me() == 0 {
            let data: Vec<u64> = (0..32).collect();
            let (src, (op, ())) = u.rput_slice_with(
                &data,
                ptrs[1],
                upcr::source_cx::as_future()
                    | (operation_cx::as_future()
                        | remote_cx::as_rpc(|| {
                            ARRIVED.fetch_add(1, Ordering::SeqCst);
                        })),
            );
            src.wait();
            op.wait();
        }
        while ARRIVED.load(Ordering::SeqCst) == 0 {
            u.progress();
        }
        u.barrier();
        if u.rank_me() == 1 {
            for i in 0..32usize {
                assert_eq!(u.local(arr.add(i)).get(), i as u64);
            }
        }
        u.barrier();
    });
}

// ---------------------------------------------------------------------------
// Version-sweep determinism: data results never depend on the version.
// ---------------------------------------------------------------------------

#[test]
fn results_identical_across_versions() {
    let mut final_tables: Vec<Vec<u64>> = Vec::new();
    for version in LibVersion::ALL {
        let table = launch(smp(2).with_version(version), |u| {
            let arr = u.new_array::<u64>(64);
            let ptrs: Vec<_> = (0..2).map(|r| u.broadcast(arr, r)).collect();
            u.barrier();
            let other = ptrs[1 - u.rank_me()];
            let ad = u.atomic_domain::<u64>();
            for i in 0..64usize {
                u.rput((i * 2) as u64, other.add(i)).wait();
            }
            u.barrier();
            for i in 0..64usize {
                ad.add(other.add(i), 1).wait();
            }
            u.barrier();
            (0..64usize)
                .map(|i| u.local(arr.add(i)).get())
                .collect::<Vec<u64>>()
        });
        final_tables.push(table[0].clone());
    }
    assert_eq!(final_tables[0], final_tables[1]);
    assert_eq!(final_tables[1], final_tables[2]);
    assert_eq!(final_tables[0][5], 11);
}
