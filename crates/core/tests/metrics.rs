//! Integration tests for the metrics subsystem: export determinism under
//! the virtual clock, the critical-path segment-sum invariant, and the
//! reset-observability gauge semantics.

use upcr::metrics::probe::{run, ProbeConfig};
use upcr::metrics::{analyze, metrics_json, prometheus_text, MetricsConfig, Segment};
use upcr::trace::parse_json;
use upcr::{launch, LibVersion, RuntimeConfig};

fn chaos_cfg(seed: u64) -> ProbeConfig {
    ProbeConfig {
        iters: 48,
        seed,
        chaos: true,
        trace: true,
        metrics: true,
        metrics_cfg: MetricsConfig {
            interval_ns: 5_000,
            capacity: 4096,
        },
        ..ProbeConfig::default()
    }
}

/// Two same-seed virtual-clock chaos runs export byte-identical metrics
/// JSON and Prometheus text; a different seed diverges.
#[test]
fn chaos_metrics_exports_are_byte_identical() {
    let a = run(&chaos_cfg(42));
    let b = run(&chaos_cfg(42));
    let ja = metrics_json(a.series.as_ref().unwrap(), &a.hist);
    let jb = metrics_json(b.series.as_ref().unwrap(), &b.hist);
    assert_eq!(ja, jb, "same seed must replay byte-identical metrics JSON");
    let pa = prometheus_text(a.series.as_ref().unwrap(), &a.hist);
    let pb = prometheus_text(b.series.as_ref().unwrap(), &b.hist);
    assert_eq!(pa, pb, "same seed must replay byte-identical exposition");
    // The export is valid JSON with a multi-sample series.
    let doc = parse_json(&ja).expect("metrics export must parse");
    let samples = doc.get("samples").unwrap().as_arr().unwrap();
    assert!(
        samples.len() >= 2,
        "chaos run should span several sampling intervals, got {}",
        samples.len()
    );
    let c = run(&chaos_cfg(43));
    let jc = metrics_json(c.series.as_ref().unwrap(), &c.hist);
    assert_ne!(ja, jc, "a different seed should produce a different series");
}

/// Critical-path attribution is exact: on a seeded chaos run, every op's
/// segments sum to precisely its measured completion latency (well within
/// the 1% acceptance band), and the deferred remote ops actually spread
/// across the pipeline segments.
#[test]
fn critical_path_segments_sum_to_measured_latency() {
    let r = run(&chaos_cfg(7));
    let bundle = r.bundle.as_ref().unwrap();
    let report = analyze(&bundle.ranks, &bundle.net);
    assert!(!report.ops.is_empty());
    for o in &report.ops {
        assert_eq!(
            o.segment_sum(),
            o.latency_ns,
            "op {}#{} segments must sum to its latency",
            o.kind.name(),
            o.op_id
        );
    }
    // Chaos dropped packets, so some deferred op carries backoff time, and
    // remote ops show wire transit.
    let backoff: u64 = report
        .ops
        .iter()
        .map(|o| o.segments[Segment::Backoff as usize])
        .sum();
    let transit: u64 = report
        .ops
        .iter()
        .map(|o| o.segments[Segment::Transit as usize])
        .sum();
    assert!(backoff > 0, "chaos retries should surface as backoff time");
    assert!(transit > 0, "remote ops should surface wire transit time");
    // Aggregates cover every op exactly once.
    let agg_count: u64 = report.aggregates.iter().map(|a| a.count).sum();
    assert_eq!(agg_count, report.ops.len() as u64);
    let agg_latency: u64 = report.aggregates.iter().map(|a| a.total_latency_ns).sum();
    let op_latency: u64 = report.ops.iter().map(|o| o.latency_ns).sum();
    assert_eq!(agg_latency, op_latency);
}

/// `reset_observability` re-baselines counters and histograms but keeps
/// gauge *level* semantics: with operations still pending, the high-water
/// gauge re-primes to the current pending level, not to zero.
#[test]
fn reset_observability_keeps_gauge_level_semantics() {
    launch(
        RuntimeConfig::udp(2, 1).with_version(LibVersion::V2021_3_6Eager),
        |u| {
            u.trace_enabled(true);
            let target = u.broadcast(u.new_::<u64>(0), 1);
            if u.rank_me() == 0 {
                // Complete some ops so counters and histograms have data.
                for i in 0..8u64 {
                    u.rput(i, target).wait();
                }
                let before = u.stats();
                assert!(before.rputs >= 8);
                assert!(before.pending_highwater > 0);
                assert!(u.net_stats().injected > 0);
                assert!(u.latency_report().rows().iter().any(|r| r.count > 0));

                // Leave several operations in flight, then reset.
                let pending: Vec<_> = (0..5u64).map(|i| u.rput(i, target)).collect();
                u.reset_observability();

                let after = u.stats();
                assert_eq!(after.rputs, 0, "counters reset to zero");
                assert_eq!(after.deferred_enqueued, 0);
                assert!(
                    after.pending_highwater > 0,
                    "gauge re-primes to the live pending level, not zero"
                );
                assert!(
                    after.pending_highwater <= 5,
                    "re-primed level reflects only the in-flight ops"
                );
                assert_eq!(
                    u.net_stats().injected,
                    0,
                    "net counters re-baseline (pending wire traffic may \
                     still show as the live gauge)"
                );
                assert!(
                    u.latency_report().rows().is_empty(),
                    "histograms reset to empty"
                );
                for f in pending {
                    f.wait();
                }
                // Post-reset traffic counts from the new baseline.
                assert_eq!(u.stats().rputs, 0, "waits complete old ops, no new ones");
                assert!(u.net_stats().delivered > 0 || u.net_stats().injected == 0);
            }
            u.barrier();
        },
    );
}
