//! Serialization for RPC payloads.
//!
//! UPC++ ships RPC callables as a function identifier plus *serialized*
//! arguments, and returns serialized results. Within this reproduction's
//! single process, plain `rpc` ships boxed closures (documented in
//! DESIGN.md); this module provides the faithful byte-level path used by
//! [`Upcr::rpc_args`](crate::Upcr::rpc_args): a self-describing little-
//! endian wire format with length-prefixed containers, so cross-node RPC
//! arguments genuinely cross the simulated network as bytes.
//!
//! The format is deliberately simple (no schema evolution): fixed-width
//! scalars, `u64` length prefixes, UTF-8 strings, element-wise containers.

use std::fmt;

use crate::global_ptr::{GlobalPtr, SegValue};

/// Deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SerError {
    /// Input ended before the value was complete.
    Truncated { needed: usize, have: usize },
    /// An enum/option tag byte had an invalid value.
    BadTag(u8),
    /// A string was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the remaining input (corrupt or hostile).
    BadLength(u64),
}

impl fmt::Display for SerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerError::Truncated { needed, have } => {
                write!(f, "truncated payload: needed {needed} bytes, have {have}")
            }
            SerError::BadTag(t) => write!(f, "invalid tag byte {t:#x}"),
            SerError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            SerError::BadLength(n) => write!(f, "length prefix {n} exceeds remaining payload"),
        }
    }
}

impl std::error::Error for SerError {}

/// Types that can cross the (simulated) network as bytes.
///
/// ```
/// use upcr::SerDe;
/// let v = (7u64, vec![1u8, 2], String::from("hi"));
/// let bytes = v.to_bytes();
/// let back = <(u64, Vec<u8>, String)>::from_bytes(&bytes).unwrap();
/// assert_eq!(back, v);
/// ```
pub trait SerDe: Sized {
    /// Append the encoding of `self` to `out`.
    fn serialize(&self, out: &mut Vec<u8>);
    /// Decode a value from the front of `inp`, advancing it.
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError>;

    /// Encode into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        self.serialize(&mut v);
        v
    }

    /// Decode from a complete buffer, requiring full consumption.
    fn from_bytes(mut bytes: &[u8]) -> Result<Self, SerError> {
        let v = Self::deserialize(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(SerError::BadLength(bytes.len() as u64));
        }
        Ok(v)
    }
}

fn take<'a>(inp: &mut &'a [u8], n: usize) -> Result<&'a [u8], SerError> {
    if inp.len() < n {
        return Err(SerError::Truncated {
            needed: n,
            have: inp.len(),
        });
    }
    let (head, tail) = inp.split_at(n);
    *inp = tail;
    Ok(head)
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl SerDe for $t {
            fn serialize(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
                let b = take(inp, std::mem::size_of::<$t>())?;
                Ok(<$t>::from_le_bytes(b.try_into().unwrap()))
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl SerDe for usize {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u64).serialize(out);
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        Ok(u64::deserialize(inp)? as usize)
    }
}

impl SerDe for bool {
    fn serialize(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        match take(inp, 1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(SerError::BadTag(t)),
        }
    }
}

impl SerDe for () {
    fn serialize(&self, _out: &mut Vec<u8>) {}
    fn deserialize(_inp: &mut &[u8]) -> Result<Self, SerError> {
        Ok(())
    }
}

impl SerDe for char {
    fn serialize(&self, out: &mut Vec<u8>) {
        (*self as u32).serialize(out);
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        let c = u32::deserialize(inp)?;
        char::from_u32(c).ok_or(SerError::BadTag((c & 0xFF) as u8))
    }
}

impl SerDe for String {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        let len = u64::deserialize(inp)?;
        if len as usize > inp.len() {
            return Err(SerError::BadLength(len));
        }
        let b = take(inp, len as usize)?;
        String::from_utf8(b.to_vec()).map_err(|_| SerError::BadUtf8)
    }
}

impl<T: SerDe> SerDe for Vec<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        (self.len() as u64).serialize(out);
        for v in self {
            v.serialize(out);
        }
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        let len = u64::deserialize(inp)?;
        // Elements are at least one byte; a longer claim is corrupt.
        if len as usize > inp.len() && std::mem::size_of::<T>() > 0 {
            return Err(SerError::BadLength(len));
        }
        let mut v = Vec::with_capacity((len as usize).min(inp.len()));
        for _ in 0..len {
            v.push(T::deserialize(inp)?);
        }
        Ok(v)
    }
}

impl<T: SerDe> SerDe for Option<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.serialize(out);
            }
        }
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        match take(inp, 1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::deserialize(inp)?)),
            t => Err(SerError::BadTag(t)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($($name:ident),+) => {
        impl<$($name: SerDe),+> SerDe for ($($name,)+) {
            fn serialize(&self, out: &mut Vec<u8>) {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                $($name.serialize(out);)+
            }
            fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
                Ok(($($name::deserialize(inp)?,)+))
            }
        }
    };
}
impl_serde_tuple!(A);
impl_serde_tuple!(A, B);
impl_serde_tuple!(A, B, C);
impl_serde_tuple!(A, B, C, D);
impl_serde_tuple!(A, B, C, D, E);

impl<T: SegValue> SerDe for GlobalPtr<T> {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.encode().serialize(out);
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        Ok(GlobalPtr::decode(u64::deserialize(inp)?))
    }
}

impl SerDe for gasnex::Rank {
    fn serialize(&self, out: &mut Vec<u8>) {
        self.0.serialize(out);
    }
    fn deserialize(inp: &mut &[u8]) -> Result<Self, SerError> {
        Ok(gasnex::Rank(u32::deserialize(inp)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: SerDe + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        let back = T::from_bytes(&bytes).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn scalars_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(-12345i32);
        roundtrip(u64::MAX);
        roundtrip(i128::MIN);
        roundtrip(3.25f64);
        roundtrip(f32::NEG_INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip('é');
        roundtrip(());
        roundtrip(12345usize);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(String::from("hello, 世界"));
        roundtrip(String::new());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Vec::<u32>::new());
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip((1u8, -2i64, String::from("x")));
        roundtrip((1u8, 2u16, 3u32, 4u64, 5i8));
    }

    #[test]
    fn global_ptr_and_rank_roundtrip() {
        roundtrip(gasnex::Rank(77));
        let p = GlobalPtr::<u64>::decode((3u64 << 40) | 1024);
        roundtrip(p);
        roundtrip(GlobalPtr::<u64>::null());
    }

    #[test]
    fn truncated_inputs_error() {
        let bytes = 0xDEAD_BEEFu64.to_bytes();
        assert!(matches!(
            u64::from_bytes(&bytes[..4]),
            Err(SerError::Truncated { needed: 8, have: 4 })
        ));
        let s = String::from("hello").to_bytes();
        assert!(String::from_bytes(&s[..s.len() - 1]).is_err());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert!(matches!(
            u32::from_bytes(&bytes),
            Err(SerError::BadLength(1))
        ));
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(matches!(bool::from_bytes(&[2]), Err(SerError::BadTag(2))));
        assert!(matches!(
            Option::<u8>::from_bytes(&[9]),
            Err(SerError::BadTag(9))
        ));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // A Vec claiming u64::MAX elements must fail fast, not allocate.
        let bytes = u64::MAX.to_bytes();
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(SerError::BadLength(_))
        ));
        let bytes = u64::MAX.to_bytes();
        assert!(String::from_bytes(&bytes).is_err());
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = (2u64).to_bytes();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(String::from_bytes(&bytes), Err(SerError::BadUtf8)));
    }

    #[test]
    fn error_display_is_informative() {
        assert!(SerError::Truncated { needed: 8, have: 2 }
            .to_string()
            .contains("8"));
        assert!(SerError::BadTag(7).to_string().contains("0x7"));
    }
}
