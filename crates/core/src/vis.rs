//! Vector-Index-Strided (VIS) RMA: the `upcxx::rput_strided` /
//! `rput_irregular` family, backed by the same locality-check +
//! shared-memory-bypass / network-injection duality as scalar RMA — and
//! therefore the same eager/deferred completion semantics.
//!
//! These cover the common halo-exchange and scatter patterns: a strided put
//! moves `blocks` runs of `block_len` elements from a contiguous source
//! into a destination with a fixed element stride; a fragmented put
//! scatters individual elements to arbitrary global pointers under a single
//! completion.

use std::sync::Arc;

use std::sync::Mutex;

use crate::completion::{operation_cx, Completions, Notifier};
use crate::future::Future;
use crate::global_ptr::{GlobalPtr, SegValue};
use crate::runtime::Upcr;
use crate::stats::bump;
use crate::trace::OpKind;

/// A strided destination/source description: `blocks` runs of `block_len`
/// elements, consecutive runs `stride` *elements* apart.
#[derive(Clone, Copy, Debug)]
pub struct Strided {
    /// Elements per contiguous run.
    pub block_len: usize,
    /// Element distance between run starts (≥ `block_len` for
    /// non-overlapping runs).
    pub stride: usize,
    /// Number of runs.
    pub blocks: usize,
}

impl Strided {
    /// Total elements described.
    pub fn total(&self) -> usize {
        self.block_len * self.blocks
    }

    /// Validate basic shape.
    fn check(&self) {
        assert!(
            self.block_len > 0 && self.blocks > 0,
            "strided shape must be non-empty"
        );
        assert!(
            self.stride >= self.block_len,
            "stride {} shorter than block length {} would overlap runs",
            self.stride,
            self.block_len
        );
    }
}

impl Upcr {
    /// Strided put: scatter the contiguous `src` into runs at
    /// `dst + i*stride` (future completion).
    pub fn rput_strided<T: SegValue>(
        &self,
        src: &[T],
        dst: GlobalPtr<T>,
        shape: Strided,
    ) -> Future<()> {
        self.rput_strided_with(src, dst, shape, operation_cx::as_future())
    }

    /// Strided put with explicit completions.
    pub fn rput_strided_with<T: SegValue, C: Completions<()>>(
        &self,
        src: &[T],
        dst: GlobalPtr<T>,
        shape: Strided,
        mut cx: C,
    ) -> C::Out {
        shape.check();
        assert_eq!(
            src.len(),
            shape.total(),
            "source length must match the strided shape"
        );
        let ctx = &*self.ctx;
        bump(&ctx.stats.rputs);
        let top = ctx.trace_op_init(OpKind::Put, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        let write_all = move |w: &gasnex::World, data: &[T]| {
            let seg = w.segment(dst.rank());
            for b in 0..shape.blocks {
                let run_off = dst.offset() + b * shape.stride * T::SIZE;
                for e in 0..shape.block_len {
                    let v = data[b * shape.block_len + e];
                    seg.write_scalar(run_off + e * T::SIZE, T::SIZE, v.to_bits());
                }
            }
        };
        if ctx.addressable(dst.rank()) {
            write_all(&ctx.world, src);
            for f in rpcs {
                ctx.world.send_am(dst.rank(), ctx.me, move |_| f());
            }
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let core2 = Arc::clone(&core);
            let data = src.to_vec();
            let me = ctx.me;
            let dst_rank = dst.rank();
            let msg = ctx.world.net_inject(Box::new(move |w| {
                write_all(w, &data);
                for f in rpcs {
                    w.send_am(dst_rank, me, move |_| f());
                }
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }

    /// Strided get: gather runs at `src + i*stride` into a contiguous
    /// vector (future completion carrying the data).
    pub fn rget_strided<T: SegValue>(&self, src: GlobalPtr<T>, shape: Strided) -> Future<Vec<T>> {
        self.rget_strided_with(src, shape, operation_cx::as_future())
    }

    /// Strided get with explicit completions.
    pub fn rget_strided_with<T: SegValue, C: Completions<Vec<T>>>(
        &self,
        src: GlobalPtr<T>,
        shape: Strided,
        mut cx: C,
    ) -> C::Out {
        shape.check();
        let ctx = &*self.ctx;
        bump(&ctx.stats.rgets);
        let top = ctx.trace_op_init(OpKind::Get, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        assert!(
            rpcs.is_empty(),
            "remote_cx completions are not supported on gets"
        );
        let read_all = move |w: &gasnex::World| -> Vec<T> {
            let seg = w.segment(src.rank());
            let mut out = Vec::with_capacity(shape.total());
            for b in 0..shape.blocks {
                let run_off = src.offset() + b * shape.stride * T::SIZE;
                for e in 0..shape.block_len {
                    out.push(T::from_bits(
                        seg.read_scalar(run_off + e * T::SIZE, T::SIZE),
                    ));
                }
            }
            out
        };
        if ctx.addressable(src.rank()) {
            let data = read_all(&ctx.world);
            cx.notify(&Notifier::sync(ctx, top, data))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let slot: Arc<Mutex<Option<Vec<T>>>> = Arc::new(Mutex::new(None));
            let core2 = Arc::clone(&core);
            let slot2 = Arc::clone(&slot);
            let msg = ctx.world.net_inject(Box::new(move |w| {
                *slot2.lock().unwrap() = Some(read_all(w));
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(ctx, top, core, slot))
        }
    }

    /// Fragmented put: scatter `vals[i]` to `dsts[i]` under a single
    /// completion. Destinations may mix local and remote targets; the
    /// completion is eager-eligible only when *every* target completed
    /// synchronously (i.e. all were directly addressable).
    pub fn rput_fragmented<T: SegValue>(&self, dsts: &[GlobalPtr<T>], vals: &[T]) -> Future<()> {
        self.rput_fragmented_with(dsts, vals, operation_cx::as_future())
    }

    /// Fragmented put with explicit completions.
    pub fn rput_fragmented_with<T: SegValue, C: Completions<()>>(
        &self,
        dsts: &[GlobalPtr<T>],
        vals: &[T],
        mut cx: C,
    ) -> C::Out {
        assert_eq!(dsts.len(), vals.len(), "one value per destination");
        let ctx = &*self.ctx;
        bump(&ctx.stats.rputs);
        let top = ctx.trace_op_init(OpKind::Put, true);
        let mut rpcs = Vec::new();
        cx.take_remote(&mut rpcs);
        assert!(
            rpcs.is_empty(),
            "remote_cx is not supported on fragmented puts (no single target)"
        );
        // Local fragments transfer immediately; remote fragments are
        // grouped into one network operation.
        let mut remote: Vec<(gasnex::Rank, usize, u64)> = Vec::new();
        for (&d, &v) in dsts.iter().zip(vals) {
            if ctx.addressable(d.rank()) {
                ctx.world
                    .segment(d.rank())
                    .write_scalar(d.offset(), T::SIZE, v.to_bits());
            } else {
                remote.push((d.rank(), d.offset(), v.to_bits()));
            }
        }
        if remote.is_empty() {
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            let core = gasnex::EventCore::new();
            let core2 = Arc::clone(&core);
            let size = T::SIZE;
            let msg = ctx.world.net_inject(Box::new(move |w| {
                for (rank, off, bits) in remote {
                    w.segment(rank).write_scalar(off, size, bits);
                }
                core2.signal();
            }));
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{launch, RuntimeConfig};

    #[test]
    fn strided_shape_total() {
        let s = Strided {
            block_len: 3,
            stride: 8,
            blocks: 4,
        };
        assert_eq!(s.total(), 12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_shape_rejected() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let arr = u.new_array::<u64>(8);
            let _ = u.rput_strided(
                &[],
                arr,
                Strided {
                    block_len: 0,
                    stride: 1,
                    blocks: 0,
                },
            );
        });
    }

    #[test]
    fn contiguous_strided_equals_slice_put() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let a = u.new_array::<u64>(8);
            let b = u.new_array::<u64>(8);
            let data: Vec<u64> = (0..8).collect();
            u.rput_slice(&data, a).wait();
            u.rput_strided(
                &data,
                b,
                Strided {
                    block_len: 8,
                    stride: 8,
                    blocks: 1,
                },
            )
            .wait();
            assert_eq!(u.rget_vec(a, 8).wait(), u.rget_vec(b, 8).wait());
        });
    }

    #[test]
    fn fragmented_empty_is_eager_noop() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 16), |u| {
            let f = u.rput_fragmented::<u64>(&[], &[]);
            assert!(f.is_ready());
        });
    }
}
