//! Fixed-interval metric sampling into a bounded ring.
//!
//! The sampler is driven by the simulated network clock (the same clock
//! every trace timestamp uses), so under [`gasnex::ClockMode::Virtual`]
//! sample timestamps are logical and two same-seed single-threaded runs
//! record byte-identical series. Samples land on an interval grid: after
//! recording at time `t`, the next sample is due at the next multiple of
//! the interval after `t` — a run that goes quiet for ten intervals
//! records one sample when activity resumes, not ten back-dated ones.

use crate::trace::ring::Ring;

/// Sampler configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Sampling interval in (simulated-clock) nanoseconds.
    pub interval_ns: u64,
    /// Ring capacity: how many most-recent samples are kept.
    pub capacity: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        // Simulated runs cover micro- to milliseconds of virtual time;
        // 50 µs keeps a full GUPS run within the default ring.
        MetricsConfig {
            interval_ns: 50_000,
            capacity: 4096,
        }
    }
}

/// One snapshot of every registered metric, in [`super::descs`] order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    pub ts_ns: u64,
    pub values: Vec<u64>,
}

/// The per-rank sampler: interval bookkeeping plus the sample ring.
#[derive(Debug)]
pub struct MetricSeries {
    interval_ns: u64,
    next_due_ns: u64,
    ring: Ring<Sample>,
}

impl MetricSeries {
    pub fn new(cfg: MetricsConfig) -> Self {
        MetricSeries {
            interval_ns: cfg.interval_ns.max(1),
            // Due immediately: the first productive quantum records the
            // run's baseline sample.
            next_due_ns: 0,
            ring: Ring::new(cfg.capacity),
        }
    }

    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Record a sample if one is due at `now_ns`; returns whether one was
    /// recorded. `collect` is only invoked when due, so the steady-state
    /// cost of an un-due call is one comparison.
    pub fn maybe_sample(&mut self, now_ns: u64, collect: impl FnOnce() -> Vec<u64>) -> bool {
        if now_ns < self.next_due_ns {
            return false;
        }
        self.record(now_ns, collect());
        true
    }

    /// Record a sample unconditionally (used by `take_metrics` so the
    /// final state of a run is always present).
    pub fn force_sample(&mut self, now_ns: u64, collect: impl FnOnce() -> Vec<u64>) {
        self.record(now_ns, collect());
    }

    fn record(&mut self, now_ns: u64, values: Vec<u64>) {
        self.ring.push(Sample {
            ts_ns: now_ns,
            values,
        });
        // Align to the interval grid: next due time is the first grid
        // point strictly after `now`.
        self.next_due_ns = (now_ns / self.interval_ns + 1) * self.interval_ns;
    }

    /// Samples currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Drain the buffered samples (and the displaced-sample count) and
    /// reset the due time, so sampling restarts cleanly.
    pub fn take(&mut self) -> (Vec<Sample>, u64) {
        self.next_due_ns = 0;
        self.ring.take()
    }
}

/// Everything one rank sampled: the series plus identification, ready for
/// the exporters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankSeries {
    pub rank: u32,
    pub interval_ns: u64,
    pub samples: Vec<Sample>,
    /// Older samples displaced by the ring's bounded capacity.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(interval: u64, cap: usize) -> MetricSeries {
        MetricSeries::new(MetricsConfig {
            interval_ns: interval,
            capacity: cap,
        })
    }

    #[test]
    fn samples_align_to_interval_grid() {
        let mut s = series(100, 16);
        assert!(s.maybe_sample(0, || vec![1]));
        // Not due again until the next grid point (100).
        assert!(!s.maybe_sample(50, || unreachable!()));
        assert!(!s.maybe_sample(99, || unreachable!()));
        assert!(s.maybe_sample(100, || vec![2]));
        // A long quiet gap records one sample, not a backlog.
        assert!(s.maybe_sample(1_234, || vec![3]));
        assert!(!s.maybe_sample(1_299, || unreachable!()));
        assert!(s.maybe_sample(1_300, || vec![4]));
        let (samples, dropped) = s.take();
        assert_eq!(dropped, 0);
        assert_eq!(
            samples.iter().map(|x| x.ts_ns).collect::<Vec<_>>(),
            vec![0, 100, 1_234, 1_300]
        );
    }

    #[test]
    fn ring_keeps_most_recent_window() {
        let mut s = series(1, 2);
        for t in 0..5 {
            assert!(s.maybe_sample(t, || vec![t]));
        }
        let (samples, dropped) = s.take();
        assert_eq!(dropped, 3);
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].values, vec![4]);
    }

    #[test]
    fn take_resets_due_time() {
        let mut s = series(1_000, 4);
        assert!(s.maybe_sample(10, Vec::new));
        assert!(!s.maybe_sample(10, || unreachable!()));
        let _ = s.take();
        assert!(s.maybe_sample(10, Vec::new), "take restarts sampling");
    }

    #[test]
    fn force_sample_ignores_due_time() {
        let mut s = series(1_000, 4);
        assert!(s.maybe_sample(0, || vec![1]));
        s.force_sample(5, || vec![2]);
        let (samples, _) = s.take();
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[1].ts_ns, 5);
    }
}
