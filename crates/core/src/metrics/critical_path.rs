//! Critical-path attribution over operation spans and the wire trace.
//!
//! [`analyze`] is a pure function: given the per-rank span traces
//! ([`RankTrace`]) and the world-global wire trace, it attributes each
//! completed operation's initiation→notification latency to pipeline
//! segments. The correlation chain uses only recorded identifiers:
//!
//! * op → wire message: the op's `NetInject { msg }` span event;
//! * message → backoff/delivery: the wire `Drop`/`Retry`/`Deliver`
//!   events for `msg`;
//! * op → completion token: the `Wakeup { token }` event nearest before
//!   the op's `Notify` in sequence order (the progress engine records the
//!   wakeup, then runs the callback that records the notify);
//! * token → signal time: the wire `Signal { rank, token }` event for
//!   this rank.
//!
//! Attribution is *exact by construction*: milestones are clamped to be
//! monotone within `[init, notify]`, every segment is the gap between two
//! consecutive milestones, and the trailing gap closes at the notify
//! timestamp — so the segments always sum to precisely the measured
//! latency (the invariant `tests/metrics.rs` asserts). A milestone the
//! trace did not record contributes a zero-width segment; time that no
//! milestone explains is *not* hidden — it lands in the segment following
//! the last recorded milestone.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::trace::{CompletionPath, EventKind, NetEventKind, NetTraceEvent, OpKind, RankTrace};

/// A pipeline segment of one operation's completion latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Segment {
    /// Initiation bookkeeping: op init → network injection.
    Initiation = 0,
    /// Chaos retransmission waits: Σ (retry − drop) for the op's message.
    Backoff = 1,
    /// Wire time excluding backoff: injection → delivery minus backoff.
    Transit = 2,
    /// Delivery action → initiator-side completion signal routing.
    DeliverToSignal = 3,
    /// Signal deposited → the initiator's progress quantum drained it.
    SignalToWakeup = 4,
    /// Wakeup → the notification callback recorded the notify.
    WakeupToNotify = 5,
    /// Rank-local deferred delivery (ops that never touched the wire):
    /// init → notify via the deferred queue.
    QueueWait = 6,
}

impl Segment {
    pub const COUNT: usize = 7;

    pub const ALL: [Segment; Segment::COUNT] = [
        Segment::Initiation,
        Segment::Backoff,
        Segment::Transit,
        Segment::DeliverToSignal,
        Segment::SignalToWakeup,
        Segment::WakeupToNotify,
        Segment::QueueWait,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Segment::Initiation => "initiation",
            Segment::Backoff => "backoff",
            Segment::Transit => "transit",
            Segment::DeliverToSignal => "deliver_to_signal",
            Segment::SignalToWakeup => "signal_to_wakeup",
            Segment::WakeupToNotify => "wakeup_to_notify",
            Segment::QueueWait => "queue_wait",
        }
    }
}

/// One operation's latency attribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpBreakdown {
    pub rank: u32,
    pub op_id: u64,
    pub kind: OpKind,
    pub path: CompletionPath,
    pub latency_ns: u64,
    /// Nanoseconds attributed to each [`Segment`] (indexed by the enum's
    /// discriminant); sums exactly to `latency_ns`.
    pub segments: [u64; Segment::COUNT],
}

impl OpBreakdown {
    pub fn segment_sum(&self) -> u64 {
        self.segments.iter().sum()
    }
}

/// Aggregate attribution for one (op kind × completion path) group.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentShare {
    pub kind: OpKind,
    pub path: CompletionPath,
    pub count: u64,
    pub total_latency_ns: u64,
    pub segment_totals: [u64; Segment::COUNT],
}

impl SegmentShare {
    /// Per-mille share of `seg` in this group's total latency (0 when the
    /// group recorded no latency). Integer math keeps reports
    /// deterministic.
    pub fn share_permille(&self, seg: Segment) -> u64 {
        if self.total_latency_ns == 0 {
            return 0;
        }
        self.segment_totals[seg as usize] * 1000 / self.total_latency_ns
    }
}

/// The full critical-path report.
#[derive(Clone, Debug, Default)]
pub struct CriticalPathReport {
    /// Every completed op's breakdown, sorted by latency descending (ties
    /// broken by rank then op id — deterministic).
    pub ops: Vec<OpBreakdown>,
    /// Aggregates per (kind × path), in `OpKind::ALL` × `CompletionPath::ALL`
    /// order, empty groups skipped.
    pub aggregates: Vec<SegmentShare>,
}

impl CriticalPathReport {
    /// The `k` highest-latency operations.
    pub fn top_k(&self, k: usize) -> &[OpBreakdown] {
        &self.ops[..k.min(self.ops.len())]
    }

    /// Render the aggregates and the top-k ops as a plain-text table.
    pub fn render_text(&self, k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<10} {:<9} {:>8} {:>12}  segment shares (‰)",
            "op", "path", "count", "total(ns)"
        );
        for a in &self.aggregates {
            let _ = write!(
                out,
                "{:<10} {:<9} {:>8} {:>12} ",
                a.kind.name(),
                a.path.name(),
                a.count,
                a.total_latency_ns
            );
            for seg in Segment::ALL {
                let p = a.share_permille(seg);
                if p > 0 {
                    let _ = write!(out, " {}={}", seg.name(), p);
                }
            }
            out.push('\n');
        }
        let _ = writeln!(out, "top {} ops by latency:", k.min(self.ops.len()));
        for o in self.top_k(k) {
            let _ = write!(
                out,
                "  rank {} {}#{} {} {}ns:",
                o.rank,
                o.kind.name(),
                o.op_id,
                o.path.name(),
                o.latency_ns
            );
            for seg in Segment::ALL {
                let v = o.segments[seg as usize];
                if v > 0 {
                    let _ = write!(out, " {}={}", seg.name(), v);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Per-message wire summary extracted from the net trace.
#[derive(Clone, Copy, Debug, Default)]
struct WireInfo {
    deliver_ts: Option<u64>,
    backoff_ns: u64,
    /// Timestamp of the most recent unmatched `Drop` (pairs with the next
    /// `Retry` to accumulate backoff).
    open_drop_ts: Option<u64>,
}

/// Advance a milestone: clamp `t` (if recorded) into `[prev, end]`,
/// otherwise stay at `prev` (zero-width segment).
#[inline]
fn step(prev: u64, t: Option<u64>, end: u64) -> u64 {
    match t {
        Some(t) => t.clamp(prev, end),
        None => prev,
    }
}

/// Attribute every completed op's latency to segments. Pure function of
/// the recorded traces; see the module docs for the correlation chain.
pub fn analyze(ranks: &[RankTrace], net: &[NetTraceEvent]) -> CriticalPathReport {
    // Index the wire trace once: per-message delivery/backoff, and the
    // signal routing time per (rank, token).
    let mut wires: HashMap<u64, WireInfo> = HashMap::new();
    let mut signals: HashMap<(u32, u64), u64> = HashMap::new();
    for e in net {
        match e.kind {
            NetEventKind::Signal { rank, token } => {
                signals.entry((rank, token)).or_insert(e.ts_ns);
            }
            NetEventKind::Inject | NetEventKind::DupDiscard => {}
            NetEventKind::Drop { .. } => {
                wires.entry(e.msg).or_default().open_drop_ts = Some(e.ts_ns);
            }
            NetEventKind::Retry => {
                let w = wires.entry(e.msg).or_default();
                if let Some(d) = w.open_drop_ts.take() {
                    w.backoff_ns += e.ts_ns.saturating_sub(d);
                }
            }
            NetEventKind::Deliver => {
                wires.entry(e.msg).or_default().deliver_ts = Some(e.ts_ns);
            }
        }
    }

    let mut ops = Vec::new();
    for trace in ranks {
        // op id → (inject ts, wire message id).
        let mut injected: HashMap<u64, (u64, u64)> = HashMap::new();
        // The nearest preceding wakeup: the engine records `Wakeup` and
        // then runs the callback whose notify follows it in seq order.
        let mut last_wakeup: Option<(u64, u64)> = None; // (token, ts)
        for e in &trace.events {
            match e.kind {
                EventKind::NetInject { msg } => {
                    injected.insert(e.op.id, (e.ts_ns, msg));
                }
                EventKind::Wakeup { token } => {
                    last_wakeup = Some((token, e.ts_ns));
                }
                EventKind::Notify { path, latency_ns } => {
                    let notify_ts = e.ts_ns;
                    let init_ts = notify_ts.saturating_sub(latency_ns);
                    let mut segments = [0u64; Segment::COUNT];
                    if let Some(&(inject_ts, msg)) = injected.get(&e.op.id) {
                        let wire = wires.get(&msg).copied().unwrap_or_default();
                        let signal_ts = last_wakeup
                            .and_then(|(token, _)| signals.get(&(trace.rank, token)))
                            .copied();
                        let wakeup_ts = last_wakeup.map(|(_, ts)| ts);
                        // Monotone milestone chain in [init, notify].
                        let m1 = step(init_ts, Some(inject_ts), notify_ts);
                        let m2 = step(m1, wire.deliver_ts, notify_ts);
                        let m3 = step(m2, signal_ts, notify_ts);
                        let m4 = step(m3, wakeup_ts, notify_ts);
                        let backoff = wire.backoff_ns.min(m2 - m1);
                        segments[Segment::Initiation as usize] = m1 - init_ts;
                        segments[Segment::Backoff as usize] = backoff;
                        segments[Segment::Transit as usize] = (m2 - m1) - backoff;
                        segments[Segment::DeliverToSignal as usize] = m3 - m2;
                        segments[Segment::SignalToWakeup as usize] = m4 - m3;
                        segments[Segment::WakeupToNotify as usize] = notify_ts - m4;
                    } else {
                        // Never touched the wire: local op delivered
                        // eagerly (latency 0) or via the deferred queue.
                        segments[Segment::QueueWait as usize] = latency_ns;
                    }
                    ops.push(OpBreakdown {
                        rank: trace.rank,
                        op_id: e.op.id,
                        kind: e.op.kind,
                        path,
                        latency_ns,
                        segments,
                    });
                }
                EventKind::Init
                | EventKind::Drain { .. }
                | EventKind::BatchFlush { .. }
                | EventKind::Signal { .. }
                | EventKind::CallbackRun => {}
            }
        }
    }

    ops.sort_by(|a, b| {
        b.latency_ns
            .cmp(&a.latency_ns)
            .then(a.rank.cmp(&b.rank))
            .then(a.op_id.cmp(&b.op_id))
    });

    let mut aggregates = Vec::new();
    for kind in OpKind::ALL {
        for path in CompletionPath::ALL {
            let mut share = SegmentShare {
                kind,
                path,
                count: 0,
                total_latency_ns: 0,
                segment_totals: [0; Segment::COUNT],
            };
            for o in ops.iter().filter(|o| o.kind == kind && o.path == path) {
                share.count += 1;
                share.total_latency_ns += o.latency_ns;
                for (t, s) in share.segment_totals.iter_mut().zip(o.segments.iter()) {
                    *t += s;
                }
            }
            if share.count > 0 {
                aggregates.push(share);
            }
        }
    }

    CriticalPathReport { ops, aggregates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{RankTracer, TraceOp};
    use gasnex::NetTraceEvent;

    fn net_event(ts: u64, msg: u64, attempt: u32, kind: NetEventKind) -> NetTraceEvent {
        NetTraceEvent {
            ts_ns: ts,
            msg,
            attempt,
            kind,
            lclock: 0,
        }
    }

    /// A remote put with one drop/retry cycle: every segment populated.
    #[test]
    fn remote_op_segments_cover_full_timeline() {
        let mut t = RankTracer::new(0);
        let op = t.op_init(OpKind::Put, 100, true);
        t.net_inject(op, 7, 110);
        t.wakeup(3, 2_450);
        t.notify(op, CompletionPath::Deferred, 2_500);
        let net = vec![
            net_event(110, 7, 0, NetEventKind::Inject),
            net_event(500, 7, 0, NetEventKind::Drop { backoff_ns: 700 }),
            net_event(1_200, 7, 1, NetEventKind::Retry),
            net_event(2_000, 7, 1, NetEventKind::Deliver),
            net_event(
                2_100,
                u64::MAX,
                0,
                NetEventKind::Signal { rank: 0, token: 3 },
            ),
        ];
        let report = analyze(&[t.take()], &net);
        assert_eq!(report.ops.len(), 1);
        let o = &report.ops[0];
        assert_eq!(o.latency_ns, 2_400);
        assert_eq!(o.segment_sum(), o.latency_ns, "segments must sum exactly");
        assert_eq!(o.segments[Segment::Initiation as usize], 10);
        assert_eq!(o.segments[Segment::Backoff as usize], 700);
        assert_eq!(o.segments[Segment::Transit as usize], 1_890 - 700);
        assert_eq!(o.segments[Segment::DeliverToSignal as usize], 100);
        assert_eq!(o.segments[Segment::SignalToWakeup as usize], 350);
        assert_eq!(o.segments[Segment::WakeupToNotify as usize], 50);
        assert_eq!(o.segments[Segment::QueueWait as usize], 0);
    }

    #[test]
    fn local_deferred_op_is_queue_wait() {
        let mut t = RankTracer::new(1);
        let op = t.op_init(OpKind::Amo, 50, true);
        t.notify(op, CompletionPath::Deferred, 950);
        let report = analyze(&[t.take()], &[]);
        let o = &report.ops[0];
        assert_eq!(o.segments[Segment::QueueWait as usize], 900);
        assert_eq!(o.segment_sum(), 900);
    }

    #[test]
    fn eager_op_contributes_zero_width() {
        let mut t = RankTracer::new(0);
        let op = t.op_init(OpKind::Put, 10, true);
        t.notify(op, CompletionPath::Eager, 10);
        let report = analyze(&[t.take()], &[]);
        assert_eq!(report.ops[0].latency_ns, 0);
        assert_eq!(report.ops[0].segment_sum(), 0);
        assert_eq!(report.aggregates.len(), 1);
        assert_eq!(report.aggregates[0].count, 1);
    }

    #[test]
    fn missing_milestones_still_sum_exactly() {
        // Wire trace lost (e.g. net tracing off): everything after inject
        // collapses into the trailing segment, but the sum invariant holds.
        let mut t = RankTracer::new(0);
        let op = t.op_init(OpKind::Get, 0, true);
        t.net_inject(op, 9, 40);
        t.notify(op, CompletionPath::Deferred, 5_000);
        let report = analyze(&[t.take()], &[]);
        let o = &report.ops[0];
        assert_eq!(o.segment_sum(), 5_000);
        assert_eq!(o.segments[Segment::Initiation as usize], 40);
        assert_eq!(o.segments[Segment::WakeupToNotify as usize], 4_960);
    }

    #[test]
    fn report_orders_by_latency_and_aggregates() {
        let mut t = RankTracer::new(0);
        let a = t.op_init(OpKind::Put, 0, true);
        t.notify(a, CompletionPath::Deferred, 100);
        let b = t.op_init(OpKind::Put, 0, true);
        t.notify(b, CompletionPath::Deferred, 900);
        let report = analyze(&[t.take()], &[]);
        assert_eq!(report.ops[0].latency_ns, 900);
        assert_eq!(report.top_k(1).len(), 1);
        assert_eq!(report.top_k(10).len(), 2);
        let agg = &report.aggregates[0];
        assert_eq!(agg.count, 2);
        assert_eq!(agg.total_latency_ns, 1_000);
        assert_eq!(agg.share_permille(Segment::QueueWait), 1000);
        let text = report.render_text(1);
        assert!(text.contains("put"));
        assert!(text.contains("queue_wait"));
        // Unused sentinel op check: NONE ops never appear.
        assert!(report.ops.iter().all(|o| o.op_id != TraceOp::NONE.id));
    }
}
