//! Metric exporters: deterministic JSON and Prometheus text exposition.
//!
//! Both outputs are pure functions of their inputs — fixed field order, no
//! floating point, no map iteration — so a virtual-clock single-threaded
//! run exports byte-identical files across same-seed runs (the property
//! `tests/metrics.rs` locks in).
//!
//! The Prometheus exposition follows the text format: counters get a
//! `_total` suffix, histograms emit cumulative `_bucket{le=...}` series
//! plus `_sum`/`_count`, and every series carries a `rank` label so
//! multi-rank scrapes coexist in one corpus.

use std::fmt::Write as _;

use super::series::RankSeries;
use super::{descs, MetricClass, MetricDesc};
use crate::trace::hist::{bucket_index, bucket_upper_bound, Histograms};
use crate::trace::{CompletionPath, OpKind};

/// Schema tag stamped into every metrics JSON document.
pub const METRICS_SCHEMA: &str = "metrics.v1";

/// Render one rank's sampled series plus its latency histograms as
/// deterministic JSON (`metrics.v1` schema).
pub fn metrics_json(series: &RankSeries, hists: &Histograms) -> String {
    let regs = descs();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"schema\":\"{METRICS_SCHEMA}\",\"rank\":{},\"interval_ns\":{},\"dropped\":{}",
        series.rank, series.interval_ns, series.dropped
    );
    out.push_str(",\"metrics\":[");
    for (i, d) in regs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"class\":\"{}\"}}",
            d.name,
            d.class.name()
        );
    }
    out.push_str("],\"samples\":[");
    for (i, s) in series.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"ts_ns\":{},\"values\":[", s.ts_ns);
        for (j, v) in s.values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v}");
        }
        out.push_str("]}");
    }
    out.push_str("],\"histograms\":[");
    let mut first = true;
    for kind in OpKind::ALL {
        for path in CompletionPath::ALL {
            let h = hists.get(kind, path);
            if h.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"op\":\"{}\",\"path\":\"{}\",\"count\":{},\"sum_ns\":{},\
                 \"p50_ns\":{},\"p99_ns\":{},\"max_ns\":{},\"buckets\":[",
                kind.name(),
                path.name(),
                h.count(),
                h.sum(),
                h.p50(),
                h.p99(),
                h.max()
            );
            let mut bfirst = true;
            for (i, &n) in h.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !bfirst {
                    out.push(',');
                }
                bfirst = false;
                let _ = write!(out, "[{i},{n}]");
            }
            out.push_str("]}");
        }
    }
    out.push_str("]}");
    out
}

/// Render several ranks' series + histograms as one JSON array of
/// `metrics.v1` documents (one element per rank, in slice order).
pub fn metrics_json_multi(parts: &[(&RankSeries, &Histograms)]) -> String {
    let mut out = String::from("[");
    for (i, (s, h)) in parts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&metrics_json(s, h));
    }
    out.push_str("\n]");
    out
}

fn prom_name(d: &MetricDesc) -> String {
    match d.class {
        MetricClass::Counter => format!("{}_total", d.name),
        MetricClass::Gauge => d.name.clone(),
    }
}

/// Render the *latest* sample of one rank's series plus its latency
/// histograms in Prometheus text exposition format. An empty series emits
/// only the histogram families.
pub fn prometheus_text(series: &RankSeries, hists: &Histograms) -> String {
    prometheus_text_multi(&[(series, hists)])
}

/// Multi-rank Prometheus exposition: one `# TYPE` header per family, then
/// every rank's latest sample under its `rank` label — a valid single
/// scrape corpus for an N-rank run.
pub fn prometheus_text_multi(parts: &[(&RankSeries, &Histograms)]) -> String {
    let regs = descs();
    let mut out = String::new();
    for (i, d) in regs.iter().enumerate() {
        let name = prom_name(d);
        let mut typed = false;
        for (s, _) in parts {
            let Some(v) = s.samples.last().and_then(|last| last.values.get(i)) else {
                continue;
            };
            if !typed {
                let _ = writeln!(out, "# TYPE {name} {}", d.class.name());
                typed = true;
            }
            let _ = writeln!(out, "{name}{{rank=\"{}\"}} {v}", s.rank);
        }
    }
    let mut typed = false;
    for (s, hists) in parts {
        for kind in OpKind::ALL {
            for path in CompletionPath::ALL {
                let h = hists.get(kind, path);
                if h.is_empty() {
                    continue;
                }
                if !typed {
                    let _ = writeln!(out, "# TYPE upcr_latency_ns histogram");
                    typed = true;
                }
                let labels = format!(
                    "rank=\"{}\",op=\"{}\",path=\"{}\"",
                    s.rank,
                    kind.name(),
                    path.name()
                );
                // Cumulative buckets up to the one containing the max
                // sample, then +Inf — bounded, deterministic output.
                let top = bucket_index(h.max());
                let mut cum = 0u64;
                for (i, &n) in h.buckets().iter().take(top + 1).enumerate() {
                    cum += n;
                    let _ = writeln!(
                        out,
                        "upcr_latency_ns_bucket{{{labels},le=\"{}\"}} {cum}",
                        bucket_upper_bound(i)
                    );
                }
                let _ = writeln!(
                    out,
                    "upcr_latency_ns_bucket{{{labels},le=\"+Inf\"}} {}",
                    h.count()
                );
                let _ = writeln!(out, "upcr_latency_ns_sum{{{labels}}} {}", h.sum());
                let _ = writeln!(out, "upcr_latency_ns_count{{{labels}}} {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::series::Sample;
    use super::*;
    use crate::trace::parse_json;

    fn sample_series() -> RankSeries {
        let n = descs().len();
        RankSeries {
            rank: 2,
            interval_ns: 100,
            samples: vec![
                Sample {
                    ts_ns: 0,
                    values: vec![0; n],
                },
                Sample {
                    ts_ns: 100,
                    values: (0..n as u64).collect(),
                },
            ],
            dropped: 1,
        }
    }

    fn sample_hists() -> Histograms {
        let mut h = Histograms::new();
        h.record(OpKind::Put, CompletionPath::Eager, 0);
        h.record(OpKind::Put, CompletionPath::Deferred, 900);
        h.record(OpKind::Put, CompletionPath::Deferred, 1_500);
        h
    }

    #[test]
    fn json_parses_and_is_deterministic() {
        let s = sample_series();
        let h = sample_hists();
        let a = metrics_json(&s, &h);
        assert_eq!(a, metrics_json(&s, &h));
        let doc = parse_json(&a).expect("metrics export must be valid JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some(METRICS_SCHEMA)
        );
        let metrics = doc.get("metrics").unwrap().as_arr().unwrap();
        let samples = doc.get("samples").unwrap().as_arr().unwrap();
        assert_eq!(metrics.len(), descs().len());
        assert_eq!(samples.len(), 2);
        assert_eq!(
            samples[1].get("values").unwrap().as_arr().unwrap().len(),
            metrics.len()
        );
        let hists = doc.get("histograms").unwrap().as_arr().unwrap();
        assert_eq!(hists.len(), 2, "one row per non-empty (op, path)");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let text = prometheus_text(&sample_series(), &sample_hists());
        // Counters carry _total, gauges don't.
        assert!(text.contains("# TYPE upcr_rputs_total counter"));
        assert!(text.contains("upcr_rputs_total{rank=\"2\"} "));
        assert!(text.contains("# TYPE upcr_pending_highwater gauge"));
        assert!(!text.contains("pending_highwater_total"));
        // Histogram family with cumulative buckets and +Inf.
        assert!(text.contains("# TYPE upcr_latency_ns histogram"));
        assert!(text.contains(
            "upcr_latency_ns_bucket{rank=\"2\",op=\"put\",path=\"deferred\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("upcr_latency_ns_sum{rank=\"2\",op=\"put\",path=\"deferred\"} 2400"));
        assert!(text.contains("upcr_latency_ns_count{rank=\"2\",op=\"put\",path=\"eager\"} 1"));
        // Cumulative: the le="+Inf" count equals the _count series.
        assert_eq!(text, prometheus_text(&sample_series(), &sample_hists()));
    }

    #[test]
    fn multi_rank_exposition_emits_each_type_header_once() {
        let mut s1 = sample_series();
        s1.rank = 5;
        let s2 = sample_series();
        let h = sample_hists();
        let text = prometheus_text_multi(&[(&s1, &h), (&s2, &h)]);
        assert_eq!(text.matches("# TYPE upcr_rputs_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE upcr_latency_ns histogram").count(), 1);
        assert!(text.contains("upcr_rputs_total{rank=\"5\"} "));
        assert!(text.contains("upcr_rputs_total{rank=\"2\"} "));
        let json = metrics_json_multi(&[(&s1, &h), (&s2, &h)]);
        let doc = parse_json(&json).expect("multi export must be valid JSON");
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("rank").and_then(|v| v.as_num()), Some(5.0));
        assert_eq!(arr[1].get("rank").and_then(|v| v.as_num()), Some(2.0));
    }

    #[test]
    fn empty_series_emits_histograms_only() {
        let s = RankSeries {
            rank: 0,
            interval_ns: 100,
            samples: vec![],
            dropped: 0,
        };
        let text = prometheus_text(&s, &sample_hists());
        assert!(!text.contains("upcr_rputs_total"));
        assert!(text.contains("upcr_latency_ns_count"));
    }
}
