//! Single-threaded deterministic benchmark probe.
//!
//! Multi-threaded virtual-clock runs have deterministic *final counters*
//! (the differential harness asserts this) but racy *timestamps*: the
//! logical clock advances on whichever thread polls first, so latency
//! quantiles differ run to run. The benchmark regression pipeline needs
//! byte-identical numbers, so this probe drives a small SPMD-like workload
//! from **one** thread: it constructs the world and a rank-0 context
//! directly (the same pieces `launch` assembles per thread), issues local
//! and remote RMA/atomic operations, and drains everything through the
//! ordinary progress engine. Under [`gasnex::ClockMode::Virtual`] with a
//! seeded fault plan, every timestamp — and therefore every histogram
//! quantile, metric sample, and trace byte — is a pure function of the
//! configuration.

use std::rc::Rc;
use std::sync::Arc;

use gasnex::{FaultPlan, GasnexConfig, NetConfig, NetStats, Rank, World};

use crate::ctx::{CtxGuard, RankCtx};
use crate::future::join2;
use crate::global_ptr::GlobalPtr;
use crate::runtime::Upcr;
use crate::stats::StatsSnapshot;
use crate::trace::{Histograms, TraceBundle};
use crate::version::LibVersion;

use super::series::{MetricsConfig, RankSeries};

/// Probe configuration. Defaults give a chaos-free virtual-clock run.
#[derive(Clone, Copy, Debug)]
pub struct ProbeConfig {
    pub version: LibVersion,
    /// Iterations of the op mix (each iteration issues a local put, a
    /// remote put, a remote get, a remote atomic add, and a 2-way
    /// `when_all`).
    pub iters: u64,
    /// Seed for the fault plan (only used when `chaos` is set).
    pub seed: u64,
    /// Inject seeded drops/duplicates/reorder on the wire.
    pub chaos: bool,
    /// Record lifecycle spans and the wire trace.
    pub trace: bool,
    /// Sample the metric time-series.
    pub metrics: bool,
    /// Sampler settings when `metrics` is set.
    pub metrics_cfg: MetricsConfig,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            version: LibVersion::V2021_3_6Eager,
            iters: 64,
            seed: 1,
            chaos: false,
            trace: true,
            metrics: false,
            metrics_cfg: MetricsConfig::default(),
        }
    }
}

/// Everything the probe observed.
#[derive(Clone, Debug)]
pub struct ProbeReport {
    pub stats: StatsSnapshot,
    pub net: NetStats,
    pub hist: Histograms,
    /// Sampled series (when `metrics` was set).
    pub series: Option<RankSeries>,
    /// Span + wire traces (when `trace` was set).
    pub bundle: Option<TraceBundle>,
}

/// Run the probe to completion and report. Deterministic for a fixed
/// configuration: single-threaded drive, virtual clock, seeded faults.
pub fn run(cfg: &ProbeConfig) -> ProbeReport {
    let net = if cfg.chaos {
        NetConfig::chaos(
            FaultPlan::seeded(cfg.seed)
                .with_drops(120_000)
                .with_dups(60_000)
                .with_reorder(200_000, 4_000)
                .with_retry(2_000, 32_000, 6),
        )
    } else {
        NetConfig {
            latency_ns: 1_000,
            jitter_ns: 0,
            ..NetConfig::default()
        }
        .with_virtual_clock()
    };
    run_with_net(cfg, net)
}

/// [`run`] with an explicit wire configuration (the `chaos` flag is
/// ignored). Lets callers sweep the probe across their own fault plans —
/// the causal-determinism tests drive it with every differential-harness
/// plan — while keeping the single-threaded deterministic drive. The
/// caller must supply a virtual-clock config for byte-determinism.
pub fn run_with_net(cfg: &ProbeConfig, net: NetConfig) -> ProbeReport {
    // Two single-rank nodes: rank 1 is remote from rank 0, so remote ops
    // exercise the full inject → deliver → signal → wakeup pipeline.
    let world = World::new(
        GasnexConfig::udp(2, 1)
            .with_segment_size(1 << 16)
            .with_net(net),
    );
    let ctx = RankCtx::new(
        Arc::clone(&world),
        Rank(0),
        cfg.version,
        crate::runtime::DEFAULT_WATCHDOG_MS,
    );
    let _guard = CtxGuard::install(Rc::clone(&ctx));
    let u = Upcr {
        ctx: Rc::clone(&ctx),
    };
    if cfg.trace {
        u.trace_enabled(true);
    }
    if cfg.metrics {
        u.metrics_config(cfg.metrics_cfg);
        u.metrics_enabled(true);
    }

    let local = u.new_::<u64>(0);
    // Rank 1 never runs a thread; carve its target word out directly.
    let off = world
        .seg_alloc(Rank(1))
        .alloc(8, 8)
        .expect("probe remote allocation");
    world.segment(Rank(1)).write_u64(off, 0);
    let remote = GlobalPtr::<u64>::from_parts(Rank(1), off);

    let ad = u.atomic_domain::<u64>();
    for i in 0..cfg.iters {
        u.rput(i, local).wait();
        u.rput(i, remote).wait();
        let _ = u.rget(remote).wait();
        ad.add(remote, 1).wait();
        let a = u.rput(i + 1, local);
        let b = u.rput(i + 1, remote);
        join2(a, b).wait();
    }
    // Drain residual traffic (chaos duplicates, trailing timers).
    let mut spins = 0u64;
    while !ctx.locally_idle() || world.net().pending() > 0 {
        ctx.progress_quantum();
        spins += 1;
        assert!(spins < 10_000_000, "probe failed to drain");
    }

    let series = cfg.metrics.then(|| u.take_metrics());
    let bundle = cfg.trace.then(|| TraceBundle {
        ranks: vec![u.take_trace()],
        net: u.take_net_trace(),
    });
    ProbeReport {
        stats: u.stats(),
        net: u.net_stats(),
        hist: u.latency_report(),
        series,
        bundle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::CompletionPath;
    use crate::trace::OpKind;

    #[test]
    fn probe_is_deterministic_and_exercises_both_paths() {
        let cfg = ProbeConfig {
            iters: 16,
            chaos: true,
            metrics: true,
            ..ProbeConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.net, b.net);
        assert_eq!(a.hist, b.hist);
        assert_eq!(a.series, b.series);
        // Eager build: local puts notify eagerly, remote ops defer.
        assert!(a.hist.get(OpKind::Put, CompletionPath::Eager).count() > 0);
        assert!(a.hist.get(OpKind::Put, CompletionPath::Deferred).count() > 0);
        assert!(a.net.retries > 0, "chaos plan should drop packets");
        assert_eq!(a.net.pending, 0, "probe must drain the wire");
    }

    #[test]
    fn legacy_version_defers_local_notifications() {
        let cfg = ProbeConfig {
            version: LibVersion::V2021_3_0,
            iters: 8,
            trace: false,
            ..ProbeConfig::default()
        };
        let r = run(&cfg);
        assert_eq!(r.stats.eager_notifications, 0);
        assert!(r.stats.deferred_enqueued > 0);
    }
}
