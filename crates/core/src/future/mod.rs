//! Futures, promises, and conjoining.

pub(crate) mod cell;
#[allow(clippy::module_inception)]
pub(crate) mod future;
pub(crate) mod promise;
pub(crate) mod when_all;

pub use future::{make_future, make_future_with, Future};
pub use promise::Promise;
pub use when_all::{conjoin, conjoin_all, join2, join3, join4, when_all_value};
