//! Futures: the consumer side of asynchronous results.

use std::rc::Rc;

use super::cell::{new_cell, new_ready_cell, Cell};
use crate::ctx::{progress_with_work, ready_unit_future_cell};

/// A handle to an asynchronous result of type `T`.
///
/// Futures are rank-local (not `Send`): like UPC++ futures they may only be
/// consumed by the rank (thread) that created them. Copies are cheap
/// reference-count bumps; all copies observe the same readiness and value.
///
/// `T` defaults to `()` — the value-less `future<>` whose ready instances
/// the paper's optimization constructs without heap allocation.
pub struct Future<T: Clone + 'static = ()> {
    pub(crate) cell: Rc<Cell<T>>,
}

impl<T: Clone + 'static> Clone for Future<T> {
    fn clone(&self) -> Self {
        Future {
            cell: Rc::clone(&self.cell),
        }
    }
}

impl<T: Clone + 'static> Future<T> {
    pub(crate) fn from_cell(cell: Rc<Cell<T>>) -> Self {
        Future { cell }
    }

    /// A ready future holding `value`. Always allocates an internal cell —
    /// the value has to live somewhere (the paper notes this elision is
    /// impossible for value-carrying futures).
    pub fn ready(value: T) -> Self {
        Future {
            cell: new_ready_cell(value),
        }
    }

    /// Whether the result is available.
    #[inline]
    pub fn is_ready(&self) -> bool {
        self.cell.is_ready()
    }

    /// Whether two futures share the same underlying cell. This is the
    /// observable identity the paper's elisions preserve: conjoining ready
    /// value-less futures returns the shared ready cell, and conjoining
    /// exactly one pending input returns that input itself rather than a
    /// fresh dependency node.
    #[inline]
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.cell, &other.cell)
    }

    /// The result; panics if not yet ready (use [`wait`](Self::wait) to
    /// block).
    pub fn result(&self) -> T {
        self.cell.get()
    }

    /// Block until ready, driving the progress engine, and return the
    /// result.
    ///
    /// Must not be called from inside a progress callback (an RPC handler or
    /// a `then` continuation executing during progress): progress is not
    /// re-entrant, so such a wait could never complete. This mirrors the
    /// UPC++ restriction.
    pub fn wait(&self) -> T {
        let mut idle_streak = 0u32;
        while !self.cell.is_ready() {
            match progress_with_work() {
                None => panic!(
                    "Future::wait outside an active runtime on a future that \
                     is not ready: it can never become ready"
                ),
                Some(0) => {
                    idle_streak += 1;
                    // Waiting on another rank (e.g. an RPC reply) while
                    // oversubscribed: yield so the producer can run. The
                    // threshold keeps short waits (e.g. simulated-network
                    // latency the waiter itself can deliver) spinning, so
                    // latency measurements stay scheduler-independent.
                    if idle_streak > 16 {
                        std::thread::yield_now();
                    }
                }
                Some(_) => idle_streak = 0,
            }
        }
        self.cell.get()
    }

    /// Attach a continuation: returns a future for `f(result)`.
    ///
    /// If this future is already ready the continuation executes
    /// *immediately* in the caller's context (as in UPC++); otherwise it
    /// runs when the notification is delivered — under deferred completion,
    /// that is inside a later progress call.
    pub fn then<U: Clone + 'static>(&self, f: impl FnOnce(T) -> U + 'static) -> Future<U> {
        // Fast path: ready input runs the callback now; the output future is
        // constructed directly in the ready state.
        if self.cell.is_ready() {
            return Future::ready(f(self.cell.get()));
        }
        let out = new_cell::<U>(1);
        let out2 = Rc::clone(&out);
        self.cell.add_cb(move |v| {
            out2.set_value(f(v));
            out2.fulfill(1);
        });
        Future { cell: out }
    }

    /// Attach a future-returning continuation, flattening the result (the
    /// UPC++ `then` behaviour for callbacks that return futures).
    pub fn then_fut<U: Clone + 'static>(
        &self,
        f: impl FnOnce(T) -> Future<U> + 'static,
    ) -> Future<U> {
        if self.cell.is_ready() {
            return f(self.cell.get());
        }
        let out = new_cell::<U>(1);
        let out2 = Rc::clone(&out);
        self.cell.add_cb(move |v| {
            let inner = f(v);
            let out3 = Rc::clone(&out2);
            inner.cell.add_cb(move |u| {
                out3.set_value(u);
                out3.fulfill(1);
            });
        });
        Future { cell: out }
    }

    /// Register a side-effect callback to run with the result on readiness
    /// (immediately if already ready).
    pub fn on_ready(&self, f: impl FnOnce(T) + 'static) {
        self.cell.add_cb(f);
    }
}

impl Future<()> {
    /// A ready value-less future.
    ///
    /// Under versions with the ready-cell elision this reuses the rank's
    /// shared pre-allocated ready cell (no heap allocation); under 2021.3.0
    /// semantics it allocates a fresh cell, as the release did.
    pub fn ready_unit() -> Self {
        Future {
            cell: ready_unit_future_cell(),
        }
    }
}

/// Construct a ready value-less future — the UPC++ `make_future()` idiom
/// used as the base case when conjoining futures in a loop.
pub fn make_future() -> Future<()> {
    Future::ready_unit()
}

/// Construct a ready future carrying `value` (UPC++ `make_future(v)`).
pub fn make_future_with<T: Clone + 'static>(value: T) -> Future<T> {
    Future::ready(value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::cell::new_cell_with_value;
    use std::cell::Cell as StdCell;

    #[test]
    fn ready_future_result() {
        let f = Future::ready(7u32);
        assert!(f.is_ready());
        assert_eq!(f.result(), 7);
        assert_eq!(f.wait(), 7);
    }

    #[test]
    fn clone_shares_state() {
        let cell = new_cell_with_value(1, 5u64);
        let f = Future::from_cell(cell.clone());
        let g = f.clone();
        assert!(!g.is_ready());
        cell.fulfill(1);
        assert!(f.is_ready() && g.is_ready());
        assert_eq!(g.result(), 5);
    }

    #[test]
    fn then_on_ready_runs_immediately() {
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        let f = Future::ready(3u32).then(move |v| {
            h.set(true);
            v * 2
        });
        assert!(hit.get(), "continuation on ready future must run inline");
        assert_eq!(f.result(), 6);
    }

    #[test]
    fn then_on_pending_runs_at_notification() {
        let cell = new_cell::<u32>(1);
        let f = Future::from_cell(cell.clone());
        let hit = Rc::new(StdCell::new(false));
        let h = Rc::clone(&hit);
        let g = f.then(move |v| {
            h.set(true);
            v + 1
        });
        assert!(!hit.get());
        cell.set_value(9);
        cell.fulfill(1);
        assert!(hit.get());
        assert_eq!(g.result(), 10);
    }

    #[test]
    fn then_fut_flattens() {
        let inner_cell = new_cell::<u32>(1);
        let inner = Future::from_cell(inner_cell.clone());
        let outer = Future::ready(()).then_fut(move |_| inner);
        assert!(!outer.is_ready());
        inner_cell.set_value(11);
        inner_cell.fulfill(1);
        assert_eq!(outer.result(), 11);
    }

    #[test]
    fn then_chain_on_pending() {
        let cell = new_cell_with_value(1, ());
        let f = Future::from_cell(cell.clone());
        let g = f.then(|_| 1u32).then(|v| v + 1).then(|v| v * 10);
        assert!(!g.is_ready());
        cell.fulfill(1);
        assert_eq!(g.result(), 20);
    }

    #[test]
    #[should_panic(expected = "can never become ready")]
    fn wait_without_runtime_on_pending_panics() {
        let cell = new_cell::<u32>(1);
        Future::from_cell(cell).wait();
    }

    #[test]
    fn make_future_helpers() {
        assert!(make_future().is_ready());
        assert_eq!(make_future_with(4u8).result(), 4);
    }
}
