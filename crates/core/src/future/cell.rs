//! The internal promise cell: shared state behind futures and promises.
//!
//! A cell is a rank-local (non-`Send`) state machine with a dependency
//! counter, an optional result value, and a list of readiness callbacks.
//! It becomes ready when the counter reaches zero; the value must have been
//! supplied by then. This mirrors UPC++'s internal promise object, whose
//! heap allocation on every asynchronous operation is precisely the cost
//! the paper's eager-notification work removes — so all cell allocation is
//! routed through [`new_cell`]/[`new_ready_cell`], which feed the
//! `cell_allocs` statistic the tests assert on.

use std::cell::RefCell;
use std::rc::Rc;

use crate::ctx::note_cell_alloc;

type Callback<T> = Box<dyn FnOnce(T)>;

enum State<T> {
    Pending {
        deps: usize,
        value: Option<T>,
        cbs: Vec<Callback<T>>,
    },
    Ready(T),
}

/// Shared future/promise state. Values must be `Clone` because a ready cell
/// can serve any number of consumers (multiple `then` callbacks, `result`
/// calls, conjoined parents).
pub(crate) struct Cell<T: Clone> {
    state: RefCell<State<T>>,
}

/// Allocate a pending cell with `deps` outstanding dependencies and no value.
pub(crate) fn new_cell<T: Clone + 'static>(deps: usize) -> Rc<Cell<T>> {
    note_cell_alloc();
    Rc::new(Cell {
        state: RefCell::new(State::Pending {
            deps,
            value: None,
            cbs: Vec::new(),
        }),
    })
}

/// Allocate a pending cell that already holds its value (used for value-less
/// results, where "the value" is `()` and only dependencies gate readiness).
pub(crate) fn new_cell_with_value<T: Clone + 'static>(deps: usize, value: T) -> Rc<Cell<T>> {
    assert!(
        deps > 0,
        "a pre-valued cell with zero deps should be a ready cell"
    );
    note_cell_alloc();
    Rc::new(Cell {
        state: RefCell::new(State::Pending {
            deps,
            value: Some(value),
            cbs: Vec::new(),
        }),
    })
}

/// Allocate an already-ready cell holding `value`.
pub(crate) fn new_ready_cell<T: Clone + 'static>(value: T) -> Rc<Cell<T>> {
    note_cell_alloc();
    Rc::new(Cell {
        state: RefCell::new(State::Ready(value)),
    })
}

/// The shared ready unit cell: allocated once per rank and reused for every
/// ready `Future<()>` when the running version has the elision optimization.
/// Constructed without touching statistics (it is the allocation that
/// *doesn't* happen).
pub(crate) fn shared_ready_unit_cell() -> Rc<Cell<()>> {
    Rc::new(Cell {
        state: RefCell::new(State::Ready(())),
    })
}

impl<T: Clone> Cell<T> {
    /// Whether the cell is ready.
    pub fn is_ready(&self) -> bool {
        matches!(*self.state.borrow(), State::Ready(_))
    }

    /// The result value; panics if not ready.
    pub fn get(&self) -> T {
        match &*self.state.borrow() {
            State::Ready(v) => v.clone(),
            State::Pending { .. } => panic!("future result requested before readiness"),
        }
    }

    /// Supply the result value. Panics if a value is already present.
    pub fn set_value(&self, v: T) {
        match &mut *self.state.borrow_mut() {
            State::Pending { value, .. } => {
                assert!(value.is_none(), "promise value fulfilled twice");
                *value = Some(v);
            }
            State::Ready(_) => panic!("promise value fulfilled after readiness"),
        }
    }

    /// Add `n` outstanding dependencies. Panics if already ready.
    pub fn add_deps(&self, n: usize) {
        match &mut *self.state.borrow_mut() {
            State::Pending { deps, .. } => *deps += n,
            State::Ready(_) => panic!("dependency added to an already-ready promise"),
        }
    }

    /// Current outstanding dependency count (0 if ready).
    pub fn deps(&self) -> usize {
        match &*self.state.borrow() {
            State::Pending { deps, .. } => *deps,
            State::Ready(_) => 0,
        }
    }

    /// Discharge `n` dependencies; on reaching zero the cell becomes ready
    /// and runs its callbacks (each with its own clone of the value).
    ///
    /// Callbacks run *after* the state flips to `Ready` and outside any
    /// internal borrow, so they may freely attach further callbacks, query
    /// readiness, or initiate new operations on this same cell's future.
    pub fn fulfill(&self, n: usize) {
        let run = {
            let mut st = self.state.borrow_mut();
            match &mut *st {
                State::Pending { deps, value, cbs } => {
                    assert!(*deps >= n, "promise fulfilled more times than required");
                    *deps -= n;
                    if *deps > 0 {
                        None
                    } else {
                        let v = value.take().expect(
                            "promise readied with no value (finalize before fulfill_result?)",
                        );
                        let cbs = std::mem::take(cbs);
                        *st = State::Ready(v.clone());
                        Some((v, cbs))
                    }
                }
                State::Ready(_) => panic!("promise fulfilled after readiness"),
            }
        };
        if let Some((v, cbs)) = run {
            let mut it = cbs.into_iter().peekable();
            while let Some(cb) = it.next() {
                if it.peek().is_none() {
                    cb(v); // last callback takes the value by move
                    break;
                }
                cb(v.clone());
            }
        }
    }

    /// Register `f` to run with the value when the cell becomes ready; runs
    /// immediately (with a clone) if already ready.
    pub fn add_cb(&self, f: impl FnOnce(T) + 'static) {
        let ready_val = {
            let mut st = self.state.borrow_mut();
            match &mut *st {
                State::Pending { .. } => None,
                State::Ready(v) => Some(v.clone()),
            }
        };
        match ready_val {
            Some(v) => f(v),
            None => {
                let mut st = self.state.borrow_mut();
                match &mut *st {
                    State::Pending { cbs, .. } => cbs.push(Box::new(f)),
                    // A callback running between our two borrows cannot
                    // ready the cell (we hold the only execution context),
                    // but stay defensive.
                    State::Ready(v) => {
                        let v = v.clone();
                        drop(st);
                        f(v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    #[test]
    fn ready_cell_is_immediately_consumable() {
        let c = new_ready_cell(42u64);
        assert!(c.is_ready());
        assert_eq!(c.get(), 42);
        let hit = Rc::new(StdCell::new(0u64));
        let h = Rc::clone(&hit);
        c.add_cb(move |v| h.set(v));
        assert_eq!(hit.get(), 42);
    }

    #[test]
    fn pending_cell_counts_down() {
        let c = new_cell_with_value(3, ());
        assert!(!c.is_ready());
        assert_eq!(c.deps(), 3);
        c.fulfill(1);
        c.fulfill(1);
        assert!(!c.is_ready());
        c.fulfill(1);
        assert!(c.is_ready());
    }

    #[test]
    fn callbacks_run_once_on_readiness_in_order() {
        let c = new_cell::<u32>(1);
        let log = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3 {
            let log = Rc::clone(&log);
            c.add_cb(move |v| log.borrow_mut().push((i, v)));
        }
        c.set_value(9);
        c.fulfill(1);
        assert_eq!(*log.borrow(), vec![(0, 9), (1, 9), (2, 9)]);
    }

    #[test]
    fn callback_may_attach_callback() {
        let c = new_cell_with_value(1, ());
        let hit = Rc::new(StdCell::new(0));
        let c2 = Rc::clone(&c);
        let h = Rc::clone(&hit);
        c.add_cb(move |_| {
            let h2 = Rc::clone(&h);
            // Cell is ready by now; nested registration runs immediately.
            c2.add_cb(move |_| h2.set(h2.get() + 1));
        });
        c.fulfill(1);
        assert_eq!(hit.get(), 1);
    }

    #[test]
    #[should_panic(expected = "fulfilled more times")]
    fn overfulfill_panics() {
        let c = new_cell_with_value(1, ());
        c.fulfill(2);
    }

    #[test]
    #[should_panic(expected = "fulfilled twice")]
    fn double_value_panics() {
        let c = new_cell::<u32>(2);
        c.set_value(1);
        c.set_value(2);
    }

    #[test]
    #[should_panic(expected = "no value")]
    fn ready_without_value_panics() {
        let c = new_cell::<u32>(1);
        c.fulfill(1);
    }

    #[test]
    #[should_panic(expected = "before readiness")]
    fn get_before_ready_panics() {
        let c = new_cell_with_value(1, 5u32);
        c.get();
    }

    #[test]
    fn add_deps_extends_lifetime() {
        let c = new_cell_with_value(1, ());
        c.add_deps(2);
        c.fulfill(2);
        assert!(!c.is_ready());
        c.fulfill(1);
        assert!(c.is_ready());
    }
}
