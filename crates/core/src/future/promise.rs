//! Promises: the producer side of asynchronous results.
//!
//! A promise is "essentially a counter" (paper, §II-A): any number of
//! value-less operations can be registered on one promise with
//! `require_anonymous`, each later discharged with `fulfill_anonymous`;
//! a single value-producing operation can deliver its result with
//! `fulfill_result`. `finalize` closes registration and yields the future.
//! Tracking N operations costs one heap allocation total, which is why the
//! paper's promise-based benchmark variants beat naive future conjoining
//! even before the eager-notification work.

use std::cell::Cell as StdCell;
use std::rc::Rc;

use super::cell::{new_cell, new_cell_with_value, Cell};
use super::future::Future;

/// The producer handle for an asynchronous result of type `T`.
///
/// Created with one outstanding dependency (discharged by
/// [`finalize`](Promise::finalize)), so the future cannot become ready
/// before registration is closed. Rank-local, like futures.
///
/// ```
/// use upcr::{launch, operation_cx, Promise, RuntimeConfig};
/// launch(RuntimeConfig::smp(2), |u| {
///     let arr = u.new_array::<u64>(10);
///     let pr = Promise::new();
///     for i in 0..10 {
///         u.rput_with(i as u64, arr.add(i), operation_cx::as_promise(&pr));
///     }
///     pr.finalize().wait(); // one allocation tracked all ten puts
///     u.barrier();
/// });
/// ```
pub struct Promise<T: Clone + 'static = ()> {
    cell: Rc<Cell<T>>,
    finalized: Rc<StdCell<bool>>,
}

impl<T: Clone + 'static> Clone for Promise<T> {
    fn clone(&self) -> Self {
        Promise {
            cell: Rc::clone(&self.cell),
            finalized: Rc::clone(&self.finalized),
        }
    }
}

impl Default for Promise<()> {
    fn default() -> Self {
        Self::new()
    }
}

impl Promise<()> {
    /// A new value-less promise with one (finalize) dependency.
    pub fn new() -> Self {
        Promise {
            cell: new_cell_with_value(1, ()),
            finalized: Rc::new(StdCell::new(false)),
        }
    }
}

impl<T: Clone + 'static> Promise<T> {
    /// A new value-carrying promise with one (finalize) dependency. The
    /// value must be supplied by [`fulfill_result`](Self::fulfill_result)
    /// before all dependencies are discharged.
    pub fn with_value() -> Self {
        Promise {
            cell: new_cell::<T>(1),
            finalized: Rc::new(StdCell::new(false)),
        }
    }

    /// Register `n` additional anonymous dependencies. Panics after
    /// finalization (UPC++ forbids registration on a finalized promise).
    pub fn require_anonymous(&self, n: usize) {
        assert!(
            !self.finalized.get(),
            "require_anonymous on a finalized promise"
        );
        self.cell.add_deps(n);
    }

    /// Discharge `n` anonymous dependencies.
    pub fn fulfill_anonymous(&self, n: usize) {
        self.cell.fulfill(n);
    }

    /// Supply the result value and discharge one dependency.
    pub fn fulfill_result(&self, v: T) {
        self.cell.set_value(v);
        self.cell.fulfill(1);
    }

    /// Supply the result value *without* discharging a dependency (used by
    /// the eager completion path, which elided its registration).
    pub(crate) fn set_value_only(&self, v: T) {
        self.cell.set_value(v);
    }

    /// Outstanding dependency count (diagnostic).
    pub fn deps(&self) -> usize {
        self.cell.deps()
    }

    /// The future tied to this promise (may be taken before finalization).
    pub fn get_future(&self) -> Future<T> {
        Future::from_cell(Rc::clone(&self.cell))
    }

    /// Close registration, discharging the construction dependency, and
    /// return the future. Panics on a second call.
    pub fn finalize(&self) -> Future<T> {
        assert!(!self.finalized.get(), "promise finalized twice");
        self.finalized.set(true);
        self.cell.fulfill(1);
        self.get_future()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_promise_counts_operations() {
        let p = Promise::new();
        p.require_anonymous(3);
        let f = p.finalize();
        assert!(!f.is_ready());
        p.fulfill_anonymous(1);
        p.fulfill_anonymous(2);
        assert!(f.is_ready());
    }

    #[test]
    fn finalize_alone_makes_ready() {
        let p = Promise::new();
        let f = p.finalize();
        assert!(f.is_ready());
    }

    #[test]
    fn valued_promise_direct_producer_pattern() {
        // UPC++ pattern 1: a fresh promise's construction dependency is
        // consumed by fulfill_result — no finalize involved.
        let p = Promise::<u64>::with_value();
        let f = p.get_future();
        assert!(!f.is_ready());
        p.fulfill_result(99);
        assert!(f.is_ready());
        assert_eq!(f.result(), 99);
    }

    #[test]
    fn valued_promise_operation_registration_pattern() {
        // UPC++ pattern 2: an operation registers (+1) and fulfills (-1);
        // the user's finalize consumes the construction dependency.
        let p = Promise::<u64>::with_value();
        p.require_anonymous(1); // the operation registers itself
        let f = p.finalize();
        assert!(!f.is_ready());
        p.fulfill_result(42); // the operation completes
        assert!(f.is_ready());
        assert_eq!(f.result(), 42);
    }

    #[test]
    fn fulfill_before_finalize_order_independent() {
        let p = Promise::new();
        p.require_anonymous(2);
        p.fulfill_anonymous(2);
        let f = p.finalize();
        assert!(f.is_ready());
    }

    #[test]
    #[should_panic(expected = "finalized twice")]
    fn double_finalize_panics() {
        let p = Promise::new();
        p.finalize();
        p.finalize();
    }

    #[test]
    #[should_panic(expected = "on a finalized promise")]
    fn require_after_finalize_panics() {
        let p = Promise::new();
        p.require_anonymous(1);
        p.finalize();
        p.require_anonymous(1);
    }

    #[test]
    #[should_panic(expected = "more times than required")]
    fn overfulfill_panics() {
        let p = Promise::new();
        p.require_anonymous(1);
        p.fulfill_anonymous(3);
    }

    #[test]
    fn clones_share_state() {
        let p = Promise::new();
        let q = p.clone();
        q.require_anonymous(1);
        let f = p.finalize();
        assert!(!f.is_ready());
        p.fulfill_anonymous(1);
        assert!(f.is_ready());
    }
}
