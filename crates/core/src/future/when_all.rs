//! Future conjoining (`when_all`) with the paper's ready-input optimization.
//!
//! §III-C: if all inputs but (at most) one are ready and value-less, the
//! conjoined result is semantically equivalent to that one input, so
//! `when_all` can return a copy of it instead of building a
//! dependency-graph node. This turns the GUPS loop idiom
//! `f = when_all(f, rput(...))` from an O(N)-allocation graph construction
//! into zero allocations when the operations complete eagerly.
//!
//! The fast paths are gated on the running library version
//! ([`LibVersion::has_when_all_opt`](crate::LibVersion::has_when_all_opt)):
//! under 2021.3.0 semantics every call builds a graph node, as that release
//! did.

use std::cell::RefCell;
use std::rc::Rc;

use super::cell::{new_cell, new_cell_with_value};
use super::future::Future;
use crate::ctx::{note_when_all_fast, note_when_all_node, when_all_opt_enabled};
use crate::trace::{CompletionPath, OpKind};

/// Conjoin two value-less futures: the result is ready when both are.
///
/// This is the paper's `when_all(f, rput(...))` accumulation idiom. With the
/// optimization enabled, a ready input is simply dropped and the other input
/// returned — no allocation, no graph node.
/// ```
/// upcr::launch(upcr::RuntimeConfig::smp(2), |u| {
///     let p = u.new_array::<u64>(8);
///     let mut f = upcr::make_future();
///     for i in 0..8 {
///         f = upcr::conjoin(f, u.rput(i as u64, p.add(i)));
///     }
///     f.wait(); // all eight puts complete
///     u.barrier();
/// });
/// ```
pub fn conjoin(a: Future<()>, b: Future<()>) -> Future<()> {
    if when_all_opt_enabled() {
        if a.is_ready() {
            note_when_all_fast();
            // Ready-input elision resolves the conjunction at initiation:
            // an eager-path span with zero latency.
            let top = crate::ctx::trace_op_init(OpKind::WhenAll, true);
            crate::ctx::trace_notify(top, CompletionPath::Eager);
            return b;
        }
        if b.is_ready() {
            note_when_all_fast();
            let top = crate::ctx::trace_op_init(OpKind::WhenAll, true);
            crate::ctx::trace_notify(top, CompletionPath::Eager);
            return a;
        }
    }
    note_when_all_node();
    let top = crate::ctx::trace_op_init(OpKind::WhenAll, true);
    let cell = new_cell_with_value(2, ());
    let c1 = Rc::clone(&cell);
    a.on_ready(move |_| c1.fulfill(1));
    let c2 = Rc::clone(&cell);
    b.on_ready(move |_| c2.fulfill(1));
    let f = Future::from_cell(cell);
    if !top.is_none() {
        // Graph-node conjunctions resolve from the progress engine; the
        // callback is only attached while tracing so the disabled path
        // stays allocation-free.
        f.on_ready(move |_| crate::ctx::trace_notify(top, CompletionPath::Deferred));
    }
    f
}

/// Conjoin a value-carrying future with a value-less one; the result carries
/// the value. With the optimization, a ready value-less input contributes
/// nothing and the valued future is returned as-is (`when_all(fut1, fut2,
/// fut3)` returning "a copy of `fut1`" in the paper's example).
pub fn when_all_value<T: Clone + 'static>(v: Future<T>, u: Future<()>) -> Future<T> {
    if when_all_opt_enabled() && u.is_ready() {
        note_when_all_fast();
        return v;
    }
    note_when_all_node();
    let cell = new_cell::<T>(2);
    let c1 = Rc::clone(&cell);
    v.on_ready(move |val| {
        c1.set_value(val);
        c1.fulfill(1);
    });
    let c2 = Rc::clone(&cell);
    u.on_ready(move |_| c2.fulfill(1));
    Future::from_cell(cell)
}

/// Conjoin `n` value-less futures.
pub fn conjoin_all(futs: impl IntoIterator<Item = Future<()>>) -> Future<()> {
    let mut acc = Future::ready_unit();
    for f in futs {
        acc = conjoin(acc, f);
    }
    acc
}

/// General two-value join: ready when both inputs are, carrying both values.
///
/// UPC++ `when_all` flattens variadic value lists at the type level via
/// template metaprogramming; the Rust adaptation produces tuples (see
/// DESIGN.md). No ready-input elision applies when *both* inputs carry
/// values — the combined value must live in a fresh cell.
pub fn join2<A, B>(a: Future<A>, b: Future<B>) -> Future<(A, B)>
where
    A: Clone + 'static,
    B: Clone + 'static,
{
    if a.is_ready() && b.is_ready() {
        // Both values available: build the ready result directly (one
        // allocation, no callbacks). Valid in all versions — 2021.3.0 also
        // allocated exactly one cell for a ready conjunction of ready
        // futures.
        return Future::ready((a.result(), b.result()));
    }
    note_when_all_node();
    let cell = new_cell::<(A, B)>(2);
    let partial: Rc<RefCell<(Option<A>, Option<B>)>> = Rc::new(RefCell::new((None, None)));
    let finish = |cell: &Rc<super::cell::Cell<(A, B)>>,
                  partial: &Rc<RefCell<(Option<A>, Option<B>)>>| {
        let mut p = partial.borrow_mut();
        if p.0.is_some() && p.1.is_some() {
            let x = p.0.take().unwrap();
            let y = p.1.take().unwrap();
            drop(p);
            cell.set_value((x, y));
            cell.fulfill(2);
        }
    };
    {
        let cell = Rc::clone(&cell);
        let partial = Rc::clone(&partial);
        a.on_ready(move |va| {
            partial.borrow_mut().0 = Some(va);
            finish(&cell, &partial);
        });
    }
    {
        let cell = Rc::clone(&cell);
        let partial = Rc::clone(&partial);
        b.on_ready(move |vb| {
            partial.borrow_mut().1 = Some(vb);
            finish(&cell, &partial);
        });
    }
    Future::from_cell(cell)
}

/// Three-value join (via nested [`join2`]).
pub fn join3<A, B, C>(a: Future<A>, b: Future<B>, c: Future<C>) -> Future<(A, B, C)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
{
    join2(join2(a, b), c).then(|((a, b), c)| (a, b, c))
}

/// Four-value join.
pub fn join4<A, B, C, D>(
    a: Future<A>,
    b: Future<B>,
    c: Future<C>,
    d: Future<D>,
) -> Future<(A, B, C, D)>
where
    A: Clone + 'static,
    B: Clone + 'static,
    C: Clone + 'static,
    D: Clone + 'static,
{
    join2(join2(a, b), join2(c, d)).then(|((a, b), (c, d))| (a, b, c, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::cell::new_cell_with_value;

    fn pending_unit() -> (Future<()>, Rc<super::super::cell::Cell<()>>) {
        let c = new_cell_with_value(1, ());
        (Future::from_cell(Rc::clone(&c)), c)
    }

    #[test]
    fn conjoin_two_ready() {
        // Outside a runtime the optimization default is enabled.
        let f = conjoin(Future::ready_unit(), Future::ready_unit());
        assert!(f.is_ready());
    }

    #[test]
    fn conjoin_waits_for_both() {
        let (a, ca) = pending_unit();
        let (b, cb) = pending_unit();
        let f = conjoin(a, b);
        assert!(!f.is_ready());
        ca.fulfill(1);
        assert!(!f.is_ready());
        cb.fulfill(1);
        assert!(f.is_ready());
    }

    #[test]
    fn conjoin_ready_with_pending_returns_pending_side() {
        let (a, ca) = pending_unit();
        let f = conjoin(Future::ready_unit(), a);
        assert!(!f.is_ready());
        ca.fulfill(1);
        assert!(f.is_ready());
    }

    #[test]
    fn when_all_value_elides_ready_unit() {
        let v = Future::ready(5u32);
        let f = when_all_value(v, Future::ready_unit());
        assert!(f.is_ready());
        assert_eq!(f.result(), 5);
    }

    #[test]
    fn when_all_value_waits_for_unit() {
        let (u, cu) = pending_unit();
        let f = when_all_value(Future::ready(5u32), u);
        assert!(!f.is_ready());
        cu.fulfill(1);
        assert_eq!(f.result(), 5);
    }

    #[test]
    fn when_all_value_waits_for_value() {
        let vc = new_cell::<u32>(1);
        let f = when_all_value(Future::from_cell(Rc::clone(&vc)), Future::ready_unit());
        // Unit side elided, so `f` IS the valued future.
        assert!(!f.is_ready());
        vc.set_value(8);
        vc.fulfill(1);
        assert_eq!(f.result(), 8);
    }

    #[test]
    fn conjoin_all_over_iterator() {
        let (a, ca) = pending_unit();
        let f = conjoin_all([Future::ready_unit(), a, Future::ready_unit()]);
        assert!(!f.is_ready());
        ca.fulfill(1);
        assert!(f.is_ready());
    }

    #[test]
    fn join2_combines_values_any_order() {
        // b first, then a.
        let ac = new_cell::<u32>(1);
        let bc = new_cell::<&'static str>(1);
        let f = join2(
            Future::from_cell(Rc::clone(&ac)),
            Future::from_cell(Rc::clone(&bc)),
        );
        bc.set_value("hi");
        bc.fulfill(1);
        assert!(!f.is_ready());
        ac.set_value(3);
        ac.fulfill(1);
        assert_eq!(f.result(), (3, "hi"));
    }

    #[test]
    fn join2_ready_inputs() {
        let f = join2(Future::ready(1u8), Future::ready(2u8));
        assert_eq!(f.result(), (1, 2));
    }

    #[test]
    fn join3_and_join4() {
        let f = join3(
            Future::ready(1u8),
            Future::ready("x"),
            Future::ready(2.5f64),
        );
        assert_eq!(f.result(), (1, "x", 2.5));
        let g = join4(
            Future::ready(1u8),
            Future::ready(2u8),
            Future::ready(3u8),
            Future::ready(4u8),
        );
        assert_eq!(g.result(), (1, 2, 3, 4));
    }

    #[test]
    fn gups_accumulation_idiom() {
        // f = when_all(f, op()) in a loop, mixed ready/pending operations.
        let mut f = crate::future::future::make_future();
        let mut cells = Vec::new();
        for i in 0..10 {
            let op = if i % 2 == 0 {
                Future::ready_unit()
            } else {
                let (fut, cell) = pending_unit();
                cells.push(cell);
                fut
            };
            f = conjoin(f, op);
        }
        assert!(!f.is_ready());
        for c in &cells {
            c.fulfill(1);
        }
        assert!(f.is_ready());
    }
}
