//! # upcr — a UPC++-like APGAS runtime with eager completion notifications
//!
//! This crate reproduces the primary contribution of *"Optimization of
//! Asynchronous Communication Operations through Eager Notifications"*
//! (Kamil & Bonachea, SC 2021): a C++-library-style Asynchronous
//! Partitioned Global Address Space runtime whose communication operations
//! may deliver completion notifications **eagerly** when their data
//! movement completes synchronously (e.g. via shared-memory bypass),
//! instead of universally deferring them to the progress engine.
//!
//! ## The model
//!
//! An SPMD program runs one closure per rank via [`launch`]. Each rank owns
//! a shared segment; [`GlobalPtr<T>`] addresses any rank's segment. One-
//! sided [`Upcr::rput`]/[`Upcr::rget`] and [`AtomicDomain`] operations are
//! asynchronous, returning [`Future`]s by default; the full [`completion`]
//! mechanism supports futures, promises, local procedure calls, and
//! remote-completion RPCs, composed with `|`.
//!
//! ## The paper's knobs
//!
//! * [`LibVersion`] selects the semantics of one of the three builds the
//!   paper benchmarks (2021.3.0 / 2021.3.6 defer / 2021.3.6 eager).
//! * [`completion::operation_cx::as_eager_future`] and friends request
//!   eager delivery explicitly; the plain factories follow the build's
//!   default.
//! * [`future::conjoin`]/[`future::when_all_value`] implement `when_all`
//!   with the ready-input optimization (§III-C); ready `Future<()>`s share
//!   a pre-allocated cell (§III-B); `fetch_*_into` atomics write fetched
//!   values to memory instead of notifications (§III-B).
//!
//! ## Quick example
//!
//! ```
//! use upcr::{launch, RuntimeConfig};
//!
//! let totals = launch(RuntimeConfig::smp(4), |u| {
//!     // Every rank allocates a counter; rank 0's pointer is broadcast.
//!     let mine = u.new_::<u64>(0);
//!     let target = u.broadcast(mine, 0);
//!     let ad = u.atomic_domain::<u64>();
//!     ad.add(target, 1 + u.rank_me() as u64).wait();
//!     u.barrier();
//!     u.rget(target).wait()
//! });
//! assert!(totals.iter().all(|&t| t == 1 + 2 + 3 + 4));
//! ```

pub mod atomics;
pub mod completion;
mod continuation;
mod ctx;
pub mod dist_object;
pub mod future;
pub mod global_ptr;
pub mod introspect;
pub mod metrics;
pub mod reduce;
pub mod rma;
pub mod rpc;
pub mod runtime;
pub mod ser;
pub mod signal;
pub mod stats;
pub mod trace;
pub mod version;
pub mod vis;

pub use atomics::{AtomicDomain, AtomicValue};
pub use completion::{operation_cx, remote_cx, source_cx, Completions, CxValue, Mode};
pub use dist_object::DistObject;
pub use future::{
    conjoin, conjoin_all, join2, join3, join4, make_future, make_future_with, when_all_value,
    Future, Promise,
};
pub use global_ptr::{GlobalPtr, LocalRef, SegValue};
pub use introspect::{diagnose_stall, wait_graph, Snapshot, WaitEdge, WaitEdgeKind};
pub use metrics::{
    CriticalPathReport, MetricClass, MetricDesc, MetricsConfig, OpBreakdown, RankSeries, Segment,
};
pub use reduce::{ReduceOp, ReduceVal};
pub use runtime::{api, launch, RuntimeConfig, Upcr, DEFAULT_WATCHDOG_MS};
pub use ser::{SerDe, SerError};
pub use stats::StatsSnapshot;
pub use trace::{CompletionPath, Histograms, OpKind, OpenSpan, RankTrace, TraceBundle};
pub use version::LibVersion;
pub use vis::Strided;

// Re-export the substrate types that appear in public signatures.
pub use gasnex::{
    AggConfig, AmoOp, ClockMode, ConduitKind, FaultPlan, GasnexConfig, NetConfig, NetStats,
    NotifyTable, Rank, Team,
};
