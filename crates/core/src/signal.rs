//! Notifiable RMA: put-with-signal, amo-with-signal, and `wait_signal`.
//!
//! The seL4/UNR-style notification layer over [`gasnex::NotifyTable`]:
//! every rank owns a small array of 64-bit *notification words* (size set
//! by [`gasnex::GasnexConfig::with_notify_words`]). A signal-carrying
//! operation performs its data movement and then OR-coalesces a caller-
//! chosen *badge* into one of the target's words — Idle words turn Active,
//! Active words coalesce, and a rank blocked in [`Upcr::wait_signal`] on a
//! matching mask is woken directly by the delivering thread.
//!
//! `wait_signal` extends the signal-driven wakeup engine from intra-rank
//! completion tokens to **cross-rank blocking**: under a wall clock the
//! waiting rank parks its thread on a condvar — zero CPU, zero `progress`
//! polls — until [`gasnex::EventCore::on_signal`] fires from the badge
//! post. Parking is bounded by a reservation counter (at most `ranks - 1`
//! parked at once) so at least one rank always stays awake to drive
//! conduit progress; a refused reservation, or a virtual-clock world
//! (where parking would stall the time-warp and break single-threaded
//! byte-replayability), falls back to polling and counts each poll in
//! `polls_while_parked`.
//!
//! **Delivery exactness.** The badge post happens inside the operation's
//! delivery action, and both conduits execute each delivery action exactly
//! once (the simulator's dedup heap, the UDP conduit's take-from-table
//! dedup) — so a badge is OR-ed exactly once per signal op no matter how
//! often the wire dropped, duplicated, or reordered the message. The OR
//! itself is idempotent, commutative, and associative, so *which* copy of
//! a duplicated frame wins the race is unobservable.
//!
//! **Ordering.** A signal operation is a release edge for this rank's
//! buffered traffic: it explicitly flushes the sender-side aggregation
//! buffers before injecting, so a waiter woken by the badge observes every
//! operation this rank issued before the signal (point-to-point ordering
//! under uniform latency, acks/retries otherwise).

use std::sync::{Arc, Mutex};

use gasnex::{AmoOp, EventCore};

use crate::completion::{operation_cx, Completions, Notifier};
use crate::ctx::RankCtx;
use crate::future::Future;
use crate::global_ptr::{GlobalPtr, SegValue};
use crate::runtime::Upcr;
use crate::stats::{add, bump};
use crate::trace::OpKind;

/// Validate a `(word, badge)` pair against the world's notification table.
fn check_signal_args(ctx: &RankCtx, word: usize, badge: u64) {
    let words = ctx.world.notify().words_per_rank();
    assert!(
        word < words,
        "signal word {word} out of range (notify_words = {words})"
    );
    assert_ne!(badge, 0, "a zero badge would coalesce into nothing");
}

impl Upcr {
    /// Scalar put that signals notification word `word` on the target rank
    /// with `badge` after the data lands (`put-with-signal`). The returned
    /// future is the *initiator-side* completion, same semantics as
    /// [`Upcr::rput`]; the target observes the write by waking from (or
    /// polling) [`Upcr::wait_signal`] on a mask covering `badge`.
    pub fn put_signal<T: SegValue>(
        &self,
        val: T,
        dst: GlobalPtr<T>,
        word: usize,
        badge: u64,
    ) -> Future<()> {
        let ctx = &*self.ctx;
        debug_assert!(!dst.is_null(), "put_signal to null global pointer");
        check_signal_args(ctx, word, badge);
        bump(&ctx.stats.rputs);
        bump(&ctx.stats.signals_sent);
        let top = ctx.trace_op_init(OpKind::Put, true);
        let cx = operation_cx::as_future();
        let rank = dst.rank();
        if ctx.addressable(rank) {
            // Shared-memory bypass: write, then post the badge directly —
            // the waking thread is the initiator itself.
            ctx.world
                .segment(rank)
                .write_scalar(dst.offset(), T::SIZE, val.to_bits());
            if ctx.world.notify().post(rank, word, badge) {
                bump(&ctx.stats.signals_coalesced);
            }
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            // Release edge: everything this rank buffered goes on the wire
            // before the signal message is injected.
            ctx.agg_flush_explicit();
            let core = EventCore::new();
            let (off, bits) = (dst.offset(), val.to_bits());
            let core2 = Arc::clone(&core);
            let msg = ctx.world.net_inject_signal(
                ctx.me,
                rank,
                Box::new(move |w| {
                    w.segment(rank).write_scalar(off, T::SIZE, bits);
                    if w.notify().post(rank, word, badge) {
                        let _ = crate::ctx::try_with_ctx(|c| bump(&c.stats.signals_coalesced));
                    }
                    core2.signal();
                }),
            );
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }

    /// Atomic `op` on the word at `target` that signals notification word
    /// `word` on the target rank with `badge` after the atomic executes
    /// (`amo-with-signal`). The prior value is discarded — pair a fetching
    /// need with a separate [`crate::AtomicDomain`] op. Atomicity and the
    /// badge post are one delivery action, so a waiter woken by the badge
    /// observes the updated word.
    pub fn amo_signal<T: crate::atomics::AtomicValue>(
        &self,
        target: GlobalPtr<T>,
        op: AmoOp,
        v: T,
        word: usize,
        badge: u64,
    ) -> Future<()> {
        let ctx = &*self.ctx;
        debug_assert!(!target.is_null(), "amo_signal on null global pointer");
        assert_eq!(
            target.offset() % 8,
            0,
            "atomic target must be 8-byte aligned"
        );
        check_signal_args(ctx, word, badge);
        bump(&ctx.stats.amos);
        bump(&ctx.stats.signals_sent);
        let top = ctx.trace_op_init(OpKind::Amo, true);
        let cx = operation_cx::as_future();
        let rank = target.rank();
        let (off, operand, signed) = (target.offset(), v.to_bits(), T::SIGNED);
        if ctx.addressable(rank) {
            gasnex::amo::execute(ctx.world.segment(rank), off, op, operand, 0, signed);
            if ctx.world.notify().post(rank, word, badge) {
                bump(&ctx.stats.signals_coalesced);
            }
            cx.notify(&Notifier::sync(ctx, top, ()))
        } else {
            bump(&ctx.stats.net_injected);
            ctx.agg_flush_explicit();
            let core = EventCore::new();
            let core2 = Arc::clone(&core);
            let msg = ctx.world.net_inject_signal(
                ctx.me,
                rank,
                Box::new(move |w| {
                    gasnex::amo::execute(w.segment(rank), off, op, operand, 0, signed);
                    if w.notify().post(rank, word, badge) {
                        let _ = crate::ctx::try_with_ctx(|c| bump(&c.stats.signals_coalesced));
                    }
                    core2.signal();
                }),
            );
            ctx.trace_net_inject(top, msg);
            cx.notify(&Notifier::pending(
                ctx,
                top,
                core,
                Arc::new(Mutex::new(Some(()))),
            ))
        }
    }

    /// Non-blocking probe of this rank's notification word `word`: consume
    /// and return the currently-set bits of `mask` (zero when none). The
    /// returned bits are cleared, so each badge is observed exactly once.
    pub fn test_signal(&self, word: usize, mask: u64) -> u64 {
        let ctx = &*self.ctx;
        check_signal_args(ctx, word, mask);
        let got = ctx.world.notify().try_consume(ctx.me, word, mask);
        if got != 0 {
            ctx.trace_signal(word, got);
        }
        got
    }

    /// Block until any bit of `mask` is set on this rank's notification
    /// word `word`; consume and return the matching bits. Badges posted
    /// while this rank was not waiting are not lost — they sit in the word
    /// and satisfy the wait immediately.
    ///
    /// Under [`gasnex::ClockMode::Wall`] the calling thread **parks** —
    /// zero CPU, zero progress polls — when a parking reservation is
    /// available (at most `ranks - 1` parked, so conduit progress never
    /// stalls). Refused reservations, and every wait under
    /// [`gasnex::ClockMode::Virtual`] (parking would stall the
    /// single-threaded time-warp), poll the progress engine instead and
    /// count each poll in `polls_while_parked`.
    ///
    /// # Panics
    ///
    /// Panics when parked for the configured watchdog timeout
    /// ([`crate::RuntimeConfig::watchdog_ms`]) without a matching badge —
    /// the panic payload is the watchdog's wait-graph stall diagnosis
    /// (see [`crate::introspect::diagnose_stall`]) — or when another rank
    /// aborts the world.
    pub fn wait_signal(&self, word: usize, mask: u64) -> u64 {
        let ctx = &*self.ctx;
        check_signal_args(ctx, word, mask);
        // Entering a wait is a synchronization point: flush our own
        // buffered ops (they may include the traffic a peer is waiting on
        // before it signals us back).
        ctx.agg_flush_explicit();
        let nt = ctx.world.notify();
        let me = ctx.me;
        let wall = ctx.wall_clock;
        let watchdog = std::time::Duration::from_millis(ctx.watchdog_ms);
        loop {
            let got = nt.try_consume(me, word, mask);
            if got != 0 {
                ctx.trace_signal(word, got);
                return got;
            }
            if ctx.world.is_aborted() {
                panic!(
                    "another rank panicked; aborting rank {} in wait_signal",
                    me.0
                );
            }
            if wall && nt.try_reserve_park() {
                let ev = EventCore::new();
                // A badge that raced in between try_consume and here is
                // caught under the word lock: register signals immediately.
                nt.register_waiter(me, word, mask, Arc::clone(&ev));
                let parked_at = std::time::Instant::now();
                let fired = ev.park(watchdog);
                let parked = parked_at.elapsed().as_nanos() as u64;
                add(&ctx.stats.parked_ns, parked);
                if !fired {
                    // The watchdog fired: walk the wait graph and the
                    // flight recorder *while this waiter is still
                    // registered* (so the diagnosis shows our own edge),
                    // then die with the diagnosis as the panic payload
                    // (launch propagates it to the caller).
                    let diagnosis = crate::introspect::diagnose_stall(
                        &ctx.world,
                        me.0,
                        word,
                        mask,
                        ctx.watchdog_ms,
                    );
                    nt.clear_waiter(me, word);
                    nt.unreserve_park();
                    panic!("{diagnosis}");
                }
                nt.clear_waiter(me, word);
                nt.unreserve_park();
                bump(&ctx.stats.park_wakeups);
            } else {
                if ctx.in_callback.get() {
                    // A completion callback runs *inside* a progress drain:
                    // it can neither re-enter the progress engine (progress
                    // is not reentrant) nor reserve a park slot that another
                    // rank may need to drive the conduit. Waiting here would
                    // hang forever — die with the stall diagnosis instead.
                    let diagnosis =
                        crate::introspect::diagnose_stall(&ctx.world, me.0, word, mask, 0);
                    panic!(
                        "wait_signal from a completion callback cannot poll \
                         (progress is not reentrant) and no park slot is available\n{diagnosis}"
                    );
                }
                bump(&ctx.stats.polls_while_parked);
                if wall {
                    // Refused reservation: this rank burns CPU re-testing.
                    // Whatever part of the iteration was *not* inside the
                    // progress quantum is spinning time.
                    let t0 = std::time::Instant::now();
                    let p0 = ctx
                        .stats
                        .progress_ns
                        .load(std::sync::atomic::Ordering::Relaxed);
                    ctx.progress_quantum();
                    let spent = t0.elapsed().as_nanos() as u64;
                    let in_progress = ctx
                        .stats
                        .progress_ns
                        .load(std::sync::atomic::Ordering::Relaxed)
                        .saturating_sub(p0);
                    add(&ctx.stats.spinning_ns, spent.saturating_sub(in_progress));
                } else {
                    ctx.progress_quantum();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::{launch, RuntimeConfig};
    use gasnex::AmoOp;

    #[test]
    fn local_put_signal_is_observed_before_wait() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.put_signal(42u64, p, 0, 0b1).wait();
            // The badge sits in the word; the wait consumes it instantly.
            assert_eq!(u.wait_signal(0, u64::MAX), 0b1);
            assert_eq!(u.rget(p).wait(), 42);
            assert_eq!(u.test_signal(0, u64::MAX), 0, "badge consumed once");
            let s = u.stats();
            assert_eq!(s.signals_sent, 1);
            assert_eq!(s.polls_while_parked, 0, "nothing to wait for");
            u.barrier();
        });
    }

    #[test]
    fn parked_waiter_wakes_on_cross_rank_signal_with_zero_polls() {
        // Rank 0 parks; rank 1 signals it after a delay. The acceptance
        // criterion: a parked rank performs zero progress polls while
        // parked and exactly one park wakeup.
        let stats = launch(RuntimeConfig::smp(2).with_segment_size(1 << 14), |u| {
            let mine = u.new_::<u64>(0);
            let target = u.broadcast(mine, 0);
            u.barrier();
            u.reset_stats();
            if u.rank_me() == 0 {
                let got = u.wait_signal(0, 0b10);
                assert_eq!(got, 0b10);
                assert_eq!(u.rget(mine).wait(), 7, "data lands before the badge");
            } else {
                std::thread::sleep(std::time::Duration::from_millis(20));
                u.put_signal(7u64, target, 0, 0b10).wait();
            }
            u.barrier();
            u.stats()
        });
        assert_eq!(stats[0].park_wakeups, 1, "rank 0 parked and was woken");
        assert_eq!(
            stats[0].polls_while_parked, 0,
            "a parked rank must not poll (idle-CPU guarantee)"
        );
        assert_eq!(stats[1].signals_sent, 1);
    }

    #[test]
    fn badges_coalesce_while_nobody_waits() {
        let stats = launch(RuntimeConfig::smp(2).with_segment_size(1 << 14), |u| {
            let mine = u.new_::<u64>(0);
            let target = u.broadcast(mine, 0);
            u.barrier();
            u.reset_stats();
            if u.rank_me() == 1 {
                for bit in 0..4u64 {
                    u.put_signal(bit, target, 1, 1 << bit).wait();
                }
            }
            u.barrier();
            if u.rank_me() == 0 {
                // All four badges were OR-ed into the word; one wait
                // observes the union.
                assert_eq!(u.wait_signal(1, u64::MAX), 0b1111);
            }
            u.barrier();
            u.stats()
        });
        assert_eq!(stats[1].signals_sent, 4);
        // The 2nd..4th posts found a non-zero word (the waiter only
        // consumed after the barrier).
        assert_eq!(stats[1].signals_coalesced, 3);
    }

    #[test]
    fn amo_signal_updates_word_atomically_before_badge() {
        let results = launch(RuntimeConfig::smp(4).with_segment_size(1 << 14), |u| {
            let mine = u.new_::<u64>(0);
            let target = u.broadcast(mine, 0);
            u.barrier();
            let me = u.rank_me();
            if me != 0 {
                u.amo_signal(target, AmoOp::Add, 1u64, 0, 1 << me).wait();
            }
            let out = if me == 0 {
                let mut seen = 0u64;
                while seen != 0b1110 {
                    seen |= u.wait_signal(0, 0b1110 & !seen);
                }
                u.rget(mine).wait()
            } else {
                0
            };
            u.barrier();
            out
        });
        assert_eq!(results[0], 3, "each amo_signal added exactly once");
    }

    #[test]
    fn wait_signal_is_mask_selective() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.put_signal(1u64, p, 0, 0b101).wait();
            assert_eq!(u.wait_signal(0, 0b001), 0b001);
            assert_eq!(
                u.test_signal(0, u64::MAX),
                0b100,
                "unmasked bits stay in the word"
            );
            u.barrier();
        });
    }

    #[test]
    fn signal_counters_cover_reset() {
        // Regression (mirrors the PR-4 reset-coverage fix): the new signal
        // counters live in the per_rank_stats! declaration, so
        // `reset_stats` must zero all of them.
        launch(RuntimeConfig::smp(2).with_segment_size(1 << 14), |u| {
            let mine = u.new_::<u64>(0);
            let p0 = u.broadcast(mine, 0);
            let p1 = u.broadcast(mine, 1);
            u.barrier();
            let peer = if u.rank_me() == 0 { p1 } else { p0 };
            for bit in 0..3u64 {
                u.put_signal(bit, peer, 0, 1 << bit).wait();
            }
            u.barrier();
            assert_eq!(u.wait_signal(0, 0b111), 0b111);
            let s = u.stats();
            assert_eq!(s.signals_sent, 3);
            assert!(s.signals_coalesced > 0);
            u.reset_stats();
            let z = u.stats();
            assert_eq!(z.signals_sent, 0, "reset must clear signals_sent");
            assert_eq!(z.signals_coalesced, 0, "reset must clear signals_coalesced");
            assert_eq!(z.park_wakeups, 0, "reset must clear park_wakeups");
            assert_eq!(
                z.polls_while_parked, 0,
                "reset must clear polls_while_parked"
            );
            u.barrier();
        });
    }

    #[test]
    fn signal_crosses_the_simulated_wire() {
        // 4 ranks, 2 per node: rank 2 is off-node from rank 0, so its
        // signal takes the conduit (net signals counter) while rank 1's is
        // a same-node direct post.
        let stats = launch(RuntimeConfig::udp(4, 2).with_segment_size(1 << 14), |u| {
            let mine = u.new_::<u64>(0);
            let target = u.broadcast(mine, 0);
            u.barrier();
            let me = u.rank_me();
            if me == 1 || me == 2 {
                u.put_signal(me as u64, target, 0, 1 << me).wait();
            }
            if me == 0 {
                let mut seen = 0u64;
                while seen != 0b110 {
                    seen |= u.wait_signal(0, 0b110 & !seen);
                }
            }
            u.barrier();
            u.net_stats()
        });
        assert_eq!(
            stats[0].signals, 1,
            "exactly rank 2's signal rode the conduit"
        );
    }

    #[test]
    #[should_panic(expected = "wait_signal from a completion callback")]
    fn wait_signal_inside_a_callback_dies_with_diagnosis_instead_of_hanging() {
        // Satellite regression: with ranks = 1 the park cap (ranks - 1 = 0)
        // refuses every reservation, so a wait_signal issued from inside a
        // completion callback can neither park nor poll (progress is not
        // reentrant). It must panic with the stall diagnosis, not hang.
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.rput_with(
                5u64,
                p,
                crate::completion::operation_cx::as_callback(|_: ()| {
                    crate::runtime::api::wait_signal(0, 0b1);
                }),
            );
            u.progress();
        });
    }

    #[test]
    #[should_panic(expected = "signal word 16 out of range")]
    fn out_of_range_word_is_rejected() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.put_signal(1u64, p, 16, 1).wait();
        });
    }

    #[test]
    #[should_panic(expected = "zero badge")]
    fn zero_badge_is_rejected() {
        launch(RuntimeConfig::smp(1).with_segment_size(1 << 14), |u| {
            let p = u.new_::<u64>(0);
            u.put_signal(1u64, p, 0, 0).wait();
        });
    }
}
