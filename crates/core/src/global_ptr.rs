//! Global pointers and the values they may reference.

use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use gasnex::{Rank, Segment};

/// Scalar types storable in shared segments and transferable by RMA and
/// atomic operations.
///
/// Values are transported as zero-extended 64-bit patterns; segment storage
/// guarantees natural alignment for every implementor (all sizes are powers
/// of two ≤ 8).
///
/// # Safety
///
/// Implementations must roundtrip exactly through `to_bits`/`from_bits` for
/// every value, and `SIZE` must equal `std::mem::size_of::<Self>()`.
pub unsafe trait SegValue: Copy + Send + 'static {
    /// Size of the value in bytes (power of two, ≤ 8).
    const SIZE: usize;
    /// Encode as a zero-extended little-endian bit pattern.
    fn to_bits(self) -> u64;
    /// Decode from the bit pattern produced by [`to_bits`](Self::to_bits).
    fn from_bits(bits: u64) -> Self;
}

macro_rules! impl_segvalue_int {
    ($($t:ty),*) => {$(
        unsafe impl SegValue for $t {
            const SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn to_bits(self) -> u64 {
                // Cast through the unsigned type of the same width so
                // negative values do not sign-extend past SIZE bytes.
                self as u64 & (u64::MAX >> (64 - 8 * Self::SIZE))
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}

impl_segvalue_int!(u8, u16, u32, i8, i16, i32, i64, isize);

unsafe impl SegValue for u64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        self
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

unsafe impl SegValue for usize {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

unsafe impl SegValue for f32 {
    const SIZE: usize = 4;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits() as u64
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f32::from_bits(bits as u32)
    }
}

unsafe impl SegValue for f64 {
    const SIZE: usize = 8;
    #[inline]
    fn to_bits(self) -> u64 {
        self.to_bits()
    }
    #[inline]
    fn from_bits(bits: u64) -> Self {
        f64::from_bits(bits)
    }
}

/// A pointer into the global address space: a `(rank, segment offset)` pair.
///
/// Global pointers are plain data — `Copy`, `Send`, comparable — so they can
/// be stored in tables and shipped to other ranks (by RPC or by writing them
/// into shared memory as a `u64`-encoded pair via
/// [`encode`](GlobalPtr::encode)/[`decode`](GlobalPtr::decode)).
///
/// Locality queries (`is_local`) and dereferencing (`local`) are methods on
/// the runtime handle [`Upcr`](crate::Upcr), which owns the topology.
pub struct GlobalPtr<T: SegValue> {
    rank: Rank,
    /// Byte offset within the owner's segment. `usize::MAX` encodes null.
    off: usize,
    _marker: PhantomData<fn() -> T>,
}

impl<T: SegValue> GlobalPtr<T> {
    pub(crate) fn from_parts(rank: Rank, off: usize) -> Self {
        GlobalPtr {
            rank,
            off,
            _marker: PhantomData,
        }
    }

    /// The null global pointer.
    pub fn null() -> Self {
        GlobalPtr::from_parts(Rank(u32::MAX), usize::MAX)
    }

    /// Whether this is the null pointer.
    #[inline]
    pub fn is_null(&self) -> bool {
        self.off == usize::MAX
    }

    /// The rank whose segment this pointer addresses.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Byte offset within the owner's segment.
    #[inline]
    pub fn offset(&self) -> usize {
        self.off
    }

    /// Pointer arithmetic: advance by `n` elements (may be negative).
    #[inline]
    pub fn add(&self, n: usize) -> Self {
        debug_assert!(!self.is_null(), "arithmetic on null global pointer");
        GlobalPtr::from_parts(self.rank, self.off + n * T::SIZE)
    }

    /// Element index difference `self - base` (both must address the same
    /// rank and be element-aligned relative to each other).
    pub fn index_from(&self, base: &Self) -> usize {
        assert_eq!(self.rank, base.rank, "index_from across ranks");
        let diff = self.off - base.off;
        debug_assert_eq!(diff % T::SIZE, 0);
        diff / T::SIZE
    }

    /// Pack into a `u64` for storage in shared memory (rank in the high 24
    /// bits, offset in the low 40 — segments up to 1 TiB).
    pub fn encode(&self) -> u64 {
        if self.is_null() {
            return u64::MAX;
        }
        assert!(self.off < (1 << 40), "offset too large to encode");
        ((self.rank.0 as u64) << 40) | self.off as u64
    }

    /// Unpack a pointer produced by [`encode`](Self::encode).
    pub fn decode(bits: u64) -> Self {
        if bits == u64::MAX {
            return Self::null();
        }
        GlobalPtr::from_parts(Rank((bits >> 40) as u32), (bits & ((1 << 40) - 1)) as usize)
    }
}

impl<T: SegValue> Clone for GlobalPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T: SegValue> Copy for GlobalPtr<T> {}
impl<T: SegValue> PartialEq for GlobalPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.rank == other.rank && self.off == other.off
    }
}
impl<T: SegValue> Eq for GlobalPtr<T> {}
impl<T: SegValue> std::hash::Hash for GlobalPtr<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.rank.hash(state);
        self.off.hash(state);
    }
}

impl<T: SegValue> fmt::Debug for GlobalPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "GlobalPtr<{}>(null)", std::any::type_name::<T>())
        } else {
            write!(
                f,
                "GlobalPtr<{}>({}:{:#x})",
                std::any::type_name::<T>(),
                self.rank,
                self.off
            )
        }
    }
}

/// The result of downcasting a local global pointer: a direct view of the
/// underlying segment word, the analogue of the raw `T*` from
/// `global_ptr::local()`.
///
/// Reads and writes are relaxed atomic word operations (plain `mov`s on
/// x86-64), which is the sound Rust spelling of the C++ version's ordinary
/// loads and stores under the benchmark's "races allowed, lost updates
/// tolerated" regime.
#[derive(Clone, Copy)]
pub struct LocalRef<'a, T: SegValue> {
    pub(crate) seg: &'a Segment,
    pub(crate) off: usize,
    pub(crate) _marker: PhantomData<fn() -> T>,
}

impl<T: SegValue> LocalRef<'_, T> {
    /// Plain (relaxed) read.
    #[inline]
    pub fn get(&self) -> T {
        T::from_bits(self.seg.read_scalar(self.off, T::SIZE))
    }

    /// Plain (relaxed) write.
    #[inline]
    pub fn set(&self, v: T) {
        self.seg.write_scalar(self.off, T::SIZE, v.to_bits());
    }

    /// Advance by `n` elements.
    #[inline]
    pub fn add(&self, n: usize) -> Self {
        LocalRef {
            seg: self.seg,
            off: self.off + n * T::SIZE,
            _marker: PhantomData,
        }
    }
}

impl LocalRef<'_, u64> {
    /// The hardware atomic word behind this reference, for application code
    /// that wants raw shared-memory atomics after downcasting.
    #[inline]
    pub fn as_atomic(&self) -> &std::sync::atomic::AtomicU64 {
        self.seg.atomic_u64(self.off)
    }

    /// Relaxed `^=` read-modify-write expressed as separate load and store —
    /// the exact (lossy under races) update the raw-C++ GUPS variant
    /// performs.
    #[inline]
    pub fn xor_racy(&self, v: u64) {
        let a = self.seg.atomic_u64(self.off);
        let cur = a.load(Ordering::Relaxed);
        a.store(cur ^ v, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segvalue_roundtrips() {
        assert_eq!(u64::from_bits(0xdeadbeefu64.to_bits()), 0xdeadbeef);
        assert_eq!(i64::from_bits((-5i64).to_bits()), -5);
        assert_eq!(i32::from_bits((-5i32).to_bits()), -5);
        assert_eq!(u8::from_bits(200u8.to_bits()), 200);
        assert_eq!(f64::from_bits(3.25f64.to_bits()), 3.25);
        assert_eq!(f32::from_bits((-0.5f32).to_bits()), -0.5);
        // Negative narrow ints must not leak sign bits past their width.
        assert_eq!((-1i8).to_bits(), 0xFF);
        assert_eq!((-1i16).to_bits(), 0xFFFF);
        assert_eq!((-1i32).to_bits(), 0xFFFF_FFFF);
    }

    #[test]
    fn gptr_identity_and_arithmetic() {
        let p = GlobalPtr::<u64>::from_parts(Rank(3), 64);
        assert_eq!(p.rank(), Rank(3));
        assert_eq!(p.offset(), 64);
        let q = p.add(5);
        assert_eq!(q.offset(), 64 + 40);
        assert_eq!(q.index_from(&p), 5);
        assert_eq!(p, p);
        assert_ne!(p, q);
        assert!(!p.is_null());
    }

    #[test]
    fn null_pointer() {
        let n = GlobalPtr::<u32>::null();
        assert!(n.is_null());
        assert_eq!(n, GlobalPtr::<u32>::null());
        assert!(format!("{n:?}").contains("null"));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = GlobalPtr::<u64>::from_parts(Rank(12345), 0xABCDE8);
        let q = GlobalPtr::<u64>::decode(p.encode());
        assert_eq!(p, q);
        let n = GlobalPtr::<u64>::null();
        assert!(GlobalPtr::<u64>::decode(n.encode()).is_null());
    }

    #[test]
    fn local_ref_views_segment() {
        let seg = Segment::new(64);
        let r = LocalRef::<u64> {
            seg: &seg,
            off: 8,
            _marker: PhantomData,
        };
        r.set(77);
        assert_eq!(r.get(), 77);
        assert_eq!(seg.read_u64(8), 77);
        r.add(1).set(88);
        assert_eq!(seg.read_u64(16), 88);
        r.xor_racy(0xFF);
        assert_eq!(r.get(), 77 ^ 0xFF);
        r.as_atomic().fetch_add(1, Ordering::Relaxed);
        assert_eq!(r.get(), (77 ^ 0xFF) + 1);
    }

    #[test]
    fn narrow_local_ref() {
        let seg = Segment::new(64);
        let r = LocalRef::<i16> {
            seg: &seg,
            off: 2,
            _marker: PhantomData,
        };
        r.set(-123);
        assert_eq!(r.get(), -123);
    }
}
