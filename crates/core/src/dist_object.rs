//! Distributed objects: the `upcxx::dist_object<T>` directory.
//!
//! A `dist_object` is a collectively-constructed handle binding one value
//! per rank under a common identifier; `fetch(rank)` retrieves another
//! rank's value asynchronously. It is the standard UPC++ bootstrapping
//! idiom — exchanging global pointers, sizes, and configuration — replacing
//! ad-hoc broadcast patterns.
//!
//! Construction is collective and assigns ids deterministically (one shared
//! counter per world, in creation order per rank), so all ranks' `i`-th
//! `dist_object` refer to the same directory entry — the same scheme UPC++
//! uses. `fetch` is an RPC to the owner and therefore always completes
//! asynchronously, like any RPC.

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use gasnex::Rank;

use crate::completion::CxValue;
use crate::ctx::{clone_current, with_ctx};
use crate::future::cell::new_cell;
use crate::future::Future;
use crate::runtime::Upcr;

thread_local! {
    /// Per-rank registry: dist-object id -> the local value (type-erased).
    static REGISTRY: RefCell<HashMap<u64, Rc<dyn Any>>> = RefCell::new(HashMap::new());
    /// Ids assigned in collective creation order.
    static NEXT_ID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Reset per-thread dist-object state (called at rank teardown).
pub(crate) fn reset_registry() {
    REGISTRY.with(|r| r.borrow_mut().clear());
    NEXT_ID.with(|n| n.set(0));
}

/// A handle to one value per rank, fetchable across ranks.
///
/// `T` must be [`CxValue`] so fetched copies can ride completion
/// notifications. The handle is rank-local (not `Send`), like every other
/// runtime object.
///
/// ```
/// use upcr::{launch, DistObject, Rank, RuntimeConfig};
/// launch(RuntimeConfig::smp(3), |u| {
///     let d = DistObject::new(u, 10 * u.rank_me() as u64);
///     u.barrier();
///     assert_eq!(d.fetch(u, Rank(2)).wait(), 20);
///     u.barrier();
/// });
/// ```
pub struct DistObject<T: CxValue> {
    id: u64,
    local: Rc<T>,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl<T: CxValue> DistObject<T> {
    /// Collective constructor: every rank must call this the same number of
    /// times in the same order (the UPC++ requirement), each contributing
    /// its local value.
    pub fn new(u: &Upcr, value: T) -> Self {
        let id = NEXT_ID.with(|n| {
            let id = n.get();
            n.set(id + 1);
            id
        });
        let local = Rc::new(value);
        REGISTRY.with(|r| {
            let prev = r.borrow_mut().insert(id, Rc::clone(&local) as Rc<dyn Any>);
            assert!(prev.is_none(), "dist_object id {id} registered twice");
        });
        let _ = u; // collective by convention; id assignment is local
        DistObject {
            id,
            local,
            _not_send: std::marker::PhantomData,
        }
    }

    /// The identifier shared by all ranks' instances of this object.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// This rank's value.
    pub fn local(&self) -> &T {
        &self.local
    }

    /// Fetch `rank`'s value. Always asynchronous (an RPC to the owner),
    /// even for `rank == rank_me()` — matching UPC++, where `fetch`
    /// returns a future that is never ready synchronously.
    pub fn fetch(&self, u: &Upcr, rank: Rank) -> Future<T> {
        let id = self.id;
        u.rpc(rank, move || {
            REGISTRY.with(|r| {
                let reg = r.borrow();
                let any = reg
                    .get(&id)
                    .unwrap_or_else(|| panic!("dist_object {id} not yet constructed on this rank"));
                any.downcast_ref::<T>()
                    .unwrap_or_else(|| panic!("dist_object {id} type mismatch"))
                    .clone()
            })
        })
    }
}

impl<T: CxValue> Drop for DistObject<T> {
    fn drop(&mut self) {
        // Leave the registry entry in place: in-flight fetches from other
        // ranks may still arrive (UPC++ requires the object to outlive
        // fetches; we degrade gracefully instead). Entries are cleared at
        // rank teardown.
    }
}

/// Free-function form usable without the handle (fetches on the calling
/// rank's context).
pub fn dist_fetch<T: CxValue>(id: u64, rank: Rank) -> Future<T> {
    let ctx = clone_current();
    let cell = new_cell::<T>(1);
    let c2 = Rc::clone(&cell);
    let reply_id = ctx.register_reply(Box::new(move |payload| {
        let v = *payload
            .downcast::<T>()
            .expect("dist_fetch reply type mismatch");
        c2.set_value(v);
        c2.fulfill(1);
    }));
    let me = ctx.me;
    let direct = ctx.addressable(rank);
    let handler = move |amctx: &gasnex::AmCtx<'_>| {
        let v: T = REGISTRY.with(|r| {
            r.borrow()
                .get(&id)
                .unwrap_or_else(|| panic!("dist_object {id} not constructed"))
                .downcast_ref::<T>()
                .expect("dist_object type mismatch")
                .clone()
        });
        let (src, me2) = (amctx.src, amctx.me);
        let reply = move |_: &gasnex::AmCtx<'_>| crate::ctx::deliver_reply(reply_id, Box::new(v));
        if amctx.world.topology().same_node(me2, src) {
            amctx.world.send_am(src, me2, reply);
        } else {
            amctx
                .world
                .net_inject(Box::new(move |w| w.send_am(src, me2, reply)));
        }
    };
    if direct {
        ctx.world.send_am(rank, me, handler);
    } else {
        ctx.world
            .net_inject(Box::new(move |w| w.send_am(rank, me, handler)));
    }
    with_ctx(|c| crate::stats::bump(&c.stats.rpcs));
    Future::from_cell(cell)
}
