//! Continuation-callback machinery and the state shared with the
//! background progress thread.
//!
//! `operation_cx::as_callback` is the third completion mode (alongside
//! futures/promises and notification signals): the closure is executed
//! exactly once when the operation completes — from the owning rank's
//! progress quantum, or from the background progress thread — and **never**
//! inline on the injecting call, so user code can never observe reentrancy
//! (the MPI Continuations model of Schuchart et al.). Callbacks enqueued
//! while a drain is running (i.e. from inside another callback) join the
//! same FIFO and are delivered by the same drain.
//!
//! Because a callback may be executed by a foreign thread, everything it
//! needs lives here in [`WorldShared`]: one [`RankShared`] slot per rank
//! holding the rank's statistics bank, its callback queue, and its
//! sender-side aggregation buffers. The rank's own `RankCtx` holds clones
//! of its slot; the progress thread walks the slots of its node.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use gasnex::{Coalescer, Rank, World};

use crate::stats::Stats;
use crate::trace::TraceOp;

/// A ready-to-run continuation: the user closure already bound to its
/// completion value.
pub(crate) type Callback = Box<dyn FnOnce() + Send>;

/// A per-rank FIFO of completed-but-not-yet-run continuation callbacks.
///
/// Enqueued by whichever thread completes the operation (the initiating
/// rank for synchronous completions, a delivering peer or the progress
/// thread for asynchronous ones); drained by the owning rank's progress
/// quantum or by the progress thread — exclusively, via the `draining`
/// flag, so a callback never runs twice and never runs reentrantly inside
/// another callback.
#[derive(Default)]
pub(crate) struct CallbackQueue {
    q: Mutex<VecDeque<(Callback, TraceOp)>>,
    draining: AtomicBool,
}

impl CallbackQueue {
    /// Enqueue a callback. Returns `true` when a drain was running at
    /// enqueue time — the callback was *deferred into* that drain's FIFO
    /// rather than opening a new one (the caller counts it).
    pub fn push(&self, cb: Callback, top: TraceOp) -> bool {
        self.q.lock().unwrap().push_back((cb, top));
        self.draining.load(Ordering::Acquire)
    }

    pub fn len(&self) -> usize {
        self.q.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.q.lock().unwrap().is_empty()
    }

    /// Become the exclusive drainer and run callbacks until the queue is
    /// empty — including ones enqueued *during* the drain, so a callback
    /// chain settles within one quantum. Returns the number run; returns 0
    /// immediately when another thread is already draining (their drain
    /// will pick up everything enqueued so far).
    ///
    /// The queue lock is never held while a callback runs, so callbacks
    /// may freely enqueue more callbacks.
    pub fn drain(&self, mut run: impl FnMut(Callback, TraceOp)) -> usize {
        if self.draining.swap(true, Ordering::AcqRel) {
            return 0;
        }
        let mut n = 0;
        loop {
            // Pop in its own statement so the queue guard drops before the
            // callback runs (a `while let` scrutinee guard would live for
            // the whole body and deadlock nested enqueues).
            let next = self.q.lock().unwrap().pop_front();
            let Some((cb, top)) = next else { break };
            run(cb, top);
            n += 1;
        }
        self.draining.store(false, Ordering::Release);
        n
    }
}

/// The cross-thread-visible state of one rank.
pub(crate) struct RankShared {
    /// The rank's statistics bank (the progress thread attributes callback
    /// runs and its own poll counts here).
    pub stats: Arc<Stats>,
    /// Completed continuations awaiting execution.
    pub callbacks: Arc<CallbackQueue>,
    /// Sender-side aggregation buffers (`None` when the knob is off).
    /// Shared so the progress thread — and, under age-based flushing, other
    /// ranks' quanta — can flush an overdue bucket whose owner stopped
    /// calling `progress()` (the age-flush starvation fix).
    pub agg: Arc<Mutex<Option<Coalescer<TraceOp>>>>,
}

/// One slot per rank; built by `launch` before the rank threads start and
/// handed to each `RankCtx` and to the progress threads.
pub(crate) struct WorldShared {
    pub slots: Vec<RankShared>,
}

impl WorldShared {
    pub fn new(world: &World) -> Arc<WorldShared> {
        let agg_cfg = world.config().agg;
        let slots = (0..world.ranks())
            .map(|r| RankShared {
                stats: Arc::new(Stats::default()),
                callbacks: Arc::new(CallbackQueue::default()),
                agg: Arc::new(Mutex::new(
                    agg_cfg
                        .enabled
                        .then(|| Coalescer::new(agg_cfg, world.ranks(), Rank::from_idx(r))),
                )),
            })
            .collect();
        Arc::new(WorldShared { slots })
    }
}

/// The parked-condvar cadence gate the progress thread sleeps on between
/// polls. Woken by the conduits' injection hooks and by callback enqueues,
/// so a completion is noticed promptly even on a fully idle node.
#[derive(Default)]
pub(crate) struct ProgressWaker {
    pending: Mutex<bool>,
    cv: Condvar,
}

impl ProgressWaker {
    pub fn wake(&self) {
        *self.pending.lock().unwrap() = true;
        self.cv.notify_all();
    }

    /// Park until woken or until `cadence` elapses. Returns `true` when an
    /// explicit wake arrived (vs. a cadence timeout).
    pub fn wait(&self, cadence: Duration) -> bool {
        let mut pending = self.pending.lock().unwrap();
        if !*pending {
            let (g, _) = self.cv.wait_timeout(pending, cadence).unwrap();
            pending = g;
        }
        std::mem::take(&mut *pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn drain_runs_fifo_including_nested_enqueues() {
        let q = Arc::new(CallbackQueue::default());
        let log = Arc::new(Mutex::new(Vec::new()));
        let (q2, l2) = (Arc::clone(&q), Arc::clone(&log));
        q.push(
            Box::new(move || {
                l2.lock().unwrap().push(1);
                let l3 = Arc::clone(&l2);
                // Enqueued mid-drain: same FIFO, same drain.
                let deferred = q2.push(Box::new(move || l3.lock().unwrap().push(3)), TraceOp::NONE);
                assert!(deferred, "a drain is running");
            }),
            TraceOp::NONE,
        );
        let l4 = Arc::clone(&log);
        q.push(Box::new(move || l4.lock().unwrap().push(2)), TraceOp::NONE);
        let n = q.drain(|cb, _| cb());
        assert_eq!(n, 3, "the nested callback ran in the same drain");
        assert_eq!(*log.lock().unwrap(), vec![1, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn concurrent_drain_is_exclusive() {
        // Many threads race to drain a large queue: every callback runs
        // exactly once in total.
        let q = Arc::new(CallbackQueue::default());
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..1000 {
            let h = Arc::clone(&hits);
            q.push(
                Box::new(move || {
                    h.fetch_add(1, Ordering::SeqCst);
                }),
                TraceOp::NONE,
            );
        }
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.drain(|cb, _| cb()))
            })
            .collect();
        let total: usize = threads.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 1000);
        assert_eq!(hits.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn waker_wake_then_wait_does_not_block() {
        let w = ProgressWaker::default();
        w.wake();
        assert!(w.wait(Duration::from_secs(5)), "wake already pending");
        // Consumed: the next wait times out.
        assert!(!w.wait(Duration::from_millis(1)));
    }
}
