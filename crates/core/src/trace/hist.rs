//! Log2-bucketed latency histograms keyed by (op kind × completion path).
//!
//! A histogram has 65 buckets: bucket 0 holds exactly the value 0, and
//! bucket `i ≥ 1` holds the range `[2^(i-1), 2^i - 1]` — i.e. a value `v`
//! lands in bucket `64 - v.leading_zeros()`. Quantile accessors report the
//! *upper bound* of the bucket containing the requested rank ("p99 ≤ X"),
//! which is deterministic and merge-stable; the exact maximum is tracked
//! separately. Merging is element-wise addition plus max-of-max, so it is
//! associative and commutative — per-rank histograms can be folded across
//! ranks in any order.

use super::{CompletionPath, OpKind};

/// Number of log2 buckets: one for zero plus one per bit position.
pub const BUCKETS: usize = 65;

/// A log2-bucketed histogram of nanosecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    max: u64,
    sum: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [0; BUCKETS],
            count: 0,
            max: 0,
            sum: 0,
        }
    }
}

/// Bucket index for a value: 0 for 0, else `64 - leading_zeros` (1 → 1,
/// 2..3 → 2, 4..7 → 3, …, `u64::MAX` → 64).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `i`: 0, 1, 3, 7, …, `u64::MAX`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    debug_assert!(i < BUCKETS);
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.max = self.max.max(v);
        self.sum = self.sum.saturating_add(v);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating; 0 when empty). Exposed so the
    /// Prometheus exporter can emit a faithful `_sum` series.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Raw bucket counts (bucket `i` covers `[2^(i-1), 2^i - 1]`, bucket 0
    /// holds exactly zero). Used by the Prometheus histogram exposition.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Quantile estimate: the upper bound of the bucket containing the
    /// sample of rank `ceil(q · count)`. Returns 0 on an empty histogram.
    /// `q` is clamped to (0, 1].
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_bound(i);
            }
        }
        u64::MAX
    }

    /// Median estimate (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another histogram in: element-wise bucket addition plus
    /// max-of-max. Associative and commutative.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Reset to the empty histogram (used by `Upcr::reset_observability`).
    pub fn reset(&mut self) {
        *self = LatencyHistogram::default();
    }
}

/// One row of a latency report: the histogram summary for a single
/// (op kind, completion path) pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyRow {
    pub kind: OpKind,
    pub path: CompletionPath,
    pub count: u64,
    pub p50_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

/// The full set of per-(op kind × completion path) histograms for one rank
/// (or, after merging, for many ranks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histograms {
    hists: [[LatencyHistogram; CompletionPath::ALL.len()]; OpKind::ALL.len()],
}

impl Default for Histograms {
    fn default() -> Self {
        Histograms {
            hists: std::array::from_fn(|_| std::array::from_fn(|_| LatencyHistogram::new())),
        }
    }
}

impl Histograms {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one initiation→notification latency sample.
    pub fn record(&mut self, kind: OpKind, path: CompletionPath, latency_ns: u64) {
        self.hists[kind as usize][path as usize].record(latency_ns);
    }

    /// The histogram for one (kind, path) pair.
    pub fn get(&self, kind: OpKind, path: CompletionPath) -> &LatencyHistogram {
        &self.hists[kind as usize][path as usize]
    }

    /// Reset every (kind, path) histogram to empty.
    pub fn reset(&mut self) {
        for row in self.hists.iter_mut() {
            for h in row.iter_mut() {
                h.reset();
            }
        }
    }

    /// Fold another rank's histograms in (associative, commutative).
    pub fn merge(&mut self, other: &Histograms) {
        for (row, orow) in self.hists.iter_mut().zip(other.hists.iter()) {
            for (h, oh) in row.iter_mut().zip(orow.iter()) {
                h.merge(oh);
            }
        }
    }

    /// Summary rows for every non-empty (kind, path) pair, in declaration
    /// order (deterministic).
    pub fn rows(&self) -> Vec<LatencyRow> {
        let mut out = Vec::new();
        for kind in OpKind::ALL {
            for path in CompletionPath::ALL {
                let h = self.get(kind, path);
                if !h.is_empty() {
                    out.push(LatencyRow {
                        kind,
                        path,
                        count: h.count(),
                        p50_ns: h.p50(),
                        p99_ns: h.p99(),
                        max_ns: h.max(),
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        for k in 0..63 {
            // A power of two opens bucket k+1; one less closes bucket k.
            assert_eq!(bucket_index(1u64 << k), k as usize + 1);
            assert_eq!(bucket_index((1u64 << (k + 1)) - 1), k as usize + 1);
        }
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_index(1u64 << 63), 64);
    }

    #[test]
    fn bucket_upper_bounds() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(3), 7);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value's bucket upper bound is ≥ the value.
        for v in [0, 1, 2, 3, 5, 100, 1 << 40, u64::MAX - 1, u64::MAX] {
            assert!(bucket_upper_bound(bucket_index(v)) >= v);
        }
    }

    #[test]
    fn empty_histogram_quantiles() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_quantiles() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        assert_eq!(h.count(), 1);
        // 5 lands in bucket [4, 7]; every quantile reports that bucket.
        assert_eq!(h.p50(), 7);
        assert_eq!(h.p99(), 7);
        assert_eq!(h.quantile(0.0001), 7);
        assert_eq!(h.quantile(1.0), 7);
        assert_eq!(h.max(), 5);
    }

    #[test]
    fn saturated_histogram_quantiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record(u64::MAX);
        }
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.p99(), u64::MAX);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn quantiles_split_bimodal_distribution() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(10); // bucket [8, 15]
        }
        h.record(1 << 20); // one outlier
        assert_eq!(h.p50(), 15);
        assert_eq!(h.p99(), 15);
        assert_eq!(h.quantile(1.0), (1 << 21) - 1);
        assert_eq!(h.max(), 1 << 20);
    }

    #[test]
    fn sum_tracks_and_resets() {
        let mut h = LatencyHistogram::new();
        h.record(5);
        h.record(7);
        assert_eq!(h.sum(), 12);
        let mut other = LatencyHistogram::new();
        other.record(100);
        h.merge(&other);
        assert_eq!(h.sum(), 112);
        assert_eq!(h.buckets().iter().sum::<u64>(), h.count());
        h.reset();
        assert_eq!((h.sum(), h.count(), h.max()), (0, 0, 0));
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mk = |samples: &[u64]| {
            let mut h = LatencyHistogram::new();
            for &s in samples {
                h.record(s);
            }
            h
        };
        let a = mk(&[0, 1, 7, 200]);
        let b = mk(&[3, 3, 1 << 30]);
        let c = mk(&[u64::MAX, 42]);
        // (a ∪ b) ∪ c
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        // b ∪ a == a ∪ b
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab_c.count(), 9);
        assert_eq!(ab_c.max(), u64::MAX);
    }

    #[test]
    fn histograms_rows_are_deterministic_and_skip_empty() {
        let mut hs = Histograms::new();
        hs.record(OpKind::Put, CompletionPath::Eager, 0);
        hs.record(OpKind::Put, CompletionPath::Deferred, 900);
        hs.record(OpKind::Amo, CompletionPath::Deferred, 1800);
        let rows = hs.rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].kind, OpKind::Put);
        assert_eq!(rows[0].path, CompletionPath::Eager);
        assert_eq!(rows[0].p50_ns, 0);
        assert_eq!(rows[1].path, CompletionPath::Deferred);
        assert_eq!(rows[2].kind, OpKind::Amo);

        let mut other = Histograms::new();
        other.record(OpKind::Put, CompletionPath::Eager, 4);
        hs.merge(&other);
        assert_eq!(hs.get(OpKind::Put, CompletionPath::Eager).count(), 2);
        assert_eq!(hs.get(OpKind::Put, CompletionPath::Eager).max(), 4);
    }
}
