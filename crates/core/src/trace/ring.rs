//! Fixed-capacity event ring buffer.
//!
//! The per-rank span recorder stores events here: pushes are O(1), memory
//! is bounded, and when the buffer is full the *oldest* events are
//! overwritten — the most recent window is what a post-mortem dump needs.
//! The number of displaced events is counted so an exporter can say "N
//! earlier events were dropped" instead of silently truncating.

use std::collections::VecDeque;

/// A bounded ring: keeps the most recent `capacity` items, counting how
/// many older items were displaced.
#[derive(Debug)]
pub struct Ring<T> {
    buf: VecDeque<T>,
    capacity: usize,
    dropped: u64,
}

impl<T> Ring<T> {
    /// Create a ring holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Ring {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Append an item, displacing the oldest if the ring is full.
    pub fn push(&mut self, item: T) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// Items currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Older items displaced by pushes since creation (or the last `take`).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drain everything in insertion order and reset the dropped counter.
    pub fn take(&mut self) -> (Vec<T>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        (self.buf.drain(..).collect(), dropped)
    }

    /// Iterate the retained items oldest-first without draining them —
    /// live snapshots and the flight recorder read the ring in place.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_window() {
        let mut r = Ring::new(4);
        for i in 0..10 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let (items, dropped) = r.take();
        assert_eq!(items, vec![6, 7, 8, 9]);
        assert_eq!(dropped, 6);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0, "take resets the dropped counter");
    }

    #[test]
    fn under_capacity_keeps_everything() {
        let mut r = Ring::new(8);
        for i in 0..5 {
            r.push(i);
        }
        let (items, dropped) = r.take();
        assert_eq!(items, vec![0, 1, 2, 3, 4]);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut r = Ring::new(0);
        r.push(1);
        r.push(2);
        assert_eq!(r.capacity(), 1);
        let (items, dropped) = r.take();
        assert_eq!(items, vec![2]);
        assert_eq!(dropped, 1);
    }
}
