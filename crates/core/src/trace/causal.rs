//! Cross-rank causal assembly: happens-before DAG and distributed
//! critical-path profiles.
//!
//! [`assemble`] is a pure function over a [`TraceBundle`]: it merges the
//! per-rank span traces and the world-global wire trace into one causally
//! ordered timeline, keyed by the Lamport stamps the conduits piggyback on
//! every message (PR 9). On top of the merged node set it builds the
//! happens-before DAG from four edge families:
//!
//! * **Program** — adjacent events within one rank, in `seq` order;
//! * **Wire** — the per-message wire-event chain (inject → drop → retry →
//!   deliver → dup) in recorded order;
//! * **Inject** — a rank's `NetInject`/`BatchFlush` event → the first wire
//!   event of the injected message;
//! * **SignalWake** — a wire `Signal { rank, token }` → the earliest
//!   unmatched `Wakeup { token }` on that rank that outstamps the signal
//!   (token values recur across completion sources; the Lamport filter
//!   rejects wakeups that logically precede the signal).
//!
//! Wall-clock sanity is checked edge-by-edge on the **Wire** and
//! **SignalWake** families: there, the destination *outstamps* its source
//! on the Lamport clock by construction (deliveries merge the carried
//! stamp; wakeups are matched by outstamping their signal), so a
//! destination with an *earlier* wall timestamp is a **causality
//! violation** — impossible under [`gasnex::ClockMode::Virtual`] (the
//! virtual clock is the causal order), but a real hazard for the UDP
//! conduit, where each OS process stamps events from its own monotonic
//! clock and skew can reorder them. Program-order edges are exempt
//! wholesale (a rank's own clock cannot disagree with itself), and so are
//! Inject edges: they tie together two recordings of the same injection
//! by the same process, whose stamps may come from different clock slots
//! when the injection carried no routing hint.
//!
//! The **distributed critical path** is the longest (ns, then hops) path
//! through the DAG, found by a deterministic Kahn traversal (ready nodes
//! drained in `(lclock, lane, seq)` order). Each hop is attributed to a
//! rank (wire hops charge the injecting rank) and a pipeline
//! [`Segment`] — the same taxonomy
//! [`crate::metrics::critical_path::analyze`] uses for per-op latency, so
//! the two reports speak one language.
//!
//! Everything here is deterministic: canonical node order is
//! `(lclock, lane, seq)`, edges are built in a fixed sweep order, and the
//! text render uses only integer formatting — two assemblies of the same
//! bundle are byte-identical (`simtest/tests/causal.rs` locks this across
//! chaos plans).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::fmt::Write as _;

use super::export::TraceBundle;
use super::{CompletionPath, EventKind, NetEventKind, RankTrace};
use crate::metrics::critical_path::Segment;

/// Synthetic lane id for wire-level events (no rank can be `u32::MAX`:
/// the conduits cap rank counts far below it).
pub const WIRE_LANE: u32 = u32::MAX;

/// What a timeline node is — enough structure for edge construction,
/// segment attribution, and the exporters, without re-embedding the full
/// event payloads (the `label` carries those for humans).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeClass {
    /// Rank-side: `Init`.
    Init,
    /// Rank-side: `NetInject`.
    Inject,
    /// Rank-side: `Notify`.
    Notify,
    /// Rank-side: `Wakeup`.
    Wakeup,
    /// Rank-side: `Drain`.
    Drain,
    /// Rank-side: `BatchFlush`.
    BatchFlush,
    /// Rank-side: `Signal` (badge consumption).
    RankSignal,
    /// Rank-side: `CallbackRun` (continuation executed).
    CallbackRun,
    /// Wire: `Inject`.
    WireInject,
    /// Wire: `Drop`.
    WireDrop,
    /// Wire: `Retry`.
    WireRetry,
    /// Wire: `Deliver`.
    WireDeliver,
    /// Wire: `DupDiscard`.
    WireDup,
    /// Wire: `Signal` (completion routed to the initiator).
    WireSignal,
}

/// One node of the assembled timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CausalNode {
    /// Source lane: a rank id, or [`WIRE_LANE`] for wire events.
    pub lane: u32,
    /// Per-lane recording order (rank `seq`, or wire trace index).
    pub seq: u64,
    pub ts_ns: u64,
    /// Lamport stamp — the canonical ordering key.
    pub lclock: u64,
    pub class: NodeClass,
    /// Wire message id, when the node concerns one.
    pub msg: Option<u64>,
    /// Deterministic human-readable description.
    pub label: String,
}

/// Happens-before edge family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Adjacent events on one rank.
    Program,
    /// Consecutive wire events of one message.
    Wire,
    /// Rank injection event → first wire event of the message.
    Inject,
    /// Wire completion signal → the waiter's wakeup.
    SignalWake,
}

impl EdgeKind {
    pub fn name(self) -> &'static str {
        match self {
            EdgeKind::Program => "program",
            EdgeKind::Wire => "wire",
            EdgeKind::Inject => "inject",
            EdgeKind::SignalWake => "signal_wake",
        }
    }
}

/// One happens-before edge (indices into [`CausalAssembly::nodes`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CausalEdge {
    pub from: usize,
    pub to: usize,
    pub kind: EdgeKind,
}

/// One hop of the distributed critical path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathStep {
    /// Index into [`CausalAssembly::nodes`].
    pub node: usize,
    /// The edge that reached this node (`None` for the path source).
    pub via: Option<EdgeKind>,
    /// Wall nanoseconds this hop contributed.
    pub dt_ns: u64,
    /// Rank charged for the hop (wire hops charge the injecting rank;
    /// [`WIRE_LANE`] when no rank claimed the message).
    pub rank: u32,
    /// Pipeline segment charged for the hop (`None` for the source).
    pub segment: Option<Segment>,
}

/// Causal chain length of one completed operation: its own span events,
/// plus the wire events of every message it injected, plus one drain hop
/// when the completion was deferred. Eager local completions are the
/// 2-node floor (init → notify); every deferral or wire crossing grows
/// the chain — the quantity `BENCH_causal.json` pins eager < defer on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpChain {
    pub rank: u32,
    pub op_id: u64,
    pub path: CompletionPath,
    pub len: u64,
}

/// The assembled causal timeline, DAG, and critical-path profile.
#[derive(Clone, Debug, Default)]
pub struct CausalAssembly {
    /// Timeline in canonical `(lclock, lane, seq)` order.
    pub nodes: Vec<CausalNode>,
    /// Happens-before edges, in deterministic construction order.
    pub edges: Vec<CausalEdge>,
    /// Wire/SignalWake edges whose destination outstamps the source on
    /// the Lamport clock yet carries an earlier wall timestamp. Always 0
    /// when one clock stamps every event (virtual clock, or any
    /// single-process run); nonzero flags cross-process clock skew on the
    /// UDP conduit.
    pub violations: u64,
    /// Longest path length in hops — the depth of the causal chain.
    pub chain_depth: u64,
    /// The longest (ns, hops) root-to-sink path, source first.
    pub critical_path: Vec<PathStep>,
    /// Per completed op: causal chain length (see [`OpChain`]).
    pub op_chains: Vec<OpChain>,
}

impl CausalAssembly {
    /// Total happens-before edges.
    pub fn hb_edges(&self) -> u64 {
        self.edges.len() as u64
    }

    /// Wall-ns span of the critical path.
    pub fn critical_span_ns(&self) -> u64 {
        self.critical_path.iter().map(|s| s.dt_ns).sum()
    }

    /// Mean causal chain length over completed ops on `path`, in
    /// milli-hops (integer math; `None` when no op completed on `path`).
    pub fn mean_chain_len_milli(&self, path: CompletionPath) -> Option<u64> {
        let mut n = 0u64;
        let mut sum = 0u64;
        for c in self.op_chains.iter().filter(|c| c.path == path) {
            n += 1;
            sum += c.len;
        }
        (sum * 1000).checked_div(n)
    }

    /// Critical-path time charged per (rank, segment), sorted by rank then
    /// segment discriminant. [`WIRE_LANE`] collects hops no rank claimed.
    pub fn profile(&self) -> Vec<(u32, Segment, u64)> {
        let mut acc: Vec<(u32, Segment, u64)> = Vec::new();
        for step in &self.critical_path {
            let Some(seg) = step.segment else { continue };
            match acc
                .iter_mut()
                .find(|(r, s, _)| *r == step.rank && *s == seg)
            {
                Some((_, _, ns)) => *ns += step.dt_ns,
                None => acc.push((step.rank, seg, step.dt_ns)),
            }
        }
        acc.sort_by_key(|&(r, s, _)| (r, s as usize));
        acc
    }

    fn lane_name(lane: u32) -> String {
        if lane == WIRE_LANE {
            "wire".to_string()
        } else {
            format!("rank {lane}")
        }
    }

    /// Deterministic plain-text render: the merged timeline, the critical
    /// path, and the per-rank segment profile.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "causal timeline v1: nodes={} hb_edges={} violations={} chain_depth={}",
            self.nodes.len(),
            self.hb_edges(),
            self.violations,
            self.chain_depth
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>12}  event",
            "lane", "lclock", "ts(ns)"
        );
        for n in &self.nodes {
            let _ = writeln!(
                out,
                "  {:<8} {:>8} {:>12}  {}",
                Self::lane_name(n.lane),
                n.lclock,
                n.ts_ns,
                n.label
            );
        }
        let _ = writeln!(
            out,
            "critical path: hops={} span={}ns",
            self.chain_depth,
            self.critical_span_ns()
        );
        for step in &self.critical_path {
            let n = &self.nodes[step.node];
            match (step.via, step.segment) {
                (Some(via), Some(seg)) => {
                    let _ = writeln!(
                        out,
                        "  +{}ns via {} [{}] -> {} lclock={} {}",
                        step.dt_ns,
                        via.name(),
                        seg.name(),
                        Self::lane_name(n.lane),
                        n.lclock,
                        n.label
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "  start {} lclock={} {}",
                        Self::lane_name(n.lane),
                        n.lclock,
                        n.label
                    );
                }
            }
        }
        let profile = self.profile();
        let _ = writeln!(out, "profile (rank x segment):");
        if profile.is_empty() {
            let _ = writeln!(out, "  (empty)");
        }
        for (rank, seg, ns) in profile {
            let _ = writeln!(out, "  {}: {}={}ns", Self::lane_name(rank), seg.name(), ns);
        }
        let _ = write!(out, "chain length (milli-hops):");
        for path in CompletionPath::ALL {
            match self.mean_chain_len_milli(path) {
                Some(m) => {
                    let _ = write!(out, " {}={}", path.name(), m);
                }
                None => {
                    let _ = write!(out, " {}=-", path.name());
                }
            }
        }
        out.push('\n');
        out
    }
}

/// Which pipeline segment a hop into `dst` via `kind` charges.
fn hop_segment(kind: EdgeKind, dst: &CausalNode) -> Segment {
    match kind {
        EdgeKind::Inject => Segment::Initiation,
        EdgeKind::SignalWake => Segment::SignalToWakeup,
        EdgeKind::Wire => match dst.class {
            NodeClass::WireRetry => Segment::Backoff,
            NodeClass::WireSignal => Segment::DeliverToSignal,
            _ => Segment::Transit,
        },
        EdgeKind::Program => match dst.class {
            NodeClass::Inject | NodeClass::BatchFlush => Segment::Initiation,
            NodeClass::Notify => Segment::WakeupToNotify,
            _ => Segment::QueueWait,
        },
    }
}

fn rank_node(rank: u32, e: &super::TraceEvent) -> CausalNode {
    let (class, msg, label) = match e.kind {
        EventKind::Init => (
            NodeClass::Init,
            None,
            format!("init {}#{}", e.op.kind.name(), e.op.id),
        ),
        EventKind::NetInject { msg } => (
            NodeClass::Inject,
            Some(msg),
            format!("inject {}#{} msg={}", e.op.kind.name(), e.op.id, msg),
        ),
        EventKind::Notify { path, latency_ns } => (
            NodeClass::Notify,
            None,
            format!(
                "notify {}#{} {} latency={}ns",
                e.op.kind.name(),
                e.op.id,
                path.name(),
                latency_ns
            ),
        ),
        EventKind::Wakeup { token } => (NodeClass::Wakeup, None, format!("wakeup token={token}")),
        EventKind::Drain { items } => (NodeClass::Drain, None, format!("drain items={items}")),
        EventKind::BatchFlush { msg, ops, reason } => (
            NodeClass::BatchFlush,
            Some(msg),
            format!(
                "batch_flush msg={} ops={} reason={}",
                msg,
                ops,
                reason.name()
            ),
        ),
        EventKind::Signal { word, badge } => (
            NodeClass::RankSignal,
            None,
            format!("signal word={word} badge={badge}"),
        ),
        EventKind::CallbackRun => (
            NodeClass::CallbackRun,
            None,
            format!("callback {}#{}", e.op.kind.name(), e.op.id),
        ),
    };
    CausalNode {
        lane: rank,
        seq: e.seq,
        ts_ns: e.ts_ns,
        lclock: e.lclock,
        class,
        msg,
        label,
    }
}

fn wire_node(idx: usize, e: &super::NetTraceEvent) -> CausalNode {
    let (class, msg, label) = match e.kind {
        NetEventKind::Inject => (
            NodeClass::WireInject,
            Some(e.msg),
            format!("net:inject msg={}", e.msg),
        ),
        NetEventKind::Drop { backoff_ns } => (
            NodeClass::WireDrop,
            Some(e.msg),
            format!(
                "net:drop msg={} attempt={} backoff={}ns",
                e.msg, e.attempt, backoff_ns
            ),
        ),
        NetEventKind::Retry => (
            NodeClass::WireRetry,
            Some(e.msg),
            format!("net:retry msg={} attempt={}", e.msg, e.attempt),
        ),
        NetEventKind::Deliver => (
            NodeClass::WireDeliver,
            Some(e.msg),
            format!("net:deliver msg={} attempt={}", e.msg, e.attempt),
        ),
        NetEventKind::DupDiscard => (
            NodeClass::WireDup,
            Some(e.msg),
            format!("net:dup msg={}", e.msg),
        ),
        NetEventKind::Signal { rank, token } => (
            NodeClass::WireSignal,
            None,
            format!("net:signal rank={rank} token={token}"),
        ),
    };
    CausalNode {
        lane: WIRE_LANE,
        seq: idx as u64,
        ts_ns: e.ts_ns,
        lclock: e.lclock,
        class,
        msg,
        label,
    }
}

/// Causal chain lengths of every completed op in the bundle.
fn op_chains(ranks: &[&RankTrace], wire_counts: &HashMap<u64, u64>) -> Vec<OpChain> {
    let mut chains = Vec::new();
    for trace in ranks {
        // op id → (own event count, wire event count of injected msgs).
        let mut acc: HashMap<u64, (u64, u64)> = HashMap::new();
        for e in &trace.events {
            if e.op.is_none() {
                continue;
            }
            let slot = acc.entry(e.op.id).or_default();
            slot.0 += 1;
            if let EventKind::NetInject { msg } = e.kind {
                slot.1 += wire_counts.get(&msg).copied().unwrap_or(0);
            }
            if let EventKind::Notify { path, .. } = e.kind {
                let (own, wire) = acc.remove(&e.op.id).unwrap_or((1, 0));
                let drain_hop = u64::from(path == CompletionPath::Deferred);
                chains.push(OpChain {
                    rank: trace.rank,
                    op_id: e.op.id,
                    path,
                    len: own + wire + drain_hop,
                });
            }
        }
    }
    chains.sort_by_key(|c| (c.rank, c.op_id));
    chains
}

/// Merge a bundle's rank and wire traces into a causal timeline, build
/// the happens-before DAG, and profile the distributed critical path.
/// Pure and deterministic; see the module docs.
pub fn assemble(bundle: &TraceBundle) -> CausalAssembly {
    let mut ranks: Vec<&RankTrace> = bundle.ranks.iter().collect();
    ranks.sort_by_key(|r| r.rank);

    // --- Nodes, then canonical (lclock, lane, seq) order. ---
    let mut nodes: Vec<CausalNode> = Vec::new();
    for r in &ranks {
        for e in &r.events {
            nodes.push(rank_node(r.rank, e));
        }
    }
    for (i, e) in bundle.net.iter().enumerate() {
        nodes.push(wire_node(i, e));
    }
    nodes.sort_by(|a, b| {
        (a.lclock, a.lane, a.seq)
            .cmp(&(b.lclock, b.lane, b.seq))
            .then_with(|| a.label.cmp(&b.label))
    });
    // (lane, seq) → canonical index.
    let by_id: HashMap<(u32, u64), usize> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| ((n.lane, n.seq), i))
        .collect();

    // --- Edges, in a fixed sweep order. ---
    let mut edges: Vec<CausalEdge> = Vec::new();

    // Program order: adjacent events per rank.
    for r in &ranks {
        for w in r.events.windows(2) {
            edges.push(CausalEdge {
                from: by_id[&(r.rank, w[0].seq)],
                to: by_id[&(r.rank, w[1].seq)],
                kind: EdgeKind::Program,
            });
        }
    }

    // Wire chains: consecutive wire events of each message, in recorded
    // order (signals are not message events and stay out of the chains).
    let mut msg_chain: HashMap<u64, Vec<usize>> = HashMap::new();
    let mut msg_order: Vec<u64> = Vec::new();
    for (i, e) in bundle.net.iter().enumerate() {
        if matches!(e.kind, NetEventKind::Signal { .. }) {
            continue;
        }
        let chain = msg_chain.entry(e.msg).or_insert_with(|| {
            msg_order.push(e.msg);
            Vec::new()
        });
        chain.push(by_id[&(WIRE_LANE, i as u64)]);
    }
    for m in &msg_order {
        for w in msg_chain[m].windows(2) {
            edges.push(CausalEdge {
                from: w[0],
                to: w[1],
                kind: EdgeKind::Wire,
            });
        }
    }

    // Inject fan-in: rank injection event → first wire event of the
    // message. Also remember which rank injected each message, for
    // critical-path attribution of wire hops.
    let mut msg_rank: HashMap<u64, u32> = HashMap::new();
    for r in &ranks {
        for e in &r.events {
            let msg = match e.kind {
                EventKind::NetInject { msg } => msg,
                EventKind::BatchFlush { msg, .. } => msg,
                _ => continue,
            };
            msg_rank.entry(msg).or_insert(r.rank);
            if let Some(chain) = msg_chain.get(&msg) {
                edges.push(CausalEdge {
                    from: by_id[&(r.rank, e.seq)],
                    to: chain[0],
                    kind: EdgeKind::Inject,
                });
            }
        }
    }

    // Signal → wakeup: each wire Signal{rank, token} wakes the earliest
    // unmatched Wakeup{token} on that rank whose Lamport stamp *follows*
    // the signal's. Token values are only unique per completion source, so
    // an unrelated wakeup (say, a local deferred op) can carry the same
    // token; the stamp filter keeps it from mispairing — the signal routing
    // and the waiter's tracer tick the same per-rank clock slot, so the
    // caused wakeup always outstamps its signal.
    let mut wakeups: HashMap<(u32, u64), Vec<usize>> = HashMap::new();
    for r in &ranks {
        for e in &r.events {
            if let EventKind::Wakeup { token } = e.kind {
                wakeups
                    .entry((r.rank, token))
                    .or_default()
                    .push(by_id[&(r.rank, e.seq)]);
            }
        }
    }
    for (i, e) in bundle.net.iter().enumerate() {
        if let NetEventKind::Signal { rank, token } = e.kind {
            if let Some(q) = wakeups.get_mut(&(rank, token)) {
                // Recorded in seq (= lclock) order, so the first stamp
                // match is the earliest eligible wakeup.
                if let Some(pos) = q.iter().position(|&w| nodes[w].lclock > e.lclock) {
                    let w = q.remove(pos);
                    edges.push(CausalEdge {
                        from: by_id[&(WIRE_LANE, i as u64)],
                        to: w,
                        kind: EdgeKind::SignalWake,
                    });
                }
            }
        }
    }

    // --- Causality violations: wall time contradicting Lamport order. ---
    // Only Wire and SignalWake edges are eligible. Those are the edges
    // whose endpoint stamps are ordered by the Lamport discipline itself —
    // a delivery *merges* the carried stamp into the receiver's clock, and
    // a wakeup is matched to its signal by outstamping it — so a
    // destination with an earlier wall timestamp can only mean the two
    // recording clocks disagree (cross-process skew). Program-order edges
    // are exempt wholesale: one rank's clock cannot skew against itself.
    // Inject edges are exempt too: they connect two recordings of the
    // *same* injection by the same process (the op-layer span event and
    // the conduit's wire event), whose stamps may come from different
    // clock slots when the injection carried no routing hint — the pair
    // makes neither a Lamport-order nor a wall-order claim.
    let violations = edges
        .iter()
        .filter(|e| matches!(e.kind, EdgeKind::Wire | EdgeKind::SignalWake))
        .filter(|e| nodes[e.to].lclock > nodes[e.from].lclock)
        .filter(|e| nodes[e.to].ts_ns < nodes[e.from].ts_ns)
        .count() as u64;

    // --- Longest-path DP: deterministic Kahn order. ---
    let n = nodes.len();
    let mut out_adj: Vec<Vec<(usize, EdgeKind)>> = vec![Vec::new(); n];
    let mut indeg: Vec<usize> = vec![0; n];
    for e in &edges {
        out_adj[e.from].push((e.to, e.kind));
        indeg[e.to] += 1;
    }
    // dist = (wall ns along the path, hops); parent = arriving edge.
    let mut dist: Vec<(u64, u64)> = vec![(0, 0); n];
    let mut parent: Vec<Option<(usize, EdgeKind)>> = vec![None; n];
    let mut done: Vec<bool> = vec![false; n];
    let key = |i: usize, nodes: &[CausalNode]| (nodes[i].lclock, nodes[i].lane, nodes[i].seq, i);
    let mut heap: BinaryHeap<Reverse<(u64, u32, u64, usize)>> = BinaryHeap::new();
    for (i, &d) in indeg.iter().enumerate() {
        if d == 0 {
            heap.push(Reverse(key(i, &nodes)));
        }
    }
    while let Some(Reverse((_, _, _, u))) = heap.pop() {
        done[u] = true;
        for &(v, kind) in &out_adj[u] {
            let dt = nodes[v].ts_ns.saturating_sub(nodes[u].ts_ns);
            let cand = (dist[u].0 + dt, dist[u].1 + 1);
            // Strictly-greater update + fixed edge order = deterministic
            // parent choice.
            if cand > dist[v] {
                dist[v] = cand;
                parent[v] = Some((u, kind));
            }
            indeg[v] -= 1;
            if indeg[v] == 0 {
                heap.push(Reverse(key(v, &nodes)));
            }
        }
    }
    // A cycle (possible only with hand-corrupted traces) leaves nodes
    // unprocessed; they are simply not path candidates.
    let chain_depth = (0..n)
        .filter(|&i| done[i])
        .map(|i| dist[i].1)
        .max()
        .unwrap_or(0);
    let sink = (0..n).filter(|&i| done[i]).max_by(|&a, &b| {
        dist[a]
            .cmp(&dist[b])
            .then_with(|| key(b, &nodes).cmp(&key(a, &nodes)))
    });

    // --- Backtrack the critical path and attribute each hop. ---
    let mut critical_path = Vec::new();
    if let Some(sink) = sink {
        let mut rev: Vec<(usize, Option<EdgeKind>)> = Vec::new();
        let mut cur = sink;
        loop {
            match parent[cur] {
                Some((p, kind)) => {
                    rev.push((cur, Some(kind)));
                    cur = p;
                }
                None => {
                    rev.push((cur, None));
                    break;
                }
            }
        }
        rev.reverse();
        let mut prev_ts: Option<u64> = None;
        for (node, via) in rev {
            let nref = &nodes[node];
            let dt_ns = prev_ts.map_or(0, |p| nref.ts_ns.saturating_sub(p));
            prev_ts = Some(nref.ts_ns);
            let rank = if nref.lane != WIRE_LANE {
                nref.lane
            } else {
                nref.msg
                    .and_then(|m| msg_rank.get(&m).copied())
                    .unwrap_or(WIRE_LANE)
            };
            let segment = via.map(|k| hop_segment(k, nref));
            critical_path.push(PathStep {
                node,
                via,
                dt_ns,
                rank,
                segment,
            });
        }
    }

    // --- Per-op causal chain lengths (for eager-vs-defer means). ---
    let mut wire_counts: HashMap<u64, u64> = HashMap::new();
    for e in &bundle.net {
        if !matches!(e.kind, NetEventKind::Signal { .. }) {
            *wire_counts.entry(e.msg).or_default() += 1;
        }
    }
    let op_chains = op_chains(&ranks, &wire_counts);

    CausalAssembly {
        nodes,
        edges,
        violations,
        chain_depth,
        critical_path,
        op_chains,
    }
}

#[cfg(test)]
mod tests {
    use super::super::{NetTraceEvent, OpKind, RankTracer};
    use super::*;

    fn net(ts: u64, lclock: u64, msg: u64, attempt: u32, kind: NetEventKind) -> NetTraceEvent {
        NetTraceEvent {
            ts_ns: ts,
            msg,
            attempt,
            kind,
            lclock,
        }
    }

    /// Rank 0 puts to rank 1 over the wire; the completion signal wakes
    /// rank 0's waiter. Covers all four edge families.
    fn remote_put_bundle() -> TraceBundle {
        let mut t0 = RankTracer::new(0);
        let op = t0.op_init(OpKind::Put, 100, true); // lclock 1
        t0.net_inject(op, 7, 120); // lclock 2
        t0.wakeup(3, 900); // lclock 3
        t0.notify(op, CompletionPath::Deferred, 950); // lclock 4
        TraceBundle {
            ranks: vec![t0.take()],
            net: vec![
                // Wire stamps carry the sender's post-tick (2 = the
                // inject); the completion signal ticks the initiator
                // rank's slot *before* the waiter's wakeup records, so it
                // must stamp below the wakeup's 3.
                net(130, 2, 7, 0, NetEventKind::Inject),
                net(600, 2, 7, 0, NetEventKind::Deliver),
                net(
                    700,
                    2,
                    u64::MAX,
                    0,
                    NetEventKind::Signal { rank: 0, token: 3 },
                ),
            ],
        }
    }

    #[test]
    fn assembles_all_edge_families() {
        let a = assemble(&remote_put_bundle());
        assert_eq!(a.nodes.len(), 7);
        let count = |k: EdgeKind| a.edges.iter().filter(|e| e.kind == k).count();
        assert_eq!(count(EdgeKind::Program), 3);
        assert_eq!(count(EdgeKind::Wire), 1); // inject → deliver
        assert_eq!(count(EdgeKind::Inject), 1);
        assert_eq!(count(EdgeKind::SignalWake), 1);
        assert_eq!(a.violations, 0);
        // Longest chain: init → inject → wire-inject → deliver … signal →
        // wakeup → notify is cut at deliver (no deliver→signal edge), so
        // the deepest path runs through the signal wake: signal → wakeup
        // → notify after init → inject → wire chain. Depth ≥ 3 regardless.
        assert!(a.chain_depth >= 3, "depth {}", a.chain_depth);
        assert!(!a.critical_path.is_empty());
        let span: u64 = a.critical_path.iter().map(|s| s.dt_ns).sum();
        assert_eq!(span, a.critical_span_ns());
        // Every hop after the source carries a segment and a rank.
        for s in &a.critical_path[1..] {
            assert!(s.segment.is_some());
        }
    }

    #[test]
    fn assembly_is_deterministic() {
        let a = assemble(&remote_put_bundle());
        let b = assemble(&remote_put_bundle());
        assert_eq!(a.render_text(), b.render_text());
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.edges, b.edges);
    }

    #[test]
    fn canonical_order_is_lclock_major() {
        let a = assemble(&remote_put_bundle());
        for w in a.nodes.windows(2) {
            assert!(
                (w[0].lclock, w[0].lane, w[0].seq) <= (w[1].lclock, w[1].lane, w[1].seq),
                "canonical order broken: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn skewed_wall_clocks_trip_violations() {
        // Deliver stamped *earlier* than inject on the wall clock — the
        // UDP cross-process skew hazard. Lamport order still holds.
        let mut t0 = RankTracer::new(0);
        let op = t0.op_init(OpKind::Put, 1_000, true);
        t0.net_inject(op, 7, 1_010);
        let bundle = TraceBundle {
            ranks: vec![t0.take()],
            net: vec![
                net(1_020, 3, 7, 0, NetEventKind::Inject),
                net(400, 4, 7, 0, NetEventKind::Deliver), // skewed backwards
            ],
        };
        let a = assemble(&bundle);
        assert_eq!(a.violations, 1);
        // Program edges are exempt even if a rank trace were weird.
        assert!(a.edges.iter().any(|e| e.kind == EdgeKind::Wire));
    }

    #[test]
    fn virtual_clock_style_bundle_has_zero_violations() {
        let a = assemble(&remote_put_bundle());
        assert_eq!(a.violations, 0);
    }

    #[test]
    fn op_chain_lengths_separate_eager_from_deferred() {
        let mut t = RankTracer::new(0);
        let e = t.op_init(OpKind::Amo, 10, true);
        t.notify(e, CompletionPath::Eager, 10); // chain: 2
        let d = t.op_init(OpKind::Put, 20, true);
        t.notify(d, CompletionPath::Deferred, 500); // chain: 3
        let bundle = TraceBundle {
            ranks: vec![t.take()],
            net: vec![],
        };
        let a = assemble(&bundle);
        assert_eq!(a.op_chains.len(), 2);
        assert_eq!(a.mean_chain_len_milli(CompletionPath::Eager), Some(2_000));
        assert_eq!(
            a.mean_chain_len_milli(CompletionPath::Deferred),
            Some(3_000)
        );
    }

    #[test]
    fn wire_crossing_lengthens_the_chain() {
        let a = assemble(&remote_put_bundle());
        // init + inject + notify (3) + wire inject/deliver (2) + drain hop
        // (1) = 6.
        assert_eq!(a.op_chains.len(), 1);
        assert_eq!(a.op_chains[0].len, 6);
    }

    #[test]
    fn render_text_is_stable_and_complete() {
        let a = assemble(&remote_put_bundle());
        let text = a.render_text();
        assert!(text.starts_with("causal timeline v1:"));
        assert!(text.contains("rank 0"));
        assert!(text.contains("wire"));
        assert!(text.contains("critical path:"));
        assert!(text.contains("profile (rank x segment):"));
        assert!(text.contains("chain length (milli-hops):"));
    }

    #[test]
    fn empty_bundle_assembles_cleanly() {
        let a = assemble(&TraceBundle::default());
        assert_eq!(a.nodes.len(), 0);
        assert_eq!(a.hb_edges(), 0);
        assert_eq!(a.violations, 0);
        assert_eq!(a.chain_depth, 0);
        assert!(a.critical_path.is_empty());
        assert!(a.render_text().contains("nodes=0"));
    }
}
