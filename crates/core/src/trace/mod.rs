//! Operation-lifecycle tracing.
//!
//! The paper's argument is about *when* a completion is observed — eagerly
//! at initiation or deferred through the progress engine. The aggregate
//! counters ([`crate::StatsSnapshot`], [`gasnex::NetStats`]) prove this in
//! totals; this module proves it **per operation**: every RMA put/get,
//! atomic, RPC, and `when_all` conjoin gets an op id stamped at initiation,
//! and its lifecycle events — net-inject, chaos retries, delivery,
//! notification (tagged eager vs. deferred), event wakeup, progress drain —
//! are recorded into a per-rank fixed-capacity [`ring::Ring`].
//!
//! Timestamps come from the simulated network's clock
//! ([`gasnex::Conduit::now_ns`]): wall nanoseconds under
//! [`gasnex::ClockMode::Wall`], the logical time-warp counter under
//! [`gasnex::ClockMode::Virtual`] — so chaos traces are bit-replayable.
//!
//! On top of the raw spans, [`hist::Histograms`] maintains log2-bucketed
//! initiation→notification latency histograms keyed by (op kind ×
//! completion path), and [`export`] renders Chrome `trace_event` JSON
//! (loadable in `chrome://tracing` / Perfetto) or a plain-text summary.
//!
//! Recording is gated by a single per-rank flag checked once per
//! instrumentation site ([`crate::Upcr::trace_enabled`]); disabled-mode
//! overhead is one predictably-taken branch (measured by
//! `crates/bench/benches/trace_overhead.rs`).

pub mod causal;
pub mod export;
pub mod hist;
pub mod ring;

use std::collections::HashMap;
use std::sync::Arc;

pub use causal::{assemble, CausalAssembly, CausalEdge, CausalNode, EdgeKind, PathStep};
pub use export::{
    chrome_trace_json, chrome_trace_json_with_flows, count_notifications, parse_json,
    summary_table, Json, TraceBundle,
};
pub use gasnex::{LamportClocks, NetEventKind, NetTraceEvent};
pub use hist::{Histograms, LatencyHistogram, LatencyRow};

/// Default per-rank ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// What kind of operation a span belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    Put = 0,
    Get = 1,
    Amo = 2,
    Rpc = 3,
    WhenAll = 4,
}

impl OpKind {
    pub const ALL: [OpKind; 5] = [
        OpKind::Put,
        OpKind::Get,
        OpKind::Amo,
        OpKind::Rpc,
        OpKind::WhenAll,
    ];

    pub fn name(self) -> &'static str {
        match self {
            OpKind::Put => "put",
            OpKind::Get => "get",
            OpKind::Amo => "amo",
            OpKind::Rpc => "rpc",
            OpKind::WhenAll => "when_all",
        }
    }
}

/// Which path delivered the completion notification — the distinction the
/// paper is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CompletionPath {
    /// Delivered synchronously at initiation (zero queue traversal).
    Eager = 0,
    /// Delivered later by the progress engine (deferred queue or
    /// signal-driven wakeup).
    Deferred = 1,
}

impl CompletionPath {
    pub const ALL: [CompletionPath; 2] = [CompletionPath::Eager, CompletionPath::Deferred];

    pub fn name(self) -> &'static str {
        match self {
            CompletionPath::Eager => "eager",
            CompletionPath::Deferred => "deferred",
        }
    }
}

/// A copyable handle to an open span: the per-rank op id plus the kind.
/// `TraceOp::NONE` (id 0) is the disabled-mode sentinel — every recording
/// helper ignores it, so untraced operations carry zero state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceOp {
    pub id: u64,
    pub kind: OpKind,
}

impl TraceOp {
    pub const NONE: TraceOp = TraceOp {
        id: 0,
        kind: OpKind::Put,
    };

    #[inline]
    pub fn is_none(self) -> bool {
        self.id == 0
    }
}

/// One lifecycle event in a rank's trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Operation initiated (op id stamped).
    Init,
    /// Operation injected into the simulated network as message `msg`
    /// (correlates with the wire-level [`NetTraceEvent`]s for `msg`).
    NetInject { msg: u64 },
    /// Completion notification delivered, tagged with the path taken and
    /// the initiation→notification latency.
    Notify {
        path: CompletionPath,
        latency_ns: u64,
    },
    /// A ready-queue completion token woke an event waiter.
    Wakeup { token: u64 },
    /// A progress quantum drained `items` work items (only quanta that did
    /// work are recorded; idle spins are not).
    Drain { items: u64 },
    /// The aggregation layer flushed a batch of `ops` coalesced operations
    /// as wire message `msg`. Each constituent op records its own
    /// `NetInject { msg }` alongside, so spans still correlate with the
    /// wire.
    BatchFlush {
        msg: u64,
        ops: u32,
        reason: gasnex::FlushReason,
    },
    /// `wait_signal` consumed `badge` bits from notification word `word`
    /// (a rank-level event: the badges may have been coalesced from many
    /// signal ops, so no single span owns the consumption).
    Signal { word: u32, badge: u64 },
    /// A continuation callback (`operation_cx::as_callback`) for the owning
    /// span started executing (recorded only for drains on the rank's own
    /// thread; progress-thread runs are untraced — the tracer is
    /// thread-local).
    CallbackRun,
}

/// One recorded event. `seq` is a per-rank monotonic counter, so event
/// order is well-defined even when timestamps tie (common under the
/// virtual clock).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    pub ts_ns: u64,
    pub seq: u64,
    /// The owning span (`TraceOp::NONE` for rank-level events like
    /// `Wakeup`/`Drain`).
    pub op: TraceOp,
    pub kind: EventKind,
    /// Lamport stamp from the rank's logical clock, ticked per recorded
    /// event — strictly monotone within a rank, merged across ranks by the
    /// conduit piggyback, so the causal assembler can order events
    /// globally without trusting wall clocks.
    pub lclock: u64,
}

/// Everything one rank recorded: its events (most recent window) and how
/// many older events the ring displaced.
#[derive(Clone, Debug)]
pub struct RankTrace {
    pub rank: u32,
    pub events: Vec<TraceEvent>,
    pub dropped: u64,
}

/// One still-open (initiated, not yet notified) operation with its current
/// lifecycle phase, reconstructed from the trace ring by
/// [`RankTracer::open_spans`] for the live-snapshot API.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpenSpan {
    /// Per-rank op id.
    pub id: u64,
    /// Operation kind, when its events are still in the ring window
    /// (`None` when they were displaced).
    pub kind: Option<OpKind>,
    /// Current phase: `"initiated"`, `"on-wire"`, or `"unknown"` (events
    /// displaced from the ring).
    pub phase: &'static str,
    /// Initiation timestamp on the conduit clock.
    pub init_ts_ns: u64,
    /// The wire message carrying the op, once injected.
    pub wire_msg: Option<u64>,
}

/// The per-rank span recorder. Lives in the rank context behind a
/// `RefCell`; all methods take `&mut self` and are only reached when the
/// rank's trace flag is set.
#[derive(Debug)]
pub struct RankTracer {
    rank: u32,
    ring: ring::Ring<TraceEvent>,
    next_op: u64,
    next_seq: u64,
    /// Open spans: op id → initiation timestamp (for latency on notify).
    open: HashMap<u64, u64>,
    hist: Histograms,
    /// The world's shared Lamport clock bank, when the tracer is wired
    /// into a running job. Standalone tracers (tests, tooling) fall back
    /// to a private per-rank counter — same strict monotonicity, no
    /// cross-rank merge.
    clocks: Option<Arc<LamportClocks>>,
    /// Fallback logical clock for tracers without a shared bank.
    local_lc: u64,
}

impl RankTracer {
    pub fn new(rank: u32) -> Self {
        Self::with_capacity(rank, DEFAULT_RING_CAPACITY)
    }

    /// A tracer stamping events from the world's shared Lamport clock
    /// bank, so rank-side stamps interleave causally with the conduit's
    /// wire stamps.
    pub fn with_clocks(rank: u32, clocks: Arc<LamportClocks>) -> Self {
        RankTracer {
            clocks: Some(clocks),
            ..Self::new(rank)
        }
    }

    pub fn with_capacity(rank: u32, capacity: usize) -> Self {
        RankTracer {
            rank,
            ring: ring::Ring::new(capacity),
            next_op: 0,
            next_seq: 0,
            open: HashMap::new(),
            hist: Histograms::new(),
            clocks: None,
            local_lc: 0,
        }
    }

    #[inline]
    fn push(&mut self, ts_ns: u64, op: TraceOp, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let lclock = match &self.clocks {
            Some(c) => c.tick(c.slot_for(Some(self.rank))),
            None => {
                self.local_lc += 1;
                self.local_lc
            }
        };
        self.ring.push(TraceEvent {
            ts_ns,
            seq,
            op,
            kind,
            lclock,
        });
    }

    /// Stamp a new op id and record its `Init` event. `expect_notify`
    /// keeps the span open for latency measurement; fire-and-forget
    /// operations (e.g. `rpc_ff`) pass `false` so the open-span table
    /// cannot grow unboundedly.
    pub fn op_init(&mut self, kind: OpKind, ts_ns: u64, expect_notify: bool) -> TraceOp {
        self.next_op += 1;
        let op = TraceOp {
            id: self.next_op,
            kind,
        };
        if expect_notify {
            self.open.insert(op.id, ts_ns);
        }
        self.push(ts_ns, op, EventKind::Init);
        op
    }

    /// Record that `op` went onto the wire as message `msg`.
    pub fn net_inject(&mut self, op: TraceOp, msg: u64, ts_ns: u64) {
        if !op.is_none() {
            self.push(ts_ns, op, EventKind::NetInject { msg });
        }
    }

    /// Record `op`'s completion notification and feed the latency
    /// histogram for (kind, path). Spans initiated while tracing was off
    /// (or already closed) record the event with latency 0 and skip the
    /// histogram.
    pub fn notify(&mut self, op: TraceOp, path: CompletionPath, ts_ns: u64) {
        if op.is_none() {
            return;
        }
        let latency_ns = match self.open.remove(&op.id) {
            Some(t0) => {
                let l = ts_ns.saturating_sub(t0);
                self.hist.record(op.kind, path, l);
                l
            }
            None => 0,
        };
        self.push(ts_ns, op, EventKind::Notify { path, latency_ns });
    }

    /// Record a ready-queue wakeup.
    pub fn wakeup(&mut self, token: u64, ts_ns: u64) {
        self.push(ts_ns, TraceOp::NONE, EventKind::Wakeup { token });
    }

    /// Record a productive progress quantum.
    pub fn drain(&mut self, items: u64, ts_ns: u64) {
        self.push(ts_ns, TraceOp::NONE, EventKind::Drain { items });
    }

    /// Record a `wait_signal` badge consumption.
    pub fn signal(&mut self, word: u32, badge: u64, ts_ns: u64) {
        self.push(ts_ns, TraceOp::NONE, EventKind::Signal { word, badge });
    }

    /// Record that `op`'s continuation callback ran.
    pub fn callback_run(&mut self, op: TraceOp, ts_ns: u64) {
        if !op.is_none() {
            self.push(ts_ns, op, EventKind::CallbackRun);
        }
    }

    /// Record an aggregation batch flush (a rank-level event; the
    /// constituent ops record their own `NetInject`s).
    pub fn batch_flush(&mut self, msg: u64, ops: u32, reason: gasnex::FlushReason, ts_ns: u64) {
        self.push(
            ts_ns,
            TraceOp::NONE,
            EventKind::BatchFlush { msg, ops, reason },
        );
    }

    /// The lifecycle phase of one still-open operation, reconstructed from
    /// the ring for the live-snapshot API.
    pub fn open_spans(&self) -> Vec<OpenSpan> {
        let mut spans: Vec<OpenSpan> = self
            .open
            .iter()
            .map(|(&id, &init_ts)| OpenSpan {
                id,
                // Kind and phase are refined from the ring below; an op
                // whose events were displaced stays "unknown".
                kind: None,
                phase: "unknown",
                init_ts_ns: init_ts,
                wire_msg: None,
            })
            .collect();
        spans.sort_by_key(|s| s.id);
        for ev in self.ring.iter() {
            if ev.op.is_none() {
                continue;
            }
            let Ok(i) = spans.binary_search_by_key(&ev.op.id, |s| s.id) else {
                continue;
            };
            let s = &mut spans[i];
            s.kind = Some(ev.op.kind);
            // Events arrive in ring (= lifecycle) order, so the last one
            // seen for the op is its current phase.
            match ev.kind {
                EventKind::Init => s.phase = "initiated",
                EventKind::NetInject { msg } => {
                    s.phase = "on-wire";
                    s.wire_msg = Some(msg);
                }
                // An open span with a Notify event should not exist (notify
                // closes it), but render it honestly if it does.
                EventKind::Notify { .. } => s.phase = "notified",
                _ => {}
            }
        }
        spans
    }

    /// Drain the recorded events (histograms are kept).
    pub fn take(&mut self) -> RankTrace {
        let (events, dropped) = self.ring.take();
        RankTrace {
            rank: self.rank,
            events,
            dropped,
        }
    }

    /// Snapshot the latency histograms accumulated so far.
    pub fn histograms(&self) -> Histograms {
        self.hist.clone()
    }

    /// Reset the accumulated latency histograms (open spans and buffered
    /// events are untouched — a span straddling the reset still records
    /// its notify, into the fresh histograms).
    pub fn reset_histograms(&mut self) {
        self.hist.reset();
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_lifecycle_feeds_histogram() {
        let mut t = RankTracer::new(3);
        let op = t.op_init(OpKind::Put, 100, true);
        assert_eq!(op.id, 1);
        t.net_inject(op, 7, 110);
        t.notify(op, CompletionPath::Deferred, 1100);
        let h = t.histograms();
        let hist = h.get(OpKind::Put, CompletionPath::Deferred);
        assert_eq!(hist.count(), 1);
        assert_eq!(hist.max(), 1000);
        let trace = t.take();
        assert_eq!(trace.rank, 3);
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.events[0].kind, EventKind::Init);
        assert_eq!(trace.events[1].kind, EventKind::NetInject { msg: 7 });
        assert_eq!(
            trace.events[2].kind,
            EventKind::Notify {
                path: CompletionPath::Deferred,
                latency_ns: 1000
            }
        );
        // seq is monotonic.
        assert!(trace.events.windows(2).all(|w| w[0].seq < w[1].seq));
    }

    #[test]
    fn fire_and_forget_leaves_no_open_span() {
        let mut t = RankTracer::new(0);
        let op = t.op_init(OpKind::Rpc, 5, false);
        assert!(t.open.is_empty());
        // A stray notify records latency 0 and no histogram sample.
        t.notify(op, CompletionPath::Deferred, 50);
        assert!(t
            .histograms()
            .get(OpKind::Rpc, CompletionPath::Deferred)
            .is_empty());
    }

    #[test]
    fn none_op_is_ignored() {
        let mut t = RankTracer::new(0);
        t.net_inject(TraceOp::NONE, 1, 10);
        t.notify(TraceOp::NONE, CompletionPath::Eager, 10);
        assert!(t.is_empty());
    }
}
