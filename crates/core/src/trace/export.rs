//! Trace exporters: Chrome `trace_event` JSON and a plain-text summary.
//!
//! The JSON exporter emits the "JSON Array Format" variant of the Chrome
//! tracing schema wrapped in an object (`{"traceEvents": [...]}`), which
//! both `chrome://tracing` and Perfetto load directly. Layout:
//!
//! * one *process* per rank (`pid` = rank), plus a synthetic process
//!   `pid` = [`NET_PID`] for wire-level events;
//! * completed spans (initiation → notification) as `"ph": "X"` complete
//!   events named `{kind}:{path}` (e.g. `put:eager`, `amo:deferred`);
//! * everything else (`init`, `inject`, `wakeup`, `drain`, and all net
//!   events) as `"ph": "i"` instant events.
//!
//! Output is a pure function of the recorded events: fixed field order, no
//! floating-point formatting (timestamps are printed as `µs.nnn` with
//! integer math), no hash-map iteration. Under `ClockMode::Virtual` with a
//! seeded `FaultPlan` and a deterministic drive, two runs produce
//! byte-identical files — the property `tests/trace.rs` locks in.
//!
//! A minimal JSON reader ([`parse_json`], [`count_notifications`]) lives
//! here too so the CI trace smoke job can validate an exported file
//! without external dependencies.

use std::fmt::Write as _;

use super::causal::{CausalAssembly, EdgeKind, WIRE_LANE};
use super::hist::Histograms;
use super::{EventKind, NetEventKind, NetTraceEvent, RankTrace, TraceEvent};

/// Synthetic Chrome-trace process id for wire-level (network) events —
/// far above any plausible rank count.
pub const NET_PID: u64 = 1_000_000;

/// Everything a run recorded: per-rank span traces plus the world-global
/// wire-level trace.
#[derive(Clone, Debug, Default)]
pub struct TraceBundle {
    pub ranks: Vec<RankTrace>,
    pub net: Vec<NetTraceEvent>,
}

/// Append a Chrome-trace timestamp: microseconds with the nanosecond
/// remainder as three fixed decimals, via integer math only.
fn push_ts(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1000, ns % 1000);
}

fn push_instant(out: &mut String, name: &str, pid: u64, ts_ns: u64, args: &str) {
    out.push_str("{\"name\":\"");
    out.push_str(name);
    let _ = write!(
        out,
        "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":0,\"ts\":"
    );
    push_ts(out, ts_ns);
    let _ = write!(out, ",\"args\":{{{args}}}}}");
}

fn push_rank_event(out: &mut String, rank: u32, e: &TraceEvent, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let pid = u64::from(rank);
    match e.kind {
        EventKind::Init => {
            let mut name = String::from("init:");
            name.push_str(e.op.kind.name());
            let args = format!("\"op\":{},\"seq\":{}", e.op.id, e.seq);
            push_instant(out, &name, pid, e.ts_ns, &args);
        }
        EventKind::NetInject { msg } => {
            let mut name = String::from("inject:");
            name.push_str(e.op.kind.name());
            let args = format!("\"op\":{},\"msg\":{},\"seq\":{}", e.op.id, msg, e.seq);
            push_instant(out, &name, pid, e.ts_ns, &args);
        }
        EventKind::Notify { path, latency_ns } => {
            // A complete ("X") event spanning initiation → notification.
            let mut name = String::from(e.op.kind.name());
            name.push(':');
            name.push_str(path.name());
            out.push_str("{\"name\":\"");
            out.push_str(&name);
            let _ = write!(out, "\",\"ph\":\"X\",\"pid\":{pid},\"tid\":0,\"ts\":");
            push_ts(out, e.ts_ns.saturating_sub(latency_ns));
            out.push_str(",\"dur\":");
            push_ts(out, latency_ns);
            let _ = write!(out, ",\"args\":{{\"op\":{},\"seq\":{}}}}}", e.op.id, e.seq);
        }
        EventKind::Wakeup { token } => {
            let args = format!("\"token\":{},\"seq\":{}", token, e.seq);
            push_instant(out, "wakeup", pid, e.ts_ns, &args);
        }
        EventKind::Drain { items } => {
            let args = format!("\"items\":{},\"seq\":{}", items, e.seq);
            push_instant(out, "drain", pid, e.ts_ns, &args);
        }
        EventKind::BatchFlush { msg, ops, reason } => {
            let args = format!(
                "\"msg\":{},\"ops\":{},\"reason\":\"{}\",\"seq\":{}",
                msg,
                ops,
                reason.name(),
                e.seq
            );
            push_instant(out, "batch_flush", pid, e.ts_ns, &args);
        }
        EventKind::Signal { word, badge } => {
            let args = format!("\"word\":{},\"badge\":{},\"seq\":{}", word, badge, e.seq);
            push_instant(out, "signal", pid, e.ts_ns, &args);
        }
        EventKind::CallbackRun => {
            let mut name = String::from("callback:");
            name.push_str(e.op.kind.name());
            let args = format!("\"op\":{},\"seq\":{}", e.op.id, e.seq);
            push_instant(out, &name, pid, e.ts_ns, &args);
        }
    }
}

fn push_net_event(out: &mut String, e: &NetTraceEvent, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    match e.kind {
        NetEventKind::Inject => {
            let args = format!("\"msg\":{}", e.msg);
            push_instant(out, "net:inject", NET_PID, e.ts_ns, &args);
        }
        NetEventKind::Drop { backoff_ns } => {
            let args = format!(
                "\"msg\":{},\"attempt\":{},\"backoff_ns\":{}",
                e.msg, e.attempt, backoff_ns
            );
            push_instant(out, "net:drop", NET_PID, e.ts_ns, &args);
        }
        NetEventKind::Retry => {
            let args = format!("\"msg\":{},\"attempt\":{}", e.msg, e.attempt);
            push_instant(out, "net:retry", NET_PID, e.ts_ns, &args);
        }
        NetEventKind::Deliver => {
            let args = format!("\"msg\":{},\"attempt\":{}", e.msg, e.attempt);
            push_instant(out, "net:deliver", NET_PID, e.ts_ns, &args);
        }
        NetEventKind::DupDiscard => {
            let args = format!("\"msg\":{}", e.msg);
            push_instant(out, "net:dup", NET_PID, e.ts_ns, &args);
        }
        NetEventKind::Signal { rank, token } => {
            let args = format!("\"rank\":{rank},\"token\":{token}");
            push_instant(out, "net:signal", NET_PID, e.ts_ns, &args);
        }
    }
}

/// Emit the `"ph":"M"` metadata pair naming one Chrome-trace row: the
/// process label shown in the track header plus a thread label for its
/// single lane.
fn push_row_metadata(out: &mut String, pid: u64, name: &str, thread: &str, first: &mut bool) {
    if !*first {
        out.push(',');
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{name}\"}}}},\
         {{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
         \"args\":{{\"name\":\"{thread}\"}}}}"
    );
}

/// Shared body of the Chrome exporters: metadata rows, rank events, wire
/// events — everything except the enclosing object and any flow events.
fn push_trace_events(bundle: &TraceBundle, out: &mut String, first: &mut bool) {
    let mut ranks: Vec<&RankTrace> = bundle.ranks.iter().collect();
    ranks.sort_by_key(|r| r.rank);
    for r in &ranks {
        let name = format!("rank {}", r.rank);
        push_row_metadata(out, u64::from(r.rank), &name, "ops", first);
        if r.dropped > 0 {
            let args = format!("\"dropped\":{}", r.dropped);
            push_instant_ev(out, "ring:dropped", u64::from(r.rank), 0, &args, first);
        }
    }
    if !bundle.net.is_empty() {
        push_row_metadata(out, NET_PID, "wire", "wire", first);
    }
    for r in &ranks {
        for e in &r.events {
            push_rank_event(out, r.rank, e, first);
        }
    }
    for e in &bundle.net {
        push_net_event(out, e, first);
    }
}

fn push_instant_ev(
    out: &mut String,
    name: &str,
    pid: u64,
    ts_ns: u64,
    args: &str,
    first: &mut bool,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    push_instant(out, name, pid, ts_ns, args);
}

/// Render a bundle as Chrome `trace_event` JSON. Deterministic: ranks in
/// ascending rank order, events in recording order, fixed field order.
pub fn chrome_trace_json(bundle: &TraceBundle) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    push_trace_events(bundle, &mut out, &mut first);
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Like [`chrome_trace_json`], plus Chrome *flow* events (`"ph":"s"` /
/// `"ph":"f"`) for every cross-lane happens-before edge of `assembly` —
/// Perfetto draws them as arrows from the injecting rank onto the wire
/// row and from wire signals back into the waking rank. Program-order
/// edges are omitted (within-row arrows are noise). Flow ids are the
/// edge's index in [`CausalAssembly::edges`], so the export stays a pure
/// deterministic function of (bundle, assembly).
pub fn chrome_trace_json_with_flows(bundle: &TraceBundle, assembly: &CausalAssembly) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    push_trace_events(bundle, &mut out, &mut first);
    let pid_of = |lane: u32| -> u64 {
        if lane == WIRE_LANE {
            NET_PID
        } else {
            u64::from(lane)
        }
    };
    for (id, e) in assembly.edges.iter().enumerate() {
        if e.kind == EdgeKind::Program {
            continue;
        }
        let (from, to) = (&assembly.nodes[e.from], &assembly.nodes[e.to]);
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"s\",\"id\":{id},\
             \"pid\":{fpid},\"tid\":0,\"ts\":",
            name = e.kind.name(),
            fpid = pid_of(from.lane),
        );
        push_ts(&mut out, from.ts_ns);
        let _ = write!(
            out,
            "}},{{\"name\":\"{name}\",\"cat\":\"causal\",\"ph\":\"f\",\"bp\":\"e\",\
             \"id\":{id},\"pid\":{tpid},\"tid\":0,\"ts\":",
            name = e.kind.name(),
            tpid = pid_of(to.lane),
        );
        push_ts(&mut out, to.ts_ns);
        out.push('}');
    }
    out.push_str("],\"displayTimeUnit\":\"ns\"}");
    out
}

/// Render latency histograms as a plain-text summary table.
pub fn summary_table(hists: &Histograms) -> String {
    let rows = hists.rows();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<10} {:<9} {:>10} {:>12} {:>12} {:>12}",
        "op", "path", "count", "p50(ns)", "p99(ns)", "max(ns)"
    );
    if rows.is_empty() {
        let _ = writeln!(out, "(no samples)");
        return out;
    }
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<9} {:>10} {:>12} {:>12} {:>12}",
            r.kind.name(),
            r.path.name(),
            r.count,
            r.p50_ns,
            r.p99_ns,
            r.max_ns
        );
    }
    out
}

/// A parsed JSON value — just enough structure for trace validation.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn skip_ws(&mut self) {
        while self.pos < self.s.len() && self.s[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.s.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.s[start..self.pos]).map_err(|_| self.err("utf8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.s.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.s[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("utf8 in \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input is valid UTF-8:
                    // it came from a &str).
                    let rest =
                        std::str::from_utf8(&self.s[self.pos..]).map_err(|_| self.err("utf8"))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document (minimal reader for trace validation — not a
/// general-purpose parser).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        s: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.s.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

/// Parse an exported Chrome trace and count notification events by path:
/// returns `(eager, deferred)`. Errors if the text is not valid JSON or
/// lacks a `traceEvents` array.
pub fn count_notifications(text: &str) -> Result<(u64, u64), String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut eager = 0u64;
    let mut deferred = 0u64;
    for e in events {
        if let Some(name) = e.get("name").and_then(|n| n.as_str()) {
            if name.ends_with(":eager") {
                eager += 1;
            } else if name.ends_with(":deferred") {
                deferred += 1;
            }
        }
    }
    Ok((eager, deferred))
}

#[cfg(test)]
mod tests {
    use super::super::{CompletionPath, OpKind, RankTracer};
    use super::*;

    fn sample_bundle() -> TraceBundle {
        let mut t0 = RankTracer::new(0);
        let a = t0.op_init(OpKind::Put, 100, true);
        t0.net_inject(a, 0, 120);
        t0.notify(a, CompletionPath::Deferred, 2_500);
        let b = t0.op_init(OpKind::Amo, 3_000, true);
        t0.notify(b, CompletionPath::Eager, 3_000);
        t0.wakeup(17, 2_400);
        t0.drain(2, 2_600);
        let mut t1 = RankTracer::new(1);
        let c = t1.op_init(OpKind::Rpc, 500, true);
        t1.notify(c, CompletionPath::Deferred, 9_999);
        TraceBundle {
            ranks: vec![t1.take(), t0.take()], // out of order on purpose
            net: vec![
                NetTraceEvent {
                    ts_ns: 120,
                    msg: 0,
                    attempt: 0,
                    kind: NetEventKind::Inject,
                    lclock: 3,
                },
                NetTraceEvent {
                    ts_ns: 1_120,
                    msg: 0,
                    attempt: 0,
                    kind: NetEventKind::Drop { backoff_ns: 800 },
                    lclock: 3,
                },
                NetTraceEvent {
                    ts_ns: 1_920,
                    msg: 0,
                    attempt: 1,
                    kind: NetEventKind::Retry,
                    lclock: 3,
                },
                NetTraceEvent {
                    ts_ns: 2_400,
                    msg: 0,
                    attempt: 1,
                    kind: NetEventKind::Deliver,
                    lclock: 4,
                },
            ],
        }
    }

    #[test]
    fn chrome_export_parses_and_counts_paths() {
        let json = chrome_trace_json(&sample_bundle());
        let doc = parse_json(&json).expect("exported trace must be valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 3 × (process_name + thread_name) metadata + 9 rank events +
        // 4 net events.
        assert_eq!(events.len(), 19);
        let (eager, deferred) = count_notifications(&json).unwrap();
        assert_eq!(eager, 1);
        assert_eq!(deferred, 2);
        // Ranks are emitted in ascending order regardless of input order.
        let r0 = json.find("\"rank 0\"").unwrap();
        let r1 = json.find("\"rank 1\"").unwrap();
        assert!(r0 < r1);
    }

    #[test]
    fn export_is_deterministic() {
        let a = chrome_trace_json(&sample_bundle());
        let b = chrome_trace_json(&sample_bundle());
        assert_eq!(a, b);
    }

    #[test]
    fn flow_export_adds_cross_lane_arrows() {
        let bundle = sample_bundle();
        let assembly = super::super::causal::assemble(&bundle);
        let json = chrome_trace_json_with_flows(&bundle, &assembly);
        let doc = parse_json(&json).expect("flow export must stay valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let ph = |e: &Json| e.get("ph").and_then(|p| p.as_str()).map(str::to_owned);
        let starts = events
            .iter()
            .filter(|e| ph(e).as_deref() == Some("s"))
            .count();
        let finishes = events
            .iter()
            .filter(|e| ph(e).as_deref() == Some("f"))
            .count();
        // msg 0's wire chain (3 edges) + the inject fan-in (1) — program
        // edges draw no arrows.
        assert_eq!(starts, 4);
        assert_eq!(starts, finishes);
        // The wire row is labeled "wire", not "net".
        assert!(json.contains("\"name\":\"wire\""));
        assert!(!json.contains("\"name\":\"net\""));
        // And it is deterministic like the plain exporter.
        assert_eq!(json, chrome_trace_json_with_flows(&bundle, &assembly));
    }

    #[test]
    fn summary_table_lists_each_pair() {
        let mut t = RankTracer::new(0);
        let a = t.op_init(OpKind::Put, 0, true);
        t.notify(a, CompletionPath::Eager, 0);
        let b = t.op_init(OpKind::Put, 0, true);
        t.notify(b, CompletionPath::Deferred, 1_000);
        let table = summary_table(&t.histograms());
        assert!(table.contains("put"));
        assert!(table.contains("eager"));
        assert!(table.contains("deferred"));
    }

    #[test]
    fn json_parser_handles_basics_and_rejects_garbage() {
        let v = parse_json(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "x\ny");
        assert_eq!(v.get("c"), Some(&Json::Null));
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} extra").is_err());
    }
}
